"""Table 6 (appendix): conv-implementation weak scaling.

Measured: host sweeps of the conv updater.  Modeled: all three packing
densities against the paper's rows within 5%, plus linearity.
"""

from __future__ import annotations

import pytest

from repro.harness import table6
from repro.harness.perf import model_pod_step

from .conftest import make_compact_runner


@pytest.mark.parametrize("side", [256, 512, 1024])
def test_host_conv_sweep(benchmark, side):
    benchmark.group = "table6-host-conv-sweep"
    benchmark(make_compact_runner(side, nn_method="conv"))


def test_modeled_rows_track_paper():
    for section, (mult, entries) in table6.PAPER_SECTIONS.items():
        per_core = (mult[0] * 128, mult[1] * 128)
        for topology, paper_ms, paper_flips in entries:
            model = model_pod_step(
                per_core, topology[0] * topology[1], updater="conv"
            )
            assert model.step_time * 1e3 == pytest.approx(paper_ms, rel=0.05), section
            assert model.flips_per_ns == pytest.approx(paper_flips, rel=0.05), section


def test_full_pod_reaches_paper_scale():
    """Largest configuration: 2048 cores, (128 x 20160)^2 ~ 6.7e12 sites."""
    model = model_pod_step((448 * 128, 448 * 128), 2025, updater="conv")
    assert model.sites > 6.5e12
    assert model.flips_per_ns == pytest.approx(40418.07, rel=0.05)


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: conv weak-scaling endpoints (modeled)."""
    superdense = model_pod_step((448 * 128, 448 * 128), 2, updater="conv")
    pod = model_pod_step((448 * 128, 448 * 128), 2025, updater="conv")
    return (
        {
            "modeled_superdense_step_ms": superdense.step_time * 1e3,
            "modeled_2025c_flips_per_ns": pod.flips_per_ns,
            "modeled_2025c_sites": float(pod.sites),
        },
        {"updater": "conv", "dtype": "bfloat16"},
    )
