"""Serve-layer load bench: affinity under skew, admission latency, shedding.

Three acceptance gates for the :mod:`repro.serve` front door:

1. **Cache-affinity parity** — an open-loop mix of 2048 mixed-tenant
   jobs drawn from a Zipf-skewed config popularity curve is routed
   through 4 shards and through 1 shard.  Content-addressed rendezvous
   routing must keep the sharded fleet's cache hit rate within 10% of
   the single giant scheduler (``hit_multi >= 0.9 * hit_single``) —
   the whole point of config-hash affinity is that sharding does not
   cost dedup.

2. **Admission latency** — a smaller mix posted over real loopback HTTP
   must admit with p99 round-trip latency under the CI budget, and a
   sampled result fetched over the wire must be bit-identical to the
   in-process client (exact floats, matching lattice sha256).

3. **Load shedding** — offered 2x beyond a deliberately tiny fleet's
   capacity, the server must shed with ``429`` + ``Retry-After`` and
   every job it answered ``202`` for must still complete: zero accepted
   jobs lost.

The routed comparison runs on the cooperative scheduler directly (no
sockets), so gate 1 judges placement quality, not HTTP overhead.
"""

from __future__ import annotations

import asyncio
import hashlib
from time import perf_counter

import numpy as np

from repro.api import SimulationConfig
from repro.sched import Client, Scheduler, SchedulerSaturatedError
from repro.serve import ServeApp, ShardRouter, http_request

_N_JOBS = 2048
_N_UNIQUE = 96
_ZIPF_S = 1.1
_N_SHARDS = 4
_SIDE = 8
_SWEEPS = 8
_TENANTS = ("alice", "bob", "carol", "dave", "erin", "frank")
_SUBMIT_STRIDE = 4  # router steps between submissions (open-loop pacing)

_HTTP_JOBS = 96
_P99_BUDGET_S = 0.25

_SHED_OFFERED = 12  # vs. capacity max_queue=2 + 1 running: > 2x


def _zipf_counts(n_jobs: int, n_unique: int, s: float) -> list[int]:
    """How many of the ``n_jobs`` submissions each config rank receives.

    Deterministic closed-form Zipf allocation (no RNG, so the mix is
    identical on every platform): rank r gets a share proportional to
    ``r**-s``, every rank appears at least once, and leftovers from
    rounding go to the most popular ranks.
    """
    weights = [rank ** -s for rank in range(1, n_unique + 1)]
    total = sum(weights)
    counts = [max(1, int(n_jobs * w / total)) for w in weights]
    excess = sum(counts) - n_jobs
    rank = 0
    while excess != 0:
        if excess > 0 and counts[rank] > 1:
            counts[rank] -= 1
            excess -= 1
        elif excess < 0:
            counts[rank] += 1
            excess += 1
        rank = (rank + 1) % n_unique
    return counts


def build_workload() -> list[tuple[SimulationConfig, int, str]]:
    """The deterministic 2048-row mix: (config, sweeps, tenant) rows.

    96 unique configs with Zipf(1.1)-skewed popularity — the head rank
    repeats hundreds of times, the tail appears once — interleaved by a
    content hash of the row index so duplicates are spread through the
    arrival order rather than clumped, and tenants rotate so every
    shard sees mixed-tenant traffic.
    """
    counts = _zipf_counts(_N_JOBS, _N_UNIQUE, _ZIPF_S)
    pool = []
    for rank, count in enumerate(counts):
        config = SimulationConfig(
            shape=(_SIDE, _SIDE), temperature=1.5 + 0.01 * rank, seed=rank
        )
        pool.extend([config] * count)
    order = sorted(
        range(_N_JOBS),
        key=lambda i: hashlib.sha256(str(i).encode("ascii")).digest(),
    )
    return [
        (pool[i], _SWEEPS, _TENANTS[n % len(_TENANTS)])
        for n, i in enumerate(order)
    ]


def run_routed(n_shards: int) -> tuple[ShardRouter, list]:
    """Push the whole mix through an ``n_shards`` router, open loop.

    Submissions outrun the drain rate on purpose; saturation backpressure
    is absorbed by stepping the pool and retrying, exactly what the HTTP
    client's capped backoff does.  Returns ``(router, job_handles)``.
    """
    router = ShardRouter(n_shards=n_shards)
    jobs = []
    for n, (config, sweeps, tenant) in enumerate(build_workload()):
        for _ in range(10_000):
            try:
                _, job = router.submit(config, sweeps, tenant=tenant)
                break
            except SchedulerSaturatedError:
                router.step()
        else:
            raise RuntimeError("router never accepted under retry")
        jobs.append(job)
        if n % _SUBMIT_STRIDE == 0:
            router.step()
    router.drain()
    return router, jobs


def measure_affinity() -> dict:
    """Gate 1 numbers: sharded vs single-scheduler cache hit rates."""
    single_router, single_jobs = run_routed(1)
    multi_router, multi_jobs = run_routed(_N_SHARDS)
    single = single_router.aggregate_cache_stats()
    multi = multi_router.aggregate_cache_stats()
    placed = multi_router.routed_affine + multi_router.routed_spilled
    return {
        "n_jobs": len(multi_jobs),
        "single_done": sum(job.done for job in single_jobs),
        "multi_done": sum(job.done for job in multi_jobs),
        "single_hit_rate": single["hit_rate"],
        "multi_hit_rate": multi["hit_rate"],
        "hit_rate_ratio": (
            multi["hit_rate"] / single["hit_rate"]
            if single["hit_rate"]
            else 0.0
        ),
        "multi_affine_fraction": (
            multi_router.routed_affine / placed if placed else 0.0
        ),
        "multi_entries": multi["entries"],
        "single_entries": single["entries"],
    }


# -- HTTP admission latency + bit-identity ------------------------------------


def _wire_rows(n: int) -> list[tuple[dict, int, str]]:
    """The first ``n`` workload rows as JSON-wire submissions."""
    rows = []
    for config, sweeps, tenant in build_workload()[:n]:
        wire = {
            "shape": list(config.shape),
            "temperature": config.temperature,
            "seed": config.seed,
        }
        rows.append((wire, sweeps, tenant))
    return rows


async def _http_scenario(app: ServeApp) -> dict:
    latencies = []
    posted = []
    for wire, sweeps, tenant in _wire_rows(_HTTP_JOBS):
        start = perf_counter()
        status, _, body = await http_request(
            "127.0.0.1", app.port, "POST", "/v1/jobs",
            {"config": wire, "sweeps": sweeps, "tenant": tenant},
        )
        latencies.append(perf_counter() - start)
        assert status == 202, f"expected 202, got {status}: {body}"
        posted.append((wire, sweeps, body["id"]))
    # Bit-identity spot checks on three distinct configs.
    samples = []
    seen = set()
    for wire, sweeps, job_id in posted:
        key = (tuple(wire["shape"]), wire["temperature"], wire["seed"], sweeps)
        if key not in seen:
            seen.add(key)
            samples.append((wire, sweeps, job_id))
        if len(samples) == 3:
            break
    wire_results = []
    for wire, sweeps, job_id in samples:
        status, _, res = await http_request(
            "127.0.0.1", app.port, "GET", f"/v1/jobs/{job_id}/result"
        )
        assert status == 200
        wire_results.append((wire, sweeps, res["result"]))
    latencies.sort()
    return {
        "n_http_jobs": len(posted),
        "admission_p50_s": latencies[len(latencies) // 2],
        "admission_p99_s": latencies[min(
            len(latencies) - 1, int(len(latencies) * 0.99)
        )],
        "_wire_results": wire_results,
    }


def measure_http() -> dict:
    """Gate 2 numbers: p99 admission latency and wire bit-identity."""

    async def main():
        async with ServeApp(
            router=ShardRouter(n_shards=_N_SHARDS), autoscale=False
        ) as app:
            return await _http_scenario(app)

    numbers = asyncio.run(main())
    wire_results = numbers.pop("_wire_results")
    client = Client()
    identical = 0
    for wire, sweeps, res in wire_results:
        config = SimulationConfig(
            shape=tuple(wire["shape"]),
            temperature=wire["temperature"],
            seed=wire["seed"],
        )
        local = client.result(client.submit(config, sweeps))
        lattice = np.asarray(res["lattice"], dtype=np.float32)
        expected_hash = hashlib.sha256(
            np.ascontiguousarray(local.lattice.astype(np.float32)).tobytes()
        ).hexdigest()
        if (
            res["magnetization"] == float(local.magnetization)
            and res["energy"] == float(local.energy)
            and np.array_equal(lattice, local.lattice)
            and res["lattice_sha256"] == expected_hash
        ):
            identical += 1
    numbers["bit_identical_samples"] = identical
    numbers["bit_identity_checked"] = len(wire_results)
    return numbers


# -- 2x-capacity shedding -----------------------------------------------------


def _shed_factory(shard_id: int) -> Scheduler:
    return Scheduler(n_devices=1, max_batch=1, quantum=4, max_queue=2)


async def _shed_scenario(app: ServeApp) -> dict:
    accepted, shed, missing_header = [], 0, 0
    for seed in range(_SHED_OFFERED):
        status, headers, body = await http_request(
            "127.0.0.1", app.port, "POST", "/v1/jobs",
            {
                "config": {"shape": [_SIDE, _SIDE],
                           "temperature": 2.0, "seed": seed},
                "sweeps": 150,
            },
        )
        if status == 202:
            accepted.append(body["id"])
        else:
            assert status == 429, f"expected 429, got {status}"
            shed += 1
            if "retry-after" not in headers or int(headers["retry-after"]) < 1:
                missing_header += 1
    completed = 0
    for job_id in accepted:
        status, _, res = await http_request(
            "127.0.0.1", app.port, "GET", f"/v1/jobs/{job_id}/result"
        )
        if status == 200 and res["state"] == "done":
            completed += 1
    return {
        "shed_offered": _SHED_OFFERED,
        "shed_accepted": len(accepted),
        "shed_rejected": shed,
        "shed_429_missing_retry_after": missing_header,
        "shed_accepted_completed": completed,
    }


def measure_shed() -> dict:
    """Gate 3 numbers: sheds at 2x capacity, zero accepted jobs lost."""

    async def main():
        async with ServeApp(
            router=ShardRouter(n_shards=1, scheduler_factory=_shed_factory),
            autoscale=False,
        ) as app:
            return await _shed_scenario(app)

    return asyncio.run(main())


# -- acceptance gates ---------------------------------------------------------


def test_sharded_hit_rate_within_ten_percent_of_single():
    """Gate 1: affinity keeps sharded hit rate >= 0.9x single-shard."""
    numbers = measure_affinity()
    assert numbers["n_jobs"] == _N_JOBS
    assert numbers["single_done"] == _N_JOBS
    assert numbers["multi_done"] == _N_JOBS
    assert numbers["hit_rate_ratio"] >= 0.9, (
        f"4-shard hit rate {numbers['multi_hit_rate']:.3f} vs single-shard "
        f"{numbers['single_hit_rate']:.3f} is only "
        f"{numbers['hit_rate_ratio']:.2f}x (need >= 0.9x)"
    )
    # Affinity, not luck: the overwhelming majority routed to the shard
    # their content hash ranks first.
    assert numbers["multi_affine_fraction"] >= 0.8


def test_http_admission_p99_under_budget():
    """Gate 2: p99 POST /v1/jobs round-trip under the CI budget, and
    results over the wire bit-identical to the in-process client."""
    numbers = measure_http()
    assert numbers["n_http_jobs"] == _HTTP_JOBS
    assert numbers["admission_p99_s"] < _P99_BUDGET_S, (
        f"p99 admission {numbers['admission_p99_s'] * 1e3:.1f} ms exceeds "
        f"{_P99_BUDGET_S * 1e3:.0f} ms budget"
    )
    assert numbers["bit_identical_samples"] == numbers["bit_identity_checked"]


def test_sheds_at_2x_capacity_without_losing_accepted_jobs():
    """Gate 3: past capacity -> 429 + Retry-After; every 202 completes."""
    numbers = measure_shed()
    assert numbers["shed_accepted"] >= 1, "nothing was admitted"
    assert numbers["shed_rejected"] >= 1, "offered load never exceeded capacity"
    assert numbers["shed_429_missing_retry_after"] == 0
    assert numbers["shed_accepted_completed"] == numbers["shed_accepted"]


def test_serve_throughput(benchmark):
    benchmark.group = "serve-zipf-mix"
    benchmark(lambda: run_routed(_N_SHARDS))


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary across all three gates."""
    numbers = measure_affinity()
    numbers.update(measure_http())
    numbers.update(measure_shed())
    return (
        numbers,
        {
            "n_jobs": _N_JOBS,
            "n_unique": _N_UNIQUE,
            "zipf_s": _ZIPF_S,
            "n_shards": _N_SHARDS,
            "side": _SIDE,
            "sweeps": _SWEEPS,
            "tenants": list(_TENANTS),
            "n_http_jobs": _HTTP_JOBS,
            "p99_budget_s": _P99_BUDGET_S,
            "shed_offered": _SHED_OFFERED,
        },
    )


def main() -> None:
    numbers = measure_affinity()
    print(f"{_N_JOBS}-job Zipf({_ZIPF_S}) mix, {_N_UNIQUE} unique configs, "
          f"{len(_TENANTS)} tenants")
    print(f"single-shard hit rate {numbers['single_hit_rate']:8.3f}")
    print(f"{_N_SHARDS}-shard hit rate     {numbers['multi_hit_rate']:8.3f} "
          f"({numbers['hit_rate_ratio']:.2f}x)")
    print(f"affine fraction       {numbers['multi_affine_fraction']:8.3f}")
    http_numbers = measure_http()
    print(f"HTTP admission p50    {http_numbers['admission_p50_s'] * 1e3:8.2f} ms")
    print(f"HTTP admission p99    {http_numbers['admission_p99_s'] * 1e3:8.2f} ms")
    print(f"bit-identical samples {http_numbers['bit_identical_samples']:8d} "
          f"/ {http_numbers['bit_identity_checked']}")
    shed = measure_shed()
    print(f"shed at 2x capacity   {shed['shed_rejected']:8d} rejected, "
          f"{shed['shed_accepted']} accepted, "
          f"{shed['shed_accepted_completed']} completed")


if __name__ == "__main__":
    main()
