"""Fused sweep engine vs the elementwise path — the 1.5x gate.

The fused engine (``repro.core.accept`` + ``repro.core.fused``) replaces
the per-site ``exp`` with a precomputed-table gather and lands every
intermediate in a reusable :class:`~repro.core.fused.SweepWorkspace`, so
steady-state sweeps perform zero heap allocation.  This module measures
what that buys in host wall-clock on a 512^2 lattice, per updater, and
**asserts** the headline speedup.

The gate is pinned to the *checkerboard* updater: Algorithm 1 runs the
full elementwise flip rule over every site each phase, so it is exactly
the loop the acceptance table and workspace target, and its measured
margin (>= 2x on a single-core runner) keeps the 1.5x assertion robust
to CI timing noise.  The compact and conv updaters draw uniforms for
only half the sites per phase, which pushes them toward the Philox
throughput floor; their speedups are recorded in the payload but not
gated.

Run as a script for the CI check::

    PYTHONPATH=src python benchmarks/bench_fused_sweep.py            # 512, gated
    PYTHONPATH=src python benchmarks/bench_fused_sweep.py 128        # quick look

or emit the machine-readable snapshot::

    PYTHONPATH=src python -m benchmarks.emit fused_sweep --out-dir bench-artifacts
"""

from __future__ import annotations

import time

from repro.core.simulation import IsingSimulation

#: Updaters measured; the first is the gated headline.
UPDATERS = ("checkerboard", "compact", "conv", "masked_conv")

#: The CI assertion: fused checkerboard sweeps at least this much faster.
GATE_UPDATER = "checkerboard"
GATE_SPEEDUP = 1.5

#: Near-critical temperature — the regime the paper simulates.
TEMPERATURE = 2.2


def _sweep_seconds(
    updater: str, fused: bool, side: int, n_sweeps: int, reps: int
) -> float:
    """Min-of-reps seconds per sweep for one (updater, fused) variant."""
    sim = IsingSimulation(
        (side, side), TEMPERATURE, updater=updater, seed=1, fused=fused
    )
    sim.run(2)  # warm caches, tables and the workspace
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        sim.run(n_sweeps)
        best = min(best, (time.perf_counter() - t0) / n_sweeps)
    return best


def measure(side: int = 512, n_sweeps: int = 4, reps: int = 3) -> dict:
    """``{updater: {"elementwise_s", "fused_s", "speedup"}}`` on side^2."""
    results = {}
    for updater in UPDATERS:
        elementwise = _sweep_seconds(updater, False, side, n_sweeps, reps)
        fused = _sweep_seconds(updater, True, side, n_sweeps, reps)
        results[updater] = {
            "elementwise_s": elementwise,
            "fused_s": fused,
            "speedup": elementwise / fused,
        }
    return results


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: per-updater fused-vs-elementwise timings."""
    results = measure()
    metrics = {}
    for updater, row in results.items():
        metrics[f"measured_{updater}_elementwise_seconds"] = row["elementwise_s"]
        metrics[f"measured_{updater}_fused_seconds"] = row["fused_s"]
        metrics[f"measured_{updater}_speedup_x"] = row["speedup"]
    metrics["measured_gate_speedup_x"] = results[GATE_UPDATER]["speedup"]
    meta = {
        "side": 512,
        "temperature": TEMPERATURE,
        "backend": "numpy",
        "dtype": "float32",
        "gate_updater": GATE_UPDATER,
        "gate_threshold_x": GATE_SPEEDUP,
    }
    return metrics, meta


def main(argv: "list[str] | None" = None) -> None:
    import sys

    raw = argv if argv is not None else sys.argv[1:]
    try:
        side = int(raw[0]) if raw else 512
    except ValueError:
        sys.exit(f"usage: bench_fused_sweep.py [side] — side must be an integer, got {raw}")
    gated = not raw  # the default 512 run is the CI gate
    print(f"fused vs elementwise sweep, {side}^2 lattice (numpy float32)")
    print(f"{'updater':>12} {'elementwise [ms]':>17} {'fused [ms]':>11} {'speedup':>9}")
    results = measure(side=side)
    for updater, row in results.items():
        print(
            f"{updater:>12} {row['elementwise_s'] * 1e3:>17.2f} "
            f"{row['fused_s'] * 1e3:>11.2f} {row['speedup']:>8.2f}x"
        )
    if gated:
        speedup = results[GATE_UPDATER]["speedup"]
        if speedup < GATE_SPEEDUP:
            sys.exit(
                f"FAIL: fused {GATE_UPDATER} speedup {speedup:.2f}x is below "
                f"the {GATE_SPEEDUP}x gate on the {side}^2 lattice"
            )
        print(f"gate OK: fused {GATE_UPDATER} {speedup:.2f}x >= {GATE_SPEEDUP}x")


if __name__ == "__main__":
    main()
