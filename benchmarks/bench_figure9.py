"""Figure 9: strong scaling vs ideal.

Measured: host-side strong scaling of a fixed lattice on real SPMD cores.
Shape checks: the efficiency curve of the modeled pod.
"""

from __future__ import annotations

import pytest

from repro.harness import figure9


def test_model_evaluation_cost(benchmark):
    benchmark.group = "figure9-model-evaluation"
    benchmark(figure9.run)


def test_efficiency_curve_shape():
    result = figure9.run()
    eff = [float(r[-1]) for r in result.rows]
    cores = [int(r[0]) for r in result.rows]
    # Monotone decay, near-ideal at the anchor, visible loss at 2048.
    assert eff[0] == pytest.approx(100.0, abs=0.5)
    assert all(a >= b - 0.5 for a, b in zip(eff, eff[1:]))
    assert cores[-1] == 2048
    assert eff[-1] < 70.0


def test_model_tracks_paper_curve():
    result = figure9.run()
    for row in result.rows:
        cores, model, paper = int(row[0]), float(row[1]), float(row[2])
        tolerance = 0.10 if cores <= 256 else 0.35
        assert model == pytest.approx(paper, rel=tolerance)


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: strong-scaling efficiency endpoints."""
    rows = figure9.run().rows
    first, last = rows[0], rows[-1]
    return (
        {
            f"modeled_efficiency_pct_{int(first[0])}c": float(first[-1]),
            f"modeled_efficiency_pct_{int(last[0])}c": float(last[-1]),
        },
        {"source": "figure9 efficiency column (conv, fixed lattice)"},
    )
