"""Ablation: bfloat16 vs float32.

Host-measured sweep cost in both storage formats (the bf16 emulation adds
rounding work on the host, while on the device it *saves* memory traffic
— both directions are quantified) plus the modeled device-side win and
the memory-capacity doubling.
"""

from __future__ import annotations

import pytest

from repro.harness.perf import model_single_core_step
from repro.tpu.hbm import HBMModel

from .conftest import make_compact_runner


def test_host_sweep_float32(benchmark):
    benchmark.group = "ablation-bf16-host"
    benchmark(make_compact_runner(512, dtype="float32"))


def test_host_sweep_bfloat16(benchmark):
    benchmark.group = "ablation-bf16-host"
    benchmark(make_compact_runner(512, dtype="bfloat16"))


def test_modeled_device_speedup():
    """Halved traffic shrinks the (memory-bound) formatting share."""
    f32 = model_single_core_step((320 * 128, 320 * 128), dtype="float32")
    bf16 = model_single_core_step((320 * 128, 320 * 128), dtype="bfloat16")
    assert f32.step_time / bf16.step_time > 1.2
    assert f32.bytes == pytest.approx(2 * bf16.bytes)


def test_memory_capacity_doubles():
    hbm = HBMModel()
    sites_bf16 = hbm.max_square_lattice_side(2) ** 2
    sites_f32 = hbm.max_square_lattice_side(4) ** 2
    assert sites_bf16 / sites_f32 == pytest.approx(2.0, rel=0.02)


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: the bf16 win, modeled device-side."""
    f32 = model_single_core_step((320 * 128, 320 * 128), dtype="float32")
    bf16 = model_single_core_step((320 * 128, 320 * 128), dtype="bfloat16")
    hbm = HBMModel()
    return (
        {
            "modeled_bf16_step_speedup": f32.step_time / bf16.step_time,
            "modeled_bytes_ratio": f32.bytes / bf16.bytes,
            "capacity_sites_ratio": (
                hbm.max_square_lattice_side(2) ** 2
                / hbm.max_square_lattice_side(4) ** 2
            ),
        },
        {"lattice": "(320x128)^2"},
    )
