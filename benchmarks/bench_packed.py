"""Packed multi-spin engine vs the elementwise checkerboard — the 8x gate.

The packed engine (``repro.core.packed`` over the ``packed_*`` backend
kernels) stores 64 spins per uint64 word and collapses the Metropolis
rule to three bitwise cases, so one vector op advances 64 sites and the
Philox generator feeds two sites per word (``rng_bits=16``).  This
module measures the resulting flips/sec jump on a 512^2 lattice against
the *elementwise* checkerboard updater — the same baseline the
multi-spin GPU literature quotes — and **asserts** the headline factor.

Correctness is asserted before any timing: the packed engine fed the
same per-site float32 uniforms must reproduce the unpacked
checkerboard-order multi-spin baseline bit-for-bit, and a short
stream-mode run must land in the Onsager-ordered phase.  A benchmark
that got faster by drifting off the float chains' trajectory contract
would fail here, not in a physics plot three PRs later.

Run as a script for the CI check::

    PYTHONPATH=src python benchmarks/bench_packed.py            # 512, gated
    PYTHONPATH=src python benchmarks/bench_packed.py 256        # quick look

or emit the machine-readable snapshot::

    PYTHONPATH=src python -m benchmarks.emit packed --out-dir bench-artifacts
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend.numpy_backend import NumpyBackend
from repro.core.simulation import IsingSimulation
from repro.tpu.dtypes import PACKED

#: The CI assertion: packed flips/sec at least this multiple of the
#: elementwise checkerboard updater's on the same lattice.
GATE_SPEEDUP = 8.0

#: Near-critical temperature — the regime the paper simulates.
TEMPERATURE = 2.2


def check_bit_identity(side: int = 128, n_sweeps: int = 8) -> None:
    """Assert the packed engine matches the unpacked multi-spin baseline.

    Feeds both engines identical per-site float32 uniforms (the explicit
    ``probs`` path — the CI-gated invariant of ``docs/packed_engine.md``)
    and requires bit-equal lattices after every sweep.
    """
    from repro.baselines.multispin import MultispinUpdater
    from repro.core.packed import PackedUpdater

    rng = np.random.default_rng(7)
    plain = np.where(rng.random((side, side)) < 0.5, 1.0, -1.0).astype(
        np.float32
    )
    baseline = MultispinUpdater(1.0 / TEMPERATURE)
    packed = PackedUpdater(1.0 / TEMPERATURE)
    b_state = baseline.to_state(plain)
    p_state = packed.to_state(plain)
    quarter = (side // 2, side // 2)
    for _ in range(n_sweeps):
        probs = [
            rng.random(quarter, dtype=np.float32) for _ in range(4)
        ]
        b_state = baseline.sweep(
            b_state, probs_black=tuple(probs[:2]), probs_white=tuple(probs[2:])
        )
        p_state = packed.sweep(
            p_state, probs_black=tuple(probs[:2]), probs_white=tuple(probs[2:])
        )
        if not np.array_equal(baseline.to_plain(b_state), packed.to_plain(p_state)):
            raise AssertionError(
                "packed engine diverged from the unpacked multi-spin "
                "baseline on identical uniforms — refusing to time a "
                "broken engine"
            )


def check_physics(side: int = 128, n_sweeps: int = 300) -> None:
    """Assert a stream-mode packed chain orders at T = 1.5 (Onsager)."""
    sim = IsingSimulation(
        (side, side), 1.5, backend=NumpyBackend(PACKED), seed=3, initial="cold"
    )
    sim.run(n_sweeps)
    m = abs(sim.magnetization())
    if not 0.95 < m <= 1.0:
        raise AssertionError(
            f"packed chain at T=1.5 has |m| = {m:.4f}, outside the "
            "Onsager-ordered band (0.95, 1.0] — engine physics is broken"
        )


def _sweep_seconds(sim: IsingSimulation, n_sweeps: int, reps: int) -> float:
    """Min-of-reps seconds per sweep."""
    sim.run(2)  # warm caches, tables and the workspace
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        sim.run(n_sweeps)
        best = min(best, (time.perf_counter() - t0) / n_sweeps)
    return best


def measure(side: int = 512, n_sweeps: int = 8, reps: int = 3) -> dict:
    """Packed vs elementwise-checkerboard timings on side^2."""
    elementwise = _sweep_seconds(
        IsingSimulation(
            (side, side), TEMPERATURE, updater="checkerboard", seed=1, fused=False
        ),
        max(2, n_sweeps // 2),
        reps,
    )
    packed = _sweep_seconds(
        IsingSimulation(
            (side, side), TEMPERATURE, backend=NumpyBackend(PACKED), seed=1
        ),
        n_sweeps,
        reps,
    )
    n_sites = side * side
    return {
        "elementwise_s": elementwise,
        "packed_s": packed,
        "speedup": elementwise / packed,
        "elementwise_flips_per_s": n_sites / elementwise,
        "packed_flips_per_s": n_sites / packed,
    }


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: packed vs elementwise checkerboard."""
    check_bit_identity()
    check_physics()
    row = measure()
    metrics = {
        "measured_elementwise_seconds": row["elementwise_s"],
        "measured_packed_seconds": row["packed_s"],
        "measured_speedup_x": row["speedup"],
        "measured_elementwise_flips_per_second": row["elementwise_flips_per_s"],
        "measured_packed_flips_per_second": row["packed_flips_per_s"],
    }
    meta = {
        "side": 512,
        "temperature": TEMPERATURE,
        "backend": "numpy",
        "dtype": "packed",
        "rng_bits": 16,
        "baseline": "elementwise checkerboard (fused=False)",
        "gate_threshold_x": GATE_SPEEDUP,
        "bit_identity": "asserted vs repro.baselines.multispin on shared uniforms",
    }
    return metrics, meta


def main(argv: "list[str] | None" = None) -> None:
    import sys

    raw = argv if argv is not None else sys.argv[1:]
    try:
        side = int(raw[0]) if raw else 512
    except ValueError:
        sys.exit(
            f"usage: bench_packed.py [side] — side must be an integer, got {raw}"
        )
    if side % 128:
        sys.exit(f"side must be a multiple of 128 for the packed engine, got {side}")
    gated = not raw  # the default 512 run is the CI gate
    check_bit_identity()
    print("bit-identity vs unpacked multi-spin baseline OK")
    check_physics()
    print("Onsager physics check OK")
    row = measure(side=side)
    print(f"packed vs elementwise checkerboard, {side}^2 lattice (numpy)")
    print(
        f"elementwise {row['elementwise_s'] * 1e3:8.2f} ms/sweep "
        f"({row['elementwise_flips_per_s'] / 1e6:7.1f} Mflips/s)"
    )
    print(
        f"packed      {row['packed_s'] * 1e3:8.2f} ms/sweep "
        f"({row['packed_flips_per_s'] / 1e6:7.1f} Mflips/s)"
    )
    print(f"speedup     {row['speedup']:8.2f}x")
    if gated:
        if row["speedup"] < GATE_SPEEDUP:
            sys.exit(
                f"FAIL: packed speedup {row['speedup']:.2f}x is below the "
                f"{GATE_SPEEDUP}x gate on the {side}^2 lattice"
            )
        print(f"gate OK: packed {row['speedup']:.2f}x >= {GATE_SPEEDUP}x")


if __name__ == "__main__":
    main()
