"""Table 2: weak scaling on pod slices.

Measured: real lockstep SPMD sweeps (halo exchange included) at small
per-core lattices across core grids.  Modeled: the paper's five rows
within 2%, and linearity of the scaling.
"""

from __future__ import annotations

import pytest

from repro.core.distributed import DistributedIsing
from repro.harness import table2
from repro.harness.perf import model_pod_step

from .conftest import BETA_C


@pytest.mark.parametrize("core_grid", [(1, 2), (2, 2), (2, 4)])
def test_host_distributed_sweep(benchmark, core_grid):
    benchmark.group = "table2-host-distributed"
    sim = DistributedIsing(
        (128 * core_grid[0], 128 * core_grid[1]),
        1.0 / BETA_C,
        core_grid=core_grid,
        seed=1,
    )
    benchmark(lambda: sim.sweep(1))


def test_modeled_rows_track_paper():
    for n, paper_ms, paper_flips, paper_energy in table2.PAPER_ROWS:
        model = model_pod_step(table2.PER_CORE_SHAPE, n * n * 2)
        assert model.step_time * 1e3 == pytest.approx(paper_ms, rel=0.02)
        assert model.flips_per_ns == pytest.approx(paper_flips, rel=0.02)
        assert model.energy_nj_per_flip == pytest.approx(paper_energy, rel=0.02)


def test_scaling_is_linear():
    rates = {
        n: model_pod_step(table2.PER_CORE_SHAPE, n * n * 2).flips_per_ns
        for n in (1, 16)
    }
    assert rates[16] / rates[1] == pytest.approx(256.0, rel=0.01)


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: weak-scaling endpoints (modeled)."""
    metrics = {}
    for n in (1, 16):
        model = model_pod_step(table2.PER_CORE_SHAPE, n * n * 2)
        metrics[f"modeled_step_ms_{n}x{n}x2"] = model.step_time * 1e3
        metrics[f"modeled_flips_per_ns_{n}x{n}x2"] = model.flips_per_ns
    return metrics, {
        "per_core_shape": list(table2.PER_CORE_SHAPE),
        "dtype": "bfloat16",
    }
