"""Hierarchical multi-pod mesh: overlap speedup + weak-scaling gates.

The split-phase halo schedule (``overlap=True`` on
:class:`~repro.core.distributed.DistributedIsing`) issues each colour
phase's four halo permutes into an overlap window, updates interior
sites while they are notionally in flight, and charges only
``max(0, comm - interior_compute)`` as exposed communication.  The
executed op stream is identical to the blocking schedule — same sites,
same Philox draws — so before timing anything this module asserts
**bit-identity**: overlapped vs blocking produce identical lattices and
identical Philox counters for all four config updaters, float32 and
bfloat16, solo and under transient fault injection.

Two modeled-clock gates then hold:

- *comm-bound speedup*: on a 2x2-pod hierarchical 8x8 mesh with a small
  (64 x 64) per-core lattice — the regime where the inter-pod tier
  dominates the blocking step — the overlapped schedule must beat the
  blocking one by at least :data:`GATE_SPEEDUP` x modeled slice
  throughput, measured on *real* lockstep runs (same chain, two clocks).
- *weak scaling*: with the paper-scale per-core lattice
  (:data:`PER_CORE`), modeled step times from
  :func:`~repro.harness.perf.model_pod_step` over concrete topologies
  must keep weak-scaling efficiency >= :data:`GATE_EFFICIENCY` at
  2048 modeled cores (a 2x2 grid of 1024-core pods) under overlap —
  the appendix's full-pod point, extended across the pod boundary.

Run as a script for the CI check::

    PYTHONPATH=src python benchmarks/bench_multipod.py

or emit the machine-readable snapshot::

    PYTHONPATH=src python -m benchmarks.emit multipod --out-dir bench-artifacts
"""

from __future__ import annotations

import numpy as np

from repro.api import SimulationConfig, distributed
from repro.harness.perf import model_pod_step
from repro.mesh.faults import FaultEvent, FaultPlan
from repro.mesh.topology import HierarchicalTorus, Torus2D

#: Config updaters exercised by the bit-identity sweep (the distributed
#: driver maps "conv" to its conv neighbour kernel and everything else
#: to the compact engine, so all four public spellings are covered).
UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")

#: The CI assertions.
GATE_SPEEDUP = 1.3
GATE_EFFICIENCY = 0.9

#: Near-critical temperature — the regime the paper simulates.
TEMPERATURE = 2.2

#: Comm-bound gate configuration: 64 cores in a 2x2 pod grid, small
#: per-core lattice so the inter-pod halo tier dominates the blocking
#: step.
COMM_BOUND = {
    "shape": (512, 512),
    "grid": (8, 8),
    "pod_grid": (2, 2),
    "sweeps": 3,
}

#: Paper-scale per-core lattice for the weak-scaling curve (bfloat16
#: superdense regime; compute thick enough that overlap can hide the
#: inter-pod tier).
PER_CORE = (4096, 2048)

#: Weak-scaling points: (modeled cores, topology).  2048 is the paper
#: appendix's full pod, here split 2x2 across pods; 4096 extends one
#: step beyond it.
def _weak_scaling_points() -> list[tuple[int, "Torus2D"]]:
    return [
        (16, Torus2D(4, 4)),
        (64, Torus2D(8, 8)),
        (256, Torus2D(16, 16)),
        (512, HierarchicalTorus(16, 32, 1, 1)),
        (2048, HierarchicalTorus(32, 64, 2, 2)),
        (4096, HierarchicalTorus(64, 64, 2, 2)),
    ]


def _transient_plan() -> FaultPlan:
    """Transient-only faults (drops, delays, stalls) — never a kill."""
    return FaultPlan(
        events=(
            FaultEvent("drop", collective=3, count=1),
            FaultEvent("delay", collective=9, seconds=20e-6),
            FaultEvent("stall", collective=13, core=1, seconds=40e-6),
        )
    )


def verify_bit_identity(side: int = 16, n_sweeps: int = 3) -> int:
    """Assert overlapped == blocking, all updaters/dtypes, solo + faults.

    Identical lattices *and* identical per-core Philox counters — the
    overlap schedule may only move the modeled clock.  Returns the
    number of (updater, dtype, faulted) triples checked.
    """
    checked = 0
    for updater in UPDATERS:
        for dtype in ("float32", "bfloat16"):
            for faulted in (False, True):
                lattices, counters = [], []
                for overlap in (False, True):
                    sim = distributed(
                        SimulationConfig(
                            shape=side,
                            temperature=TEMPERATURE,
                            updater=updater,
                            dtype=dtype,
                            grid=(2, 2),
                            pod_grid=(2, 2),
                            overlap=overlap,
                            seed=7,
                            fault_plan=_transient_plan() if faulted else None,
                        )
                    )
                    sim.sweep(n_sweeps)
                    lattices.append(sim.gather_lattice())
                    counters.append([s.state() for s in sim._streams])
                if not np.array_equal(lattices[0], lattices[1]):
                    raise AssertionError(
                        f"overlap drifted from blocking: {updater} / {dtype}"
                        f"{' / faulted' if faulted else ''}"
                    )
                if counters[0] != counters[1]:
                    raise AssertionError(
                        f"overlap moved Philox counters: {updater} / {dtype}"
                        f"{' / faulted' if faulted else ''}"
                    )
                checked += 1
    return checked


def measure_comm_bound() -> dict:
    """Real lockstep runs at the comm-bound size, both schedules."""
    rows = {}
    for overlap in (False, True):
        sim = distributed(
            SimulationConfig(
                shape=COMM_BOUND["shape"],
                temperature=TEMPERATURE,
                grid=COMM_BOUND["grid"],
                pod_grid=COMM_BOUND["pod_grid"],
                overlap=overlap,
                seed=1,
            )
        )
        sim.sweep(COMM_BOUND["sweeps"])
        rows["overlap" if overlap else "blocking"] = {
            "step_seconds": sim.step_time(),
            "flips_per_ns": sim.throughput_flips_per_ns(),
            "hidden_seconds": sim.runtime.overlap_hidden_seconds,
            "exposed_seconds": sim.runtime.overlap_exposed_seconds,
        }
    rows["speedup"] = (
        rows["blocking"]["step_seconds"] / rows["overlap"]["step_seconds"]
    )
    return rows


def measure_weak_scaling() -> dict:
    """Modeled weak-scaling curve at the paper-scale per-core lattice."""
    points = {}
    base_overlap = base_blocking = None
    for n_cores, topology in _weak_scaling_points():
        over = model_pod_step(
            PER_CORE, n_cores, topology=topology, overlap=True
        )
        blocking = model_pod_step(
            PER_CORE, n_cores, topology=topology, overlap=False
        )
        if base_overlap is None:
            base_overlap = over.step_time
            base_blocking = blocking.step_time
        multi_pod = (
            isinstance(topology, HierarchicalTorus) and topology.num_pods > 1
        )
        points[n_cores] = {
            "overlap_step_seconds": over.step_time,
            "blocking_step_seconds": blocking.step_time,
            "overlap_efficiency": base_overlap / over.step_time,
            "blocking_efficiency": base_blocking / blocking.step_time,
            "hidden_comm_seconds": over.hidden_comm_seconds,
            "multi_pod": multi_pod,
        }
    return points


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: bit-identity, comm-bound gate, scaling."""
    pairs = verify_bit_identity()
    comm = measure_comm_bound()
    scaling = measure_weak_scaling()
    metrics = {
        "bit_identical_triples": float(pairs),
        "modeled_comm_bound_blocking_step_seconds": comm["blocking"][
            "step_seconds"
        ],
        "modeled_comm_bound_overlap_step_seconds": comm["overlap"][
            "step_seconds"
        ],
        "modeled_comm_bound_speedup_x": comm["speedup"],
        "modeled_comm_bound_hidden_seconds": comm["overlap"]["hidden_seconds"],
        "modeled_comm_bound_exposed_seconds": comm["overlap"][
            "exposed_seconds"
        ],
    }
    for n_cores, row in scaling.items():
        metrics[f"modeled_weak_{n_cores}_overlap_step_seconds"] = row[
            "overlap_step_seconds"
        ]
        metrics[f"modeled_weak_{n_cores}_overlap_efficiency"] = row[
            "overlap_efficiency"
        ]
        metrics[f"modeled_weak_{n_cores}_blocking_efficiency"] = row[
            "blocking_efficiency"
        ]
    metrics["modeled_weak_2048_gate_efficiency"] = scaling[2048][
        "overlap_efficiency"
    ]
    meta = {
        "temperature": TEMPERATURE,
        "comm_bound": {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in COMM_BOUND.items()
        },
        "per_core_shape": list(PER_CORE),
        "weak_scaling_cores": [n for n, _ in _weak_scaling_points()],
        "gate_speedup_x": GATE_SPEEDUP,
        "gate_efficiency": GATE_EFFICIENCY,
        "clock": "modeled TPU seconds (two-tier link model; real lockstep "
        "runs for the comm-bound gate, op-stream extrapolation for weak "
        "scaling)",
    }
    return metrics, meta


def main() -> None:
    import sys

    pairs = verify_bit_identity()
    print(
        f"bit-identity OK: {pairs} (updater, dtype, faulted) triples match "
        "exactly across schedules"
    )

    comm = measure_comm_bound()
    print(
        f"comm-bound {COMM_BOUND['shape']} on {COMM_BOUND['grid']} cores, "
        f"pods {COMM_BOUND['pod_grid']}: "
        f"blocking {comm['blocking']['step_seconds'] * 1e6:.1f} us, "
        f"overlap {comm['overlap']['step_seconds'] * 1e6:.1f} us "
        f"-> {comm['speedup']:.2f}x"
    )
    if comm["speedup"] < GATE_SPEEDUP:
        sys.exit(
            f"FAIL: overlapped schedule speedup {comm['speedup']:.2f}x is "
            f"below the {GATE_SPEEDUP}x gate at the comm-bound size"
        )

    scaling = measure_weak_scaling()
    print(f"weak scaling, per-core {PER_CORE} bfloat16 compact:")
    print(
        f"{'cores':>6} {'overlap [ms]':>13} {'blocking [ms]':>14} "
        f"{'eff(ovl)':>9} {'eff(blk)':>9} {'multi-pod':>10}"
    )
    for n_cores, row in scaling.items():
        print(
            f"{n_cores:>6} {row['overlap_step_seconds'] * 1e3:>13.3f} "
            f"{row['blocking_step_seconds'] * 1e3:>14.3f} "
            f"{row['overlap_efficiency']:>9.3f} "
            f"{row['blocking_efficiency']:>9.3f} "
            f"{'yes' if row['multi_pod'] else 'no':>10}"
        )
    eff = scaling[2048]["overlap_efficiency"]
    if eff < GATE_EFFICIENCY:
        sys.exit(
            f"FAIL: weak-scaling efficiency {eff:.3f} at 2048 modeled cores "
            f"is below the {GATE_EFFICIENCY} gate"
        )
    print(
        f"gate OK: {comm['speedup']:.2f}x >= {GATE_SPEEDUP}x comm-bound, "
        f"efficiency {eff:.3f} >= {GATE_EFFICIENCY} at 2048 cores"
    )


if __name__ == "__main__":
    main()
