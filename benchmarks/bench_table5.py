"""Table 5: roofline placement.

Measured: the raw numpy band-matmul kernel (the op the MXU model rates).
Modeled: scale-independence of the roofline fractions and the
memory-bound placement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import kernel_K_hat
from repro.harness import table5
from repro.harness.perf import model_pod_step
from repro.tpu.cost_model import TPU_V3


def test_host_band_matmul(benchmark):
    benchmark.group = "table5-band-matmul"
    rng = np.random.default_rng(0)
    batch = rng.standard_normal((4, 2, 128, 128), dtype=np.float32)
    k_hat = kernel_K_hat(128)
    benchmark(lambda: batch @ k_hat)


def test_modeled_fractions_are_scale_independent():
    fractions = []
    for n, _, _ in [(r[0], 0, 0) for r in table5.PAPER_ROWS]:
        model = model_pod_step((896 * 128, 448 * 128), n * n * 2)
        fractions.append(
            TPU_V3.roofline_fraction(
                model.achieved_flops_rate, model.arithmetic_intensity
            )
        )
    assert max(fractions) - min(fractions) < 0.01


def test_operating_point_is_memory_bound():
    model = model_pod_step((896 * 128, 448 * 128), 2)
    ridge = TPU_V3.mxu.peak_flops / TPU_V3.hbm.bandwidth
    assert model.arithmetic_intensity < ridge
    assert TPU_V3.peak_fraction(model.achieved_flops_rate) < 0.2


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: roofline placement (modeled)."""
    model = model_pod_step((896 * 128, 448 * 128), 2)
    return (
        {
            "modeled_roofline_fraction": TPU_V3.roofline_fraction(
                model.achieved_flops_rate, model.arithmetic_intensity
            ),
            "modeled_peak_fraction": TPU_V3.peak_fraction(
                model.achieved_flops_rate
            ),
            "modeled_arithmetic_intensity": model.arithmetic_intensity,
        },
        {"per_core_shape": [896 * 128, 448 * 128], "n_cores": 2},
    )
