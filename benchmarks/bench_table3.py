"""Table 3: per-category time breakdown.

Measured: cost of one fully-accounted sweep (TPUBackend charging) vs the
bare numpy sweep — the overhead of the profiling substrate itself.
Modeled: breakdown percentages against the paper's rows.
"""

from __future__ import annotations

import pytest

from repro.backend.tpu_backend import TPUBackend
from repro.core.compact import CompactUpdater
from repro.core.lattice import random_lattice
from repro.harness import table3
from repro.harness.perf import model_pod_step
from repro.rng import PhiloxStream
from repro.tpu.tensorcore import TensorCore

from .conftest import BETA_C, make_compact_runner


def test_host_sweep_with_accounting(benchmark):
    benchmark.group = "table3-accounting-overhead"
    updater = CompactUpdater(
        BETA_C, TPUBackend(TensorCore(core_id=0), "float32"), block_shape=(128, 128)
    )
    state = updater.to_state(random_lattice((512, 512), PhiloxStream(0, 7)))
    stream = PhiloxStream(1, 7)
    holder = {"state": state}

    def run():
        holder["state"] = updater.sweep(holder["state"], stream)

    benchmark(run)


def test_host_sweep_without_accounting(benchmark):
    benchmark.group = "table3-accounting-overhead"
    benchmark(make_compact_runner(512))


def test_modeled_breakdown_tracks_paper():
    for n, p_mxu, p_vpu, p_fmt, p_cp in table3.PAPER_ROWS:
        b = model_pod_step((896 * 128, 448 * 128), n * n * 2).breakdown()
        assert 100 * b["mxu"] == pytest.approx(p_mxu, abs=1.5)
        assert 100 * b["vpu"] == pytest.approx(p_vpu, abs=1.5)
        assert 100 * b["formatting"] == pytest.approx(p_fmt, abs=1.5)
        assert 100 * b["communication"] == pytest.approx(p_cp, abs=0.15)


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: the 512-core category split (modeled)."""
    breakdown = model_pod_step((896 * 128, 448 * 128), 512).breakdown()
    return (
        {f"modeled_{cat}_pct_512c": 100.0 * frac for cat, frac in breakdown.items()},
        {"per_core_shape": [896 * 128, 448 * 128], "n_cores": 512},
    )
