"""Shared helpers for the benchmark suite.

Every ``bench_table*.py`` / ``bench_figure*.py`` module pairs

* **measured** host-side benchmarks of the real kernels (pytest-benchmark
  timings of actual numpy sweeps at laptop scale), with
* **modeled** paper-scale reproductions from the calibrated TPU cost
  model, asserted against the paper's published rows.

Run ``pytest benchmarks/ --benchmark-only`` for timings; the shape checks
run in either mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.core.compact import CompactUpdater
from repro.core.lattice import random_lattice
from repro.rng import PhiloxStream

#: Inverse critical temperature — the hardest (most correlated) regime.
BETA_C = 0.4406868


def make_compact_runner(side: int, nn_method: str = "matmul", dtype: str = "float32"):
    """A zero-argument callable running one compact sweep on a side^2 lattice."""
    updater = CompactUpdater(
        BETA_C, NumpyBackend(dtype), block_shape=(128, 128), nn_method=nn_method
    )
    state = updater.to_state(random_lattice((side, side), PhiloxStream(0, 7)))
    stream = PhiloxStream(1, 7)
    holder = {"state": state}

    def run():
        holder["state"] = updater.sweep(holder["state"], stream)

    return run


def flips_per_ns(side: int, mean_seconds: float) -> float:
    """Host throughput of one whole-lattice sweep."""
    return side * side / (mean_seconds * 1e9)
