"""Batched ensemble scan vs the serial loop-of-chains baseline.

The Fig. 4 workflow advances one independent chain per temperature;
before the batched :class:`~repro.core.ensemble.EnsembleSimulation` those
chains ran as a serial Python loop of single-lattice sweeps.  Batching
folds the per-sweep Python and numpy dispatch overhead of B chains into
one array op, which is where the win comes from at small-to-medium
lattice sizes (at host scale the chains are dispatch-bound, not
flop-bound) — the same replica-batching lever the GPU Ising literature
pulls (Romero et al.; Bisson et al.).

Measured: wall clock of a 16-temperature scan both ways, plus a
correctness-preserving speedup assertion (the per-chain bit-identity is
covered by ``tests/test_ensemble.py``).  Run as a script for a quick
table:

    PYTHONPATH=src python benchmarks/bench_ensemble.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.ensemble import EnsembleSimulation
from repro.core.simulation import IsingSimulation
from repro.observables.onsager import T_CRITICAL

N_TEMPS = 16
N_SWEEPS = 50


def scan_temperatures(n_temps: int = N_TEMPS) -> np.ndarray:
    """The Fig. 4-style grid spanning the transition."""
    return np.linspace(0.7, 1.5, n_temps) * T_CRITICAL


def run_serial_scan(side: int, temps: np.ndarray, n_sweeps: int, seed: int = 0) -> None:
    """The historical baseline: one IsingSimulation per temperature."""
    for idx, t in enumerate(temps):
        sim = IsingSimulation(
            side,
            float(t),
            seed=seed,
            stream_id=idx,
            initial="hot" if t >= 2.0 else "cold",
        )
        sim.run(n_sweeps)


def run_batched_scan(side: int, temps: np.ndarray, n_sweeps: int, seed: int = 0) -> None:
    """All temperatures advanced together as one batched ensemble."""
    ensemble = EnsembleSimulation(
        side,
        temps,
        seed=seed,
        initial=["hot" if t >= 2.0 else "cold" for t in temps],
    )
    ensemble.run(n_sweeps)


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure(side: int, n_temps: int = N_TEMPS, n_sweeps: int = N_SWEEPS) -> tuple[float, float]:
    """(serial_seconds, batched_seconds) for one scan, after warm-up."""
    temps = scan_temperatures(n_temps)
    run_serial_scan(side, temps, 2)
    run_batched_scan(side, temps, 2)
    t_serial = _time(lambda: run_serial_scan(side, temps, n_sweeps))
    t_batched = _time(lambda: run_batched_scan(side, temps, n_sweeps))
    return t_serial, t_batched


def test_serial_scan_sweeps(benchmark):
    benchmark.group = "ensemble-16T-scan"
    temps = scan_temperatures()
    benchmark(lambda: run_serial_scan(16, temps, 10))


def test_batched_scan_sweeps(benchmark):
    benchmark.group = "ensemble-16T-scan"
    temps = scan_temperatures()
    benchmark(lambda: run_batched_scan(16, temps, 10))


def test_batched_scan_beats_serial_loop():
    """Acceptance gate: the batched 16-temperature scan must beat the
    serial loop on the numpy backend.  The measured margin is ~6-13x on
    host hardware; asserting > 1.5x keeps the gate robust to noisy CI
    machines while still catching a regression to serial-equivalent
    dispatch."""
    t_serial, t_batched = measure(side=16)
    assert t_batched < t_serial / 1.5, (
        f"batched scan ({t_batched:.3f}s) should clearly beat the serial "
        f"loop ({t_serial:.3f}s)"
    )


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: measured serial-vs-batched scan (quick)."""
    t_serial, t_batched = measure(side=16)
    return (
        {
            "measured_serial_seconds": t_serial,
            "measured_batched_seconds": t_batched,
            "measured_speedup_x": t_serial / t_batched,
        },
        {"side": 16, "n_temps": N_TEMPS, "n_sweeps": N_SWEEPS, "backend": "numpy"},
    )


def main(argv: list[str] | None = None) -> None:
    import sys

    raw = argv if argv is not None else sys.argv[1:]
    try:
        sides = [int(s) for s in raw] or [16, 32, 64]
    except ValueError:
        sys.exit(f"usage: bench_ensemble.py [side ...] — sides must be integers, got {raw}")
    print(f"{N_TEMPS}-temperature scan, {N_SWEEPS} sweeps/chain (numpy backend)")
    print(f"{'side':>6} {'serial [s]':>12} {'batched [s]':>12} {'speedup':>9}")
    for side in sides:
        t_serial, t_batched = measure(side)
        print(
            f"{side:>6} {t_serial:>12.3f} {t_batched:>12.3f} "
            f"{t_serial / t_batched:>8.1f}x"
        )


if __name__ == "__main__":
    main()
