"""Figure 4: correctness MCMC (m and U4 vs T/Tc, f32 vs bf16).

Measured: the cost of one temperature point's sampling loop.  Shape
checks: the crossing of the Binder curves near Tc and the f32/bf16
agreement, at quick-run scale.

The emitted artifact additionally carries a Figure-4-style *weak
scaling* section: modeled step times and efficiencies from 16 to 4096
cores at the paper-scale per-core lattice, on concrete topologies
including multi-pod :class:`~repro.mesh.topology.HierarchicalTorus`
points priced by the two-tier link model, blocking vs split-phase
overlap schedules (see ``docs/multipod.md``).
"""

from __future__ import annotations

import pytest

from repro.core.simulation import IsingSimulation
from repro.harness.figure4 import run as run_figure4
from repro.observables.onsager import T_CRITICAL


def test_host_sampling_loop(benchmark):
    benchmark.group = "figure4-sampling"

    def sample_once():
        sim = IsingSimulation(32, T_CRITICAL, seed=3)
        return sim.sample(n_samples=50, burn_in=20)

    benchmark(sample_once)


@pytest.fixture(scope="module")
def figure4_result():
    return run_figure4(
        sizes=(8, 16),
        t_over_tc=(0.7, 0.9, 1.0, 1.1, 1.4),
        n_samples=500,
        burn_in=200,
        seed=9,
    )


def test_binder_crossing_near_tc(figure4_result):
    assert "crossing" in figure4_result.notes
    # The note records the relative deviation from Tc; at this scale the
    # crossing should land within ~10% of the exact value.
    assert "off by" in figure4_result.notes


def test_magnetization_orders_below_tc(figure4_result):
    rows = [r for r in figure4_result.rows if r[0] == 16 and r[1] == "float32"]
    by_t = {r[2]: r[3] for r in rows}
    assert by_t[0.7] > 0.85
    assert by_t[1.4] < 0.55


def test_bf16_curves_match_f32(figure4_result):
    f32 = {(r[0], r[2]): r[6] for r in figure4_result.rows if r[1] == "float32"}
    bf16 = {(r[0], r[2]): r[6] for r in figure4_result.rows if r[1] == "bfloat16"}
    deltas = [abs(f32[k] - bf16[k]) for k in f32]
    assert sum(deltas) / len(deltas) < 0.12


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: measured host sampling cost (quick) plus
    the modeled 16 -> 4096-core weak-scaling curve with multi-pod points.
    """
    from time import perf_counter

    from benchmarks.bench_multipod import (
        PER_CORE,
        measure_weak_scaling,
    )

    def sample_once():
        sim = IsingSimulation(32, T_CRITICAL, seed=3)
        return sim.sample(n_samples=50, burn_in=20)

    sample_once()  # warm-up
    start = perf_counter()
    sample_once()
    wall = perf_counter() - start
    metrics = {
        "measured_sample_loop_seconds": wall,
        "measured_sweeps_per_second": 70 / wall,
    }
    scaling = measure_weak_scaling()
    for n_cores, row in scaling.items():
        metrics[f"modeled_weak_{n_cores}_overlap_step_seconds"] = row[
            "overlap_step_seconds"
        ]
        metrics[f"modeled_weak_{n_cores}_blocking_step_seconds"] = row[
            "blocking_step_seconds"
        ]
        metrics[f"modeled_weak_{n_cores}_overlap_efficiency"] = row[
            "overlap_efficiency"
        ]
        metrics[f"modeled_weak_{n_cores}_multi_pod"] = float(row["multi_pod"])
    meta = {
        "side": 32,
        "n_samples": 50,
        "burn_in": 20,
        "updater": "compact",
        "weak_scaling": {
            "per_core_shape": list(PER_CORE),
            "cores": sorted(scaling),
            "multi_pod_cores": sorted(
                n for n, row in scaling.items() if row["multi_pod"]
            ),
            "dtype": "bfloat16",
            "clock": "modeled TPU seconds (two-tier link model)",
        },
    }
    return metrics, meta
