"""Table 1: single-core throughput and energy vs lattice size.

Measured: host sweeps of the compact updater across lattice sizes (the
real-machine analogue of the paper's size ramp).  Modeled: the calibrated
TPU rows asserted against the paper's Table 1 within 20%.
"""

from __future__ import annotations

import pytest

from repro.harness import table1
from repro.harness.perf import model_single_core_step

from .conftest import make_compact_runner


@pytest.mark.parametrize("side", [256, 512, 1024])
def test_host_compact_sweep(benchmark, side):
    benchmark.group = "table1-host-sweep"
    benchmark(make_compact_runner(side))


def test_modeled_rows_track_paper():
    result = table1.run()
    rendered = result.render()
    assert "flips/ns" in rendered
    for k, paper_flips, paper_energy in table1.PAPER_ROWS:
        model = model_single_core_step((k * 128, k * 128))
        assert model.flips_per_ns == pytest.approx(paper_flips, rel=0.20)
        assert model.energy_nj_per_flip == pytest.approx(paper_energy, rel=0.20)


def test_throughput_rises_with_size_like_the_paper():
    small = model_single_core_step((20 * 128, 20 * 128)).flips_per_ns
    large = model_single_core_step((640 * 128, 640 * 128)).flips_per_ns
    assert large / small > 1.25  # paper: 12.88 / 8.19 ~ 1.57


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: the Table 1 ramp endpoints (modeled)."""
    small = model_single_core_step((20 * 128, 20 * 128))
    large = model_single_core_step((640 * 128, 640 * 128))
    return (
        {
            "modeled_small_flips_per_ns": small.flips_per_ns,
            "modeled_large_flips_per_ns": large.flips_per_ns,
            "modeled_large_energy_nj_per_flip": large.energy_nj_per_flip,
            "modeled_ramp_ratio": large.flips_per_ns / small.flips_per_ns,
        },
        {"lattices": ["(20x128)^2", "(640x128)^2"], "dtype": "bfloat16"},
    )
