"""Tempering ladder overhead and batching gates.

Two properties make :class:`~repro.core.tempering.TemperingEnsemble`
cheap enough to leave on:

1. **Swap bookkeeping is nearly free.**  A swap round costs one
   vectorized energy evaluation, a handful of host-side scalar
   accept/reject tests, and — only for chains whose temperature
   actually moved — a ten-entry acceptance-table rebuild
   (``retemper`` keeps the sweep workspace).  Amortized over a
   realistic ``swap_interval`` this must stay **under 5%** of sweep
   time on a 16-beta ladder.
2. **The ladder rides the batched ensemble.**  All
   ``n_replicas x n_temperatures`` chains advance as one rank-3
   batched state, so a ladder must beat the serial loop-of-chains
   baseline by **>= 3x** — the same replica-batching lever as
   ``bench_ensemble.py``, now applied across ladder slots.

Run as a script for a quick table:

    PYTHONPATH=src python benchmarks/bench_tempering.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.simulation import IsingSimulation
from repro.core.tempering import TemperingEnsemble

N_TEMPS = 16
N_SWEEPS = 80
#: Standard production cadence — tempering literature swaps every
#: ~10-100 sweeps; the amortized bookkeeping budget is gated at this
#: cadence on a production-sized lattice.  (Measured: a swap round
#: costs ~2ms against a ~5ms 16-chain 128^2 sweep — one batched energy
#: einsum, one Philox draw, a vectorized accept test and, on accepted
#: rounds, a ten-entry-per-chain table rebuild.)
SWAP_INTERVAL = 20
#: Overhead gate runs sweep-dominated (the swap round's fixed costs —
#: one batched Philox draw, the host accept loop — amortize away); the
#: batching gate runs dispatch-bound, where serial-vs-batched is what's
#: probed.
OVERHEAD_SIDE = 128
BATCH_SIDE = 16

#: Tight ladder bracketing beta_c — adjacent-slot energy distributions
#: overlap, so swap rounds exercise the accepted-swap (retemper) path.
BETA_LO, BETA_HI = 0.40, 0.46


def ladder_betas(n_temps: int = N_TEMPS) -> np.ndarray:
    return np.linspace(BETA_LO, BETA_HI, n_temps)


def run_ladder(
    side: int,
    n_sweeps: int,
    swaps_enabled: bool,
    swap_interval: int = SWAP_INTERVAL,
    n_temps: int = N_TEMPS,
) -> TemperingEnsemble:
    """One replica of an n_temps ladder, with or without swap rounds."""
    sim = TemperingEnsemble(
        side,
        ladder_betas(n_temps),
        n_replicas=1,
        swap_interval=swap_interval,
        seed=0,
        swaps_enabled=swaps_enabled,
    )
    sim.run(n_sweeps)
    return sim


def run_serial_replicas(side: int, n_sweeps: int, n_temps: int = N_TEMPS) -> None:
    """The serial baseline: one single-chain simulation per ladder slot."""
    for idx, beta in enumerate(ladder_betas(n_temps)):
        sim = IsingSimulation(side, 1.0 / float(beta), seed=0, stream_id=idx)
        sim.run(n_sweeps)


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_overhead(
    side: int = OVERHEAD_SIDE, n_sweeps: int = N_SWEEPS, repeats: int = 3
) -> tuple[float, float]:
    """(sweep seconds, swap-bookkeeping seconds) for one swaps-on ladder.

    Swap time comes straight from the per-round ``swap_log`` spans the
    ladder records (the same spans the "tempering swaps" Chrome track
    renders), sweep time is the run's remaining wall clock.  Both sides
    of the ratio come from the *same* run, so container noise hits them
    together instead of biasing a two-run subtraction; of ``repeats``
    runs the one with the lowest swap/sweep ratio wins (contention only
    ever inflates the ratio).
    """
    run_ladder(side, 2, swaps_enabled=True)
    best: "tuple[float, float] | None" = None
    for _ in range(repeats):
        start = time.perf_counter()
        sim = run_ladder(side, n_sweeps, swaps_enabled=True)
        total = time.perf_counter() - start
        t_swap = sum(span["duration"] for span in sim.swap_log)
        t_sweep = total - t_swap
        if best is None or t_swap / t_sweep < best[1] / best[0]:
            best = (t_sweep, t_swap)
    return best


def measure_batching(
    side: int = BATCH_SIDE, n_sweeps: int = N_SWEEPS
) -> tuple[float, float]:
    """(serial seconds, batched-ladder seconds), after warm-up."""
    run_serial_replicas(side, 2)
    run_ladder(side, 2, swaps_enabled=True)
    t_serial = _time(lambda: run_serial_replicas(side, n_sweeps))
    t_batched = _time(lambda: run_ladder(side, n_sweeps, swaps_enabled=True))
    return t_serial, t_batched


def test_swap_rounds_fire_and_accept():
    """The overhead measurement must actually exercise swap rounds —
    a ladder this tight that never proposes (or never accepts) a swap
    would gate on a no-op."""
    sim = run_ladder(OVERHEAD_SIDE, N_SWEEPS, swaps_enabled=True)
    assert sim.swap_rounds == N_SWEEPS // SWAP_INTERVAL
    assert sim.swap_accepts > 0, "tight ladder should accept some swaps"


def gate_swap_overhead(t_sweep: float, t_swap: float) -> None:
    """Gate: swap bookkeeping < 5% of sweep time on the 16-beta
    ladder.  ``retemper`` preserving the sweep workspace is what keeps
    accepted swaps from forcing full updater rebuilds."""
    overhead = t_swap / t_sweep
    assert overhead < 0.05, (
        f"swap bookkeeping overhead {overhead:.1%} (sweeps {t_sweep:.3f}s, "
        f"swap rounds {t_swap:.3f}s) must stay under 5%"
    )


def gate_batched_beats_serial(t_serial: float, t_batched: float) -> None:
    """Gate: the batched ladder >= 3x over the serial loop-of-chains at
    host scale (measured ~6-13x dispatch-bound; 3x keeps the gate
    robust to noisy CI machines)."""
    assert t_batched < t_serial / 3.0, (
        f"batched ladder ({t_batched:.3f}s) should beat the serial "
        f"replica loop ({t_serial:.3f}s) by >= 3x"
    )


def test_swap_overhead_under_5pct():
    gate_swap_overhead(*measure_overhead())


def test_batched_ladder_beats_serial_replicas():
    gate_batched_beats_serial(*measure_batching())


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary for ``benchmarks.emit``."""
    t_sweep, t_swap = measure_overhead()
    t_serial, t_batched = measure_batching()
    return (
        {
            "measured_sweep_seconds": t_sweep,
            "measured_swap_seconds": t_swap,
            "measured_swap_overhead_fraction": t_swap / t_sweep,
            "measured_serial_seconds": t_serial,
            "measured_batched_seconds": t_batched,
            "measured_batching_speedup_x": t_serial / t_batched,
        },
        {
            "overhead_side": OVERHEAD_SIDE,
            "batch_side": BATCH_SIDE,
            "n_temps": N_TEMPS,
            "n_sweeps": N_SWEEPS,
            "swap_interval": SWAP_INTERVAL,
            "beta_range": [BETA_LO, BETA_HI],
            "backend": "numpy",
        },
    )


def main(argv: list[str] | None = None) -> None:
    import sys

    raw = argv if argv is not None else sys.argv[1:]
    try:
        extra_sides = [int(s) for s in raw]
    except ValueError:
        sys.exit(
            f"usage: bench_tempering.py [side ...] — sides must be integers, got {raw}"
        )
    print(
        f"{N_TEMPS}-beta ladder [{BETA_LO}, {BETA_HI}], {N_SWEEPS} sweeps, "
        f"swap every {SWAP_INTERVAL} (numpy backend)"
    )
    header = (
        f"{'side':>6} {'sweeps [s]':>11} {'swaps [s]':>10} {'overhead':>9} "
        f"{'serial [s]':>11} {'batched [s]':>12} {'speedup':>8}"
    )
    print(header)
    for side in extra_sides:
        t_sweep, t_swap = measure_overhead(side)
        t_serial, t_batched = measure_batching(side)
        print(
            f"{side:>6} {t_sweep:>11.3f} {t_swap:>10.3f} "
            f"{t_swap / t_sweep:>8.1%} {t_serial:>11.3f} "
            f"{t_batched:>12.3f} {t_serial / t_batched:>7.1f}x"
        )
    # One measurement at each gate's own geometry, shared by the table
    # row and the gate — a second independent measurement would only
    # add another chance for container noise to fire a false alarm.
    t_sweep, t_swap = measure_overhead()
    t_serial, t_batched = measure_batching()
    print(
        f"{'gate':>6} {t_sweep:>11.3f} {t_swap:>10.3f} "
        f"{t_swap / t_sweep:>8.1%} {t_serial:>11.3f} "
        f"{t_batched:>12.3f} {t_serial / t_batched:>7.1f}x"
    )
    failures = 0
    for gate, gate_args in (
        (test_swap_rounds_fire_and_accept, ()),
        (gate_swap_overhead, (t_sweep, t_swap)),
        (gate_batched_beats_serial, (t_serial, t_batched)),
    ):
        try:
            gate(*gate_args)
        except AssertionError as exc:
            failures += 1
            print(f"GATE FAIL {gate.__name__}: {exc}")
    if failures:
        sys.exit(failures)
    print("gates: OK (swap overhead < 5%, batched >= 3x serial)")


if __name__ == "__main__":
    main()
