"""Figure 7 (appendix): conv-implementation correctness MCMC.

Measured: host sampling cost with the conv updater.  Shape check: the
conv chain shows the same ordered/disordered physics as Figure 4.
"""

from __future__ import annotations

import pytest

from repro.core.simulation import IsingSimulation
from repro.harness.figure7 import run as run_figure7
from repro.observables.onsager import T_CRITICAL


def test_host_conv_sampling_loop(benchmark):
    benchmark.group = "figure7-sampling"

    def sample_once():
        sim = IsingSimulation(32, T_CRITICAL, updater="conv", seed=3)
        return sim.sample(n_samples=50, burn_in=20)

    benchmark(sample_once)


def test_conv_physics_shape():
    result = run_figure7(
        sizes=(8, 16),
        t_over_tc=(0.7, 1.0, 1.4),
        n_samples=400,
        burn_in=150,
        dtypes=("float32",),
        seed=10,
    )
    rows16 = {r[2]: r[3] for r in result.rows if r[0] == 16}
    assert rows16[0.7] > 0.85
    assert rows16[1.4] < 0.55


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: measured conv sampling cost (quick)."""
    from time import perf_counter

    def sample_once():
        sim = IsingSimulation(32, T_CRITICAL, updater="conv", seed=3)
        return sim.sample(n_samples=50, burn_in=20)

    sample_once()  # warm-up
    start = perf_counter()
    sample_once()
    wall = perf_counter() - start
    return (
        {
            "measured_sample_loop_seconds": wall,
            "measured_sweeps_per_second": 70 / wall,
        },
        {"side": 32, "n_samples": 50, "burn_in": 20, "updater": "conv"},
    )
