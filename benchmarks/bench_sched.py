"""Scheduler throughput vs the serial submit loop, on the cost-model clock.

The acceptance gate for the :mod:`repro.sched` service: a mixed-priority
mix of 64 jobs (three lattice sizes x two dtypes, duplicates included)
must finish at least **3x faster** through the scheduler than the same
submissions run as a serial loop of solo ``repro.simulate()`` runs on
one simulated core.  Both sides are measured on the *modeled* cost-model
clock — the serial baseline is the sum of each solo run's modeled
seconds, the scheduler side is the device-pool makespan — so the gate
judges scheduling quality (coalesced batching, multi-device packing,
cache dedup), not host timing noise.

Also gated here: at least one coalesced batch reaches 8 chains, every
duplicate submission is served from the content-addressed cache, and the
scheduling layer with telemetry *disabled* pays < 2% over driving the
same batched ensembles by hand (same interleaved min-of-attempts
protocol as ``bench_telemetry.py``).  Per-job bit-identity lives in
``tests/test_sched_scheduler.py``.
"""

from __future__ import annotations

from time import perf_counter

from repro.api import SimulationConfig
from repro.backend.tpu_backend import TPUBackend
from repro.core.ensemble import EnsembleSimulation
from repro.core.simulation import IsingSimulation
from repro.sched import Scheduler
from repro.telemetry import RunTelemetry
from repro.tpu.dtypes import resolve_dtype
from repro.tpu.profiler import Profiler
from repro.tpu.tensorcore import TensorCore

_SHAPES = (16, 24, 32)
_DTYPES = ("float32", "bfloat16")
_N_JOBS = 64
_N_UNIQUE = 48
_SWEEPS = 24
_N_DEVICES = 2
_MAX_BATCH = 16


def build_jobs() -> list[tuple[SimulationConfig, int, int]]:
    """The deterministic 64-job mix: (config, sweeps, priority) rows.

    48 unique jobs cycle through the 3 shapes x 2 dtypes grid with
    varying temperatures/seeds and priorities 0/1/5; the last 16 rows
    repeat earlier rows verbatim (the duplicate traffic a multi-tenant
    service sees).
    """
    rows = []
    for i in range(_N_UNIQUE):
        shape = _SHAPES[i % len(_SHAPES)]
        dtype = _DTYPES[(i // len(_SHAPES)) % len(_DTYPES)]
        config = SimulationConfig(
            shape=shape,
            temperature=1.6 + 0.05 * (i % 12),
            dtype=dtype,
            seed=100 + i,
            backend="tpu",
        )
        rows.append((config, _SWEEPS, (0, 1, 5)[i % 3]))
    for i in range(_N_JOBS - _N_UNIQUE):
        rows.append(rows[i * 3])
    return rows


def run_serial(jobs) -> float:
    """The baseline: each submission as a solo run on one fresh core.

    Returns the summed modeled seconds — what a naive one-job-at-a-time
    service would book on a single device, duplicates recomputed.
    """
    total = 0.0
    for index, (config, sweeps, _) in enumerate(jobs):
        core = TensorCore(core_id=index, profiler=Profiler())
        sim = IsingSimulation(
            config.shape,
            config.resolved_temperature,
            updater=config.updater,
            backend=TPUBackend(core, resolve_dtype(config.dtype)),
            seed=config.seed,
            initial=config.initial,
            field=config.field,
            fused=config.fused,
        )
        sim.run(sweeps)
        total += core.profiler.total_seconds
    return total


def run_scheduled(jobs, telemetry: RunTelemetry | None = None) -> tuple[Scheduler, float]:
    """All submissions through one scheduler; returns (scheduler, makespan)."""
    scheduler = Scheduler(
        n_devices=_N_DEVICES, max_batch=_MAX_BATCH, quantum=_SWEEPS,
        telemetry=telemetry,
    )
    for config, sweeps, priority in jobs:
        scheduler.submit(config, sweeps, priority=priority)
    scheduler.drain()
    return scheduler, scheduler.pool.makespan()


def measure() -> dict:
    """The modeled-clock comparison plus the scheduler's own stats."""
    jobs = build_jobs()
    serial_seconds = run_serial(jobs)
    scheduler, makespan = run_scheduled(jobs)
    stats = scheduler.stats()
    return {
        "n_jobs": len(jobs),
        "serial_modeled_seconds": serial_seconds,
        "sched_makespan_seconds": makespan,
        "modeled_speedup_x": serial_seconds / makespan,
        "max_batch_occupancy": stats["batches"]["max_occupancy"],
        "batches_started": stats["batches"]["started"],
        "cache_hits": stats["cache"]["hits"],
        "jobs_completed": stats["jobs"]["completed"],
    }


def test_scheduler_3x_on_modeled_clock():
    """Acceptance gate: >= 3x over the serial loop on the modeled clock."""
    numbers = measure()
    assert numbers["jobs_completed"] == _N_JOBS
    assert numbers["modeled_speedup_x"] >= 3.0, (
        f"scheduler makespan {numbers['sched_makespan_seconds']:.4f}s modeled "
        f"vs serial {numbers['serial_modeled_seconds']:.4f}s is only "
        f"{numbers['modeled_speedup_x']:.2f}x (need >= 3x)"
    )


def test_coalesces_at_least_eight_chains():
    """Acceptance gate: >= 1 coalesced batch reaches 8 chains."""
    scheduler, _ = run_scheduled(build_jobs())
    assert scheduler.stats()["batches"]["max_occupancy"] >= 8


def test_every_duplicate_served_from_cache():
    """Acceptance gate: all 16 duplicate submissions come from the cache."""
    jobs = build_jobs()
    scheduler = Scheduler(
        n_devices=_N_DEVICES, max_batch=_MAX_BATCH, quantum=_SWEEPS
    )
    handles = [
        scheduler.submit(config, sweeps, priority=priority)
        for config, sweeps, priority in jobs
    ]
    scheduler.drain()
    duplicates = handles[_N_UNIQUE:]
    assert len(duplicates) == _N_JOBS - _N_UNIQUE
    assert all(job.from_cache for job in duplicates), (
        f"{sum(not j.from_cache for j in duplicates)} duplicate(s) were "
        "recomputed instead of served from the cache"
    )
    assert all(job.state == "done" for job in handles)


# -- telemetry-off overhead ---------------------------------------------------

_OVH_SIDE = 128
_OVH_CHAINS = 8
_OVH_SWEEPS = 48
_ATTEMPTS = 5


def _overhead_configs() -> list[SimulationConfig]:
    return [
        SimulationConfig(shape=_OVH_SIDE, temperature=1.8 + 0.05 * i, seed=i)
        for i in range(_OVH_CHAINS)
    ]


def _time_bare_ensemble() -> float:
    """The floor: the same 8 chains advanced as one hand-built ensemble."""
    configs = _overhead_configs()
    ensemble = EnsembleSimulation(
        _OVH_SIDE,
        [c.resolved_temperature for c in configs],
        seed=0,
        stream_ids=list(range(_OVH_CHAINS)),
    )
    start = perf_counter()
    ensemble.run(_OVH_SWEEPS)
    return perf_counter() - start


def _time_scheduled(telemetry: RunTelemetry | None) -> float:
    scheduler = Scheduler(
        n_devices=1, max_batch=_OVH_CHAINS, quantum=_OVH_SWEEPS,
        telemetry=telemetry,
    )
    configs = _overhead_configs()
    start = perf_counter()
    for config in configs:
        scheduler.submit(config, _OVH_SWEEPS)
    scheduler.drain()
    return perf_counter() - start


def measure_overhead() -> dict[str, float]:
    """Min-of-attempts: bare ensemble vs scheduler with telemetry off/on.

    Attempts are interleaved so slow machine phases hit all variants
    alike.  The workload is one quantum-sized batch, so the comparison
    isolates the scheduling layer itself, not batching differences.
    """
    _time_bare_ensemble()  # warm-up
    bare = disabled = enabled = float("inf")
    for _ in range(_ATTEMPTS):
        bare = min(bare, _time_bare_ensemble())
        disabled = min(disabled, _time_scheduled(None))
        enabled = min(enabled, _time_scheduled(RunTelemetry()))
    return {
        "bare_seconds": bare,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_overhead_pct": 100.0 * (disabled / bare - 1.0),
        "enabled_overhead_pct": 100.0 * (enabled / bare - 1.0),
    }


def test_disabled_telemetry_under_two_percent():
    """Acceptance gate: the scheduler with telemetry off pays < 2% over
    driving the same batch by hand.

    The off path is plain counters and ``is None`` branches, so an
    over-budget reading can only be timing noise — re-measure a couple
    of times and judge the best reading.
    """
    best = None
    for _ in range(3):
        timings = measure_overhead()
        if best is None or (
            timings["disabled_overhead_pct"] < best["disabled_overhead_pct"]
        ):
            best = timings
        if best["disabled_overhead_pct"] < 2.0:
            break
    assert best["disabled_overhead_pct"] < 2.0, (
        f"telemetry-off scheduler overhead {best['disabled_overhead_pct']:.2f}% "
        f"exceeds the 2% budget (bare {best['bare_seconds']:.4f}s vs "
        f"scheduled {best['disabled_seconds']:.4f}s)"
    )


def test_sched_throughput(benchmark):
    benchmark.group = "sched-64-job-mix"
    jobs = build_jobs()
    benchmark(lambda: run_scheduled(jobs))


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: modeled speedup + telemetry-off overhead."""
    numbers = measure()
    numbers.update(measure_overhead())
    return (
        numbers,
        {
            "n_jobs": _N_JOBS,
            "n_unique": _N_UNIQUE,
            "shapes": list(_SHAPES),
            "dtypes": list(_DTYPES),
            "sweeps": _SWEEPS,
            "n_devices": _N_DEVICES,
            "max_batch": _MAX_BATCH,
        },
    )


def main() -> None:
    numbers = measure()
    print(f"{_N_JOBS}-job mix ({_N_UNIQUE} unique), {_SWEEPS} sweeps/job, "
          f"{_N_DEVICES} devices, max_batch={_MAX_BATCH}")
    print(f"serial modeled   {numbers['serial_modeled_seconds'] * 1e3:10.2f} ms")
    print(f"sched makespan   {numbers['sched_makespan_seconds'] * 1e3:10.2f} ms")
    print(f"modeled speedup  {numbers['modeled_speedup_x']:10.1f} x")
    print(f"max occupancy    {numbers['max_batch_occupancy']:10d} chains")
    print(f"cache hits       {numbers['cache_hits']:10d}")
    overhead = measure_overhead()
    print(f"telemetry-off overhead {overhead['disabled_overhead_pct']:6.2f} % "
          f"(enabled {overhead['enabled_overhead_pct']:.2f} %)")


if __name__ == "__main__":
    main()
