"""Fault-injection overhead: the hooks must be free when no plan is set.

The acceptance gate for the fault-tolerant runtime: a
:class:`~repro.core.distributed.DistributedIsing` built without a
:class:`~repro.mesh.faults.FaultPlan` must pay < 2% over the pre-hook
sweep path — the only additions on the hot path are one ``is None``
branch per sweep (the ``begin_sweep`` guard) and one per collective
(inside ``_execute_collective``).  Measured with the same interleaved
min-of-attempts protocol as ``bench_telemetry.py``, plus the
attached-but-empty-plan cost for reference and a bit-identity smoke
(the full fault matrix lives in ``tests/test_faults.py``).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.distributed import DistributedIsing
from repro.mesh.faults import FaultPlan

from .conftest import BETA_C

_SIDE = 64
_GRID = (2, 2)
_SWEEPS = 6
_ATTEMPTS = 5


def _build(fault_plan: FaultPlan | None) -> DistributedIsing:
    return DistributedIsing(
        _SIDE, 1.0 / BETA_C, core_grid=_GRID, seed=5, fault_plan=fault_plan
    )


def _time_sweeps(sim: DistributedIsing) -> float:
    start = perf_counter()
    sim.sweep(_SWEEPS)
    return perf_counter() - start


def measure_overhead() -> dict[str, float]:
    """Min-of-attempts timings: no plan vs an attached empty plan.

    Both variants are built once and re-timed over the same instances
    (construction and first-sweep allocation costs are not what the gate
    measures), and attempts are interleaved (no-plan / empty-plan per
    round) so slow machine phases hit both variants alike instead of
    biasing one.
    """
    bare = _build(None)
    hooked = _build(FaultPlan())
    _time_sweeps(bare)  # warm-up (first sweeps pay numpy allocation costs)
    _time_sweeps(hooked)
    without = with_empty = float("inf")
    for _ in range(_ATTEMPTS):
        without = min(without, _time_sweeps(bare))
        with_empty = min(with_empty, _time_sweeps(hooked))
    return {
        "no_plan_seconds": without,
        "empty_plan_seconds": with_empty,
        "empty_plan_overhead_pct": 100.0 * (with_empty / without - 1.0),
    }


def test_no_plan_hooks_under_two_percent():
    """Acceptance gate: runs without a FaultPlan pay < 2% for the hooks.

    The true overhead is a handful of ``is None`` branches (~0%), so an
    over-budget reading can only be timing noise — re-measure a couple
    of times and judge the best reading.  Note the comparison here is
    plan-free vs *empty plan attached*; the plan-free path itself is the
    pre-hook fast path (no injector consulted at all).
    """
    best = None
    for _ in range(3):
        timings = measure_overhead()
        if (
            best is None
            or timings["empty_plan_overhead_pct"] < best["empty_plan_overhead_pct"]
        ):
            best = timings
        if best["empty_plan_overhead_pct"] < 2.0:
            break
    assert best["empty_plan_overhead_pct"] < 2.0, (
        f"fault-hook overhead {best['empty_plan_overhead_pct']:.2f}% exceeds "
        f"the 2% budget (no plan {best['no_plan_seconds']:.4f}s vs empty "
        f"plan {best['empty_plan_seconds']:.4f}s)"
    )


def test_empty_plan_is_bit_identical():
    plain = _build(None)
    hooked = _build(FaultPlan())
    plain.sweep(4)
    hooked.sweep(4)
    np.testing.assert_array_equal(plain.gather_lattice(), hooked.gather_lattice())
    assert [s.state() for s in plain._streams] == [
        s.state() for s in hooked._streams
    ]


def test_sweep_no_fault_plan(benchmark):
    benchmark.group = "fault-overhead"
    sim = _build(None)
    benchmark(lambda: sim.sweep(1))


def test_sweep_empty_fault_plan(benchmark):
    benchmark.group = "fault-overhead"
    sim = _build(FaultPlan())
    benchmark(lambda: sim.sweep(1))


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: measured fault-hook overhead."""
    timings = measure_overhead()
    return (
        dict(timings),
        {
            "side": _SIDE,
            "core_grid": list(_GRID),
            "n_sweeps": _SWEEPS,
            "attempts": _ATTEMPTS,
        },
    )
