"""Telemetry overhead: instrumentation must be free when disabled.

The acceptance gate for the observability layer: a simulation built
without a :class:`~repro.telemetry.report.RunTelemetry` must pay no
measurable cost over the bare updater loop (the sweep path's only
addition is one ``is None`` branch).  Measured on the numpy backend with
a min-of-attempts protocol to shrug off CI timing noise, plus the
enabled-telemetry cost for reference and a bit-identity smoke (the full
per-updater matrix lives in ``tests/test_telemetry.py``).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.simulation import IsingSimulation
from repro.telemetry import RunTelemetry

from .conftest import BETA_C

_SIDE = 256
_SWEEPS = 8
_ATTEMPTS = 5


def _time_raw_loop() -> float:
    """Bare updater.sweep loop — the floor the wrapper is judged against."""
    sim = IsingSimulation(_SIDE, 1.0 / BETA_C, seed=5)
    updater, state, stream = sim._updater, sim._state, sim.stream
    start = perf_counter()
    for _ in range(_SWEEPS):
        state = updater.sweep(state, stream)
    return perf_counter() - start


def _time_sim(telemetry: RunTelemetry | None) -> float:
    sim = IsingSimulation(_SIDE, 1.0 / BETA_C, seed=5, telemetry=telemetry)
    start = perf_counter()
    sim.run(_SWEEPS)
    return perf_counter() - start


def measure_overhead() -> dict[str, float]:
    """Min-of-attempts timings: raw loop, disabled and enabled telemetry.

    Attempts are interleaved (raw/disabled/enabled per round) so slow
    machine phases — a noisy CI neighbour, a GC pause — hit all three
    variants alike instead of biasing one of them.
    """
    _time_raw_loop()  # warm-up (first sweep pays numpy allocation costs)
    raw = disabled = enabled = float("inf")
    for _ in range(_ATTEMPTS):
        raw = min(raw, _time_raw_loop())
        disabled = min(disabled, _time_sim(None))
        enabled = min(
            enabled, _time_sim(RunTelemetry(physics_interval=0))
        )
    return {
        "raw_seconds": raw,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_overhead_pct": 100.0 * (disabled / raw - 1.0),
        "enabled_overhead_pct": 100.0 * (enabled / raw - 1.0),
    }


def test_disabled_telemetry_under_two_percent():
    """Acceptance gate: un-instrumented runs pay < 2% over the bare loop.

    The true overhead is one attribute load and one ``is None`` branch
    per sweep (~0%), so an over-budget reading can only be timing noise
    — re-measure a couple of times and judge the best reading.
    """
    best = None
    for _ in range(3):
        timings = measure_overhead()
        if best is None or timings["disabled_overhead_pct"] < best["disabled_overhead_pct"]:
            best = timings
        if best["disabled_overhead_pct"] < 2.0:
            break
    assert best["disabled_overhead_pct"] < 2.0, (
        f"disabled-telemetry overhead {best['disabled_overhead_pct']:.2f}% "
        f"exceeds the 2% budget (raw {best['raw_seconds']:.4f}s vs "
        f"disabled {best['disabled_seconds']:.4f}s)"
    )


def test_enabled_telemetry_smoke_is_bit_identical():
    plain = IsingSimulation(64, 1.0 / BETA_C, seed=2)
    instrumented = IsingSimulation(
        64, 1.0 / BETA_C, seed=2, telemetry=RunTelemetry(physics_interval=2)
    )
    plain.run(6)
    instrumented.run(6)
    np.testing.assert_array_equal(plain.lattice, instrumented.lattice)
    assert plain.stream.counter == instrumented.stream.counter


def test_sweep_disabled_telemetry(benchmark):
    benchmark.group = "telemetry-overhead"
    sim = IsingSimulation(_SIDE, 1.0 / BETA_C, seed=5)
    benchmark(lambda: sim.run(1))


def test_sweep_enabled_telemetry(benchmark):
    benchmark.group = "telemetry-overhead"
    sim = IsingSimulation(
        _SIDE, 1.0 / BETA_C, seed=5, telemetry=RunTelemetry(physics_interval=0)
    )
    benchmark(lambda: sim.run(1))


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: measured telemetry overhead."""
    timings = measure_overhead()
    return (
        dict(timings),
        {"side": _SIDE, "n_sweeps": _SWEEPS, "attempts": _ATTEMPTS},
    )
