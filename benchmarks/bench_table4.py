"""Table 4: step time vs collective_permute time.

Measured: the runtime cost of one real collective_permute across
in-process cores.  Modeled: the paper's 3x3 grid of (step, cp) pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import table4
from repro.harness.perf import model_pod_step
from repro.mesh.collectives import collective_permute
from repro.mesh.topology import Torus2D


@pytest.mark.parametrize("n_cores", [4, 16, 64])
def test_host_collective_permute(benchmark, n_cores):
    benchmark.group = "table4-collective-permute"
    torus = Torus2D(1, n_cores)
    pairs = torus.shift_pairs("east")
    values = [np.zeros(57_344, dtype=np.float32) for _ in range(n_cores)]
    benchmark(lambda: collective_permute(values, pairs))


def test_modeled_grid_tracks_paper():
    for shape, entries in table4.PAPER_GRID.items():
        for n, (paper_step, paper_cp) in entries.items():
            model = model_pod_step(shape, n * n * 2)
            assert model.step_time * 1e3 == pytest.approx(paper_step, rel=0.55)
            assert model.seconds["communication"] * 1e3 == pytest.approx(
                paper_cp, rel=0.45
            )


def test_communication_is_latency_dominated():
    """Paper's claim: cp time grows with cores, not with bytes."""
    big = model_pod_step((896 * 128, 448 * 128), 512).seconds["communication"]
    small = model_pod_step((224 * 128, 112 * 128), 512).seconds["communication"]
    assert big / small < 2.0  # 16x the bytes, <2x the time
    few = model_pod_step((896 * 128, 448 * 128), 32).seconds["communication"]
    assert big / few > 1.5  # 16x the cores, visible growth


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: (step, collective) endpoints (modeled)."""
    metrics = {}
    for n in (4, 16):
        model = model_pod_step((896 * 128, 448 * 128), n * n * 2)
        metrics[f"modeled_step_ms_{n}x{n}x2"] = model.step_time * 1e3
        metrics[f"modeled_cp_ms_{n}x{n}x2"] = (
            model.seconds["communication"] * 1e3
        )
    return metrics, {"per_core_shape": [896 * 128, 448 * 128]}
