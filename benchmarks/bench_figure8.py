"""Figure 8: throughput vs problem size across platforms.

Measured: evaluation cost of the full comparison (the op-stream recording
plus extrapolation).  Shape checks: the cross-platform ordering the
figure conveys.
"""

from __future__ import annotations

import pytest

from repro.baselines.published import (
    ROMERO_2019_DGX2,
    TESLA_V100_THIS_PAPER,
)
from repro.harness import figure8
from repro.harness.perf import model_pod_step, model_single_core_step


def test_model_evaluation_cost(benchmark):
    benchmark.group = "figure8-model-evaluation"
    benchmark(figure8.run)


def test_platform_ordering_matches_the_paper():
    single_core = model_single_core_step((640 * 128, 640 * 128)).flips_per_ns
    pod_512 = model_pod_step((896 * 128, 448 * 128), 512).flips_per_ns
    # Single TPU core ~ single V100 (paper: "~10% gain" for TPU).
    assert single_core == pytest.approx(TESLA_V100_THIS_PAPER.flips_per_ns, rel=0.15)
    # DGX-2 sits between a core and a big pod slice.
    assert single_core < ROMERO_2019_DGX2.flips_per_ns < pod_512


def test_pods_extend_problem_size_by_orders_of_magnitude():
    single = model_single_core_step((640 * 128, 640 * 128))
    pod = model_pod_step((896 * 128, 448 * 128), 512)
    assert pod.sites / single.sites > 30


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: the cross-platform ordering (modeled)."""
    single = model_single_core_step((640 * 128, 640 * 128))
    pod = model_pod_step((896 * 128, 448 * 128), 512)
    return (
        {
            "modeled_single_core_flips_per_ns": single.flips_per_ns,
            "modeled_pod512_flips_per_ns": pod.flips_per_ns,
            "modeled_pod512_to_core_ratio": pod.flips_per_ns / single.flips_per_ns,
            "baseline_v100_flips_per_ns": TESLA_V100_THIS_PAPER.flips_per_ns,
            "baseline_dgx2_flips_per_ns": ROMERO_2019_DGX2.flips_per_ns,
        },
        {"dtype": "bfloat16"},
    )
