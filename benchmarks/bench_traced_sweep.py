"""Traced replay vs eager fused dispatch — the 2x modeled-clock gate.

The traced executor (``repro.core.traced``) records one fused sweep as a
flat op program and replays it with zero Python re-interpretation.  On
real hardware the win is pure host-side: the device executes the same
kernels either way, so what tracing removes is the per-sweep Python
dispatch that would otherwise stall the device queue.  A host-wall-clock
gate cannot see that on this runner — numpy *is* the device here, and
arithmetic dominates — so this module gates on the **modeled clock**:

- *dispatch seconds* are measured on a :class:`NumpyBackend` subclass
  whose steady-state kernels are no-ops, leaving exactly the Python
  overhead tracing targets (engine bookkeeping, argument marshalling,
  method lookups);
- *device seconds* are the cost model's per-sweep charge for a 512^2
  sweep on one simulated TensorCore (:class:`TPUBackend`);
- the modeled deployment is the multi-tenant slice the scheduler
  (``repro.sched``) exists for: one host process drives
  :data:`SLICE_CORES` independent jobs, one per core.  Device sweeps
  run in parallel across cores, but the host's dispatch serializes —
  so the host keeps at most ``device_s / dispatch_s`` cores fed, and
  modeled slice throughput is proportional to
  ``min(SLICE_CORES, device_s / dispatch_s)``.

The gate asserts traced replay buys at least ``2x`` modeled slice
throughput over eager fused dispatch for the masked_conv and conv
updaters at 512^2 (the per-updater ratios for all four are in the
payload).  Before timing anything, the module asserts replay is
**bit-identical** to the eager fused engine for all four updaters in
both dtypes on the real numpy backend; a fast trace that drifts is
worthless.

Run as a script for the CI check::

    PYTHONPATH=src python benchmarks/bench_traced_sweep.py            # 512, gated
    PYTHONPATH=src python benchmarks/bench_traced_sweep.py 128        # quick look

or emit the machine-readable snapshot::

    PYTHONPATH=src python -m benchmarks.emit traced_sweep --out-dir bench-artifacts
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend.numpy_backend import NumpyBackend
from repro.backend.tpu_backend import TPUBackend
from repro.core.simulation import IsingSimulation
from repro.core.traced import REPLAYABLE_OPS
from repro.tpu.dtypes import BFLOAT16, FLOAT32
from repro.tpu.tensorcore import TensorCore

#: Updaters measured; the gated pair leads.
UPDATERS = ("masked_conv", "conv", "compact", "checkerboard")

#: The CI assertion: replay beats eager dispatch on the modeled clock.
GATE_UPDATERS = ("masked_conv", "conv")
GATE_SPEEDUP = 2.0

#: Near-critical temperature — the regime the paper simulates.
TEMPERATURE = 2.2

#: Cores in the modeled pod slice (the paper's smallest is a v3-32);
#: one independent tenant job per core, all dispatched by one host.
SLICE_CORES = 32

#: Ops whose result buffer is not the last positional argument.
_RETURN_ARG = {
    "add_at_slice_into": 0,
    "assign_at_slice_into": 0,
    "acceptance_index_into": 2,
    "conv2d_neighbors_into": 1,
}


def _null_op(name: str):
    ret = _RETURN_ARG.get(name, -1)

    def _null(self, *args, **kwargs):
        return args[ret]

    _null.__name__ = name
    return _null


class DispatchOnlyBackend(NumpyBackend):
    """NumpyBackend with every steady-state kernel stubbed to a no-op.

    Buffer shapes, dtypes and the op *sequence* are untouched — only the
    arithmetic is dropped — so a sweep on this backend costs exactly the
    Python dispatch overhead the traced executor eliminates.  Values are
    garbage, which is fine: the fused sweep is data-independent (that is
    the property that makes it traceable at all).
    """


for _name in sorted(REPLAYABLE_OPS):
    setattr(DispatchOnlyBackend, _name, _null_op(_name))


def verify_bit_identity(side: int = 64, n_sweeps: int = 8) -> int:
    """Assert replay == eager fused, all four updaters, both dtypes.

    Returns the number of (updater, dtype) pairs checked.
    """
    checked = 0
    for updater in UPDATERS:
        for dtype in (FLOAT32, BFLOAT16):
            pair = []
            for traced in (True, False):
                sim = IsingSimulation(
                    (side, side),
                    TEMPERATURE,
                    updater=updater,
                    backend=NumpyBackend(dtype),
                    seed=3,
                    fused=True,
                    traced=traced,
                )
                sim.run(n_sweeps)
                pair.append(sim.lattice)
            if not np.array_equal(pair[0], pair[1]):
                raise AssertionError(
                    f"traced replay drifted from eager fused: "
                    f"{updater} / {dtype.name}"
                )
            checked += 1
    return checked


def _dispatch_seconds(
    updater: str, traced: bool, side: int, n_sweeps: int, reps: int
) -> float:
    """Min-of-reps host seconds per sweep with the kernels stubbed out."""
    sim = IsingSimulation(
        (side, side),
        TEMPERATURE,
        updater=updater,
        backend=DispatchOnlyBackend(FLOAT32),
        seed=1,
        fused=True,
        traced=traced,
    )
    sim.run(3)  # warm-up sweep, recording sweep, first replay
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        sim.run(n_sweeps)
        best = min(best, (time.perf_counter() - t0) / n_sweeps)
    return best


def _device_seconds(updater: str, side: int) -> float:
    """Cost-model seconds per sweep of side^2 on one simulated core.

    Identical for eager and replayed sweeps: the program is the same op
    sequence either way (replay calls the same backend methods, which
    book the same charges).
    """
    core = TensorCore(core_id=0)
    sim = IsingSimulation(
        (side, side),
        TEMPERATURE,
        updater=updater,
        backend=TPUBackend(core, dtype=FLOAT32),
        seed=1,
        fused=True,
    )
    sim.run(2)  # build tables and workspace off the clock
    before = core.profiler.total_seconds
    sim.run(4)
    return (core.profiler.total_seconds - before) / 4


def measure(side: int = 512, n_sweeps: int = 10, reps: int = 3) -> dict:
    """Per-updater dispatch/device/modeled timings and speedups on side^2."""
    results = {}
    for updater in UPDATERS:
        eager = _dispatch_seconds(updater, False, side, n_sweeps, reps)
        traced = _dispatch_seconds(updater, True, side, n_sweeps, reps)
        device = _device_seconds(updater, side)
        fed_eager = min(float(SLICE_CORES), device / eager)
        fed_traced = min(float(SLICE_CORES), device / traced)
        results[updater] = {
            "dispatch_eager_s": eager,
            "dispatch_traced_s": traced,
            "device_s": device,
            "cores_fed_eager": fed_eager,
            "cores_fed_traced": fed_traced,
            "dispatch_speedup": eager / traced,
            "modeled_speedup": fed_traced / fed_eager,
        }
    return results


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: per-updater replay-vs-eager dispatch."""
    pairs_checked = verify_bit_identity()
    results = measure()
    metrics = {"bit_identical_pairs": float(pairs_checked)}
    for updater, row in results.items():
        metrics[f"measured_{updater}_dispatch_eager_seconds"] = row[
            "dispatch_eager_s"
        ]
        metrics[f"measured_{updater}_dispatch_traced_seconds"] = row[
            "dispatch_traced_s"
        ]
        metrics[f"modeled_{updater}_device_seconds"] = row["device_s"]
        metrics[f"modeled_{updater}_cores_fed_eager"] = row["cores_fed_eager"]
        metrics[f"modeled_{updater}_cores_fed_traced"] = row[
            "cores_fed_traced"
        ]
        metrics[f"measured_{updater}_dispatch_speedup_x"] = row[
            "dispatch_speedup"
        ]
        metrics[f"modeled_{updater}_speedup_x"] = row["modeled_speedup"]
    metrics["modeled_gate_speedup_x"] = min(
        results[u]["modeled_speedup"] for u in GATE_UPDATERS
    )
    meta = {
        "side": 512,
        "temperature": TEMPERATURE,
        "backend": "numpy (dispatch-only) + tpu cost model",
        "dtype": "float32",
        "clock": (
            "modeled multi-tenant slice throughput ~ "
            "min(SLICE_CORES, device_s / dispatch_s)"
        ),
        "slice_cores": SLICE_CORES,
        "gate_updaters": list(GATE_UPDATERS),
        "gate_threshold_x": GATE_SPEEDUP,
    }
    return metrics, meta


def main(argv: "list[str] | None" = None) -> None:
    import sys

    raw = argv if argv is not None else sys.argv[1:]
    try:
        side = int(raw[0]) if raw else 512
    except ValueError:
        sys.exit(
            f"usage: bench_traced_sweep.py [side] — side must be an integer, got {raw}"
        )
    gated = not raw  # the default 512 run is the CI gate
    pairs = verify_bit_identity()
    print(f"bit-identity OK: {pairs} (updater, dtype) pairs replay exactly")
    print(
        f"traced replay vs eager fused dispatch, {side}^2 lattice, "
        f"{SLICE_CORES}-core slice"
    )
    print(
        f"{'updater':>12} {'eager [us]':>11} {'traced [us]':>12} "
        f"{'device [us]':>12} {'cores fed':>12} {'modeled':>8}"
    )
    results = measure(side=side)
    for updater, row in results.items():
        fed = f"{row['cores_fed_eager']:.1f}->{row['cores_fed_traced']:.1f}"
        print(
            f"{updater:>12} {row['dispatch_eager_s'] * 1e6:>11.1f} "
            f"{row['dispatch_traced_s'] * 1e6:>12.1f} "
            f"{row['device_s'] * 1e6:>12.1f} {fed:>12} "
            f"{row['modeled_speedup']:>7.2f}x"
        )
    if gated:
        for updater in GATE_UPDATERS:
            speedup = results[updater]["modeled_speedup"]
            if speedup < GATE_SPEEDUP:
                sys.exit(
                    f"FAIL: traced {updater} modeled slice-throughput "
                    f"speedup {speedup:.2f}x is below the {GATE_SPEEDUP}x "
                    f"gate on the {side}^2 lattice"
                )
        gate = min(results[u]["modeled_speedup"] for u in GATE_UPDATERS)
        print(
            f"gate OK: traced {'/'.join(GATE_UPDATERS)} {gate:.2f}x "
            f">= {GATE_SPEEDUP}x modeled slice throughput"
        )


if __name__ == "__main__":
    main()
