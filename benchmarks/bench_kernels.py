"""Microbenchmarks of the neighbour-sum kernels and RNG substrate.

The building blocks underneath every sweep: roll vs blocked-matmul vs
compact formulations of the neighbour sum, and Philox uniform generation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.core.kernels import (
    compact_neighbor_sums,
    neighbor_sum_grid,
    neighbor_sum_roll,
)
from repro.core.lattice import CompactLattice, plain_to_grid, random_lattice
from repro.rng import PhiloxStream

_SIDE = 1024


@pytest.fixture(scope="module")
def plain():
    return random_lattice((_SIDE, _SIDE), PhiloxStream(0, 3))


def test_neighbor_sum_roll(benchmark, plain):
    benchmark.group = "kernels-neighbor-sum"
    benchmark(lambda: neighbor_sum_roll(plain))


def test_neighbor_sum_grid_matmul(benchmark, plain):
    benchmark.group = "kernels-neighbor-sum"
    grid = plain_to_grid(plain, (128, 128))
    backend = NumpyBackend()
    benchmark(lambda: neighbor_sum_grid(grid, backend))


def test_compact_neighbor_sums_matmul(benchmark, plain):
    benchmark.group = "kernels-neighbor-sum"
    lat = CompactLattice.from_plain(plain, (128, 128))
    backend = NumpyBackend()
    benchmark(lambda: compact_neighbor_sums(lat, "black", backend))


def test_compact_neighbor_sums_conv(benchmark, plain):
    benchmark.group = "kernels-neighbor-sum"
    lat = CompactLattice.from_plain(plain, (128, 128))
    backend = NumpyBackend()
    benchmark(lambda: compact_neighbor_sums(lat, "black", backend, method="conv"))


def test_philox_uniforms(benchmark):
    benchmark.group = "kernels-rng"
    stream = PhiloxStream(0, 1)
    benchmark(lambda: stream.uniform((1024, 1024)))


def test_numpy_pcg64_uniforms(benchmark):
    """Reference point: numpy's own generator on the same draw size."""
    benchmark.group = "kernels-rng"
    rng = np.random.default_rng(0)
    benchmark(lambda: rng.random((1024, 1024), dtype=np.float32))


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: measured kernel/RNG timings (quick)."""
    from time import perf_counter

    side = 512
    lattice = random_lattice((side, side), PhiloxStream(0, 3))
    backend = NumpyBackend()
    grid = plain_to_grid(lattice, (128, 128))

    def time_of(fn, reps: int = 5) -> float:
        fn()  # warm-up
        start = perf_counter()
        for _ in range(reps):
            fn()
        return (perf_counter() - start) / reps

    roll = time_of(lambda: neighbor_sum_roll(lattice))
    matmul = time_of(lambda: neighbor_sum_grid(grid, backend))
    stream = PhiloxStream(0, 1)
    rng = time_of(lambda: stream.uniform((side, side)))
    return (
        {
            "measured_roll_seconds": roll,
            "measured_grid_matmul_seconds": matmul,
            "measured_philox_uniform_seconds": rng,
            "measured_philox_mwords_per_second": side * side / rng / 1e6,
        },
        {"side": side, "backend": "numpy"},
    )
