"""Emit ``BENCH_<name>.json`` artifacts from the benchmark suite.

Every ``bench_*`` module exposes ``bench_payload() -> (metrics, meta)``
— a quick, deterministic, machine-readable summary (modeled paper-scale
numbers, plus small measured timings where the module's subject *is*
host wall-clock).  This driver funnels them through the versioned
:mod:`repro.telemetry.bench` schema so every benchmark run leaves
comparable JSON behind and the repo's performance trajectory accumulates
across commits (CI uploads the files as workflow artifacts).

Usage::

    PYTHONPATH=src python -m benchmarks.emit                 # all modules
    PYTHONPATH=src python -m benchmarks.emit ensemble table2 # a subset
    PYTHONPATH=src python -m benchmarks.emit --only sched    # exactly one
    PYTHONPATH=src python -m benchmarks.emit --out-dir bench-artifacts
"""

from __future__ import annotations

import argparse
import importlib
import pkgutil
import sys

from repro.telemetry.bench import write_bench_report

__all__ = ["bench_module_names", "emit", "main"]


def bench_module_names() -> list[str]:
    """All ``bench_*`` module short names (``table2``, ``ensemble``, ...)."""
    import benchmarks

    names = []
    for info in pkgutil.iter_modules(benchmarks.__path__):
        if info.name.startswith("bench_"):
            names.append(info.name[len("bench_"):])
    return sorted(names)


def emit(name: str, out_dir: str | None = None) -> str:
    """Import one bench module, run its payload, write its JSON artifact."""
    module = importlib.import_module(f"benchmarks.bench_{name}")
    payload = getattr(module, "bench_payload", None)
    if payload is None:
        raise ValueError(f"benchmarks.bench_{name} defines no bench_payload()")
    metrics, meta = payload()
    return write_bench_report(name, metrics, meta, out_dir=out_dir)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.emit",
        description="Write BENCH_<name>.json artifacts for bench modules.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="bench short names (e.g. 'ensemble', 'table2'); default: all",
    )
    parser.add_argument(
        "--only",
        metavar="NAME",
        default=None,
        help="emit exactly one bench module (mutually exclusive with "
        "positional names)",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="output directory (default: $BENCH_OUT_DIR or '.')",
    )
    args = parser.parse_args(argv)
    if args.only is not None and args.names:
        print("--only and positional names are mutually exclusive", file=sys.stderr)
        return 2
    names = [args.only] if args.only is not None else (
        args.names or bench_module_names()
    )
    unknown = set(names) - set(bench_module_names())
    if unknown:
        print(
            f"unknown bench names: {sorted(unknown)}; "
            f"choose from {bench_module_names()}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        path = emit(name, out_dir=args.out_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
