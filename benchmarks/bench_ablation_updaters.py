"""Ablation: the paper's algorithmic design choices, quantified.

* Algorithm 2 vs Algorithm 1 — the paper measures "about 3x faster"
  (eliminated mask, wasted RNG and wasted matmuls);
* conv vs compact — the appendix's ~80% improvement;
* both measured on the host kernels and on the calibrated device model.
"""

from __future__ import annotations

import pytest

from repro.backend import NumpyBackend
from repro.baselines import MultispinUpdater, RollUpdater
from repro.core.checkerboard import CheckerboardUpdater
from repro.core.conv import MaskedConvUpdater
from repro.core.lattice import random_lattice
from repro.harness.perf import model_single_core_step
from repro.rng import PhiloxStream
from repro.tpu.cost_model import TPU_V3
from repro.tpu.tensorcore import TensorCore
from repro.backend.tpu_backend import TPUBackend

from .conftest import BETA_C, make_compact_runner

_SIDE = 512


def _runner(updater):
    state = updater.to_state(random_lattice((_SIDE, _SIDE), PhiloxStream(0, 7)))
    stream = PhiloxStream(1, 7)
    holder = {"state": state}

    def run():
        holder["state"] = updater.sweep(holder["state"], stream)

    return run


def test_host_algorithm1(benchmark):
    benchmark.group = "ablation-updaters-host"
    benchmark(
        _runner(CheckerboardUpdater(BETA_C, NumpyBackend(), block_shape=(128, 128)))
    )


def test_host_algorithm2(benchmark):
    benchmark.group = "ablation-updaters-host"
    benchmark(make_compact_runner(_SIDE))


def test_host_conv(benchmark):
    benchmark.group = "ablation-updaters-host"
    benchmark(make_compact_runner(_SIDE, nn_method="conv"))


def test_host_masked_conv(benchmark):
    benchmark.group = "ablation-updaters-host"
    benchmark(_runner(MaskedConvUpdater(BETA_C, NumpyBackend())))


def test_host_roll_baseline(benchmark):
    benchmark.group = "ablation-updaters-host"
    benchmark(_runner(RollUpdater(BETA_C)))


def test_host_multispin_baseline(benchmark):
    benchmark.group = "ablation-updaters-host"
    benchmark(_runner(MultispinUpdater(BETA_C)))


def _modeled_algorithm1_step_time(side_blocks: int) -> float:
    """Model one Algorithm 1 sweep by recording its real op stream."""
    core = TensorCore(core_id=0, op_log=[])
    backend = TPUBackend(core)
    updater = CheckerboardUpdater(BETA_C, backend, block_shape=(128, 128))
    grid = updater.to_state(random_lattice((512, 512), PhiloxStream(0, 1)))
    updater.sweep(grid, PhiloxStream(1, 1))
    factor = side_blocks**2 / 16.0  # proxy grid is 4x4 blocks of 128
    total = 0.0
    for category, flops, bytes_moved, batch in core.op_log:
        times = TPU_V3.op_times(
            category,
            flops * factor,
            bytes_moved * factor,
            batch * factor if batch is not None else None,
        )
        total += sum(times.values())
    return total


def test_modeled_algorithm2_speedup():
    """The paper: Algorithm 2 'is about 3x faster' than Algorithm 1.

    The op-level model recovers the factor-2 arithmetic/RNG waste exactly
    (Algorithm 1 computes neighbour sums, uniforms and flip arithmetic
    for every site per colour phase, twice the useful work); the paper's
    remaining ~1.5x comes from temporary-HBM layout effects the op-level
    accounting does not see, so the modeled ratio sits at ~2.1x.  See
    EXPERIMENTS.md.
    """
    alg1 = _modeled_algorithm1_step_time(160)
    alg2 = model_single_core_step((160 * 128, 160 * 128)).step_time
    ratio = alg1 / alg2
    assert 1.9 < ratio < 3.7, f"Algorithm 2 speedup {ratio:.2f}x out of range"


def test_modeled_conv_improvement_is_about_80_percent():
    compact = model_single_core_step((224 * 128, 224 * 128)).step_time
    conv = model_single_core_step((224 * 128, 224 * 128), updater="conv").step_time
    improvement = compact / conv - 1.0
    assert 0.5 < improvement < 1.1, f"conv improvement {improvement:.2f} not ~0.8"


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: the two algorithmic wins (modeled)."""
    alg1 = _modeled_algorithm1_step_time(160)
    alg2 = model_single_core_step((160 * 128, 160 * 128)).step_time
    compact = model_single_core_step((224 * 128, 224 * 128)).step_time
    conv = model_single_core_step((224 * 128, 224 * 128), updater="conv").step_time
    return (
        {
            "modeled_alg2_over_alg1_speedup": alg1 / alg2,
            "modeled_conv_over_compact_speedup": compact / conv,
        },
        {
            "paper_alg2_speedup": "about 3x",
            "paper_conv_improvement": "about 80%",
        },
    )
