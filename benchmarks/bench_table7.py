"""Table 7 / Figure 9 (appendix): strong scaling.

Measured: real SPMD sweeps of a fixed 256x256 lattice over growing core
grids (host-side strong scaling, where the Python per-core overhead
plays the role of the latency floor).  Modeled: the paper's nine rows
and the departure from ideal beyond ~1000 cores.
"""

from __future__ import annotations

import pytest

from repro.core.distributed import DistributedIsing
from repro.harness import table7
from repro.harness.perf import model_pod_step

from .conftest import BETA_C


@pytest.mark.parametrize("core_grid", [(1, 1), (2, 2), (4, 4)])
def test_host_strong_scaling(benchmark, core_grid):
    benchmark.group = "table7-host-strong-scaling"
    sim = DistributedIsing(
        (256, 256), 1.0 / BETA_C, core_grid=core_grid, seed=2
    )
    benchmark(lambda: sim.sweep(1))


def test_modeled_rows_track_paper():
    for topology, mult, paper_ms, paper_flips in table7.PAPER_ROWS:
        n_cores = topology[0] * topology[1]
        model = model_pod_step(
            (mult[0] * 128, mult[1] * 128), n_cores, updater="conv"
        )
        tolerance = 0.10 if n_cores <= 256 else 0.35
        assert model.step_time * 1e3 == pytest.approx(paper_ms, rel=tolerance)
        assert model.flips_per_ns == pytest.approx(paper_flips, rel=tolerance)


def test_efficiency_decays_beyond_1000_cores():
    per_core_8 = (
        model_pod_step((896 * 128, 448 * 128), 8, updater="conv").flips_per_ns / 8
    )
    per_core_2048 = (
        model_pod_step((56 * 128, 28 * 128), 2048, updater="conv").flips_per_ns / 2048
    )
    assert per_core_2048 < 0.7 * per_core_8


def bench_payload() -> tuple[dict, dict]:
    """Machine-readable summary: strong-scaling efficiency (modeled)."""
    per_core_8 = (
        model_pod_step((896 * 128, 448 * 128), 8, updater="conv").flips_per_ns / 8
    )
    per_core_2048 = (
        model_pod_step((56 * 128, 28 * 128), 2048, updater="conv").flips_per_ns
        / 2048
    )
    return (
        {
            "modeled_per_core_flips_per_ns_8c": per_core_8,
            "modeled_per_core_flips_per_ns_2048c": per_core_2048,
            "modeled_strong_scaling_efficiency_2048c": per_core_2048 / per_core_8,
        },
        {"updater": "conv", "fixed_global_lattice": "(1792x128) x (1792x128)"},
    )
