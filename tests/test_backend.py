"""Backend op-vocabulary tests: numerics and cost charging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.backend.tpu_backend import TPUBackend
from repro.rng import PhiloxStream
from repro.tpu.dtypes import BFLOAT16
from repro.tpu.tensorcore import TensorCore


class TestNumpyBackendOps:
    def test_matmul_float32_accumulation(self, backend):
        a = np.full((4, 4), 1.0, dtype=np.float32)
        out = backend.matmul(a, a)
        assert np.all(out == 4.0)

    def test_elementwise_ops(self, backend):
        x = np.array([1.0, 2.0], dtype=np.float32)
        y = np.array([3.0, 4.0], dtype=np.float32)
        assert np.array_equal(backend.add(x, y), [4.0, 6.0])
        assert np.array_equal(backend.subtract(y, x), [2.0, 2.0])
        assert np.array_equal(backend.multiply(x, y), [3.0, 8.0])
        assert np.array_equal(backend.less(x, y), [1.0, 1.0])
        assert np.array_equal(backend.less(y, x), [0.0, 0.0])

    def test_where(self, backend):
        cond = np.array([1.0, 0.0], dtype=np.float32)
        out = backend.where(cond, np.float32(5.0) * np.ones(2, dtype=np.float32), np.zeros(2, dtype=np.float32))
        assert np.array_equal(out, [5.0, 0.0])

    def test_exp(self, backend):
        out = backend.exp(np.array([0.0, 1.0], dtype=np.float32))
        assert out[0] == 1.0
        assert out[1] == pytest.approx(np.e, rel=1e-6)

    def test_exp_overflow_to_inf_is_silent(self, backend):
        out = backend.exp(np.array([200.0], dtype=np.float32))
        assert out[0] == np.inf

    def test_formatting_ops(self, backend):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert np.array_equal(backend.roll(x, 1, 0), np.roll(x, 1, 0))
        assert np.array_equal(
            backend.concat([x, x], axis=0), np.concatenate([x, x], axis=0)
        )
        assert np.array_equal(backend.slice_copy(x, (slice(None), 0)), x[:, 0])
        assert backend.reshape(x, (4, 3)).shape == (4, 3)
        copied = backend.copy(x)
        copied[0, 0] = 99
        assert x[0, 0] == 0.0

    def test_add_at_slice(self, backend):
        x = np.zeros((3, 4), dtype=np.float32)
        backend.add_at_slice(x, (0, slice(None)), np.ones(4, dtype=np.float32))
        assert np.all(x[0] == 1.0)
        assert np.all(x[1:] == 0.0)

    def test_random_uniform(self, backend):
        u = backend.random_uniform((8, 8), PhiloxStream(1, 0))
        assert u.shape == (8, 8)
        assert u.min() >= 0.0 and u.max() < 1.0

    def test_array_quantizes(self):
        be = NumpyBackend("bfloat16")
        out = be.array([0.1])
        assert out[0] == np.float32(0.100097656)


class TestBfloat16Numerics:
    def test_all_ops_produce_representable_values(self, bf16_backend):
        from repro.tpu.bfloat16 import is_representable

        stream = PhiloxStream(3, 0)
        a = bf16_backend.random_uniform((16, 16), stream)
        b = bf16_backend.random_uniform((16, 16), stream)
        for out in (
            bf16_backend.add(a, b),
            bf16_backend.multiply(a, b),
            bf16_backend.exp(a),
            bf16_backend.matmul(a, b),
        ):
            assert np.all(is_representable(out))

    def test_matmul_accumulates_in_float32(self, bf16_backend):
        # Summing 256 ones is exact in f32 accumulation but the bf16
        # result (256) is representable, so no precision is lost here —
        # whereas naive bf16 accumulation of 1 + ... would stall at 256
        # anyway; test a case where bf16 accumulation would round badly:
        # 512 entries of 1.0 plus one entry of 0.5 -> 512.5 -> bf16 512.
        n = 513
        a = np.ones((1, n), dtype=np.float32)
        b = np.ones((n, 1), dtype=np.float32)
        b[0, 0] = 0.5
        out = bf16_backend.matmul(a, b)
        assert out[0, 0] == 512.0  # f32 exact 512.5, rounded to bf16 512


class TestTPUBackendCharging:
    def test_identical_numerics_to_numpy_backend(self):
        core = TensorCore(core_id=0)
        tpu = TPUBackend(core, dtype="float32")
        plain = NumpyBackend("float32")
        stream_a, stream_b = PhiloxStream(4, 0), PhiloxStream(4, 0)
        a1 = tpu.random_uniform((8, 8), stream_a)
        a2 = plain.random_uniform((8, 8), stream_b)
        assert np.array_equal(a1, a2)
        assert np.array_equal(tpu.matmul(a1, a1), plain.matmul(a2, a2))

    def test_charges_flow_to_core(self):
        core = TensorCore(core_id=0)
        tpu = TPUBackend(core)
        a = tpu.array(np.ones((64, 64), dtype=np.float32))
        tpu.matmul(a, a)
        assert core.profiler.seconds["mxu"] > 0
        assert core.profiler.flops["mxu"] == pytest.approx(2 * 64**3)

    def test_bfloat16_default_and_byte_accounting(self):
        core = TensorCore(core_id=0)
        tpu = TPUBackend(core)
        assert tpu.dtype is BFLOAT16
        a = tpu.array(np.ones((32, 32), dtype=np.float32))
        tpu.add(a, a)
        # operands + result at 2 bytes each.
        assert core.profiler.bytes["vpu"] == pytest.approx(3 * 32 * 32 * 2)

    def test_batch_forwarded_for_batched_matmul(self):
        core = TensorCore(core_id=0, op_log=[])
        tpu = TPUBackend(core)
        a = tpu.array(np.ones((5, 7, 8, 8), dtype=np.float32))
        k = tpu.array(np.ones((8, 8), dtype=np.float32))
        tpu.matmul(a, k)
        categories = [entry for entry in core.op_log if entry[0] == "mxu"]
        assert categories[-1][3] == pytest.approx(35.0)  # 5 * 7 blocks
