"""Backend op-vocabulary tests: numerics and cost charging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.backend.tpu_backend import TPUBackend
from repro.rng import PhiloxStream
from repro.tpu.dtypes import BFLOAT16
from repro.tpu.tensorcore import TensorCore


class TestNumpyBackendOps:
    def test_matmul_float32_accumulation(self, backend):
        a = np.full((4, 4), 1.0, dtype=np.float32)
        out = backend.matmul(a, a)
        assert np.all(out == 4.0)

    def test_elementwise_ops(self, backend):
        x = np.array([1.0, 2.0], dtype=np.float32)
        y = np.array([3.0, 4.0], dtype=np.float32)
        assert np.array_equal(backend.add(x, y), [4.0, 6.0])
        assert np.array_equal(backend.subtract(y, x), [2.0, 2.0])
        assert np.array_equal(backend.multiply(x, y), [3.0, 8.0])
        assert np.array_equal(backend.less(x, y), [1.0, 1.0])
        assert np.array_equal(backend.less(y, x), [0.0, 0.0])

    def test_where(self, backend):
        cond = np.array([1.0, 0.0], dtype=np.float32)
        out = backend.where(cond, np.float32(5.0) * np.ones(2, dtype=np.float32), np.zeros(2, dtype=np.float32))
        assert np.array_equal(out, [5.0, 0.0])

    def test_exp(self, backend):
        out = backend.exp(np.array([0.0, 1.0], dtype=np.float32))
        assert out[0] == 1.0
        assert out[1] == pytest.approx(np.e, rel=1e-6)

    def test_exp_overflow_to_inf_is_silent(self, backend):
        out = backend.exp(np.array([200.0], dtype=np.float32))
        assert out[0] == np.inf

    def test_formatting_ops(self, backend):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert np.array_equal(backend.roll(x, 1, 0), np.roll(x, 1, 0))
        assert np.array_equal(
            backend.concat([x, x], axis=0), np.concatenate([x, x], axis=0)
        )
        assert np.array_equal(backend.slice_copy(x, (slice(None), 0)), x[:, 0])
        assert backend.reshape(x, (4, 3)).shape == (4, 3)
        copied = backend.copy(x)
        copied[0, 0] = 99
        assert x[0, 0] == 0.0

    def test_add_at_slice(self, backend):
        x = np.zeros((3, 4), dtype=np.float32)
        backend.add_at_slice(x, (0, slice(None)), np.ones(4, dtype=np.float32))
        assert np.all(x[0] == 1.0)
        assert np.all(x[1:] == 0.0)

    def test_random_uniform(self, backend):
        u = backend.random_uniform((8, 8), PhiloxStream(1, 0))
        assert u.shape == (8, 8)
        assert u.min() >= 0.0 and u.max() < 1.0

    def test_array_quantizes(self):
        be = NumpyBackend("bfloat16")
        out = be.array([0.1])
        assert out[0] == np.float32(0.100097656)


class TestBfloat16Numerics:
    def test_all_ops_produce_representable_values(self, bf16_backend):
        from repro.tpu.bfloat16 import is_representable

        stream = PhiloxStream(3, 0)
        a = bf16_backend.random_uniform((16, 16), stream)
        b = bf16_backend.random_uniform((16, 16), stream)
        for out in (
            bf16_backend.add(a, b),
            bf16_backend.multiply(a, b),
            bf16_backend.exp(a),
            bf16_backend.matmul(a, b),
        ):
            assert np.all(is_representable(out))

    def test_matmul_accumulates_in_float32(self, bf16_backend):
        # Summing 256 ones is exact in f32 accumulation but the bf16
        # result (256) is representable, so no precision is lost here —
        # whereas naive bf16 accumulation of 1 + ... would stall at 256
        # anyway; test a case where bf16 accumulation would round badly:
        # 512 entries of 1.0 plus one entry of 0.5 -> 512.5 -> bf16 512.
        n = 513
        a = np.ones((1, n), dtype=np.float32)
        b = np.ones((n, 1), dtype=np.float32)
        b[0, 0] = 0.5
        out = bf16_backend.matmul(a, b)
        assert out[0, 0] == 512.0  # f32 exact 512.5, rounded to bf16 512


class TestTPUBackendCharging:
    def test_identical_numerics_to_numpy_backend(self):
        core = TensorCore(core_id=0)
        tpu = TPUBackend(core, dtype="float32")
        plain = NumpyBackend("float32")
        stream_a, stream_b = PhiloxStream(4, 0), PhiloxStream(4, 0)
        a1 = tpu.random_uniform((8, 8), stream_a)
        a2 = plain.random_uniform((8, 8), stream_b)
        assert np.array_equal(a1, a2)
        assert np.array_equal(tpu.matmul(a1, a1), plain.matmul(a2, a2))

    def test_charges_flow_to_core(self):
        core = TensorCore(core_id=0)
        tpu = TPUBackend(core)
        a = tpu.array(np.ones((64, 64), dtype=np.float32))
        tpu.matmul(a, a)
        assert core.profiler.seconds["mxu"] > 0
        assert core.profiler.flops["mxu"] == pytest.approx(2 * 64**3)

    def test_bfloat16_default_and_byte_accounting(self):
        core = TensorCore(core_id=0)
        tpu = TPUBackend(core)
        assert tpu.dtype is BFLOAT16
        a = tpu.array(np.ones((32, 32), dtype=np.float32))
        tpu.add(a, a)
        # operands + result at 2 bytes each.
        assert core.profiler.bytes["vpu"] == pytest.approx(3 * 32 * 32 * 2)

    def test_batch_forwarded_for_batched_matmul(self):
        core = TensorCore(core_id=0, op_log=[])
        tpu = TPUBackend(core)
        a = tpu.array(np.ones((5, 7, 8, 8), dtype=np.float32))
        k = tpu.array(np.ones((8, 8), dtype=np.float32))
        tpu.matmul(a, k)
        categories = [entry for entry in core.op_log if entry[0] == "mxu"]
        assert categories[-1][3] == pytest.approx(35.0)  # 5 * 7 blocks


class TestInPlaceTwins:
    """Every ``*_into`` op must equal its allocating counterpart bit-for-bit."""

    @pytest.fixture(params=["float32", "bfloat16"])
    def any_backend(self, request):
        return NumpyBackend(request.param)

    def test_elementwise_into_twins(self, any_backend):
        b = any_backend
        rng = np.random.default_rng(3)
        x = b.array(rng.normal(size=(6, 6)))
        y = b.array(rng.normal(size=(6, 6)))
        out = np.empty_like(x)
        np.testing.assert_array_equal(b.add_into(x, y, out), b.add(x, y))
        np.testing.assert_array_equal(b.subtract_into(x, y, out), b.subtract(x, y))
        np.testing.assert_array_equal(b.multiply_into(x, y, out), b.multiply(x, y))
        np.testing.assert_array_equal(b.less_into(x, y, out), b.less(x, y))
        np.testing.assert_array_equal(b.exp_into(x, out), b.exp(x))

    def test_matmul_into_twin(self, any_backend):
        b = any_backend
        rng = np.random.default_rng(4)
        x = b.array(rng.normal(size=(8, 8)))
        y = b.array(rng.normal(size=(8, 8)))
        out = np.empty_like(x)
        np.testing.assert_array_equal(b.matmul_into(x, y, out), b.matmul(x, y))

    def test_uniform_into_twin(self, any_backend):
        from repro.rng import PhiloxStream

        out = np.empty((5, 5), dtype=np.float32)
        any_backend.uniform_into(PhiloxStream(3, 1), out)
        expected = any_backend.random_uniform((5, 5), PhiloxStream(3, 1))
        np.testing.assert_array_equal(out, expected)

    def test_take_into_wraps_negative_indices(self, backend):
        table = np.arange(19, dtype=np.float32)
        idx = np.array([-9, -1, 0, 9], dtype=np.int32)
        out = np.empty(4, dtype=np.float32)
        backend.take_into(table, idx, out)
        np.testing.assert_array_equal(out, [10.0, 18.0, 0.0, 9.0])

    def test_acceptance_index_into(self, backend):
        sigma = np.array([-1.0, -1.0, 1.0, 1.0], dtype=np.float32)
        nn = np.array([-4.0, 4.0, -4.0, 4.0], dtype=np.float32)
        idx = np.empty(4, dtype=np.int32)
        fscratch = np.empty(4, dtype=np.float32)
        backend.acceptance_index_into(sigma, nn, idx, fscratch)
        np.testing.assert_array_equal(idx, [-9, -1, 1, 9])
        offsets = np.full(4, 9.0, dtype=np.float32)
        backend.acceptance_index_into(sigma, nn, idx, fscratch, offsets=offsets)
        np.testing.assert_array_equal(idx, [0, 8, 10, 18])


class TestBandMatmulPrimitives:
    """The shift-band products are exact sums of <= 2 spins, so the
    slice-add implementations must match the explicit band matmuls."""

    @staticmethod
    def _band(k: int, offset: int) -> np.ndarray:
        return np.eye(k, k=offset, dtype=np.float32)

    def test_band_cross_matmul_matches_explicit(self, backend):
        rng = np.random.default_rng(5)
        grid = np.sign(rng.normal(size=(2, 2, 6, 6))).astype(np.float32)
        k = 6
        left = self._band(k, -1) + self._band(k, 1)
        expected = backend.add(
            backend.matmul(grid, left), backend.matmul(left, grid)
        )
        out = np.empty_like(grid)
        backend.band_cross_matmul_into(grid, out)
        np.testing.assert_array_equal(out, expected)

    def test_band_cross_matmul_rejects_aliasing(self, backend):
        grid = np.ones((4, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="alias"):
            backend.band_cross_matmul_into(grid, grid)

    @pytest.mark.parametrize("axis", [-1, -2])
    @pytest.mark.parametrize("offset", [-1, 1])
    def test_band_pair_matmul_matches_explicit(self, backend, axis, offset):
        rng = np.random.default_rng(6)
        a = np.sign(rng.normal(size=(2, 6, 6))).astype(np.float32)
        k = 6
        band = np.eye(k, dtype=np.float32) + self._band(k, offset)
        if axis == -1:
            expected = backend.matmul(a, band.T)
        else:
            expected = backend.matmul(band, a)
        out = np.empty_like(a)
        backend.band_pair_matmul_into(a, axis, offset, out)
        np.testing.assert_array_equal(out, expected)

    def test_band_charges_match_matmul_sequence(self):
        """TPU accounting: the band primitives charge what the matmul_into
        op sequence they replace would have charged."""
        grid = np.sign(np.random.default_rng(7).normal(size=(1, 1, 8, 8)))

        core_band = TensorCore(core_id=0)
        band_backend = TPUBackend(core_band)
        g = band_backend.array(grid)
        band_backend.band_cross_matmul_into(g, np.empty_like(g))

        core_seq = TensorCore(core_id=1)
        seq_backend = TPUBackend(core_seq)
        g2 = seq_backend.array(grid)
        k = 8
        left = seq_backend.array(np.eye(k, k=-1) + np.eye(k, k=1))
        tmp = np.empty_like(g2)
        out = np.empty_like(g2)
        seq_backend.matmul_into(g2, left, out)
        seq_backend.matmul_into(left, g2, tmp)
        seq_backend.add_into(out, tmp, out)
        for cat in ("mxu", "vpu"):
            assert core_band.profiler.flops[cat] == pytest.approx(
                core_seq.profiler.flops[cat]
            ), cat
            assert core_band.profiler.bytes[cat] == pytest.approx(
                core_seq.profiler.bytes[cat]
            ), cat

    def test_band_pair_charge_matches_single_matmul(self):
        a = np.ones((2, 8, 8), dtype=np.float32)

        core_band = TensorCore(core_id=0)
        band_backend = TPUBackend(core_band)
        x = band_backend.array(a)
        band_backend.band_pair_matmul_into(x, -2, -1, np.empty_like(x))

        core_seq = TensorCore(core_id=1)
        seq_backend = TPUBackend(core_seq)
        x2 = seq_backend.array(a)
        band = seq_backend.array(np.eye(8) + np.eye(8, k=-1))
        seq_backend.matmul_into(band, x2, np.empty_like(x2))
        assert core_band.profiler.flops["mxu"] == pytest.approx(
            core_seq.profiler.flops["mxu"]
        )
        assert core_band.profiler.bytes["mxu"] == pytest.approx(
            core_seq.profiler.bytes["mxu"]
        )

    def test_band_pair_validates_arguments(self, backend):
        a = np.ones((4, 4), dtype=np.float32)
        out = np.empty_like(a)
        with pytest.raises(ValueError):
            backend.band_pair_matmul_into(a, 0, -1, out)
        with pytest.raises(ValueError):
            backend.band_pair_matmul_into(a, -1, 2, out)
        with pytest.raises(ValueError):
            backend.band_pair_matmul_into(a, -1, -1, a)
