"""IsingSimulation driver tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.core.simulation import IsingSimulation, run_temperature_scan

from .conftest import make_lattice


class TestConstruction:
    def test_int_shape_becomes_square(self):
        sim = IsingSimulation(8, 2.0)
        assert sim.shape == (8, 8)
        assert sim.n_sites == 64

    def test_odd_side_rejected(self):
        with pytest.raises(ValueError, match="even"):
            IsingSimulation((7, 8), 2.0)

    def test_bad_temperature(self):
        with pytest.raises(ValueError, match="temperature"):
            IsingSimulation(8, -1.0)

    def test_bad_updater(self):
        with pytest.raises(ValueError, match="unknown updater"):
            IsingSimulation(8, 2.0, updater="wolff")

    def test_cold_start(self):
        sim = IsingSimulation(8, 2.0, initial="cold")
        assert np.all(sim.lattice == 1.0)
        assert sim.magnetization() == 1.0
        assert sim.energy_per_spin() == -2.0

    def test_hot_start_is_disordered(self):
        sim = IsingSimulation(64, 2.0, initial="hot")
        assert abs(sim.magnetization()) < 0.2

    def test_explicit_initial_array(self):
        plain = make_lattice((8, 8))
        sim = IsingSimulation((8, 8), 2.0, initial=plain)
        assert np.array_equal(sim.lattice, plain)

    def test_initial_shape_mismatch(self):
        with pytest.raises(ValueError, match="initial lattice shape"):
            IsingSimulation((8, 8), 2.0, initial=make_lattice((4, 4)))

    def test_bad_initial_string(self):
        with pytest.raises(ValueError, match="initial"):
            IsingSimulation(8, 2.0, initial="warm")

    @pytest.mark.parametrize("updater", ["compact", "conv", "checkerboard", "masked_conv"])
    def test_all_updaters_construct_and_sweep(self, updater):
        sim = IsingSimulation(8, 2.5, updater=updater, seed=3)
        sim.run(3)
        assert sim.sweeps_done == 3
        assert set(np.unique(sim.lattice)) <= {-1.0, 1.0}


class TestEvolution:
    def test_run_validation(self):
        sim = IsingSimulation(8, 2.0)
        with pytest.raises(ValueError, match="n_sweeps"):
            sim.run(-1)

    def test_same_seed_same_chain(self):
        a = IsingSimulation(16, 2.3, seed=9)
        b = IsingSimulation(16, 2.3, seed=9)
        a.run(5)
        b.run(5)
        assert np.array_equal(a.lattice, b.lattice)

    def test_different_stream_ids_differ(self):
        a = IsingSimulation(16, 2.3, seed=9, stream_id=0)
        b = IsingSimulation(16, 2.3, seed=9, stream_id=1)
        a.run(5)
        b.run(5)
        assert not np.array_equal(a.lattice, b.lattice)

    def test_bfloat16_backend_runs(self):
        sim = IsingSimulation(16, 2.3, backend=NumpyBackend("bfloat16"), seed=1)
        sim.run(5)
        assert set(np.unique(sim.lattice)) <= {-1.0, 1.0}


class TestSampling:
    def test_sample_result_fields(self):
        sim = IsingSimulation(8, 2.5, seed=0)
        res = sim.sample(n_samples=64, burn_in=16)
        assert res.n_samples == 64
        assert res.m_series.shape == (64,)
        assert res.e_series.shape == (64,)
        assert 0.0 <= res.abs_m <= 1.0
        assert -2.0 <= res.energy <= 2.0
        assert res.u4 <= 2.0 / 3.0 + 0.2
        assert res.abs_m_err > 0.0

    def test_sample_validation(self):
        sim = IsingSimulation(8, 2.5)
        with pytest.raises(ValueError, match="n_samples"):
            sim.sample(0)
        with pytest.raises(ValueError, match="thin"):
            sim.sample(10, thin=0)

    def test_thinning_advances_chain(self):
        sim = IsingSimulation(8, 2.5, seed=0)
        sim.sample(n_samples=4, thin=3)
        assert sim.sweeps_done == 12

    def test_low_temperature_is_ordered(self):
        sim = IsingSimulation(16, 1.0, seed=2, initial="cold")
        res = sim.sample(n_samples=64, burn_in=32)
        assert res.abs_m > 0.98
        assert res.energy < -1.9

    def test_high_temperature_is_disordered(self):
        sim = IsingSimulation(32, 8.0, seed=2)
        res = sim.sample(n_samples=64, burn_in=32)
        assert res.abs_m < 0.2
        assert abs(res.energy) < 0.5


class TestTemperatureScan:
    def test_scan_shapes_and_monotonicity(self):
        results = run_temperature_scan(
            8, np.array([1.2, 2.27, 5.0]), n_samples=128, burn_in=32, seed=1
        )
        assert len(results) == 3
        assert results[0].abs_m > results[2].abs_m
        assert results[0].temperature == pytest.approx(1.2)


class TestCheckpointFidelity:
    """state_dict -> from_state_dict must round-trip backend kind, dtype
    and block decomposition — not silently fall back to defaults."""

    def test_roundtrips_backend_dtype(self):
        sim = IsingSimulation(8, 2.3, backend=NumpyBackend("bfloat16"), seed=1)
        state = sim.state_dict()
        assert state["backend"] == "numpy"
        assert state["dtype"] == "bfloat16"
        resumed = IsingSimulation.from_state_dict(state)
        assert isinstance(resumed.backend, NumpyBackend)
        assert resumed.backend.dtype.name == "bfloat16"

    def test_roundtrips_tpu_backend_kind(self):
        from repro.backend.tpu_backend import TPUBackend
        from repro.tpu.tensorcore import TensorCore

        sim = IsingSimulation(
            8, 2.3, backend=TPUBackend(TensorCore(core_id=0), "bfloat16"), seed=1
        )
        sim.run(2)
        state = sim.state_dict()
        assert state["backend"] == "tpu"
        resumed = IsingSimulation.from_state_dict(state)
        assert isinstance(resumed.backend, TPUBackend)
        assert resumed.backend.dtype.name == "bfloat16"
        sim.run(3)
        resumed.run(3)
        assert np.array_equal(sim.lattice, resumed.lattice)

    def test_roundtrips_block_shape(self):
        sim = IsingSimulation(16, 2.3, block_shape=(2, 2), seed=4)
        sim.run(2)
        state = sim.state_dict()
        assert state["block_shape"] == (2, 2)
        resumed = IsingSimulation.from_state_dict(state)
        assert resumed.block_shape == (2, 2)
        sim.run(3)
        resumed.run(3)
        assert np.array_equal(sim.lattice, resumed.lattice)

    def test_explicit_backend_override(self):
        sim = IsingSimulation(8, 2.3, seed=1)
        override = NumpyBackend("float32")
        resumed = IsingSimulation.from_state_dict(sim.state_dict(), backend=override)
        assert resumed.backend is override

    def test_unknown_dtype_raises(self):
        state = IsingSimulation(8, 2.3).state_dict()
        state["dtype"] = "float8"
        with pytest.raises(ValueError, match="unknown dtype"):
            IsingSimulation.from_state_dict(state)

    def test_unknown_backend_kind_raises(self):
        state = IsingSimulation(8, 2.3).state_dict()
        state["backend"] = "gpu"
        with pytest.raises(ValueError, match="unknown backend kind"):
            IsingSimulation.from_state_dict(state)

    def test_legacy_checkpoint_without_new_keys_loads(self):
        # Checkpoints written before backend/block_shape round-tripping
        # carry neither key; they load on the numpy default as before.
        sim = IsingSimulation(8, 2.3, seed=2)
        sim.run(2)
        state = sim.state_dict()
        del state["backend"]
        del state["block_shape"]
        resumed = IsingSimulation.from_state_dict(state)
        sim.run(2)
        resumed.run(2)
        assert np.array_equal(sim.lattice, resumed.lattice)

    def test_masked_conv_rejects_block_shape(self):
        with pytest.raises(ValueError, match="block_shape"):
            IsingSimulation(8, 2.3, updater="masked_conv", block_shape=(2, 2))
