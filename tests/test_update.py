"""Metropolis flip-rule tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.core.kernels import neighbor_sum_roll
from repro.core.update import acceptance_ratio, metropolis_flip

from .conftest import make_lattice


class TestAcceptanceRatio:
    def test_values(self, backend):
        beta = 0.5
        sigma = np.array([[1.0, -1.0]], dtype=np.float32)
        nn = np.array([[4.0, 4.0]], dtype=np.float32)
        ratio = acceptance_ratio(backend, sigma, nn, beta)
        # Flipping an aligned spin costs dE = 2*4 -> exp(-4) at beta=0.5;
        # flipping an anti-aligned spin gains energy -> ratio > 1.
        assert ratio[0, 0] == pytest.approx(np.exp(-4.0), rel=1e-6)
        assert ratio[0, 1] == pytest.approx(np.exp(4.0), rel=1e-5)

    def test_zero_field_ratio_is_one(self, backend):
        sigma = np.ones((2, 2), dtype=np.float32)
        nn = np.zeros((2, 2), dtype=np.float32)
        assert np.all(acceptance_ratio(backend, sigma, nn, 0.7) == 1.0)


class TestMetropolisFlip:
    def test_always_flips_when_energy_drops(self, backend):
        # A +1 spin surrounded by -1 neighbours flips with probability 1.
        sigma = np.ones((3, 3), dtype=np.float32)
        nn = np.full((3, 3), -4.0, dtype=np.float32)
        probs = np.full((3, 3), 0.999999, dtype=np.float32)
        out = metropolis_flip(backend, sigma, nn, probs, beta=1.0)
        assert np.all(out == -1.0)

    def test_never_flips_with_probs_above_ratio(self, backend):
        sigma = np.ones((3, 3), dtype=np.float32)
        nn = np.full((3, 3), 4.0, dtype=np.float32)
        beta = 1.0
        probs = np.full((3, 3), 0.9, dtype=np.float32)  # ratio = exp(-8) << 0.9
        out = metropolis_flip(backend, sigma, nn, probs, beta)
        assert np.all(out == 1.0)

    def test_threshold_is_strict_less_than(self, backend):
        sigma = np.ones((1, 1), dtype=np.float32)
        nn = np.zeros((1, 1), dtype=np.float32)  # ratio = 1
        probs = np.zeros((1, 1), dtype=np.float32)
        assert metropolis_flip(backend, sigma, nn, probs, 1.0)[0, 0] == -1.0
        # probs exactly equal to ratio (1.0 cannot occur; test with ratio<1)
        beta = 0.5
        nn4 = np.full((1, 1), 4.0, dtype=np.float32)
        ratio = float(np.exp(np.float32(-2.0 * beta) * np.float32(4.0)))
        at = np.array([[ratio]], dtype=np.float32)
        assert metropolis_flip(backend, sigma, nn4, at, beta)[0, 0] == 1.0

    def test_mask_freezes_sites(self, backend):
        sigma = np.ones((2, 2), dtype=np.float32)
        nn = np.full((2, 2), -4.0, dtype=np.float32)
        probs = np.zeros((2, 2), dtype=np.float32)
        mask = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        out = metropolis_flip(backend, sigma, nn, probs, 1.0, mask=mask)
        assert np.array_equal(out, [[-1.0, 1.0], [1.0, -1.0]])

    def test_output_stays_pm_one(self, backend):
        plain = make_lattice((16, 16))
        nn = neighbor_sum_roll(plain)
        probs = make_lattice((16, 16), seed=3) * 0.0 + 0.5
        out = metropolis_flip(backend, plain, nn, probs.astype(np.float32), 0.44)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_shape_mismatch_raises(self, backend):
        with pytest.raises(ValueError, match="shape mismatch"):
            metropolis_flip(
                backend,
                np.ones((2, 2), dtype=np.float32),
                np.ones((2, 3), dtype=np.float32),
                np.ones((2, 2), dtype=np.float32),
                1.0,
            )

    def test_bfloat16_output_stays_pm_one(self, bf16_backend):
        plain = make_lattice((16, 16))
        nn = neighbor_sum_roll(plain)
        probs = np.full((16, 16), 0.3, dtype=np.float32)
        out = metropolis_flip(bf16_backend, plain, nn, probs, 0.44)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_acceptance_statistics(self, backend):
        """Empirical flip rate matches min(1, exp(-2 beta sigma nn))."""
        rng = np.random.default_rng(0)
        beta = 0.4
        n = 200_000
        sigma = np.ones((1, n), dtype=np.float32)
        nn = np.full((1, n), 2.0, dtype=np.float32)
        probs = rng.random((1, n), dtype=np.float32)
        out = metropolis_flip(backend, sigma, nn, probs, beta)
        rate = float(np.mean(out == -1.0))
        expected = float(np.exp(-2.0 * beta * 2.0))
        assert rate == pytest.approx(expected, abs=4 * np.sqrt(expected / n))


class TestMaskValidation:
    def test_bad_mask_shape_raises_clearly(self, backend):
        sigma = np.ones((4, 4), dtype=np.float32)
        nn = np.zeros((4, 4), dtype=np.float32)
        probs = np.full((4, 4), 0.5, dtype=np.float32)
        with pytest.raises(ValueError, match="mask shape .* does not match"):
            metropolis_flip(
                backend, sigma, nn, probs, 1.0,
                mask=np.ones((3, 3), dtype=np.float32),
            )

    def test_trailing_broadcast_mask_accepted(self, backend):
        """A rank-2 colour mask broadcasts across a leading chain axis."""
        sigma = np.ones((2, 4, 4), dtype=np.float32)
        nn = np.zeros((2, 4, 4), dtype=np.float32)
        probs = np.full((2, 4, 4), 0.5, dtype=np.float32)
        mask = np.ones((4, 4), dtype=np.float32)
        out = metropolis_flip(backend, sigma, nn, probs, 1.0, mask=mask)
        assert out.shape == (2, 4, 4)

    def test_leading_broadcast_mask_rejected(self, backend):
        sigma = np.ones((2, 4, 4), dtype=np.float32)
        nn = np.zeros((2, 4, 4), dtype=np.float32)
        probs = np.full((2, 4, 4), 0.5, dtype=np.float32)
        with pytest.raises(ValueError, match="trailing"):
            metropolis_flip(backend, sigma, nn, probs, 1.0,
                            mask=np.ones((2, 4, 1), dtype=np.float32))


class TestScalarCache:
    def test_beta_scalar_cached_per_backend(self, backend):
        sigma = np.ones((2, 2), dtype=np.float32)
        nn = np.zeros((2, 2), dtype=np.float32)
        acceptance_ratio(backend, sigma, nn, 0.44)
        cache = backend._device_scalar_cache
        first = cache[("beta", 0.44)]
        acceptance_ratio(backend, sigma, nn, 0.44)
        assert cache[("beta", 0.44)] is first
        assert np.asarray(first) == np.float32(-2.0 * 0.44)

    def test_field_scalar_cached(self, backend):
        sigma = np.ones((2, 2), dtype=np.float32)
        nn = np.zeros((2, 2), dtype=np.float32)
        acceptance_ratio(backend, sigma, nn, 0.44, field=0.37)
        assert ("field", 0.37) in backend._device_scalar_cache

    def test_cache_bounded(self, backend):
        from repro.core.update import _SCALAR_CACHE_MAX, _cached_device_scalar

        for i in range(_SCALAR_CACHE_MAX + 5):
            _cached_device_scalar(backend, ("const", float(i)), float(i))
        assert len(backend._device_scalar_cache) <= _SCALAR_CACHE_MAX
