"""Distributed SPMD pod simulation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RollUpdater
from repro.core.distributed import DistributedIsing
from repro.core.lattice import random_lattice
from repro.rng import PhiloxStream
from repro.tpu.device import PodSlice

from .conftest import make_lattice


def _reference_sweep(plain, beta, u_black, u_white):
    return RollUpdater(beta).sweep(plain.copy(), probs_black=u_black, probs_white=u_white)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="not divisible"):
            DistributedIsing((16, 16), 2.0, core_grid=(3, 2))
        with pytest.raises(ValueError, match="even sides"):
            DistributedIsing((4, 6), 2.0, core_grid=(2, 2))
        with pytest.raises(ValueError, match="temperature"):
            DistributedIsing((8, 8), 0.0, core_grid=(2, 2))
        with pytest.raises(ValueError, match="core grid"):
            DistributedIsing((8, 8), 2.0, core_grid=(0, 2))
        with pytest.raises(ValueError, match="updater"):
            DistributedIsing((8, 8), 2.0, core_grid=(2, 2), updater="wolff")

    def test_pod_grid_must_match(self):
        pod = PodSlice((2, 2))
        with pytest.raises(ValueError, match="pod core grid"):
            DistributedIsing((8, 8), 2.0, core_grid=(1, 2), pod=pod)

    def test_initial_lattice_scattered_and_gathered(self):
        plain = make_lattice((16, 24))
        d = DistributedIsing((16, 24), 2.0, core_grid=(2, 3), initial=plain)
        assert np.array_equal(d.gather_lattice(), plain)

    def test_cold_and_hot_starts(self):
        cold = DistributedIsing((8, 8), 2.0, core_grid=(2, 2), initial="cold")
        assert cold.magnetization() == 1.0
        hot = DistributedIsing((32, 32), 2.0, core_grid=(2, 2), initial="hot", seed=1)
        assert abs(hot.magnetization()) < 0.3
        with pytest.raises(ValueError, match="initial"):
            DistributedIsing((8, 8), 2.0, core_grid=(2, 2), initial="warm")

    def test_num_cores_and_sites(self):
        d = DistributedIsing((16, 16), 2.0, core_grid=(2, 4))
        assert d.num_cores == 8
        assert d.n_sites == 256
        assert d.local_shape == (8, 4)


class TestEquivalenceWithSingleCore:
    @pytest.mark.parametrize("core_grid", [(1, 1), (2, 2), (2, 3), (4, 2), (1, 4)])
    def test_one_sweep_bitwise(self, core_grid):
        shape = (16, 24)
        beta = 0.44
        stream = PhiloxStream(55, 0)
        plain = random_lattice(shape, stream)
        u_black = stream.uniform(shape)
        u_white = stream.uniform(shape)
        reference = _reference_sweep(plain, beta, u_black, u_white)
        d = DistributedIsing(shape, 1.0 / beta, core_grid=core_grid, initial=plain)
        d.sweep(1, probs_black=u_black, probs_white=u_white)
        assert np.array_equal(d.gather_lattice(), reference)

    @pytest.mark.parametrize("updater", ["compact", "conv"])
    def test_multi_sweep_bitwise(self, updater):
        shape = (16, 16)
        beta = 0.5
        stream = PhiloxStream(77, 0)
        plain = random_lattice(shape, stream)
        state = plain.copy()
        d = DistributedIsing(
            shape, 1.0 / beta, core_grid=(2, 2), initial=plain, updater=updater
        )
        for _ in range(5):
            u_black = stream.uniform(shape)
            u_white = stream.uniform(shape)
            state = _reference_sweep(state, beta, u_black, u_white)
            d.sweep(1, probs_black=u_black, probs_white=u_white)
        assert np.array_equal(d.gather_lattice(), state)

    def test_stochastic_chain_is_reproducible(self):
        a = DistributedIsing((16, 16), 2.3, core_grid=(2, 2), seed=4)
        b = DistributedIsing((16, 16), 2.3, core_grid=(2, 2), seed=4)
        a.sweep(4)
        b.sweep(4)
        assert np.array_equal(a.gather_lattice(), b.gather_lattice())

    def test_probs_validation(self):
        d = DistributedIsing((8, 8), 2.0, core_grid=(2, 2))
        with pytest.raises(ValueError, match="n_sweeps == 1"):
            d.sweep(2, probs_black=np.zeros((8, 8), dtype=np.float32))
        with pytest.raises(ValueError, match="probs shape"):
            d.sweep(1, probs_black=np.zeros((4, 4), dtype=np.float32))


class TestAccounting:
    def test_step_time_and_breakdown(self):
        d = DistributedIsing((32, 32), 2.0, core_grid=(2, 2), seed=5)
        with pytest.raises(RuntimeError, match="no sweeps"):
            d.step_time()
        d.sweep(2)
        assert d.step_time() > 0.0
        assert d.throughput_flips_per_ns() > 0.0
        breakdown = d.breakdown()
        assert set(breakdown) == {"mxu", "vpu", "formatting", "communication"}
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["communication"] > 0.0

    def test_collectives_executed_per_sweep(self):
        d = DistributedIsing((16, 16), 2.0, core_grid=(2, 2))
        d.sweep(3)
        # 4 halo permutes per colour phase, 2 phases per sweep.
        assert d.runtime.collectives_executed == 3 * 8

    def test_bfloat16_distributed(self):
        d = DistributedIsing((16, 16), 2.3, core_grid=(2, 2), dtype="bfloat16", seed=6)
        d.sweep(3)
        assert set(np.unique(d.gather_lattice())) <= {-1.0, 1.0}

    def test_energy_and_magnetization(self):
        d = DistributedIsing((16, 16), 1.0, core_grid=(2, 2), initial="cold")
        assert d.energy_per_spin() == -2.0
        d.sweep(3)
        assert d.magnetization() > 0.9
