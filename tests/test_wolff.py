"""Wolff cluster sampler tests — the independent physics cross-check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulation import IsingSimulation
from repro.core.wolff import WolffUpdater
from repro.observables.exact import exact_observables
from repro.observables.onsager import T_CRITICAL, spontaneous_magnetization
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestMechanics:
    def test_step_flips_exactly_one_cluster(self):
        updater = WolffUpdater(0.6)
        plain = make_lattice((8, 8))
        out, size = updater.step(plain, PhiloxStream(1, 0))
        changed = int(np.sum(out != plain))
        assert changed == size
        assert size >= 1
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_cluster_is_connected_to_seed_spin(self):
        """All flipped sites had the seed's original orientation."""
        updater = WolffUpdater(0.5)
        plain = make_lattice((12, 12), seed=3)
        out, _ = updater.step(plain, PhiloxStream(2, 0))
        flipped = out != plain
        original_values = plain[flipped]
        assert len(np.unique(original_values)) <= 1

    def test_low_temperature_flips_whole_lattice(self):
        """p_add -> 1 as beta grows: the cluster spans the ordered lattice."""
        updater = WolffUpdater(5.0)
        plain = np.ones((8, 8), dtype=np.float32)
        out, size = updater.step(plain, PhiloxStream(3, 0))
        assert size == 64
        assert np.all(out == -1.0)

    def test_high_temperature_clusters_are_small(self):
        updater = WolffUpdater(0.05)
        plain = make_lattice((32, 32), seed=4)
        sizes = []
        stream = PhiloxStream(4, 0)
        for _ in range(50):
            plain, size = updater.step(plain, stream)
            sizes.append(size)
        assert np.mean(sizes) < 4.0

    def test_sweep_equivalent_touches_enough_sites(self):
        updater = WolffUpdater(0.44)
        plain = make_lattice((16, 16), seed=5)
        out = updater.sweep_equivalent(plain, PhiloxStream(5, 0))
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_reproducible(self):
        updater = WolffUpdater(0.44)
        plain = make_lattice((16, 16), seed=6)
        a = updater.sweep_plain(plain, PhiloxStream(7, 0))
        b = updater.sweep_plain(plain, PhiloxStream(7, 0))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError, match="beta"):
            WolffUpdater(0.0)


class TestPhysicsAgreement:
    def test_matches_exact_enumeration(self):
        """<|m|> and U4 on 4x4 vs brute force — a fully independent chain."""
        temperature = 2.5
        beta = 1.0 / temperature
        exact = exact_observables((4, 4), beta)
        updater = WolffUpdater(beta)
        stream = PhiloxStream(11, 0)
        plain = make_lattice((4, 4), seed=8)
        for _ in range(300):
            plain, _ = updater.step(plain, stream)
        abs_m, m2, m4, n = 0.0, 0.0, 0.0, 6000
        for _ in range(n):
            plain, _ = updater.step(plain, stream)
            m = float(plain.mean())
            abs_m += abs(m)
            m2 += m * m
            m4 += m**4
        abs_m, m2, m4 = abs_m / n, m2 / n, m4 / n
        assert abs_m == pytest.approx(exact["abs_m"], abs=0.015)
        u4 = 1.0 - m4 / (3.0 * m2 * m2)
        assert u4 == pytest.approx(exact["u4"], abs=0.03)

    def test_agrees_with_checkerboard_near_tc(self):
        """Cluster and local chains give the same <|m|> at criticality —
        the strongest mutual validation the library has."""
        size = 16
        beta = 1.0 / T_CRITICAL
        # Wolff chain.
        updater = WolffUpdater(beta)
        stream = PhiloxStream(13, 0)
        plain = make_lattice((size, size), seed=9)
        for _ in range(200):
            plain, _ = updater.step(plain, stream)
        wolff_m, n = 0.0, 4000
        for _ in range(n):
            plain, _ = updater.step(plain, stream)
            wolff_m += abs(float(plain.mean()))
        wolff_m /= n
        # Checkerboard chain.
        sim = IsingSimulation(size, T_CRITICAL, seed=14)
        res = sim.sample(n_samples=6000, burn_in=1000)
        assert wolff_m == pytest.approx(res.abs_m, abs=5 * res.abs_m_err + 0.01)

    def test_ordered_phase_magnetization(self):
        temperature = 1.9
        updater = WolffUpdater(1.0 / temperature)
        stream = PhiloxStream(15, 0)
        plain = np.ones((24, 24), dtype=np.float32)
        for _ in range(100):
            plain, _ = updater.step(plain, stream)
        total, n = 0.0, 1500
        for _ in range(n):
            plain, _ = updater.step(plain, stream)
            total += abs(float(plain.mean()))
        exact_m = float(spontaneous_magnetization(temperature))
        assert total / n == pytest.approx(exact_m, abs=0.02)


class _BoundaryDrawStream:
    """Seed draw returns exactly 1.0 — the float32 round-up hazard.

    ``uniform`` is nominally in [0, 1), but a float32 uniform can land
    exactly on 1.0 once scaled (or via a foreign generator); the seed
    site index must clamp instead of indexing one past the edge.
    Subsequent draws delegate to a real stream so the BFS still runs.
    """

    def __init__(self):
        self._inner = PhiloxStream(0, 0)
        self._first = True

    def uniform(self, shape):
        if self._first:
            self._first = False
            return np.array([1.0, 0.5], dtype=np.float32)
        return self._inner.uniform(shape)


class TestSeedSiteClamp:
    def test_boundary_draw_clamps_to_last_site(self):
        updater = WolffUpdater(0.6)
        rows, cols = 8, 8
        plain = make_lattice((rows, cols), seed=4)
        out, size = updater.step(plain, _BoundaryDrawStream())
        # Without the clamp this indexes sigma[8, 4] and raises.
        assert size >= 1
        # The seed site is part of the flipped cluster: row clamps to
        # rows - 1, column is int(0.5 * cols).
        assert out[rows - 1, cols // 2] == -plain[rows - 1, cols // 2]

    def test_interior_draws_bit_identical_to_history(self):
        # The clamp must not perturb non-boundary trajectories.
        updater = WolffUpdater(0.6)
        plain = make_lattice((8, 8), seed=4)
        a, size_a = updater.step(plain, PhiloxStream(1, 0))
        b, size_b = updater.step(plain, PhiloxStream(1, 0))
        assert size_a == size_b
        assert np.array_equal(a, b)
