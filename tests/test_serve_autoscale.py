"""Autoscaler hysteresis, cooldown, bounds, gauges, and zero job loss.

The controller tests run against a stub router whose per-shard load is
set directly — pressure is the input under test, not an emergent
property — while the zero-loss test drives a real
:class:`~repro.serve.ShardRouter` so scale-down exercises the actual
checkpoint-handoff path.
"""

import pytest

from repro.api import SimulationConfig
from repro.sched import Scheduler
from repro.serve import Autoscaler, AutoscalePolicy, ShardRouter
from repro.telemetry.metrics import MetricsRegistry


class StubPool:
    def makespan(self):
        return 0.0


class StubScheduler:
    def __init__(self):
        self.pool = StubPool()

    def outstanding_service(self):
        return 0.0


class StubShard:
    def __init__(self, shard_id, load=0.0):
        self.id = shard_id
        self.load = load
        self.scheduler = StubScheduler()

    @property
    def load_factor(self):
        return self.load

    @property
    def queue_depth(self):
        return int(self.load * 10)

    @property
    def busy(self):
        return self.load > 0


class StubRouter:
    """Duck-typed router: shards are load dials, scaling is bookkeeping."""

    def __init__(self, n_shards=2):
        self._next = 0
        self.shards = []
        for _ in range(n_shards):
            self.add_shard()

    @property
    def n_shards(self):
        return len(self.shards)

    def add_shard(self):
        shard = StubShard(self._next)
        self._next += 1
        self.shards.append(shard)
        return shard

    def remove_shard(self, shard_id, on_rehome=None):
        self.shards = [s for s in self.shards if s.id != shard_id]
        return 0

    def set_load(self, load):
        for shard in self.shards:
            shard.load = load


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        AutoscalePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_shards=0),
            dict(min_shards=4, max_shards=2),
            dict(low_water=0.8, high_water=0.5),
            dict(low_water=-0.1),
            dict(hysteresis=0),
            dict(cooldown=-1),
        ],
    )
    def test_rejects_bad_policies(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalePolicy(**kwargs)


class TestHysteresis:
    def policy(self, **overrides):
        base = dict(
            min_shards=1, max_shards=4, high_water=0.8, low_water=0.2,
            hysteresis=3, cooldown=2,
        )
        base.update(overrides)
        return AutoscalePolicy(**base)

    def test_sustained_pressure_scales_up_after_hysteresis(self):
        router = StubRouter(n_shards=2)
        scaler = Autoscaler(router, policy=self.policy())
        router.set_load(0.9)
        assert scaler.observe() is None
        assert scaler.observe() is None
        assert scaler.observe() == "up"
        assert router.n_shards == 3

    def test_one_spike_does_not_scale(self):
        router = StubRouter(n_shards=2)
        scaler = Autoscaler(router, policy=self.policy())
        router.set_load(0.9)
        scaler.observe()
        scaler.observe()
        router.set_load(0.5)  # spike ends: counter resets
        scaler.observe()
        router.set_load(0.9)
        scaler.observe()
        scaler.observe()
        assert router.n_shards == 2

    def test_cooldown_blocks_back_to_back_events(self):
        router = StubRouter(n_shards=2)
        scaler = Autoscaler(router, policy=self.policy(hysteresis=1, cooldown=3))
        router.set_load(0.9)
        assert scaler.observe() == "up"
        router.set_load(0.9)  # the new shard fills up too
        # Hysteresis is satisfied every tick now, but cooldown holds.
        assert scaler.observe() is None
        assert scaler.observe() is None
        assert scaler.observe() is None
        assert scaler.observe() == "up"
        assert router.n_shards == 4

    def test_idle_scales_down_to_min(self):
        router = StubRouter(n_shards=3)
        scaler = Autoscaler(
            router, policy=self.policy(hysteresis=2, cooldown=0)
        )
        router.set_load(0.0)
        downs = [scaler.observe() for _ in range(10)]
        assert downs.count("down") == 2
        assert router.n_shards == 1  # pinned at min_shards

    def test_max_shards_is_a_ceiling(self):
        router = StubRouter(n_shards=2)
        scaler = Autoscaler(
            router, policy=self.policy(max_shards=3, hysteresis=1, cooldown=0)
        )
        router.set_load(0.9)
        for _ in range(5):
            scaler.observe()
        assert router.n_shards == 3

    def test_events_and_serve_log_recorded(self):
        router = StubRouter(n_shards=1)
        scaler = Autoscaler(
            router, policy=self.policy(hysteresis=1, cooldown=0)
        )
        router.set_load(1.0)
        scaler.observe()
        assert scaler.events[0]["kind"] == "scale_up"
        span = scaler.serve_log[0]
        assert span["name"].startswith("scale_up")
        assert span["args"]["n_shards"] == 2
        assert span["duration"] > 0

    def test_gauges_published(self):
        registry = MetricsRegistry()
        router = StubRouter(n_shards=2)
        scaler = Autoscaler(router, policy=self.policy(), metrics=registry)
        router.set_load(0.6)
        scaler.observe()
        snapshot = registry.as_dict()
        assert snapshot["serve_shards"]["value"] == 2
        assert snapshot["serve_pressure"]["value"] == pytest.approx(0.6)
        assert snapshot["serve_queue_depth"]["value"] == 12

    def test_publish_without_tick(self):
        registry = MetricsRegistry()
        router = StubRouter(n_shards=2)
        scaler = Autoscaler(router, metrics=registry)
        scaler.publish()
        assert scaler.observations == 0
        assert registry.as_dict()["serve_shards"]["value"] == 2


class TestZeroLoss:
    def test_scale_down_never_strands_accepted_jobs(self):
        """Scale-down through the real router: every accepted job
        completes even though its shard disappeared mid-run."""

        def factory(shard_id):
            return Scheduler(n_devices=1, max_batch=2, quantum=4, max_queue=32)

        router = ShardRouter(n_shards=3, scheduler_factory=factory)
        policy = AutoscalePolicy(
            min_shards=1, max_shards=3, high_water=0.9, low_water=0.3,
            hysteresis=1, cooldown=0,
        )
        # Track each accepted job's *current* handle: adoption mints a
        # fresh Job on the surviving shard (the serve layer re-points
        # its references exactly like this).
        current = {}

        def rehome(token, shard, new_job):
            current[token["cache_key"]] = new_job

        scaler = Autoscaler(router, policy=policy, on_rehome=rehome)
        for seed in range(9):
            _, job = router.submit(
                SimulationConfig(shape=8, temperature=2.0, seed=seed), 12
            )
            current[job.cache_key] = job
        # Run partway, then let the (now low-pressure) controller shrink
        # the fleet while work is still in flight.
        for _ in range(2):
            router.step()
        while router.n_shards > 1:
            action = scaler.observe()
            assert action in (None, "down")
            router.step()
        router.drain()
        assert scaler.scale_downs == 2
        assert len(current) == 9
        for job in current.values():
            assert job.done
        # Every key is resolved in some surviving cache.
        cached = set()
        for shard in router.shards:
            cached.update(key for key, _ in shard.scheduler.cache.export())
        assert set(current) <= cached
