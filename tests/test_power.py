"""Energy-per-flip estimate tests."""

from __future__ import annotations

import pytest

from repro.tpu.power import (
    TESLA_V100_WATTS,
    TPU_V3_CORE_WATTS,
    energy_per_flip_nj,
)


class TestEnergyPerFlip:
    def test_paper_v100_row(self):
        """Table 1: V100 at 11.3704 flips/ns and 250 W -> 21.99 nJ/flip."""
        assert energy_per_flip_nj(TESLA_V100_WATTS, 11.3704) == pytest.approx(
            21.9869, rel=1e-3
        )

    def test_paper_tpu_row(self):
        """Table 1: TPU core at 12.8783 flips/ns and 100 W -> 7.765 nJ/flip."""
        assert energy_per_flip_nj(TPU_V3_CORE_WATTS, 12.8783) == pytest.approx(
            7.7650, rel=1e-3
        )

    def test_units(self):
        # 1 W at 1 flip/ns is exactly 1 nJ per flip.
        assert energy_per_flip_nj(1.0, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="power"):
            energy_per_flip_nj(0.0, 1.0)
        with pytest.raises(ValueError, match="throughput"):
            energy_per_flip_nj(1.0, 0.0)
