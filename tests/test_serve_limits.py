"""Token buckets, tenant quotas, and the front-door rate limiter.

Every test drives refill through an injected fake clock — no sleeping,
no wall-time flakiness; the hints the limiter returns are exactly the
modeled seconds the front door turns into ``Retry-After`` headers.
"""

import pytest

from repro.serve import RateLimiter, TenantQuota, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_debits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        assert bucket.tokens == 4.0
        for _ in range(4):
            assert bucket.take() == 0.0
        assert bucket.tokens == 0.0

    def test_overdraw_returns_modeled_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.take() == 0.0
        # Empty: one token at 2/s is 0.5 s away.
        assert bucket.take() == pytest.approx(0.5)
        # A failed take never debits.
        assert bucket.take() == pytest.approx(0.5)

    def test_refills_at_rate_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        for _ in range(3):
            bucket.take()
        clock.advance(1.0)
        assert bucket.tokens == pytest.approx(2.0)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(3.0)  # capped

    def test_fractional_cost(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.take(0.25) == 0.0
        assert bucket.take(1.0) == pytest.approx(0.25)

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1, 1), (1, 0), (1, -2)])
    def test_rejects_nonpositive_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError, match="cost"):
            TokenBucket(rate=1.0, burst=1.0).take(0.0)


class TestRateLimiter:
    def test_default_quota_admits(self):
        limiter = RateLimiter(clock=FakeClock())
        assert limiter.admit("alice") == 0.0
        assert limiter.admitted["alice"] == 1

    def test_per_tenant_override(self):
        clock = FakeClock()
        limiter = RateLimiter(
            per_tenant={"tight": TenantQuota(rate=1.0, burst=1.0)},
            clock=clock,
        )
        assert limiter.admit("tight") == 0.0
        wait = limiter.admit("tight")
        assert wait == pytest.approx(1.0)
        assert limiter.throttled["tight"] == 1
        # Tenants without an override keep the generous default.
        for _ in range(10):
            assert limiter.admit("other") == 0.0

    def test_refill_lifts_throttle(self):
        clock = FakeClock()
        limiter = RateLimiter(
            per_tenant={"t": TenantQuota(rate=2.0, burst=1.0)}, clock=clock
        )
        assert limiter.admit("t") == 0.0
        assert limiter.admit("t") > 0.0
        clock.advance(0.5)
        assert limiter.admit("t") == 0.0

    def test_outstanding_cap_throttles_without_spending_tokens(self):
        clock = FakeClock()
        limiter = RateLimiter(
            per_tenant={"t": TenantQuota(rate=4.0, burst=8.0, max_outstanding=2)},
            clock=clock,
        )
        assert limiter.admit("t", outstanding=1) == 0.0
        wait = limiter.admit("t", outstanding=2)
        assert wait > 0.0
        # The refusal did not touch the bucket.
        assert limiter._bucket("t").tokens == pytest.approx(7.0)
        # Below the cap again: admitted.
        assert limiter.admit("t", outstanding=1) == 0.0

    def test_stats_shape(self):
        clock = FakeClock()
        limiter = RateLimiter(
            per_tenant={"t": TenantQuota(rate=1.0, burst=1.0)}, clock=clock
        )
        limiter.admit("t")
        limiter.admit("t")
        stats = limiter.stats()
        assert stats["t"]["admitted"] == 1
        assert stats["t"]["throttled"] == 1
        assert stats["t"]["rate"] == 1.0
        assert stats["t"]["tokens"] == pytest.approx(0.0)
