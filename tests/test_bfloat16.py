"""bfloat16 emulation: bit-exact RNE rounding semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tpu.bfloat16 import (
    BF16_EPS,
    BF16_MAX,
    BF16_SMALLEST_NORMAL,
    from_bits,
    is_representable,
    round_to_bfloat16,
    to_bits,
)


class TestExactValues:
    def test_spins_and_small_integers_exact(self):
        values = np.array([-4, -3, -2, -1, 0, 1, 2, 3, 4], dtype=np.float32)
        assert np.array_equal(round_to_bfloat16(values), values)

    def test_powers_of_two_exact(self):
        values = np.array([2.0**e for e in range(-30, 31)], dtype=np.float32)
        assert np.array_equal(round_to_bfloat16(values), values)

    def test_mantissa_granularity(self):
        # 1 + eps/2 rounds to even (1.0); 1 + eps stays.
        assert round_to_bfloat16(np.float32(1.0 + BF16_EPS)) == np.float32(1.0 + BF16_EPS)
        assert round_to_bfloat16(np.float32(1.0 + BF16_EPS / 2)) == np.float32(1.0)

    def test_round_to_nearest_even_tie(self):
        # 1 + 3*eps/2 is exactly halfway between 1+eps and 1+2eps;
        # RNE picks the even mantissa (1 + 2 eps).
        tie = np.float32(1.0 + 1.5 * BF16_EPS)
        assert round_to_bfloat16(tie) == np.float32(1.0 + 2.0 * BF16_EPS)

    def test_known_rounding(self):
        # 0.1 in bfloat16 is 0x3DCD = 0.100097656...
        assert round_to_bfloat16(np.float32(0.1)) == np.float32(0.100097656)


class TestSpecials:
    def test_nan_stays_nan(self):
        out = round_to_bfloat16(np.array([np.nan], dtype=np.float32))
        assert np.isnan(out[0])

    def test_infinities_preserved(self):
        out = round_to_bfloat16(np.array([np.inf, -np.inf], dtype=np.float32))
        assert out[0] == np.inf and out[1] == -np.inf

    def test_overflow_rounds_to_inf(self):
        with np.errstate(over="ignore"):
            just_above = np.float32(BF16_MAX) * np.float32(1.01)
        assert round_to_bfloat16(just_above) == np.inf

    def test_max_finite_preserved(self):
        assert round_to_bfloat16(np.float32(BF16_MAX)) == np.float32(BF16_MAX)

    def test_signed_zero(self):
        out = round_to_bfloat16(np.array([0.0, -0.0], dtype=np.float32))
        assert np.array_equal(np.signbit(out), [False, True])

    def test_smallest_normal(self):
        assert round_to_bfloat16(np.float32(BF16_SMALLEST_NORMAL)) == np.float32(
            BF16_SMALLEST_NORMAL
        )


class TestBits:
    def test_roundtrip_through_bits(self):
        values = np.array([1.0, -2.5, 0.15625, 3.0e38, 1e-20], dtype=np.float32)
        rounded = round_to_bfloat16(values)
        assert np.array_equal(from_bits(to_bits(values)), rounded)

    def test_known_bit_patterns(self):
        assert to_bits(np.float32(1.0))[()] == 0x3F80
        assert to_bits(np.float32(-2.0))[()] == 0xC000
        assert from_bits(np.uint16(0x3F80)) == np.float32(1.0)

    def test_is_representable(self):
        assert bool(is_representable(np.float32(1.0)))
        assert not bool(is_representable(np.float32(1.0 + BF16_EPS / 2)))


class TestProperties:
    @given(st.floats(width=32, allow_nan=False))
    def test_idempotent(self, x):
        once = round_to_bfloat16(np.float32(x))
        assert np.array_equal(round_to_bfloat16(once), once)

    @given(st.floats(min_value=1e-30, max_value=1e30))
    def test_relative_error_bounded(self, x):
        rounded = float(round_to_bfloat16(np.float32(x)))
        assert abs(rounded - x) <= (BF16_EPS / 2) * abs(x) * 1.0000001

    @given(st.floats(min_value=-1e30, max_value=1e30))
    def test_monotone_and_sign_preserving(self, x):
        rounded = float(round_to_bfloat16(np.float32(x)))
        if x > 0:
            assert rounded >= 0
        if x < 0:
            assert rounded <= 0

    @given(
        st.floats(min_value=-1e30, max_value=1e30),
        st.floats(min_value=-1e30, max_value=1e30),
    )
    def test_order_preserved(self, a, b):
        ra = float(round_to_bfloat16(np.float32(a)))
        rb = float(round_to_bfloat16(np.float32(b)))
        if a <= b:
            assert ra <= rb


class TestRoundIntoTwin:
    def test_bit_identical_to_allocating_round(self):
        from repro.tpu.bfloat16 import round_to_bfloat16, round_to_bfloat16_into

        rng = np.random.default_rng(8)
        x = rng.normal(scale=1e3, size=(64,)).astype(np.float32)
        expected = round_to_bfloat16(x)
        arr = x.copy()
        round_to_bfloat16_into(arr)
        np.testing.assert_array_equal(arr, expected)

    def test_special_values(self):
        from repro.tpu.bfloat16 import round_to_bfloat16, round_to_bfloat16_into

        x = np.array(
            [np.nan, np.inf, -np.inf, 0.0, -0.0, 1e-40, 3.3895e38],
            dtype=np.float32,
        )
        expected = round_to_bfloat16(x.copy())
        arr = x.copy()
        round_to_bfloat16_into(arr)
        np.testing.assert_array_equal(
            arr[~np.isnan(expected)], expected[~np.isnan(expected)]
        )
        assert np.isnan(arr[0]) and np.isnan(expected[0])
        assert arr[1] == np.inf and arr[2] == -np.inf

    def test_scratch_reuse(self):
        from repro.tpu.bfloat16 import round_to_bfloat16, round_to_bfloat16_into

        rng = np.random.default_rng(9)
        bias = np.empty((16,), dtype=np.uint32)
        nan = np.empty((16,), dtype=bool)
        for _ in range(3):
            x = rng.normal(size=(16,)).astype(np.float32)
            expected = round_to_bfloat16(x)
            round_to_bfloat16_into(x, bias_scratch=bias, nan_scratch=nan)
            np.testing.assert_array_equal(x, expected)

    def test_rejects_wrong_dtype(self):
        from repro.tpu.bfloat16 import round_to_bfloat16_into

        with pytest.raises(ValueError, match="float32"):
            round_to_bfloat16_into(np.zeros(4, dtype=np.float64))
