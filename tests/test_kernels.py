"""Neighbour-sum kernel tests: all formulations equal the roll ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import NumpyBackend
from repro.core.kernels import (
    PhaseHalos,
    compact_neighbor_sums,
    kernel_K,
    kernel_K_hat,
    neighbor_sum_grid,
    neighbor_sum_roll,
)
from repro.core.lattice import (
    CompactLattice,
    grid_to_plain,
    plain_to_grid,
    plain_to_quarters,
    random_lattice,
)
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestKernelMatrices:
    def test_kernel_K_structure(self):
        k = kernel_K(5)
        assert np.array_equal(k, k.T)
        assert np.all(np.diag(k) == 0)
        assert np.all(np.diag(k, 1) == 1)
        assert k.sum() == 2 * 4

    def test_kernel_K_hat_structure(self):
        k = kernel_K_hat(5)
        assert np.all(np.diag(k) == 1)
        assert np.all(np.diag(k, 1) == 1)
        assert np.all(np.tril(k, -1) == 0)
        assert k.sum() == 5 + 4

    def test_matmul_semantics(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 4)
        # x @ K sums left and right neighbours (no wrap).
        out = x @ kernel_K(4)
        assert np.array_equal(out, [[1, 2, 4, 2]])
        # x @ K_hat adds self and left neighbour.
        out = x @ kernel_K_hat(4)
        assert np.array_equal(out, [[0, 1, 3, 5]])

    def test_size_validation(self):
        with pytest.raises(ValueError):
            kernel_K(0)
        with pytest.raises(ValueError):
            kernel_K_hat(0)


class TestNeighborSumRoll:
    def test_uniform_lattice(self):
        assert np.all(neighbor_sum_roll(np.ones((6, 6), dtype=np.float32)) == 4.0)

    def test_single_up_spin(self):
        plain = -np.ones((5, 5), dtype=np.float32)
        plain[2, 2] = 1.0
        nn = neighbor_sum_roll(plain)
        assert nn[2, 2] == -4.0
        assert nn[1, 2] == nn[3, 2] == nn[2, 1] == nn[2, 3] == -2.0
        assert nn[0, 0] == -4.0

    def test_torus_wrap(self):
        plain = -np.ones((4, 4), dtype=np.float32)
        plain[0, 0] = 1.0
        nn = neighbor_sum_roll(plain)
        assert nn[3, 0] == -2.0  # wraps vertically
        assert nn[0, 3] == -2.0  # wraps horizontally


class TestNeighborSumGrid:
    @pytest.mark.parametrize(
        "shape, block",
        [
            ((8, 8), (4, 4)),
            ((12, 16), (4, 4)),
            ((8, 12), (8, 12)),
            ((16, 8), (2, 2)),
            ((6, 6), (3, 3)),
            ((4, 4), (2, 2)),
        ],
    )
    def test_matches_roll(self, shape, block, backend):
        plain = make_lattice(shape)
        nn = neighbor_sum_grid(plain_to_grid(plain, block), backend)
        assert np.array_equal(grid_to_plain(nn), neighbor_sum_roll(plain))

    def test_rank_check(self, backend):
        with pytest.raises(ValueError, match="rank-4"):
            neighbor_sum_grid(np.zeros((4, 4)), backend)

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(1, 3),
        n=st.integers(1, 3),
        r=st.integers(2, 5),
        c=st.integers(2, 5),
        seed=st.integers(0, 500),
    )
    def test_property_matches_roll(self, m, n, r, c, seed):
        plain = random_lattice((m * r, n * c), PhiloxStream(seed, 3))
        nn = neighbor_sum_grid(plain_to_grid(plain, (r, c)), NumpyBackend())
        assert np.array_equal(grid_to_plain(nn), neighbor_sum_roll(plain))


class TestCompactNeighborSums:
    @pytest.mark.parametrize("method", ["matmul", "conv"])
    @pytest.mark.parametrize(
        "shape, block",
        [
            ((8, 8), (2, 2)),
            ((16, 24), (4, 3)),
            ((8, 8), (4, 4)),
            ((4, 4), (2, 2)),
            ((12, 8), (6, 4)),
            ((4, 8), (1, 1)),
        ],
    )
    def test_matches_roll(self, shape, block, method, backend):
        plain = make_lattice(shape)
        truth = plain_to_quarters(neighbor_sum_roll(plain))
        lat = CompactLattice.from_plain(plain, block)
        nn0, nn1 = compact_neighbor_sums(lat, "black", backend, method=method)
        assert np.array_equal(grid_to_plain(nn0), truth[0])
        assert np.array_equal(grid_to_plain(nn1), truth[3])
        nn0, nn1 = compact_neighbor_sums(lat, "white", backend, method=method)
        assert np.array_equal(grid_to_plain(nn0), truth[1])
        assert np.array_equal(grid_to_plain(nn1), truth[2])

    def test_conv_and_matmul_bitwise_equal(self, backend):
        plain = make_lattice((16, 16), seed=5)
        lat = CompactLattice.from_plain(plain, (2, 4))
        for color in ("black", "white"):
            a = compact_neighbor_sums(lat, color, backend, method="matmul")
            b = compact_neighbor_sums(lat, color, backend, method="conv")
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])

    def test_bad_color(self, backend):
        lat = CompactLattice.from_plain(make_lattice((4, 4)))
        with pytest.raises(ValueError, match="color"):
            compact_neighbor_sums(lat, "green", backend)

    def test_bad_method(self, backend):
        lat = CompactLattice.from_plain(make_lattice((4, 4)))
        with pytest.raises(ValueError, match="method"):
            compact_neighbor_sums(lat, "black", backend, method="fft")

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(1, 3),
        n=st.integers(1, 3),
        r=st.integers(1, 4),
        c=st.integers(1, 4),
        seed=st.integers(0, 500),
    )
    def test_property_matches_roll(self, m, n, r, c, seed):
        plain = random_lattice((2 * m * r, 2 * n * c), PhiloxStream(seed, 4))
        truth = plain_to_quarters(neighbor_sum_roll(plain))
        lat = CompactLattice.from_plain(plain, (r, c))
        be = NumpyBackend()
        nn0, nn1 = compact_neighbor_sums(lat, "black", be)
        assert np.array_equal(grid_to_plain(nn0), truth[0])
        assert np.array_equal(grid_to_plain(nn1), truth[3])


class TestHalos:
    def test_halo_equal_to_wrap_changes_nothing(self, backend):
        """Explicit halos equal to the torus wrap reproduce halo-free sums."""
        plain = make_lattice((8, 12), seed=9)
        lat = CompactLattice.from_plain(plain, (2, 3))
        m, n, r, c = lat.grid_shape
        halos = PhaseHalos(
            north=lat.s10[-1, :, -1, :].copy(),
            south=lat.s01[0, :, 0, :].copy(),
            west=lat.s01[:, -1, :, -1].copy(),
            east=lat.s10[:, 0, :, 0].copy(),
        )
        base = compact_neighbor_sums(lat, "black", backend)
        with_halos = compact_neighbor_sums(lat, "black", backend, halos=halos)
        assert np.array_equal(base[0], with_halos[0])
        assert np.array_equal(base[1], with_halos[1])

    def test_halo_values_are_used(self, backend):
        """A wrong halo changes exactly the boundary rows/cols it feeds."""
        plain = make_lattice((8, 8), seed=2)
        lat = CompactLattice.from_plain(plain, (2, 2))
        wrong = np.full_like(lat.s10[-1, :, -1, :], 3.0)
        nn0, _ = compact_neighbor_sums(
            lat, "black", backend, halos=PhaseHalos(north=wrong)
        )
        base0, _ = compact_neighbor_sums(lat, "black", backend)
        diff = nn0 != base0
        # Only the top block row's first lattice row can differ.
        assert not diff[1:].any()
        assert not diff[0, :, 1:, :].any()
        assert diff[0, :, 0, :].any()

    def test_halo_shape_validated(self, backend):
        lat = CompactLattice.from_plain(make_lattice((8, 8)), (2, 2))
        bad = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="halo shape"):
            compact_neighbor_sums(lat, "black", backend, halos=PhaseHalos(north=bad))
