"""Job lifecycle state machine and JobSpec validation."""

import numpy as np
import pytest

from repro.api import SimulationConfig
from repro.sched.cache import canonical_cache_key
from repro.sched.job import Job, JobResult, JobSpec, JobState


def _job(config=None, sweeps=10, **kwargs) -> Job:
    config = config if config is not None else SimulationConfig(shape=8)
    spec = JobSpec(config=config, sweeps=sweeps, **kwargs)
    return Job(0, spec, canonical_cache_key(config, sweeps))


class TestJobSpecValidation:
    def test_accepts_plain_single_chain_config(self):
        spec = JobSpec(config=SimulationConfig(shape=8), sweeps=5)
        assert spec.sweeps == 5
        assert spec.priority == 0
        assert spec.tenant == "default"

    def test_rejects_non_config(self):
        with pytest.raises(TypeError, match="SimulationConfig"):
            JobSpec(config={"shape": 8}, sweeps=5)

    def test_rejects_nonpositive_sweeps(self):
        with pytest.raises(ValueError, match="sweeps"):
            JobSpec(config=SimulationConfig(shape=8), sweeps=0)

    @pytest.mark.parametrize(
        "field_name,value",
        [
            ("grid", (2, 2)),
            ("fault_plan", None),  # replaced below
            ("checkpoint_interval", 3),
        ],
    )
    def test_rejects_distributed_fields(self, field_name, value):
        if field_name == "fault_plan":
            from repro.mesh.faults import FaultPlan

            value = FaultPlan()
        config = SimulationConfig(shape=8, **{field_name: value})
        with pytest.raises(ValueError, match=field_name):
            JobSpec(config=config, sweeps=5)

    def test_rejects_record_trace(self):
        config = SimulationConfig(shape=8, record_trace=True)
        with pytest.raises(ValueError, match="record_trace"):
            JobSpec(config=config, sweeps=5)

    def test_rejects_attached_telemetry(self):
        config = SimulationConfig(shape=8, telemetry=True)
        with pytest.raises(ValueError, match="telemetry"):
            JobSpec(config=config, sweeps=5)

    def test_telemetry_false_is_fine(self):
        JobSpec(config=SimulationConfig(shape=8, telemetry=False), sweeps=5)

    def test_rejects_prebuilt_backend_instance(self):
        from repro.backend.numpy_backend import NumpyBackend

        config = SimulationConfig(shape=8, backend=NumpyBackend())
        with pytest.raises(ValueError, match="content-addressed"):
            JobSpec(config=config, sweeps=5)

    @pytest.mark.parametrize("backend", [None, "numpy", "tpu"])
    def test_nameable_backends_accepted(self, backend):
        JobSpec(config=SimulationConfig(shape=8, backend=backend), sweeps=5)

    def test_rejects_ladder(self):
        """A replica-exchange ladder is one coupled simulation, not a
        batch of independent jobs — the error points at tempering()."""
        from repro.api import LadderSpec

        config = SimulationConfig(shape=8, ladder=LadderSpec(betas=(0.4, 0.5)))
        with pytest.raises(ValueError, match="tempering"):
            JobSpec(config=config, sweeps=5)

    def test_accepts_disordered_model(self):
        from repro.api import ModelSpec

        config = SimulationConfig(
            shape=8,
            updater="masked_conv",
            model=ModelSpec(couplings="bimodal", disorder_seed=3),
        )
        spec = JobSpec(config=config, sweeps=5)
        assert spec.config.resolved_model.couplings == "bimodal"


class TestLifecycle:
    def test_normal_path(self):
        job = _job()
        assert job.state == JobState.QUEUED
        job.transition(JobState.ADMITTED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        assert job.done

    def test_cache_shortcut(self):
        job = _job()
        job.transition(JobState.DONE)
        assert job.done

    def test_preemption_cycle(self):
        job = _job()
        job.transition(JobState.ADMITTED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.PREEMPTED)
        job.transition(JobState.QUEUED)
        job.transition(JobState.ADMITTED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)

    def test_admitted_can_requeue_without_running(self):
        job = _job()
        job.transition(JobState.ADMITTED)
        job.transition(JobState.QUEUED)

    @pytest.mark.parametrize(
        "path,bad",
        [
            ((), JobState.RUNNING),
            ((), JobState.PREEMPTED),
            ((JobState.ADMITTED,), JobState.DONE),
            ((JobState.ADMITTED, JobState.RUNNING), JobState.ADMITTED),
            ((JobState.DONE,), JobState.QUEUED),
        ],
    )
    def test_illegal_edges_raise(self, path, bad):
        job = _job()
        for state in path:
            job.transition(state)
        with pytest.raises(ValueError, match="illegal job transition"):
            job.transition(bad)

    def test_terminal_states_are_terminal(self):
        done = _job()
        done.transition(JobState.DONE)
        for state in (JobState.QUEUED, JobState.RUNNING, JobState.DONE):
            with pytest.raises(ValueError):
                done.transition(state)

    def test_sweeps_remaining(self):
        job = _job(sweeps=10)
        assert job.sweeps_remaining == 10
        job.sweeps_done = 7
        assert job.sweeps_remaining == 3


class TestJobResult:
    def test_copy_is_aliasing_free(self):
        lattice = np.ones((4, 4), dtype=np.float32)
        result = JobResult(
            magnetization=1.0, energy=-2.0, sweeps=5, lattice=lattice
        )
        duplicate = result.copy()
        duplicate.lattice[0, 0] = -1.0
        assert result.lattice[0, 0] == 1.0
        assert duplicate.magnetization == result.magnetization
