"""Fused sweep engine: bit-identity, workspace reuse, savings telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.backend.tpu_backend import TPUBackend
from repro.core.accept import NN_VALUES, AcceptanceTable
from repro.core.distributed import DistributedIsing
from repro.core.ensemble import EnsembleSimulation
from repro.core.fused import SweepWorkspace, record_fused_metrics
from repro.core.simulation import IsingSimulation, resolve_fused
from repro.core.update import acceptance_ratio
from repro.telemetry import MetricsRegistry, RunTelemetry
from repro.tpu.tensorcore import TensorCore

DTYPES = ["float32", "bfloat16"]
UPDATERS = ["checkerboard", "compact", "conv", "masked_conv"]


def _table_probs(backend, beta, field=0.0):
    """The ten elementwise acceptance probabilities, row per chain."""
    sigma = backend.array(np.repeat([-1.0, 1.0], len(NN_VALUES)))
    nn = backend.array(np.tile(NN_VALUES, 2))
    probs = acceptance_ratio(backend, sigma, nn, beta, field=field)
    return np.asarray(probs, dtype=np.float32).reshape(-1, 10)


class TestAcceptanceTable:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("field", [0.0, 0.37])
    def test_scalar_entries_bit_identical_to_elementwise(self, dtype, field):
        backend = NumpyBackend(dtype)
        table = AcceptanceTable(backend, beta=0.44, field=field)
        probs = _table_probs(backend, 0.44, field)[0]
        raw = (5.0 * np.repeat([-1.0, 1.0], 5) + np.tile(NN_VALUES, 2)).astype(int)
        # Scalar tables are addressed through the gather's wrap mode.
        gathered = np.take(table.entries, raw % AcceptanceTable.SLOTS)
        np.testing.assert_array_equal(gathered, probs)
        # Wrap addressing with the raw (possibly negative) index agrees.
        np.testing.assert_array_equal(
            np.take(table.entries, raw, mode="wrap"), probs
        )
        assert table.offsets is None
        assert table.entries.size == AcceptanceTable.SLOTS

    def test_per_chain_layout_and_offsets(self):
        backend = NumpyBackend()
        betas = np.array([0.3, 0.44, 0.6], dtype=np.float32).reshape(3, 1, 1, 1, 1)
        table = AcceptanceTable(backend, beta=betas)
        assert table.entries.size == 3 * AcceptanceTable.SLOTS
        assert table.offsets is not None
        assert table.offsets.shape == betas.shape
        np.testing.assert_array_equal(
            table.offsets.ravel(), [9.0, 9.0 + 19.0, 9.0 + 38.0]
        )
        probs = _table_probs(backend, betas)
        raw = (5.0 * np.repeat([-1.0, 1.0], 5) + np.tile(NN_VALUES, 2)).astype(int)
        for chain in range(3):
            slots = raw + 9 + chain * AcceptanceTable.SLOTS
            np.testing.assert_array_equal(
                np.take(table.entries, slots), probs[chain]
            )

    def test_field_changes_entries(self):
        backend = NumpyBackend()
        plain = AcceptanceTable(backend, beta=0.44)
        shifted = AcceptanceTable(backend, beta=0.44, field=0.37)
        assert not np.array_equal(plain.entries, shifted.entries)
        assert shifted.field == 0.37

    def test_bad_per_chain_beta_shape_raises(self):
        backend = NumpyBackend()
        with pytest.raises(ValueError, match="per-chain beta"):
            AcceptanceTable(backend, beta=np.full((2, 2, 1), 0.44))

    def test_nbytes_counts_entries_and_offsets(self):
        backend = NumpyBackend()
        betas = np.array([0.4, 0.5]).reshape(2, 1, 1, 1, 1)
        table = AcceptanceTable(backend, beta=betas)
        assert table.nbytes == table.entries.nbytes + table.offsets.nbytes
        assert table.n_entries == 2 * AcceptanceTable.SLOTS


class TestBitIdentity:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("updater", UPDATERS)
    def test_solo_fused_matches_elementwise(self, updater, dtype):
        sims = [
            IsingSimulation(
                (16, 16),
                2.2,
                updater=updater,
                backend=NumpyBackend(dtype),
                seed=3,
                fused=fused,
            )
            for fused in (False, True)
        ]
        for sim in sims:
            sim.run(6)
        np.testing.assert_array_equal(sims[0].lattice, sims[1].lattice)
        # Streams stayed aligned too: further sweeps keep agreeing.
        for sim in sims:
            sim.run(3)
        np.testing.assert_array_equal(sims[0].lattice, sims[1].lattice)
        assert sims[0].stream.state() == sims[1].stream.state()

    @pytest.mark.parametrize("updater", ["checkerboard", "compact"])
    def test_solo_fused_with_field(self, updater):
        sims = [
            IsingSimulation(
                (12, 12), 2.2, updater=updater, seed=11, field=0.37, fused=fused
            )
            for fused in (False, True)
        ]
        for sim in sims:
            sim.run(5)
        np.testing.assert_array_equal(sims[0].lattice, sims[1].lattice)

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("updater", UPDATERS)
    def test_ensemble_per_chain_beta(self, updater, dtype):
        temps = [1.8, 2.2, 2.6, 3.5]
        sims = [
            EnsembleSimulation(
                (12, 12),
                temps,
                updater=updater,
                backend=NumpyBackend(dtype),
                seed=5,
                fused=fused,
            )
            for fused in (False, True)
        ]
        for sim in sims:
            sim.run(5)
        np.testing.assert_array_equal(sims[0].lattices, sims[1].lattices)

    def test_ensemble_chain_matches_solo_fused(self):
        temps = [1.9, 2.4, 3.1]
        ens = EnsembleSimulation((12, 12), temps, updater="compact", seed=9, fused=True)
        ens.run(4)
        for chain, temp in enumerate(temps):
            solo = IsingSimulation(
                (12, 12),
                temp,
                updater="compact",
                seed=9,
                stream_id=chain,
                fused=True,
            )
            solo.run(4)
            np.testing.assert_array_equal(ens.lattices[chain], solo.lattice)

    @pytest.mark.parametrize("updater", ["compact", "conv"])
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_distributed_fused_matches_elementwise(self, updater, dtype):
        sims = [
            DistributedIsing(
                (16, 16),
                temperature=2.2,
                core_grid=(2, 2),
                dtype=dtype,
                seed=5,
                updater=updater,
                fused=fused,
            )
            for fused in (False, True)
        ]
        for sim in sims:
            sim.sweep(4)
        np.testing.assert_array_equal(
            sims[0].gather_lattice(), sims[1].gather_lattice()
        )


class TestWorkspaceReuse:
    def test_buffer_identity_and_counters(self):
        ws = SweepWorkspace()
        a = ws.buffer("x", (4, 4))
        b = ws.buffer("x", (4, 4))
        assert a is b
        assert (ws.hits, ws.misses) == (1, 1)
        c = ws.buffer("x", (8, 8))
        assert c is not a
        assert ws.misses == 2
        assert ws.n_buffers == 2
        assert ws.nbytes == a.nbytes + c.nbytes

    def test_constant_cached(self):
        ws = SweepWorkspace()
        calls = []
        first = ws.constant(("k",), lambda: calls.append(1) or np.ones(3))
        second = ws.constant(("k",), lambda: calls.append(1) or np.ones(3))
        assert first is second
        assert calls == [1]

    @pytest.mark.parametrize("updater", UPDATERS)
    def test_zero_steady_state_allocations(self, updater):
        # traced=False: replayed sweeps bypass the Python-side workspace
        # lookups this test counts, so pin the eager fused engine.
        sim = IsingSimulation(
            (16, 16), 2.2, updater=updater, seed=1, fused=True, traced=False
        )
        sim.run(2)  # warm the workspace
        ws = sim._updater.workspace
        assert ws is not None
        warm_misses = ws.misses
        warm_buffers = ws.n_buffers
        warm_bytes = ws.nbytes
        hits_before = ws.hits
        sim.run(5)
        # Steady state: every lookup hits, nothing new is allocated.
        assert ws.misses == warm_misses
        assert ws.n_buffers == warm_buffers
        assert ws.nbytes == warm_bytes
        assert ws.hits > hits_before


class TestFusedTelemetry:
    def test_report_carries_fused_flag_and_gauges(self):
        # traced=False: replayed sweeps bypass the Python-side table-hit
        # counters (the traced_* gauges cover them instead).
        sim = IsingSimulation(
            (16, 16), 2.2, updater="checkerboard", seed=2,
            fused=True, traced=False, telemetry=RunTelemetry(physics_interval=0),
        )
        sim.run(3)
        report = sim.report()
        assert report.run["fused"] is True
        metrics = report.metrics
        # Checkerboard updates every site in each of the two phases.
        assert metrics["fused_table_hits"]["value"] == 16 * 16 * 2 * 3
        assert metrics["fused_bytes_saved"]["value"] > 0
        assert metrics["fused_workspace_bytes"]["value"] > 0
        assert metrics["fused_workspace_buffers"]["value"] > 0

    def test_elementwise_run_reports_zero_savings(self):
        sim = IsingSimulation(
            (12, 12), 2.2, seed=2, fused=False,
            telemetry=RunTelemetry(physics_interval=0),
        )
        sim.run(2)
        report = sim.report()
        assert report.run["fused"] is False
        assert report.metrics["fused_table_hits"]["value"] == 0
        assert report.metrics["fused_workspace_bytes"]["value"] == 0

    def test_record_fused_metrics_sums_updaters(self):
        registry = MetricsRegistry()
        sims = [
            IsingSimulation((12, 12), 2.2, seed=s, fused=True) for s in (1, 2)
        ]
        for sim in sims:
            sim.run(2)
        record_fused_metrics(registry, *(s._updater for s in sims))
        total = sum(s._updater.workspace.table_hits for s in sims)
        assert registry.gauge("fused_table_hits").value == total


class TestFusedConfig:
    def test_resolve_fused(self):
        assert resolve_fused("auto") == "auto"
        assert resolve_fused(True) is True
        assert resolve_fused(False) is False
        with pytest.raises(ValueError, match="fused"):
            resolve_fused("yes")

    def test_auto_enables_on_numpy_disables_on_tpu(self):
        numpy_sim = IsingSimulation((8, 8), 2.2, seed=1)
        assert numpy_sim.fused is True
        tpu_sim = IsingSimulation(
            (8, 8), 2.2, backend=TPUBackend(TensorCore(0)), seed=1
        )
        assert tpu_sim.fused is False

    def test_tpu_fused_true_is_bit_identical(self):
        sims = [
            IsingSimulation(
                (12, 12), 2.2, backend=TPUBackend(TensorCore(i)), seed=4,
                fused=fused,
            )
            for i, fused in enumerate((False, True))
        ]
        for sim in sims:
            sim.run(4)
        np.testing.assert_array_equal(sims[0].lattice, sims[1].lattice)

    def test_checkpoint_roundtrip_preserves_fused(self):
        sim = IsingSimulation((12, 12), 2.2, seed=6, fused=True)
        sim.run(3)
        state = sim.state_dict()
        assert state["fused"] is True
        resumed = IsingSimulation.from_state_dict(state)
        assert resumed.fused is True
        sim.run(3)
        resumed.run(3)
        np.testing.assert_array_equal(sim.lattice, resumed.lattice)

    def test_checkpoint_roundtrip_preserves_auto(self):
        sim = IsingSimulation((8, 8), 2.2, seed=6)
        state = sim.state_dict()
        assert state["fused"] == "auto"
        resumed = IsingSimulation.from_state_dict(state)
        assert resumed.fused_config == "auto"

    def test_ensemble_checkpoint_roundtrip_preserves_fused(self):
        sim = EnsembleSimulation((8, 8), [2.0, 2.5], seed=3, fused=True)
        sim.run(2)
        state = sim.state_dict()
        assert state["fused"] is True
        resumed = EnsembleSimulation.from_state_dict(state)
        assert resumed.fused is True
        sim.run(2)
        resumed.run(2)
        np.testing.assert_array_equal(sim.lattices, resumed.lattices)
