"""Profiler accounting tests."""

from __future__ import annotations

import pytest

from repro.tpu.profiler import CATEGORIES, Profiler


class TestCharging:
    def test_accumulates(self):
        p = Profiler()
        p.charge("mxu", 0.5, flops=100.0, bytes_moved=10.0)
        p.charge("mxu", 0.25, flops=50.0)
        p.charge("vpu", 0.25)
        assert p.seconds["mxu"] == 0.75
        assert p.flops["mxu"] == 150.0
        assert p.bytes["mxu"] == 10.0
        assert p.op_counts["mxu"] == 2
        assert p.total_seconds == 1.0
        assert p.total_flops == 150.0

    def test_unknown_category(self):
        with pytest.raises(ValueError, match="category"):
            Profiler().charge("gpu", 1.0)

    def test_negative_seconds(self):
        with pytest.raises(ValueError, match=">= 0"):
            Profiler().charge("mxu", -1.0)


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        p = Profiler()
        p.charge("mxu", 0.6)
        p.charge("vpu", 0.1)
        p.charge("formatting", 0.3)
        b = p.breakdown()
        assert sum(b.values()) == pytest.approx(1.0)
        assert b["mxu"] == pytest.approx(0.6)

    def test_conv_merged_into_mxu(self):
        p = Profiler()
        p.charge("mxu", 0.3)
        p.charge("conv", 0.3)
        p.charge("vpu", 0.4)
        assert p.breakdown()["mxu"] == pytest.approx(0.6)
        separate = p.breakdown(merge_conv=False)
        assert separate["conv"] == pytest.approx(0.3)

    def test_empty_breakdown(self):
        assert all(v == 0.0 for v in Profiler().breakdown().values())


class TestSteps:
    def test_mark_step_isolates_intervals(self):
        p = Profiler()
        p.charge("mxu", 1.0)
        first = p.mark_step()
        p.charge("mxu", 0.5)
        p.charge("vpu", 0.5)
        second = p.mark_step()
        assert first.total == 1.0
        assert second.total == 1.0
        assert second.seconds["mxu"] == 0.5
        assert p.step_seconds() == [1.0, 1.0]

    def test_reset(self):
        p = Profiler(record_trace=True)
        p.charge("vpu", 1.0, name="rng")
        p.mark_step()
        p.reset()
        assert p.total_seconds == 0.0
        assert p.steps == []
        assert p.trace == []


class TestTrace:
    def test_trace_events_recorded_in_order(self):
        p = Profiler(record_trace=True)
        p.charge("mxu", 0.5, name="matmul")
        p.charge("vpu", 0.25, name="rng")
        assert [e.name for e in p.trace] == ["matmul", "rng"]
        assert p.trace[0].start == 0.0
        assert p.trace[1].start == 0.5
        assert p.trace[1].duration == 0.25

    def test_trace_disabled_by_default(self):
        p = Profiler()
        p.charge("mxu", 0.5)
        assert p.trace == []


class TestMerge:
    def test_merge_adds_all_categories(self):
        a, b = Profiler(), Profiler()
        a.charge("mxu", 1.0, flops=10)
        b.charge("mxu", 2.0, flops=20)
        b.charge("communication", 0.5)
        a.merge(b)
        assert a.seconds["mxu"] == 3.0
        assert a.flops["mxu"] == 30.0
        assert a.seconds["communication"] == 0.5

    def test_repr(self):
        p = Profiler()
        p.charge("mxu", 0.001)
        assert "mxu" in repr(p)
        assert "empty" in repr(Profiler())

    def test_categories_constant(self):
        assert set(CATEGORIES) == {"mxu", "conv", "vpu", "formatting", "communication"}
