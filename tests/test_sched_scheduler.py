"""The scheduler end to end: bit-identity, batching, dedup, fairness,
failure handling, telemetry.

The load-bearing contract is the first class: a job served through the
multi-tenant scheduler — coalesced into a batch, possibly joining and
leaving mid-flight — produces the *bit-identical* lattice a solo
``repro.simulate()`` run of its config produces, for every updater and
dtype.  Everything else (caching, fairness, preemption) is only allowed
to exist because that invariant holds; preemption specifics live in
``tests/test_sched_preempt.py``.
"""

import numpy as np
import pytest

from repro.api import SimulationConfig, simulate
from repro.core.ensemble import EnsembleSimulation
from repro.sched import (
    DevicePool,
    Scheduler,
    SchedulerSaturatedError,
)
from repro.telemetry import RunTelemetry

UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")
DTYPES = ("float32", "bfloat16")


def _solo_lattice(config: SimulationConfig, sweeps: int) -> np.ndarray:
    sim = simulate(config)
    sim.run(sweeps)
    return sim.lattice


class TestBitIdentity:
    @pytest.mark.parametrize("updater", UPDATERS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_scheduled_matches_solo(self, updater, dtype):
        """Acceptance gate: scheduler-served == solo simulate(), all
        updaters x dtypes, on the simulated-TPU backend."""
        scheduler = Scheduler(n_devices=2, max_batch=4, quantum=3)
        configs = [
            SimulationConfig(
                shape=12, temperature=1.9 + 0.2 * i, updater=updater,
                dtype=dtype, seed=10 + i, backend="tpu",
            )
            for i in range(3)
        ]
        jobs = [scheduler.submit(config, 7) for config in configs]
        scheduler.drain()
        for config, job in zip(configs, jobs):
            np.testing.assert_array_equal(
                job.result.lattice, _solo_lattice(config, 7)
            )

    def test_numpy_backend_matches_solo(self):
        scheduler = Scheduler(n_devices=1, max_batch=4)
        config = SimulationConfig(shape=16, temperature=2.1, seed=4)
        job = scheduler.submit(config, 9)
        scheduler.drain()
        np.testing.assert_array_equal(
            job.result.lattice, _solo_lattice(config, 9)
        )

    def test_observables_match_final_lattice(self):
        from repro.observables import energy_per_spin, magnetization

        scheduler = Scheduler()
        config = SimulationConfig(shape=12, seed=1)
        job = scheduler.submit(config, 5)
        scheduler.drain()
        assert job.result.magnetization == magnetization(job.result.lattice)
        assert job.result.energy == energy_per_spin(job.result.lattice)
        assert job.result.sweeps == 5

    def test_disordered_job_matches_solo_ensemble(self):
        """Scheduler-served disordered jobs run the same masked_conv
        per-bond kernels as a directly built ensemble, and the reported
        energy uses the quenched bond energies."""
        from repro.api import ModelSpec
        from repro.core.couplings import BondCouplings, bond_energy_per_spin
        from repro.core.ensemble import EnsembleSimulation

        config = SimulationConfig(
            shape=12, temperature=2.0, seed=6, updater="masked_conv",
            model=ModelSpec(couplings="bimodal", disorder_seed=9),
        )
        scheduler = Scheduler(n_devices=1, max_batch=4)
        job = scheduler.submit(config, 7)
        scheduler.drain()

        bonds = BondCouplings.generate("bimodal", (12, 12), 9)
        solo = EnsembleSimulation(
            12, [2.0], updater="masked_conv", couplings=bonds, seed=6,
            traced=False,
        )
        solo.run(7)
        np.testing.assert_array_equal(job.result.lattice, solo.lattices[0])
        assert job.result.energy == bond_energy_per_spin(
            job.result.lattice, bonds
        )

    def test_late_joiner_disturbs_nobody(self):
        """Continuous batching: a chain joining mid-flight leaves the
        running siblings' trajectories bit-identical."""
        scheduler = Scheduler(n_devices=1, max_batch=4, quantum=2)
        early = [
            SimulationConfig(shape=12, temperature=1.8 + 0.1 * i, seed=i)
            for i in range(2)
        ]
        early_jobs = [scheduler.submit(config, 12) for config in early]
        scheduler.step()  # the two early chains are already running
        late = SimulationConfig(shape=12, temperature=2.3, seed=7)
        late_job = scheduler.submit(late, 6)
        scheduler.drain()
        assert late_job.preemptions == 0
        for config, job in zip(early + [late], early_jobs + [late_job]):
            np.testing.assert_array_equal(
                job.result.lattice, _solo_lattice(config, job.spec.sweeps)
            )


class TestCachingAndDedup:
    def test_resubmission_hits_cache(self):
        scheduler = Scheduler()
        config = SimulationConfig(shape=8, seed=2)
        first = scheduler.submit(config, 5)
        scheduler.drain()
        second = scheduler.submit(config, 5)
        assert second.done
        assert second.from_cache
        assert not first.from_cache
        np.testing.assert_array_equal(
            first.result.lattice, second.result.lattice
        )

    def test_inflight_duplicates_ride_the_primary(self):
        scheduler = Scheduler()
        config = SimulationConfig(shape=8, seed=2)
        primary = scheduler.submit(config, 5)
        duplicates = [scheduler.submit(config, 5) for _ in range(3)]
        assert all(not job.done for job in duplicates)
        scheduler.drain()
        assert all(job.from_cache for job in duplicates)
        assert scheduler.batches_started == 1
        for job in duplicates:
            np.testing.assert_array_equal(
                job.result.lattice, primary.result.lattice
            )

    def test_cached_result_is_isolated(self):
        scheduler = Scheduler()
        config = SimulationConfig(shape=8, seed=2)
        first = scheduler.submit(config, 5)
        scheduler.drain()
        first.result.lattice[0, 0] = -99.0
        second = scheduler.submit(config, 5)
        assert second.result.lattice[0, 0] != -99.0

    def test_backpressure(self):
        scheduler = Scheduler(max_queue=2)
        for i in range(2):
            scheduler.submit(SimulationConfig(shape=8, seed=i), 5)
        with pytest.raises(SchedulerSaturatedError, match="queue full"):
            scheduler.submit(SimulationConfig(shape=8, seed=99), 5)
        # Cache hits and in-flight duplicates bypass the full queue —
        # they add no device work.
        duplicate = scheduler.submit(SimulationConfig(shape=8, seed=0), 5)
        assert not duplicate.done  # follower of the queued primary
        scheduler.drain()
        assert duplicate.from_cache


class TestSchedulingPolicy:
    def test_priority_order_under_scarcity(self):
        scheduler = Scheduler(n_devices=1, max_batch=1, quantum=100)
        low = scheduler.submit(
            SimulationConfig(shape=8, seed=0), 5, priority=0
        )
        high = scheduler.submit(
            SimulationConfig(shape=8, seed=1), 5, priority=9
        )
        scheduler.step()
        assert high.state == "done"
        assert low.state in ("queued", "done")
        scheduler.drain()
        assert high.finished_tick <= low.finished_tick

    def test_weighted_fair_tenants(self):
        """With equal priorities, the under-served tenant (per weight)
        is admitted first once it has any deficit."""
        scheduler = Scheduler(
            n_devices=1, max_batch=1, quantum=100,
            tenant_weights={"gold": 3.0, "bronze": 1.0},
        )
        first = scheduler.submit(
            SimulationConfig(shape=8, seed=0), 5, tenant="gold"
        )
        scheduler.step()  # gold accrues service
        bronze = scheduler.submit(
            SimulationConfig(shape=8, seed=1), 5, tenant="bronze"
        )
        gold = scheduler.submit(
            SimulationConfig(shape=8, seed=2), 5, tenant="gold"
        )
        # gold served 5 * 64 units at weight 3; bronze served 0 at
        # weight 1 -> bronze ranks first despite arriving earlier... but
        # gold's ratio (~107) still exceeds bronze's 0, so bronze wins.
        scheduler.step()
        assert first.done
        assert bronze.done
        assert not gold.done
        scheduler.drain()
        assert gold.done

    def test_rejects_bad_tenant_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Scheduler(tenant_weights={"x": 0.0})

    def test_drain_raises_when_pool_exhausted(self):
        pool = DevicePool(1)
        scheduler = Scheduler(pool=pool)
        scheduler.submit(SimulationConfig(shape=8, seed=0), 5)
        pool.revoke(0)
        with pytest.raises(RuntimeError, match="exhausted"):
            scheduler.drain()


class TestFailureHandling:
    def test_sweep_failure_fails_batch_and_promotes_followers(self, monkeypatch):
        scheduler = Scheduler()
        config = SimulationConfig(shape=8, seed=3)
        primary = scheduler.submit(config, 5)
        follower = scheduler.submit(config, 5)

        calls = {"n": 0}
        original = EnsembleSimulation.run

        def flaky(self, n_sweeps):
            if calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("injected sweep failure")
            return original(self, n_sweeps)

        monkeypatch.setattr(EnsembleSimulation, "run", flaky)
        scheduler.drain()
        assert primary.state == "failed"
        assert "injected" in str(primary.error)
        # The duplicate was innocent: promoted to primary and computed.
        assert follower.state == "done"
        np.testing.assert_array_equal(
            follower.result.lattice, _solo_lattice(config, 5)
        )
        assert scheduler.jobs_failed == 1

    def test_unbuildable_job_fails_cleanly(self):
        scheduler = Scheduler()
        config = SimulationConfig(shape=8, seed=0, initial="lukewarm")
        job = scheduler.submit(config, 5)
        scheduler.drain()
        assert job.state == "failed"
        assert "hot" in str(job.error)
        # The pool is intact for the next job.
        ok = scheduler.submit(SimulationConfig(shape=8, seed=1), 5)
        scheduler.drain()
        assert ok.state == "done"


class TestTelemetryAndTrace:
    def test_report_kind_sched(self):
        telemetry = RunTelemetry()
        scheduler = Scheduler(telemetry=telemetry)
        config = SimulationConfig(shape=8, seed=0)
        scheduler.submit(config, 5)
        scheduler.submit(config, 5)
        scheduler.drain()
        report = scheduler.report().to_json_dict()
        assert report["kind"] == "sched"
        metrics = report["metrics"]
        assert metrics["sched_jobs_completed"]["value"] == 2
        assert metrics["sched_cache_hits"]["value"] == 1
        assert metrics["sched_batch_occupancy"]["count"] >= 1
        assert report["run"]["n_devices"] == 2

    def test_report_requires_telemetry(self):
        with pytest.raises(RuntimeError, match="telemetry"):
            Scheduler().report()

    def test_chrome_trace_has_scheduler_track(self):
        from repro.telemetry import chrome_trace

        scheduler = Scheduler(n_devices=2, record_trace=True)
        scheduler.submit(
            SimulationConfig(shape=8, seed=0, backend="tpu"), 5
        )
        scheduler.drain()
        trace = chrome_trace(scheduler)
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        assert "scheduler batches" in names
        assert any(
            event.get("cat") == "sched" for event in trace["traceEvents"]
        )
        assert trace["otherData"]["num_sched_spans"] >= 1

    def test_stats_always_available(self):
        scheduler = Scheduler()
        scheduler.submit(SimulationConfig(shape=8, seed=0), 5)
        scheduler.drain()
        stats = scheduler.stats()
        assert stats["jobs"]["completed"] == 1
        assert stats["pool"]["makespan_seconds"] >= 0.0
