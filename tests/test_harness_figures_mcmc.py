"""MCMC figure harness tests (Figure 4 / Figure 7 machinery, small scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.figure4 import binder_crossing_temperature, run as run_figure4
from repro.harness.figure7 import run as run_figure7
from repro.observables.onsager import T_CRITICAL


class TestBinderCrossing:
    def test_linear_interpolation(self):
        t = np.array([1.0, 2.0, 3.0])
        small = np.array([0.6, 0.5, 0.1])
        large = np.array([0.65, 0.5, 0.0])
        # diff = large - small = [0.05, 0.0, -0.1]: crossing at t = 2.
        assert binder_crossing_temperature(t, small, large) == pytest.approx(2.0)

    def test_no_crossing_raises(self):
        t = np.array([1.0, 2.0])
        with pytest.raises(ValueError, match="cross"):
            binder_crossing_temperature(t, np.array([0.1, 0.1]), np.array([0.5, 0.5]))


@pytest.fixture(scope="module")
def quick_figure4():
    """One shared small-scale Figure 4 run for all assertions below."""
    return run_figure4(
        sizes=(8, 16),
        t_over_tc=(0.6, 0.9, 1.0, 1.1, 1.5),
        n_samples=400,
        burn_in=150,
        seed=1,
    )


class TestFigure4:
    def test_row_count(self, quick_figure4):
        # sizes x dtypes x temperatures.
        assert len(quick_figure4.rows) == 2 * 2 * 5

    def test_magnetization_profile(self, quick_figure4):
        rows = [
            r
            for r in quick_figure4.rows
            if r[0] == 16 and r[1] == "float32"
        ]
        by_t = {r[2]: r[3] for r in rows}
        assert by_t[0.6] > 0.9  # ordered phase
        assert by_t[1.5] < 0.45  # disordered phase
        assert by_t[0.6] > by_t[1.1] > by_t[1.5]

    def test_binder_profile(self, quick_figure4):
        rows = [
            r
            for r in quick_figure4.rows
            if r[0] == 16 and r[1] == "float32"
        ]
        by_t = {r[2]: r[6] for r in rows}
        assert by_t[0.6] == pytest.approx(2.0 / 3.0, abs=0.05)
        assert by_t[1.5] < 0.45

    def test_bfloat16_tracks_float32(self, quick_figure4):
        f32 = {
            (r[0], r[2]): r[3] for r in quick_figure4.rows if r[1] == "float32"
        }
        bf16 = {
            (r[0], r[2]): r[3] for r in quick_figure4.rows if r[1] == "bfloat16"
        }
        deltas = [abs(f32[k] - bf16[k]) for k in f32]
        # Statistical agreement: chains differ, physics matches.
        assert np.mean(deltas) < 0.1

    def test_plots_and_notes(self, quick_figure4):
        rendered = quick_figure4.render()
        assert "Binder cumulant" in rendered
        assert "|m| vs T/Tc" in rendered
        assert "crossing" in quick_figure4.notes


class TestFigure7:
    def test_conv_updater_produces_same_physics(self):
        result = run_figure7(
            sizes=(8,),
            t_over_tc=(0.7, 1.4),
            n_samples=300,
            burn_in=100,
            dtypes=("float32",),
            seed=2,
        )
        assert result.name == "Figure 7"
        by_t = {r[2]: r[3] for r in result.rows}
        assert by_t[0.7] > 0.85
        assert by_t[1.4] < 0.6


class TestQuickRunner:
    def test_quick_mode_uses_small_settings(self):
        from repro.harness.runner import run_experiment

        result = run_experiment("figure4", quick=True)
        sizes = {r[0] for r in result.rows}
        assert sizes == {8, 16}
