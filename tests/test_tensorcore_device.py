"""TensorCore and PodSlice device-model tests."""

from __future__ import annotations

import pytest

from repro.tpu.cost_model import TPU_V3
from repro.tpu.device import CORES_PER_CHIP, PodSlice
from repro.tpu.tensorcore import TensorCore


class TestTensorCore:
    def test_charge_op_books_profiler(self):
        core = TensorCore(core_id=0)
        core.charge_op("mxu", flops=1e9, bytes_moved=1e6, batch=1e6)
        assert core.profiler.seconds["mxu"] > 0
        assert core.profiler.seconds["formatting"] > 0  # relayout share
        assert core.step_time == core.profiler.total_seconds

    def test_charge_communication(self):
        core = TensorCore(core_id=0)
        core.charge_communication(1e-4, bytes_moved=100.0)
        assert core.profiler.seconds["communication"] == pytest.approx(1e-4)

    def test_op_log_recording(self):
        core = TensorCore(core_id=0, op_log=[])
        core.charge_op("vpu", flops=10.0, bytes_moved=20.0)
        assert core.op_log == [("vpu", 10.0, 20.0, None)]

    def test_mark_step_and_reset(self):
        core = TensorCore(core_id=1)
        core.charge_op("vpu", flops=1e6)
        record = core.mark_step()
        assert record.total > 0
        core.reset()
        assert core.step_time == 0.0

    def test_hbm_utilization_passthrough(self):
        core = TensorCore(core_id=0)
        sites = (656 * 128) ** 2
        assert core.hbm_utilization(sites, 2) == pytest.approx(0.96, abs=0.01)


class TestPodSlice:
    def test_core_layout(self):
        pod = PodSlice((2, 3))
        assert pod.num_cores == 6
        assert pod.core_at(1, 2).core_id == 5
        assert pod.core_at(1, 2).coords == (1, 2)
        with pytest.raises(IndexError):
            pod.core_at(2, 0)

    def test_from_chip_grid(self):
        pod = PodSlice.from_chip_grid(4, 4)
        assert pod.num_cores == 4 * 4 * CORES_PER_CHIP
        assert pod.core_grid == (4, 8)
        assert pod.num_chips == 16

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            PodSlice((0, 2))

    def test_step_time_is_slowest_core(self):
        pod = PodSlice((1, 2))
        pod.cores[0].charge_op("vpu", flops=1e9)
        pod.cores[1].charge_op("vpu", flops=2e9)
        assert pod.step_time() == pod.cores[1].step_time

    def test_aggregate_and_mark(self):
        pod = PodSlice((1, 2))
        for core in pod.cores:
            core.charge_op("vpu", flops=1e9)
        total = pod.aggregate_profiler()
        assert total.seconds["vpu"] == pytest.approx(
            2 * pod.cores[0].profiler.seconds["vpu"]
        )
        slowest = pod.mark_step()
        assert slowest == pytest.approx(pod.cores[0].profiler.steps[0].total)
        pod.reset()
        assert pod.step_time() == 0.0

    def test_shared_cost_model(self):
        pod = PodSlice((1, 1), cost_model=TPU_V3)
        assert pod.cores[0].cost_model is TPU_V3
