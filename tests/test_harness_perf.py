"""Performance-extrapolation harness tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.perf import (
    BLOCK,
    model_pod_step,
    model_single_core_step,
)
from repro.mesh.links import LinkModel


class TestStepModel:
    def test_fields_and_derived_quantities(self):
        model = model_single_core_step((20 * BLOCK, 20 * BLOCK))
        assert model.n_cores == 1
        assert model.sites == (20 * BLOCK) ** 2
        assert model.step_time > 0
        assert model.flips_per_ns == pytest.approx(
            model.sites / model.step_time / 1e9
        )
        assert model.energy_nj_per_flip == pytest.approx(100.0 / model.flips_per_ns)
        assert model.flops > 0 and model.bytes > 0
        assert model.arithmetic_intensity == pytest.approx(model.flops / model.bytes)

    def test_breakdown_sums_to_one(self):
        model = model_pod_step((40 * BLOCK, 40 * BLOCK), 8)
        assert sum(model.breakdown().values()) == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            model_single_core_step((100, 100))

    def test_unknown_updater(self):
        with pytest.raises(ValueError, match="updater"):
            model_single_core_step((20 * BLOCK, 20 * BLOCK), updater="wolff")


class TestScalingProperties:
    def test_cost_scales_linearly_with_area(self):
        small = model_single_core_step((40 * BLOCK, 40 * BLOCK))
        large = model_single_core_step((80 * BLOCK, 80 * BLOCK))
        assert large.flops == pytest.approx(4 * small.flops, rel=1e-6)
        assert large.bytes == pytest.approx(4 * small.bytes, rel=1e-6)
        # Time slightly better than 4x small's (utilization ramp).
        assert large.step_time < 4 * small.step_time
        assert large.step_time > 3.5 * small.step_time

    def test_throughput_increases_with_size_and_saturates(self):
        rates = [
            model_single_core_step((k * BLOCK, k * BLOCK)).flips_per_ns
            for k in (20, 40, 160, 640)
        ]
        assert rates == sorted(rates)
        assert rates[-1] - rates[-2] < 0.1  # saturated

    def test_bfloat16_beats_float32(self):
        bf16 = model_single_core_step((80 * BLOCK, 80 * BLOCK), dtype="bfloat16")
        f32 = model_single_core_step((80 * BLOCK, 80 * BLOCK), dtype="float32")
        assert f32.step_time > bf16.step_time
        # MXU flops identical; formatting bytes double.
        assert f32.flops == pytest.approx(bf16.flops)
        assert f32.bytes == pytest.approx(2 * bf16.bytes)

    def test_conv_faster_than_compact(self):
        """The appendix claim: conv implementation is ~80% faster."""
        compact = model_single_core_step((224 * BLOCK, 224 * BLOCK))
        conv = model_single_core_step((224 * BLOCK, 224 * BLOCK), updater="conv")
        ratio = compact.step_time / conv.step_time
        assert 1.5 < ratio < 2.1

    def test_masked_conv_slower_than_compact_conv(self):
        """Ablation: the naive masked conv wastes RNG and arithmetic."""
        conv = model_single_core_step((40 * BLOCK, 40 * BLOCK), updater="conv")
        masked = model_single_core_step((40 * BLOCK, 40 * BLOCK), updater="masked_conv")
        assert masked.step_time > conv.step_time


class TestPodModel:
    def test_weak_scaling_is_linear(self):
        shape = (896 * BLOCK, 448 * BLOCK)
        models = [model_pod_step(shape, n) for n in (2, 32, 512)]
        base = models[0].flips_per_ns / 2
        for model, n in zip(models, (2, 32, 512)):
            assert model.flips_per_ns == pytest.approx(base * n, rel=0.01)

    def test_communication_grows_with_cores(self):
        shape = (224 * BLOCK, 112 * BLOCK)
        comm = [
            model_pod_step(shape, n).seconds["communication"] for n in (8, 128, 2048)
        ]
        assert comm[0] < comm[1] < comm[2]

    def test_strong_scaling_efficiency_decays(self):
        total = 1792 * BLOCK
        eff_128 = model_pod_step((total // 8, total // 16), 128, updater="conv")
        eff_2048 = model_pod_step((total // 32, total // 64), 2048, updater="conv")
        per_core_128 = eff_128.flips_per_ns / 128
        per_core_2048 = eff_2048.flips_per_ns / 2048
        assert per_core_2048 < 0.9 * per_core_128

    def test_custom_link_model(self):
        slow = LinkModel(base_latency=1.0)
        model = model_pod_step((20 * BLOCK, 20 * BLOCK), 4, link_model=slow)
        assert model.seconds["communication"] > 8.0  # 8 permutes x 1 s

    def test_validation(self):
        with pytest.raises(ValueError, match="n_cores"):
            model_pod_step((20 * BLOCK, 20 * BLOCK), 0)
