"""Collective data-semantics tests (XLA collective_permute et al.)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.collectives import (
    all_gather,
    all_reduce,
    collective_permute,
    validate_pairs,
)


def _values(n, size=3):
    """Core i holds the value i + 1 (nonzero, so zeros are meaningful)."""
    return [np.full(size, float(i + 1), dtype=np.float32) for i in range(n)]


class TestCollectivePermute:
    def test_cycle(self):
        out = collective_permute(_values(3), [(0, 1), (1, 2), (2, 0)])
        assert out[1][0] == 1.0
        assert out[2][0] == 2.0
        assert out[0][0] == 3.0

    def test_untargeted_cores_receive_zeros(self):
        out = collective_permute(_values(3), [(0, 1)])
        assert np.all(out[0] == 0.0)
        assert np.all(out[2] == 0.0)
        assert np.all(out[1] == 1.0)

    def test_self_pair(self):
        out = collective_permute(_values(2), [(0, 0), (1, 1)])
        assert out[0][0] == 1.0
        assert out[1][0] == 2.0

    def test_one_source_many_targets(self):
        out = collective_permute(_values(3), [(0, 1), (0, 2)])
        assert out[1][0] == 1.0
        assert out[2][0] == 1.0

    def test_received_tensors_are_copies(self):
        values = _values(2)
        out = collective_permute(values, [(0, 1), (1, 0)])
        out[1][...] = 99.0
        assert values[0][0] == 1.0

    def test_duplicate_target_rejected(self):
        with pytest.raises(ValueError, match="more than one pair"):
            collective_permute(_values(3), [(0, 1), (2, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            collective_permute(_values(2), [(0, 5)])

    def test_shape_mismatch_rejected(self):
        values = [np.zeros(2, dtype=np.float32), np.zeros(3, dtype=np.float32)]
        with pytest.raises(ValueError, match="must agree"):
            collective_permute(values, [(0, 1)])


class TestValidatePairs:
    def test_accepts_permutation(self):
        validate_pairs([(0, 1), (1, 0)], 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="outside"):
            validate_pairs([(-1, 0)], 2)


class TestOtherCollectives:
    def test_all_gather(self):
        out = all_gather(_values(3))
        assert len(out) == 3
        for received in out:
            assert received.shape == (3, 3)
            assert np.array_equal(received[:, 0], [1.0, 2.0, 3.0])

    def test_all_reduce_sum(self):
        out = all_reduce(_values(3), op="sum")
        for received in out:
            assert np.all(received == 6.0)

    def test_all_reduce_max_min(self):
        assert np.all(all_reduce(_values(3), op="max")[0] == 3.0)
        assert np.all(all_reduce(_values(3), op="min")[0] == 1.0)

    def test_all_reduce_bad_op(self):
        with pytest.raises(ValueError, match="reduction"):
            all_reduce(_values(2), op="mean")
