"""Compat keys and the batch-plan coalescer."""

import pytest

from repro.api import SimulationConfig
from repro.sched.cache import canonical_cache_key
from repro.sched.coalesce import BatchPlan, Coalescer, compat_key
from repro.sched.job import Job, JobSpec


def _job(job_id: int, **config_fields) -> Job:
    config = SimulationConfig(**config_fields)
    spec = JobSpec(config=config, sweeps=10)
    return Job(job_id, spec, canonical_cache_key(config, 10))


class TestCompatKey:
    def test_temperature_and_seed_are_per_chain(self):
        a = SimulationConfig(shape=16, temperature=1.8, seed=0)
        b = SimulationConfig(shape=16, temperature=2.4, seed=9)
        assert compat_key(a) == compat_key(b)

    @pytest.mark.parametrize(
        "changes",
        [
            {"shape": 24},
            {"updater": "conv"},
            {"dtype": "bfloat16"},
            {"backend": "tpu"},
            {"field": 0.2},
            {"block_shape": (4, 4)},
        ],
    )
    def test_engine_fields_split_batches(self, changes):
        base = SimulationConfig(shape=16)
        assert compat_key(base) != compat_key(base.evolve(**changes))

    def test_disorder_splits_batches(self):
        """Jobs with different quenched disorder cannot share one
        vectorized ensemble — the compat key carries the model token."""
        from repro.api import ModelSpec

        ferro = SimulationConfig(shape=16, updater="masked_conv")
        glass = SimulationConfig(
            shape=16, updater="masked_conv",
            model=ModelSpec(couplings="bimodal", disorder_seed=1),
        )
        other_seed = SimulationConfig(
            shape=16, updater="masked_conv",
            model=ModelSpec(couplings="bimodal", disorder_seed=2),
        )
        keys = {compat_key(c) for c in (ferro, glass, other_seed)}
        assert len(keys) == 3

    def test_flat_field_and_model_field_coalesce(self):
        from repro.api import ModelSpec

        flat = SimulationConfig(shape=16, field=0.1)
        spec = SimulationConfig(shape=16, model=ModelSpec(field=0.1))
        assert compat_key(flat) == compat_key(spec)

    def test_fused_auto_resolves_per_backend(self):
        # "auto" means fused on numpy and elementwise on tpu, so an
        # explicit spelling of the resolved value still coalesces.
        auto_numpy = SimulationConfig(shape=16, backend="numpy", fused="auto")
        explicit = SimulationConfig(shape=16, backend="numpy", fused=True)
        assert compat_key(auto_numpy) == compat_key(explicit)
        auto_tpu = SimulationConfig(shape=16, backend="tpu", fused="auto")
        explicit_off = SimulationConfig(shape=16, backend="tpu", fused=False)
        assert compat_key(auto_tpu) == compat_key(explicit_off)

    def test_default_block_shape_spelled_out_still_coalesces(self):
        implicit = SimulationConfig(shape=16)
        explicit = SimulationConfig(shape=16, block_shape=(8, 8))
        assert compat_key(implicit) == compat_key(explicit)


class TestCoalescer:
    def test_groups_by_key_preserving_order(self):
        jobs = [
            _job(0, shape=16),
            _job(1, shape=24),
            _job(2, shape=16),
            _job(3, shape=24),
        ]
        plans = Coalescer(max_batch=8).plan(jobs)
        assert len(plans) == 2
        assert [job.id for job in plans[0].jobs] == [0, 2]
        assert [job.id for job in plans[1].jobs] == [1, 3]

    def test_full_plans_split(self):
        jobs = [_job(i, shape=16, seed=i) for i in range(7)]
        plans = Coalescer(max_batch=3).plan(jobs)
        assert [plan.n_chains for plan in plans] == [3, 3, 1]
        assert all(isinstance(plan, BatchPlan) for plan in plans)

    def test_empty_input(self):
        assert Coalescer().plan([]) == []

    def test_rejects_nonpositive_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            Coalescer(max_batch=0)


class TestDefaultBlockShapeAllUpdaters:
    @pytest.mark.parametrize(
        "updater, explicit",
        [
            ("compact", (8, 8)),
            ("conv", (8, 8)),
            ("checkerboard", (16, 16)),
            ("masked_conv", None),
        ],
    )
    def test_explicit_default_coalesces_per_updater(self, updater, explicit):
        # The per-updater driver default, spelled out explicitly, must
        # land in the same batch (and the same cache key) as leaving
        # block_shape unset — for every updater, not just compact.
        implicit = SimulationConfig(shape=16, updater=updater)
        spelled = SimulationConfig(shape=16, updater=updater, block_shape=explicit)
        assert compat_key(implicit) == compat_key(spelled)
        assert canonical_cache_key(implicit, 5) == canonical_cache_key(spelled, 5)


class TestTracedDimension:
    def test_traced_split_batches(self):
        on = SimulationConfig(shape=16, traced=True)
        off = SimulationConfig(shape=16, traced=False)
        assert compat_key(on) != compat_key(off)

    def test_traced_auto_resolves_to_fused(self):
        # "auto" follows the resolved fused engine, so spelling the
        # resolved value explicitly still coalesces.
        auto = SimulationConfig(shape=16, backend="numpy", fused=True)
        explicit = SimulationConfig(
            shape=16, backend="numpy", fused=True, traced=True
        )
        assert compat_key(auto) == compat_key(explicit)
