"""Brute-force enumeration oracle tests, including kernel stationarity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observables.exact import (
    boltzmann_distribution,
    checkerboard_phase_matrix,
    checkerboard_sweep_matrix,
    enumerate_states,
    exact_observables,
)
from repro.observables.onsager import internal_energy


class TestEnumeration:
    def test_state_count_and_values(self):
        spins = enumerate_states((2, 2))
        assert spins.shape == (16, 2, 2)
        assert set(np.unique(spins)) == {-1.0, 1.0}
        # All states distinct.
        assert len({s.tobytes() for s in spins}) == 16

    def test_bit_mapping(self):
        spins = enumerate_states((2, 2))
        # State 0 is all -1; state 1 flips site (0, 0).
        assert np.all(spins[0] == -1.0)
        assert spins[1][0, 0] == 1.0
        assert spins[1][0, 1] == -1.0

    def test_size_cap(self):
        with pytest.raises(ValueError, match="capped"):
            enumerate_states((5, 5))


class TestBoltzmann:
    def test_normalised(self):
        pi = boltzmann_distribution((2, 4), 0.5)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_ground_states_dominate_at_low_t(self):
        pi = boltzmann_distribution((2, 2), beta=5.0)
        spins = enumerate_states((2, 2))
        up = int(np.argmax([np.all(s == 1) for s in spins]))
        down = int(np.argmax([np.all(s == -1) for s in spins]))
        assert pi[up] + pi[down] > 0.999

    def test_uniform_at_infinite_temperature(self):
        pi = boltzmann_distribution((2, 2), beta=0.0)
        assert np.allclose(pi, 1.0 / 16.0)

    def test_spin_flip_symmetry(self):
        """pi(sigma) = pi(-sigma): complement states have equal weight."""
        pi = boltzmann_distribution((2, 4), 0.7)
        n = pi.size
        complement = (n - 1) - np.arange(n)
        assert np.allclose(pi, pi[complement])


class TestExactObservables:
    def test_symmetries_and_ranges(self):
        obs = exact_observables((4, 4), 0.4)
        assert 0.0 < obs["abs_m"] < 1.0
        assert 0.0 < obs["m2"] < 1.0
        assert obs["m4"] <= obs["m2"]
        assert -2.0 < obs["energy_per_spin"] < 0.0

    def test_low_temperature_limits(self):
        obs = exact_observables((4, 4), 3.0)
        assert obs["abs_m"] == pytest.approx(1.0, abs=1e-3)
        assert obs["energy_per_spin"] == pytest.approx(-2.0, abs=1e-2)
        assert obs["u4"] == pytest.approx(2.0 / 3.0, abs=1e-3)

    def test_high_temperature_limits(self):
        obs = exact_observables((4, 4), 0.01)
        assert obs["abs_m"] < 0.3
        assert abs(obs["energy_per_spin"]) < 0.1
        assert obs["u4"] < 0.2

    def test_4x4_energy_tracks_onsager_off_criticality(self):
        """Finite-size corrections are small deep in either phase."""
        for t in (1.2, 5.0):
            obs = exact_observables((4, 4), 1.0 / t)
            assert obs["energy_per_spin"] == pytest.approx(
                float(internal_energy(t)), abs=0.08
            )


class TestCheckerboardKernel:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 4)])
    @pytest.mark.parametrize("beta", [0.1, 0.4407, 1.0])
    def test_phase_matrices_are_stochastic(self, shape, beta):
        for color in ("black", "white"):
            matrix = checkerboard_phase_matrix(shape, beta, color)
            assert np.allclose(matrix.sum(axis=1), 1.0)
            assert matrix.min() >= 0.0

    @pytest.mark.parametrize("shape", [(2, 2), (2, 4)])
    @pytest.mark.parametrize("beta", [0.1, 0.4407, 1.0])
    def test_sweep_kernel_preserves_boltzmann(self, shape, beta):
        """The appendix stationarity proof, verified numerically: pi P = pi."""
        matrix = checkerboard_sweep_matrix(shape, beta)
        pi = boltzmann_distribution(shape, beta)
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_single_phase_also_preserves_boltzmann(self):
        """Each colour phase alone is stationary (Metropolis-within-Gibbs)."""
        pi = boltzmann_distribution((2, 4), 0.6)
        for color in ("black", "white"):
            matrix = checkerboard_phase_matrix((2, 4), 0.6, color)
            assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_side_two_tori_are_reducible(self):
        """Documented degeneracy: on side-2 tori the doubled bonds make
        sigma*nn = 0 sites flip deterministically, so the checkerboard
        chain cannot reach every state from the all-down start — even
        though the Boltzmann distribution is still stationary.  (This is
        a property of the algorithm on degenerate tori, not a bug; the
        4x4 frequency test below verifies ergodic sampling on a
        non-degenerate lattice.)"""
        for shape in [(2, 2), (2, 4)]:
            beta = 0.3
            matrix = checkerboard_sweep_matrix(shape, beta)
            state = np.zeros(matrix.shape[0])
            state[0] = 1.0
            for _ in range(300):
                state = state @ matrix
            assert (state == 0.0).any()
            pi = boltzmann_distribution(shape, beta)
            assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_chain_samples_magnetization_with_boltzmann_frequencies(self):
        """Empirical ergodicity on 4x4: the distribution of the total
        magnetization matches exact enumeration across its full support."""
        from repro.core.simulation import IsingSimulation

        beta = 0.35
        spins = enumerate_states((4, 4))
        pi = boltzmann_distribution((4, 4), beta)
        totals = spins.sum(axis=(1, 2))
        support = np.arange(-16, 17, 2)
        exact_pm = np.array([pi[totals == m].sum() for m in support])

        sim = IsingSimulation((4, 4), 1.0 / beta, seed=8)
        sim.run(200)
        counts = np.zeros_like(exact_pm)
        n_sweeps = 20_000
        for _ in range(n_sweeps):
            sim.sweep()
            total = float(sim.lattice.sum())
            counts[int((total + 16) // 2)] += 1
        empirical = counts / n_sweeps
        assert np.max(np.abs(empirical - exact_pm)) < 0.01
        # Every state class with non-trivial weight is actually visited.
        assert np.all(empirical[exact_pm > 0.005] > 0)

    def test_odd_sides_rejected(self):
        with pytest.raises(ValueError, match="even"):
            checkerboard_phase_matrix((3, 4), 0.5, "black")

    def test_bad_color_rejected(self):
        with pytest.raises(ValueError, match="color"):
            checkerboard_phase_matrix((2, 2), 0.5, "blue")
