"""3D Ising extension tests (the paper's future-work direction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ising3d import (
    Ising3D,
    T_CRITICAL_3D,
    checkerboard_mask_3d,
    neighbor_sum_roll_3d,
)


class TestBuildingBlocks:
    def test_neighbor_sum_uniform(self):
        assert np.all(neighbor_sum_roll_3d(np.ones((4, 4, 4), dtype=np.float32)) == 6.0)

    def test_neighbor_sum_single_site(self):
        spins = -np.ones((4, 4, 4), dtype=np.float32)
        spins[1, 2, 3] = 1.0
        nn = neighbor_sum_roll_3d(spins)
        assert nn[1, 2, 3] == -6.0
        assert nn[0, 2, 3] == -4.0
        assert nn[1, 2, 0] == -4.0  # torus wrap

    def test_neighbor_sum_rank_check(self):
        with pytest.raises(ValueError, match="3D"):
            neighbor_sum_roll_3d(np.ones((4, 4), dtype=np.float32))

    def test_mask_complementary_and_alternating(self):
        black = checkerboard_mask_3d((4, 4, 4))
        white = checkerboard_mask_3d((4, 4, 4), "white")
        assert np.all(black + white == 1.0)
        for axis in range(3):
            assert np.all(black + np.roll(black, 1, axis=axis) == 1.0)

    def test_mask_bad_color(self):
        with pytest.raises(ValueError, match="color"):
            checkerboard_mask_3d((2, 2, 2), "blue")


class TestMechanics:
    def test_construction_validation(self):
        with pytest.raises(ValueError, match="3D"):
            Ising3D((4, 4), 3.0)
        with pytest.raises(ValueError, match="even"):
            Ising3D((3, 4, 4), 3.0)
        with pytest.raises(ValueError, match="temperature"):
            Ising3D(4, 0.0)
        with pytest.raises(ValueError, match="initial"):
            Ising3D(4, 3.0, initial="warm")

    def test_int_shape_is_cubic(self):
        sim = Ising3D(4, 3.0)
        assert sim.shape == (4, 4, 4)
        assert sim.n_sites == 64

    def test_cold_start_observables(self):
        sim = Ising3D(4, 3.0, initial="cold")
        assert sim.magnetization() == 1.0
        assert sim.energy_per_spin() == -3.0

    def test_sweep_preserves_spins_and_counts(self):
        sim = Ising3D(4, 4.5, seed=1)
        sim.run(3)
        assert sim.sweeps_done == 3
        assert set(np.unique(sim.lattice)) <= {-1.0, 1.0}

    def test_one_phase_freezes_other_color(self):
        sim = Ising3D(4, 4.5, seed=2)
        before = sim.lattice
        sim.update_color("black")
        changed = sim.lattice != before
        white = checkerboard_mask_3d((4, 4, 4), "white").astype(bool)
        assert not changed[white].any()

    def test_reproducible(self):
        a = Ising3D(4, 4.5, seed=3)
        b = Ising3D(4, 4.5, seed=3)
        a.run(5)
        b.run(5)
        assert np.array_equal(a.lattice, b.lattice)


class TestPhysics:
    def test_ordered_below_tc(self):
        sim = Ising3D(8, 3.5, seed=4, initial="cold")
        m = sim.sample_magnetization(n_samples=300, burn_in=100)
        assert np.mean(np.abs(m)) > 0.7

    def test_disordered_above_tc(self):
        sim = Ising3D(8, 6.5, seed=5)
        m = sim.sample_magnetization(n_samples=300, burn_in=100)
        assert np.mean(np.abs(m)) < 0.2

    def test_critical_temperature_bracketing(self):
        """|m| drops sharply across the known Tc ~ 4.5115."""
        below = Ising3D(8, 0.9 * T_CRITICAL_3D, seed=6, initial="cold")
        above = Ising3D(8, 1.15 * T_CRITICAL_3D, seed=6)
        m_below = np.mean(np.abs(below.sample_magnetization(400, burn_in=150)))
        m_above = np.mean(np.abs(above.sample_magnetization(400, burn_in=150)))
        assert m_below > 0.5
        assert m_above < 0.35
        assert m_below > 2 * m_above

    def test_field_aligns(self):
        sim = Ising3D(6, 8.0, seed=7, field=0.8)
        m = sim.sample_magnetization(n_samples=200, burn_in=100)
        assert np.mean(m) > 0.25

    def test_matches_exact_enumeration_on_tiny_torus(self):
        """<|m|> and <e> on 2x2x4 vs brute-force (16 sites, 65536 states).

        Note side-2 dimensions double-count bonds, consistently in both
        the sampler and this enumeration.
        """
        shape = (2, 2, 4)
        t = 6.0
        beta = 1.0 / t
        n_sites = 16
        states = np.arange(1 << n_sites, dtype=np.uint32)
        bits = (states[:, None] >> np.arange(n_sites, dtype=np.uint32)) & np.uint32(1)
        spins = (2.0 * bits.astype(np.float32) - 1.0).reshape(-1, *shape)
        forward = (
            np.roll(spins, -1, axis=1)
            + np.roll(spins, -1, axis=2)
            + np.roll(spins, -1, axis=3)
        )
        energies = -np.sum(spins.astype(np.float64) * forward, axis=(1, 2, 3))
        weights = np.exp(-beta * (energies - energies.min()))
        pi = weights / weights.sum()
        m = spins.mean(axis=(1, 2, 3)).astype(np.float64)
        exact_abs_m = float(pi @ np.abs(m))
        exact_e = float(pi @ energies) / n_sites

        sim = Ising3D(shape, t, seed=8)
        sim.run(500)
        abs_m_tot, e_tot, n = 0.0, 0.0, 8000
        for _ in range(n):
            sim.sweep()
            abs_m_tot += abs(sim.magnetization())
            e_tot += sim.energy_per_spin()
        assert abs_m_tot / n == pytest.approx(exact_abs_m, abs=0.01)
        assert e_tot / n == pytest.approx(exact_e, abs=0.02)
