"""End-to-end harness tests: every table/figure regenerates and tracks
the paper's numbers within the documented tolerances."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.harness import runner, table1, table2, table3, table4, table5, table6, table7
from repro.harness import figure8, figure9
from repro.telemetry import validate_run_report


def _column(result, model_header, paper_header):
    mi = result.headers.index(model_header)
    pi = result.headers.index(paper_header)
    pairs = []
    for row in result.rows:
        try:
            pairs.append((float(row[mi]), float(row[pi])))
        except (TypeError, ValueError):
            continue  # baseline rows with "-" cells
    return pairs


class TestTable1:
    def test_throughput_tracks_paper(self):
        result = table1.run()
        for model, paper in _column(result, "flips/ns (model)", "flips/ns (paper)"):
            assert model == pytest.approx(paper, rel=0.20)

    def test_monotone_ramp(self):
        result = table1.run()
        tpu_rows = [float(r[1]) for r in result.rows if str(r[0]).startswith("(")]
        assert tpu_rows == sorted(tpu_rows)


class TestTable2:
    def test_step_time_and_throughput(self):
        result = table2.run()
        for model, paper in _column(result, "step ms (model)", "step ms (paper)"):
            assert model == pytest.approx(paper, rel=0.02)
        for model, paper in _column(result, "flips/ns (model)", "flips/ns (paper)"):
            assert model == pytest.approx(paper, rel=0.02)

    def test_energy_close(self):
        result = table2.run()
        for model, paper in _column(result, "nJ/flip (model)", "nJ/flip (paper)"):
            assert model == pytest.approx(paper, rel=0.02)


class TestTable3:
    def test_breakdown_tracks_paper(self):
        result = table3.run()
        for model_h, paper_h, tol in [
            ("MXU% (model)", "MXU% (paper)", 1.5),
            ("VPU% (model)", "VPU% (paper)", 1.5),
            ("fmt% (model)", "fmt% (paper)", 1.5),
        ]:
            for model, paper in _column(result, model_h, paper_h):
                assert model == pytest.approx(paper, abs=tol)

    def test_communication_negligible_but_growing(self):
        result = table3.run()
        cp = [m for m, _ in _column(result, "cp% (model)", "cp% (paper)")]
        assert all(v < 0.3 for v in cp)
        assert cp == sorted(cp)


class TestTable4:
    def test_collective_permute_times(self):
        result = table4.run()
        for model, paper in _column(result, "cp ms (model)", "cp ms (paper)"):
            assert model == pytest.approx(paper, rel=0.45)

    def test_step_times(self):
        result = table4.run()
        for model, paper in _column(result, "step ms (model)", "step ms (paper)"):
            assert model == pytest.approx(paper, rel=0.55)


class TestTable5:
    def test_scale_independent_and_memory_bound(self):
        result = table5.run()
        roofline = [m for m, _ in _column(result, "% roofline (model)", "% roofline (paper)")]
        peak = [m for m, _ in _column(result, "% peak (model)", "% peak (paper)")]
        assert max(roofline) - min(roofline) < 1.0
        assert max(peak) - min(peak) < 0.5
        assert all(p < 20.0 for p in peak)  # far below peak, like the paper
        assert "memory-bound" in result.notes


class TestTable6:
    def test_conv_weak_scaling(self):
        result = table6.run()
        for model, paper in _column(result, "step ms (model)", "step ms (paper)"):
            assert model == pytest.approx(paper, rel=0.05)
        for model, paper in _column(result, "flips/ns (model)", "flips/ns (paper)"):
            assert model == pytest.approx(paper, rel=0.05)


class TestTable7:
    def test_strong_scaling_shape(self):
        result = table7.run()
        pairs = _column(result, "step ms (model)", "step ms (paper)")
        for model, paper in pairs[:6]:  # up to 256 cores: tight
            assert model == pytest.approx(paper, rel=0.1)
        for model, paper in pairs[6:]:  # beyond: same order of magnitude
            assert model == pytest.approx(paper, rel=0.35)

    def test_departure_from_ideal_at_high_core_counts(self):
        result = table7.run()
        mi = result.headers.index("step ms (model)")
        ii = result.headers.index("ideal ms")
        first_gap = float(result.rows[0][mi]) / float(result.rows[0][ii])
        last_gap = float(result.rows[-1][mi]) / float(result.rows[-1][ii])
        assert first_gap == pytest.approx(1.0, abs=0.01)
        assert last_gap > 1.5


class TestFigures:
    def test_figure8_renders_all_series(self):
        result = figure8.run()
        rendered = result.render()
        assert "log-log" in rendered
        assert any("TPU pod" in str(r[0]) for r in result.rows)
        assert any("V100" in str(r[0]) for r in result.rows)

    def test_figure9_efficiency_column(self):
        result = figure9.run()
        eff = [float(r[-1]) for r in result.rows]
        assert eff[0] == pytest.approx(100.0, abs=0.5)
        assert eff[-1] < 70.0


class TestRunner:
    def test_registry_covers_all_experiments(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "figure4", "figure7", "figure8", "figure9", "smoke",
            "sched", "serve",
        }
        assert set(runner.EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            runner.run_experiment("table99")

    def test_main_list(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out

    def test_main_runs_one(self, capsys):
        assert runner.main(["table5"]) == 0
        assert "roofline" in capsys.readouterr().out

    def test_main_unknown(self, capsys):
        assert runner.main(["tableX"]) == 2

    def test_telemetry_out_writes_harness_report(self, tmp_path, capsys):
        """Modeled experiments still archive a harness-level report."""
        out = tmp_path / "run.json"
        assert runner.main(["table5", "--telemetry-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        validate_run_report(payload)
        assert payload["kind"] == "harness"
        assert payload["run"]["experiment"] == "table5"
        assert payload["metrics"]["harness_wall_seconds"]["value"] > 0

    def test_smoke_writes_run_report_and_trace(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.json"
        rc = runner.main(
            [
                "smoke",
                "--telemetry-out", str(run_path),
                "--trace-out", str(trace_path),
            ]
        )
        assert rc == 0
        payload = json.loads(run_path.read_text())
        validate_run_report(payload)
        assert payload["kind"] == "distributed"
        trace = json.loads(trace_path.read_text())
        assert {e["tid"] for e in trace["traceEvents"]} == {0, 1, 2, 3}

    def test_trace_out_rejected_for_modeled_experiment(self, tmp_path, capsys):
        rc = runner.main(
            ["table5", "--trace-out", str(tmp_path / "trace.json")]
        )
        assert rc == 2
        assert "no trace" in capsys.readouterr().err

    def test_artifact_flags_rejected_for_all(self, tmp_path, capsys):
        rc = runner.main(
            ["all", "--telemetry-out", str(tmp_path / "run.json")]
        )
        assert rc == 2
