"""Philox4x32-10 known-answer and statistical tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng.philox import (
    philox4x32,
    philox_uniform_bits,
    uint32_to_uniform,
)


def _single(counter, key, rounds=10):
    c = np.array(counter, dtype=np.uint32).reshape(4, 1)
    k = np.array(key, dtype=np.uint32).reshape(2, 1)
    return [int(x) for x in philox4x32(c, k, rounds)[:, 0]]


class TestKnownAnswers:
    """Reference vectors from the Random123 kat_vectors file."""

    def test_zero_counter_zero_key(self):
        assert _single([0, 0, 0, 0], [0, 0]) == [
            0x6627E8D5,
            0xE169C58D,
            0xBC57AC4C,
            0x9B00DBD8,
        ]

    def test_all_ones(self):
        assert _single([0xFFFFFFFF] * 4, [0xFFFFFFFF] * 2) == [
            0x408F276D,
            0x41C83B0E,
            0xA20BC7C6,
            0x6D5451FD,
        ]

    def test_pi_digits(self):
        assert _single(
            [0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344],
            [0xA4093822, 0x299F31D0],
        ) == [0xD16CFE09, 0x94FDCCEB, 0x5001E420, 0x24126EA1]

    def test_seven_rounds_kat(self):
        # 7-round vector from the same suite checks the round loop, not
        # just the final composition.
        assert _single([0, 0, 0, 0], [0, 0], rounds=7) == [
            0x5F6FB709,
            0x0D893F64,
            0x4F121F81,
            0x4F730A48,
        ]


class TestShapeAndValidation:
    def test_batch_shapes(self):
        counter = np.zeros((4, 10), dtype=np.uint32)
        counter[0] = np.arange(10)
        out = philox4x32(counter, np.zeros((2, 1), dtype=np.uint32))
        assert out.shape == (4, 10)
        # Distinct counters give distinct outputs.
        assert len({tuple(out[:, i]) for i in range(10)}) == 10

    def test_bad_counter_shape_raises(self):
        with pytest.raises(ValueError, match="leading dimension 4"):
            philox4x32(np.zeros((3, 1), dtype=np.uint32), np.zeros((2, 1), dtype=np.uint32))

    def test_bad_key_shape_raises(self):
        with pytest.raises(ValueError, match="leading dimension 2"):
            philox4x32(np.zeros((4, 1), dtype=np.uint32), np.zeros((3, 1), dtype=np.uint32))

    def test_bad_rounds_raises(self):
        with pytest.raises(ValueError, match="rounds"):
            philox4x32(
                np.zeros((4, 1), dtype=np.uint32),
                np.zeros((2, 1), dtype=np.uint32),
                rounds=0,
            )

    def test_input_not_mutated(self):
        counter = np.arange(4, dtype=np.uint32).reshape(4, 1)
        key = np.array([[1], [2]], dtype=np.uint32)
        before_c, before_k = counter.copy(), key.copy()
        philox4x32(counter, key)
        assert np.array_equal(counter, before_c)
        assert np.array_equal(key, before_k)


class TestUniformBits:
    def test_word_count(self):
        for n in (0, 1, 3, 4, 5, 17, 1024):
            assert philox_uniform_bits(0, n, (1, 2)).shape == (n,)

    def test_consecutive_blocks_are_disjoint_slices(self):
        all_words = philox_uniform_bits(0, 64, (5, 6))
        first = philox_uniform_bits(0, 32, (5, 6))
        second = philox_uniform_bits(8, 32, (5, 6))  # 32 words = 8 counters
        assert np.array_equal(all_words[:32], first)
        assert np.array_equal(all_words[32:], second)

    def test_counter_wraps_at_2_128(self):
        near_max = (1 << 128) - 2
        words = philox_uniform_bits(near_max, 16, (0, 0))
        wrapped = philox_uniform_bits(0, 8, (0, 0))
        # Counters near_max, near_max+1 then 0, 1 after the wrap.
        assert np.array_equal(words[8:], wrapped)

    def test_carry_into_high_limb(self):
        # Starting just below 2**64 exercises the low-limb carry path.
        start = (1 << 64) - 1
        words = philox_uniform_bits(start, 8, (3, 4))
        direct_second = philox_uniform_bits(1 << 64, 4, (3, 4))
        assert np.array_equal(words[4:], direct_second)

    def test_key_sensitivity(self):
        a = philox_uniform_bits(0, 128, (1, 0))
        b = philox_uniform_bits(0, 128, (2, 0))
        assert not np.array_equal(a, b)


class TestUniformConversion:
    def test_range_and_granularity(self):
        bits = philox_uniform_bits(0, 1 << 14, (9, 9))
        u = uint32_to_uniform(bits)
        assert u.dtype == np.float32
        assert float(u.min()) >= 0.0
        assert float(u.max()) < 1.0
        # Values are multiples of 2**-24 (exactly representable).
        scaled = u * np.float32(2.0**24)
        assert np.array_equal(scaled, np.round(scaled))

    def test_statistics(self):
        u = uint32_to_uniform(philox_uniform_bits(0, 1 << 16, (11, 13))).astype(
            np.float64
        )
        n = u.size
        assert abs(u.mean() - 0.5) < 4.0 / np.sqrt(12 * n)
        assert abs(u.var() - 1.0 / 12.0) < 0.002
        # Chi-squared over 16 equal bins.
        counts, _ = np.histogram(u, bins=16, range=(0, 1))
        expected = n / 16
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 45.0  # 15 dof, p ~ 1e-4 cutoff

    def test_lag_correlation_small(self):
        u = uint32_to_uniform(philox_uniform_bits(0, 1 << 15, (21, 34))).astype(
            np.float64
        )
        x = u - u.mean()
        corr = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert abs(corr) < 0.02


class TestBitsInto:
    def test_matches_batched_allocating_path(self):
        from repro.rng.philox import (
            make_philox_scratch,
            philox_bits_into,
            philox_uniform_bits_batched,
        )

        n_streams, n_words = 3, 40
        keys = np.array([[7, 0], [7, 1], [9, 2]], dtype=np.uint32)
        starts = [0, 12, (1 << 128) - 4]  # includes a counter wrap
        expected = philox_uniform_bits_batched(starts, n_words, keys)
        scratch = make_philox_scratch(n_streams, n_words)
        out = np.empty((n_streams, n_words), dtype=np.uint32)
        philox_bits_into(starts, keys, out, scratch)
        np.testing.assert_array_equal(out, expected)
        # Scratch reuse: a second fill with different counters still agrees.
        philox_bits_into([5, 6, 7], keys, out, scratch)
        np.testing.assert_array_equal(
            out, philox_uniform_bits_batched([5, 6, 7], n_words, keys)
        )

    def test_tail_words_single_stream(self):
        from repro.rng.philox import (
            make_philox_scratch,
            philox_bits_into,
            philox_uniform_bits,
        )

        # n_words not divisible by 4 exercises the tail of the 4-lane blocks.
        n_words = 7
        keys = np.array([[3, 5]], dtype=np.uint32)
        scratch = make_philox_scratch(1, n_words)
        out = np.empty((1, n_words), dtype=np.uint32)
        philox_bits_into([100], keys, out, scratch)
        np.testing.assert_array_equal(
            out[0], philox_uniform_bits(100, n_words, (3, 5))
        )

    def test_validates_shapes(self):
        from repro.rng.philox import make_philox_scratch, philox_bits_into

        scratch = make_philox_scratch(2, 8)
        keys = np.zeros((2, 2), dtype=np.uint32)
        with pytest.raises(ValueError, match="out must be uint32"):
            philox_bits_into([0, 0], keys, np.empty((2, 4), np.uint32), scratch)
        with pytest.raises(ValueError, match="keys"):
            philox_bits_into(
                [0, 0], np.zeros((1, 2), np.uint32),
                np.empty((2, 8), np.uint32), scratch,
            )

    def test_uniform_from_bits_into(self):
        from repro.rng.philox import uint32_to_uniform, uniform_from_bits_into

        bits = np.array(
            [0, 1, (1 << 32) - 1, 0x80000000], dtype=np.uint32
        ).reshape(2, 2)
        expected = uint32_to_uniform(bits)  # _into destroys its input
        out = np.empty((2, 2), dtype=np.float32)
        uniform_from_bits_into(bits, out)
        np.testing.assert_array_equal(out, expected)
        assert np.all(out >= 0.0) and np.all(out < 1.0)
