"""Single-spin reference Metropolis tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metropolis import metropolis_chain, metropolis_sweep
from repro.observables.exact import exact_observables
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestMechanics:
    def test_preserves_spin_values(self, stream):
        plain = make_lattice((6, 6))
        out = metropolis_sweep(plain, 0.44, stream)
        assert set(np.unique(out)) <= {-1.0, 1.0}
        assert out.shape == plain.shape

    def test_out_of_place(self, stream):
        plain = make_lattice((4, 4))
        before = plain.copy()
        metropolis_sweep(plain, 0.44, stream)
        assert np.array_equal(plain, before)

    def test_reproducible(self):
        plain = make_lattice((6, 6))
        a = metropolis_sweep(plain, 0.44, PhiloxStream(5, 0))
        b = metropolis_sweep(plain, 0.44, PhiloxStream(5, 0))
        assert np.array_equal(a, b)

    def test_random_order_runs(self, stream):
        out = metropolis_sweep(make_lattice((4, 4)), 0.5, stream, order="random")
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_bad_order(self, stream):
        with pytest.raises(ValueError, match="order"):
            metropolis_sweep(make_lattice((4, 4)), 0.5, stream, order="spiral")

    def test_cold_lattice_frozen_at_low_temperature(self, stream):
        plain = np.ones((6, 6), dtype=np.float32)
        out = metropolis_chain(plain, 10.0, 3, stream)
        assert np.all(out == 1.0)


class TestPhysics:
    def test_matches_exact_enumeration(self):
        """<|m|> from the sequential sampler matches exact enumeration."""
        beta = 1.0 / 2.5
        exact = exact_observables((4, 4), beta)
        stream = PhiloxStream(77, 0)
        lat = make_lattice((4, 4), seed=1)
        lat = metropolis_chain(lat, beta, 200, stream)  # burn-in
        samples = []
        for _ in range(4000):
            lat = metropolis_sweep(lat, beta, stream)
            samples.append(abs(float(lat.mean())))
        measured = float(np.mean(samples))
        assert measured == pytest.approx(exact["abs_m"], abs=0.02)
