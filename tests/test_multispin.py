"""Bit-packed multispin baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.multispin import (
    MultispinState,
    MultispinUpdater,
    pack_bits,
    unpack_bits,
)
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(8, 192)).astype(np.uint8)
        words = pack_bits(bits)
        assert words.shape == (8, 3)
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_bits(words, 192), bits)

    def test_bit_order_lsb_first(self):
        bits = np.zeros((1, 64), dtype=np.uint8)
        bits[0, 0] = 1
        assert pack_bits(bits)[0, 0] == 1
        bits = np.zeros((1, 64), dtype=np.uint8)
        bits[0, 63] = 1
        assert pack_bits(bits)[0, 0] == np.uint64(1) << np.uint64(63)

    def test_column_multiple_of_64_required(self):
        with pytest.raises(ValueError, match="multiple of 64"):
            pack_bits(np.zeros((2, 65), dtype=np.uint8))


class TestState:
    def test_plain_roundtrip(self):
        plain = make_lattice((8, 256))
        state = MultispinState.from_plain(plain)
        assert state.quarter_shape == (4, 128)
        assert np.array_equal(state.to_plain(), plain)

    def test_copy_independent(self):
        state = MultispinState.from_plain(make_lattice((4, 128)))
        dup = state.copy()
        dup.w00 ^= np.uint64(0xFFFF)
        assert not np.array_equal(dup.w00, state.w00)


class TestUpdater:
    def test_sweep_preserves_spins(self):
        updater = MultispinUpdater(0.44)
        plain = make_lattice((8, 128))
        out = updater.sweep_plain(plain, PhiloxStream(3, 0))
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_reproducible(self):
        updater = MultispinUpdater(0.44)
        plain = make_lattice((8, 128))
        a = updater.sweep_plain(plain, PhiloxStream(5, 0))
        b = updater.sweep_plain(plain, PhiloxStream(5, 0))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError, match="beta"):
            MultispinUpdater(0.0)
        updater = MultispinUpdater(0.5)
        state = MultispinState.from_plain(make_lattice((4, 128)))
        with pytest.raises(ValueError, match="color"):
            updater.update_color(state, "grey", PhiloxStream(0, 0))
        with pytest.raises(ValueError, match="stream or probs"):
            updater.update_color(state, "black")
        bad = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError, match="probs shapes"):
            updater.update_color(state, "black", probs=(bad, bad))

    def test_thresholds_match_float_pipeline(self):
        beta = 0.37
        updater = MultispinUpdater(beta)
        factor = np.float32(-2.0 * beta)
        assert updater.threshold_k1 == np.exp(factor * np.float32(2.0))
        assert updater.threshold_k0 == np.exp(factor * np.float32(4.0))

    def test_zero_temperature_descends_energy(self):
        from repro.observables.energy import total_energy

        updater = MultispinUpdater(15.0)
        plain = make_lattice((8, 128), seed=2)
        state = updater.to_state(plain)
        stream = PhiloxStream(6, 0)
        e_prev = total_energy(plain)
        for _ in range(8):
            state = updater.sweep(state, stream)
            e_now = total_energy(state.to_plain())
            assert e_now <= e_prev + 1e-9
            e_prev = e_now

    def test_physics_agreement_with_exact(self):
        """<|m|> on a 4x128 lattice... too large to enumerate; instead
        compare against the compact updater statistically at the same
        temperature (both chains should give the same mean |m|)."""
        from repro.core.simulation import IsingSimulation

        beta = 0.3
        updater = MultispinUpdater(beta)
        state = updater.to_state(make_lattice((8, 128), seed=4))
        stream = PhiloxStream(7, 0)
        for _ in range(200):
            state = updater.sweep(state, stream)
        samples = []
        for _ in range(800):
            state = updater.sweep(state, stream)
            samples.append(abs(float(state.to_plain().mean())))
        sim = IsingSimulation((8, 128), 1.0 / beta, seed=8)
        ref = sim.sample(n_samples=800, burn_in=200)
        assert np.mean(samples) == pytest.approx(
            ref.abs_m, abs=5 * (ref.abs_m_err + 1e-3)
        )


class TestEndianness:
    def test_unpack_accepts_byteswapped_words(self):
        # A foreign-endian checkpoint hands us the same word *values*
        # with the opposite byte order; the bit layout must not flip.
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(4, 128)).astype(np.uint8)
        words = pack_bits(bits)
        foreign = words.byteswap().view(words.dtype.newbyteorder())
        assert foreign.dtype.byteorder != words.dtype.byteorder
        assert np.array_equal(unpack_bits(foreign, 128), bits)

    def test_packed_word_values_are_little_endian_bit_compose(self):
        # Bit j of word w addresses column 64*w + j regardless of host
        # byte order: column 0 -> value 1, column 8 -> value 256.
        bits = np.zeros((1, 64), dtype=np.uint8)
        bits[0, 8] = 1
        assert pack_bits(bits)[0, 0] == np.uint64(256)
