"""The packed multi-spin engine: bit-identity, physics, checkpoints, costs.

``dtype="packed"`` promotes the bit-packed baseline to a first-class
engine (``repro.core.packed``).  The contracts asserted here are the
ones ``docs/packed_engine.md`` documents: bit-identity against the
unpacked chains on shared uniforms (the CI invariant), the
``rng_bits=32`` same-stream twin property, Onsager-validated physics,
word-level checkpoint round trips that refuse to cross-load with
unpacked checkpoints, traced replay, "alu" cost-model charging, the
``packed_*`` telemetry gauges, and honest scheduler keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SimulationConfig, distributed, simulate
from repro.backend import NumpyBackend
from repro.backend.packed_ops import packed_threshold, site_values_u16
from repro.backend.tpu_backend import TPUBackend
from repro.baselines.multispin import MultispinUpdater
from repro.core import (
    CheckerboardUpdater,
    CompactUpdater,
    EnsembleSimulation,
    IsingSimulation,
    PackedState,
    PackedUpdater,
    record_packed_metrics,
    plain_to_grid,
    plain_to_quarters,
    grid_to_plain,
)
from repro.rng import PhiloxStream
from repro.rng.streams import BatchedPhiloxStream
from repro.sched.cache import canonical_cache_key
from repro.sched.coalesce import compat_key
from repro.telemetry import MetricsRegistry, RunTelemetry
from repro.tpu.dtypes import PACKED, resolve_dtype
from repro.tpu.tensorcore import TensorCore

from .conftest import make_lattice


def packed_backend() -> NumpyBackend:
    return NumpyBackend(PACKED)


# -- dtype plumbing ----------------------------------------------------------


class TestPackedDtype:
    def test_resolves_by_name(self):
        assert resolve_dtype("packed") is PACKED
        assert PACKED.name == "packed"
        assert PACKED.itemsize == 8

    def test_quantize_is_passthrough(self):
        words = np.array([1, 2], dtype=np.uint64)
        assert PACKED.quantize(words) is words or np.array_equal(
            PACKED.quantize(words), words
        )


# -- low-level kernels -------------------------------------------------------


class TestKernels:
    def test_packed_threshold_is_exact_ceiling(self):
        t = np.float32(0.25)
        assert packed_threshold(t, 16) == 2**14
        assert packed_threshold(np.float32(1.0), 16) == 2**16  # needs uint32
        assert packed_threshold(t, 24).dtype == np.uint32

    def test_site_values_u16_lanes(self):
        bits = np.array([0x0002_0001, 0xFFFF_0003], dtype=np.uint32)
        lanes = site_values_u16(bits, (2, 2))
        assert np.array_equal(lanes.ravel(), [1, 2, 3, 0xFFFF])

    def test_bits_into_matches_random_bits(self):
        a, b = PhiloxStream(9, 4), PhiloxStream(9, 4)
        out = np.empty(96, dtype=np.uint32)
        a.bits_into(out)
        assert np.array_equal(out, b.random_bits(96))
        assert a.counter == b.counter

    def test_batched_bits_into_per_chain_identity(self):
        solos = [PhiloxStream(3, sid) for sid in (0, 5)]
        batched = BatchedPhiloxStream.from_streams(
            [PhiloxStream(3, sid) for sid in (0, 5)]
        )
        out = np.empty((2, 64), dtype=np.uint32)
        batched.bits_into(out)
        for b, solo in enumerate(solos):
            assert np.array_equal(out[b], solo.random_bits(64))


# -- bit-identity (the CI invariant) -----------------------------------------


class TestBitIdentity:
    def test_probs_path_matches_checkerboard_chain(self):
        """Packed == unpacked checkerboard (Alg. 1) on shared per-site uniforms."""
        shape, beta, block = (8, 256), 0.44, (8, 256)
        plain = make_lattice(shape, seed=11)
        stream = PhiloxStream(2, 0)

        cb = CheckerboardUpdater(beta, NumpyBackend(), block_shape=block)
        grid = plain_to_grid(plain, block)
        packed = PackedUpdater(beta)
        pstate = packed.to_state(plain)

        for _ in range(6):
            u_black = stream.uniform(shape)
            u_white = stream.uniform(shape)
            grid = cb.sweep(
                grid,
                probs_black=plain_to_grid(u_black, block),
                probs_white=plain_to_grid(u_white, block),
            )
            qb, qw = plain_to_quarters(u_black), plain_to_quarters(u_white)
            pstate = packed.sweep(
                pstate,
                probs_black=(qb[0], qb[3]),
                probs_white=(qw[1], qw[2]),
            )
            assert np.array_equal(grid_to_plain(grid), packed.to_plain(pstate))

    def test_probs_path_matches_multispin_baseline(self):
        plain = make_lattice((8, 128), seed=3)
        baseline, packed = MultispinUpdater(0.6), PackedUpdater(0.6)
        b_state, p_state = baseline.to_state(plain), packed.to_state(plain)
        rng = np.random.default_rng(0)
        quarter = (4, 64)
        for _ in range(5):
            probs = [rng.random(quarter, dtype=np.float32) for _ in range(4)]
            b_state = baseline.sweep(
                b_state,
                probs_black=tuple(probs[:2]),
                probs_white=tuple(probs[2:]),
            )
            p_state = packed.sweep(
                p_state,
                probs_black=tuple(probs[:2]),
                probs_white=tuple(probs[2:]),
            )
            assert np.array_equal(
                baseline.to_plain(b_state), packed.to_plain(p_state)
            )

    def test_rng32_is_same_stream_twin_of_compact_float32(self):
        """rng_bits=32 consumes the float chains' exact Philox schedule."""
        plain = make_lattice((16, 128), seed=5)
        packed = PackedUpdater(0.5, rng_bits=32)
        compact = CompactUpdater(0.5, NumpyBackend(), block_shape=(8, 64))
        p_state, c_state = packed.to_state(plain), compact.to_state(plain)
        s_packed, s_compact = PhiloxStream(7, 1), PhiloxStream(7, 1)
        for _ in range(10):
            p_state = packed.sweep(p_state, s_packed)
            c_state = compact.sweep(c_state, s_compact)
        assert np.array_equal(packed.to_plain(p_state), compact.to_plain(c_state))
        assert s_packed.counter == s_compact.counter

    def test_ensemble_chains_match_solo_runs(self):
        ens = EnsembleSimulation(
            128, [1.8, 2.6], backend=packed_backend(), seed=13
        )
        ens.run(8)
        for b, temp in enumerate([1.8, 2.6]):
            solo = IsingSimulation(
                128, temp, backend=packed_backend(), seed=13, stream_id=b
            )
            solo.run(8)
            assert np.array_equal(ens.lattices[b], solo.lattice)

    def test_traced_replay_equals_eager(self):
        traced = IsingSimulation(128, 2.2, backend=packed_backend(), seed=1)
        eager = IsingSimulation(
            128, 2.2, backend=packed_backend(), seed=1, traced=False
        )
        assert traced.traced and not eager.traced
        traced.run(12)
        eager.run(12)
        assert np.array_equal(traced.lattice, eager.lattice)

    def test_checkerboard_updater_name_runs_same_engine(self):
        compact = IsingSimulation(128, 2.2, backend=packed_backend(), seed=2)
        checker = IsingSimulation(
            128, 2.2, updater="checkerboard", backend=packed_backend(), seed=2
        )
        compact.run(5)
        checker.run(5)
        assert np.array_equal(compact.lattice, checker.lattice)

    def test_steady_state_workspace_is_stable(self):
        sim = IsingSimulation(
            128, 2.2, backend=packed_backend(), seed=4, traced=False
        )
        sim.run(3)
        ws = sim._updater.workspace
        buffers, misses = ws.n_buffers, ws.misses
        sim.run(5)
        assert ws.n_buffers == buffers
        assert ws.misses == misses


# -- physics -----------------------------------------------------------------


class TestPhysics:
    def test_ordered_phase_onsager(self):
        sim = IsingSimulation(
            128, 1.5, backend=packed_backend(), seed=3, initial="cold"
        )
        sim.run(300)
        # Onsager: m(T=1.5) = 0.9865; stream-mode fluctuations stay close.
        assert abs(sim.magnetization()) == pytest.approx(0.9865, abs=0.02)

    def test_disordered_phase(self):
        sim = IsingSimulation(128, 3.0, backend=packed_backend(), seed=5)
        sim.run(300)
        assert abs(sim.magnetization()) < 0.1


# -- checkpoints -------------------------------------------------------------


class TestCheckpoints:
    def test_mid_run_resume_is_bit_identical(self):
        sim = IsingSimulation(128, 2.2, backend=packed_backend(), seed=8)
        sim.run(7)
        resumed = IsingSimulation.from_state_dict(sim.state_dict())
        assert resumed.packed
        sim.run(9)
        resumed.run(9)
        assert np.array_equal(sim.lattice, resumed.lattice)

    def test_checkpoint_stores_word_planes(self):
        sim = IsingSimulation(128, 2.2, backend=packed_backend(), seed=8)
        sim.run(2)
        payload = sim.state_dict()["packed"]
        assert payload["word_bits"] == 64
        assert payload["bit_order"] == "little"
        assert payload["rng_bits"] == 16
        assert payload["words"]["w00"].dtype == np.uint64
        assert payload["words"]["w00"].shape == (64, 1)

    def test_unpacked_checkpoint_refuses_packed_load(self):
        state = IsingSimulation(128, 2.2, seed=1).state_dict()
        with pytest.raises(ValueError, match="cannot resume as dtype='packed'"):
            IsingSimulation.from_state_dict(state, backend=packed_backend())

    def test_packed_checkpoint_refuses_unpacked_load(self):
        state = IsingSimulation(
            128, 2.2, backend=packed_backend(), seed=1
        ).state_dict()
        with pytest.raises(ValueError, match="cannot resume on an unpacked"):
            IsingSimulation.from_state_dict(state, backend=NumpyBackend())

    def test_rng_bits_round_trips(self):
        sim = IsingSimulation(128, 2.2, backend=packed_backend(), seed=1)
        state = sim.state_dict()
        state["packed"]["rng_bits"] = 32
        resumed = IsingSimulation.from_state_dict(state)
        assert resumed._updater.rng_bits == 32

    def test_foreign_word_layout_rejected(self):
        sim = IsingSimulation(128, 2.2, backend=packed_backend(), seed=1)
        state = sim.state_dict()
        state["packed"]["word_bits"] = 32
        with pytest.raises(ValueError, match="word layout"):
            IsingSimulation.from_state_dict(state)

    def test_ensemble_resume_and_refusals(self):
        ens = EnsembleSimulation(
            128, [2.0, 2.4], backend=packed_backend(), seed=6
        )
        ens.run(4)
        state = ens.state_dict()
        resumed = EnsembleSimulation.from_state_dict(state)
        ens.run(4)
        resumed.run(4)
        assert np.array_equal(ens.lattices, resumed.lattices)
        with pytest.raises(ValueError, match="cannot resume on an unpacked"):
            EnsembleSimulation.from_state_dict(state, backend=NumpyBackend())
        unpacked = EnsembleSimulation(128, [2.0, 2.4], seed=6).state_dict()
        with pytest.raises(ValueError, match="cannot resume as dtype='packed'"):
            EnsembleSimulation.from_state_dict(
                unpacked, backend=packed_backend()
            )


# -- rejected configurations -------------------------------------------------


class TestRejections:
    @pytest.mark.parametrize("updater", ["conv", "masked_conv"])
    def test_conv_updaters_rejected(self, updater):
        with pytest.raises(ValueError, match="no packed kernels"):
            SimulationConfig(shape=128, dtype="packed", updater=updater)
        with pytest.raises(ValueError, match="no packed kernels"):
            IsingSimulation(
                128, 2.2, updater=updater, backend=packed_backend()
            )

    def test_field_rejected(self):
        with pytest.raises(ValueError, match="field=0.0"):
            SimulationConfig(shape=128, dtype="packed", field=0.2)
        with pytest.raises(ValueError, match="field=0.0"):
            IsingSimulation(128, 2.2, backend=packed_backend(), field=0.2)

    def test_block_shape_rejected(self):
        with pytest.raises(ValueError, match="block_shape"):
            SimulationConfig(shape=128, dtype="packed", block_shape=(32, 32))
        with pytest.raises(ValueError, match="block_shape"):
            IsingSimulation(
                128, 2.2, backend=packed_backend(), block_shape=(32, 32)
            )

    def test_narrow_lattice_rejected(self):
        with pytest.raises(ValueError, match="multiple of 128"):
            IsingSimulation(64, 2.2, backend=packed_backend())
        with pytest.raises(ValueError, match="multiple of 128"):
            EnsembleSimulation(64, [2.2], backend=packed_backend())

    def test_fused_false_rejected(self):
        with pytest.raises(ValueError, match="no elementwise path"):
            SimulationConfig(shape=128, dtype="packed", fused=False)
        with pytest.raises(ValueError, match="no elementwise path"):
            IsingSimulation(128, 2.2, backend=packed_backend(), fused=False)

    def test_distributed_rejected(self):
        with pytest.raises(ValueError, match="does not support dtype='packed'"):
            distributed(SimulationConfig(shape=128, dtype="packed", grid=(2, 2)))

    def test_updater_field_validation(self):
        with pytest.raises(ValueError, match="no field support"):
            PackedUpdater(0.44, field=0.1)
        with pytest.raises(ValueError, match="rng_bits"):
            PackedUpdater(0.44, rng_bits=24)
        with pytest.raises(ValueError, match="beta"):
            PackedUpdater(-1.0)


# -- cost model --------------------------------------------------------------


class TestCostModel:
    def test_alu_category_charges_vpu_lane(self):
        backend = TPUBackend(TensorCore(core_id=0), PACKED)
        words = np.zeros((4, 2), dtype=np.uint64)
        out = np.empty_like(words)
        backend.packed_xor_into(words, words, out)
        seconds = backend.core.profiler.seconds
        assert seconds["vpu"] > 0.0
        assert seconds["mxu"] == 0.0
        assert seconds["conv"] == 0.0

    def test_alu_prices_as_vpu_elementwise_not_matmul(self):
        """Packed words charge integer-ALU (VPU-pipe) flops per word."""
        backend = TPUBackend(TensorCore(core_id=0), PACKED)
        model = backend.core.cost_model
        alu = model.op_times("alu", flops=1e6, bytes_moved=0)
        vpu = model.op_times("vpu", flops=1e6, bytes_moved=0)
        assert set(alu) == {"vpu"}  # booked under the vpu profiler lane
        assert alu["vpu"] == pytest.approx(vpu["vpu"])
        # The charged work is per 64-spin word: a packed sweep's flops are
        # ~1/64 of the per-site float path's, so no matmul parity sneaks in.
        assert model.op_times("alu", flops=1e6 / 64, bytes_moved=0)["vpu"] < alu["vpu"]

    def test_packed_sim_runs_on_tpu_backend(self):
        backend = TPUBackend(TensorCore(core_id=0), PACKED)
        sim = IsingSimulation(128, 2.2, backend=backend, seed=1, traced=False)
        sim.run(2)
        assert backend.core.profiler.seconds["vpu"] > 0.0


# -- telemetry ---------------------------------------------------------------


class TestTelemetry:
    def test_report_carries_packed_gauges(self):
        telemetry = RunTelemetry()
        sim = IsingSimulation(
            128, 2.2, backend=packed_backend(), seed=1, telemetry=telemetry,
            traced=False,  # replayed sweeps bypass the Python-side counters
        )
        sim.run(5)
        sim.report()
        registry = telemetry.registry
        assert registry.gauge("packed_sweeps").value == 5
        assert registry.gauge("packed_words_updated").value > 0
        assert registry.gauge("packed_workspace_bytes").value > 0
        assert registry.gauge("packed_rng_bits").value == 16
        assert registry.gauge("packed_word_bits").value == 64

    def test_float_chain_reports_zero_packed_gauges(self):
        registry = MetricsRegistry()
        updater = CompactUpdater(0.44, NumpyBackend(), block_shape=(8, 64))
        record_packed_metrics(registry, updater)
        assert registry.gauge("packed_sweeps").value == 0
        assert registry.gauge("packed_word_bits").value == 0


# -- scheduler key honesty ---------------------------------------------------


class TestSchedulerKeys:
    def test_compat_key_separates_packed(self):
        base = SimulationConfig(shape=128, temperature=2.2, seed=1)
        packed = SimulationConfig(
            shape=128, temperature=2.2, seed=1, dtype="packed"
        )
        assert compat_key(base) != compat_key(packed)

    def test_cache_key_separates_packed(self):
        base = SimulationConfig(shape=128, temperature=2.2, seed=1)
        packed = SimulationConfig(
            shape=128, temperature=2.2, seed=1, dtype="packed"
        )
        assert canonical_cache_key(base, 100) != canonical_cache_key(packed, 100)


# -- api surface -------------------------------------------------------------


class TestApi:
    def test_simulate_builds_packed_engine(self):
        sim = simulate(SimulationConfig(shape=128, dtype="packed", seed=1))
        assert sim.packed and sim.fused
        assert isinstance(sim._updater, PackedUpdater)
        assert isinstance(sim._state, PackedState)

    def test_report_run_dtype_is_packed(self):
        sim = simulate(
            SimulationConfig(shape=128, dtype="packed", seed=1, telemetry=True)
        )
        sim.run(1)
        assert sim.report().run["dtype"] == "packed"
