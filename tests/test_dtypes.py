"""DType descriptors and name resolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tpu.bfloat16 import round_to_bfloat16
from repro.tpu.dtypes import BFLOAT16, FLOAT32, resolve_dtype


class TestResolve:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("float32", FLOAT32),
            ("f32", FLOAT32),
            ("bfloat16", BFLOAT16),
            ("bf16", BFLOAT16),
            ("BF16", BFLOAT16),
        ],
    )
    def test_names(self, name, expected):
        assert resolve_dtype(name) is expected

    def test_dtype_passthrough(self):
        assert resolve_dtype(BFLOAT16) is BFLOAT16

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            resolve_dtype("float64")


class TestDescriptors:
    def test_itemsizes(self):
        assert FLOAT32.itemsize == 4
        assert BFLOAT16.itemsize == 2

    def test_quantize_float32_is_identity(self):
        x = np.array([0.1, 1.0 + 2.0**-20], dtype=np.float32)
        assert np.array_equal(FLOAT32.quantize(x), x)

    def test_quantize_bfloat16_rounds(self):
        x = np.array([0.1, 1.0 + 2.0**-20], dtype=np.float32)
        assert np.array_equal(BFLOAT16.quantize(x), round_to_bfloat16(x))

    def test_str(self):
        assert str(FLOAT32) == "float32"
        assert str(BFLOAT16) == "bfloat16"
