"""Hierarchical multi-pod mesh: two-tier links, overlap schedule, pod loss.

Covers the split-phase overlap contract (bit-identity with the blocking
schedule for every updater/dtype, with and without fault injection —
only the modeled clock may move), the two-tier link model's calibration
contract (intra-pod tier == the flat Table 4 fit), pod-granular elastic
degrade, checkpoint round-trips of the new fields, and the telemetry
surface (``halo_overlap_*`` gauges, "halo overlap" trace track).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SimulationConfig, distributed, ensemble, simulate
from repro.core.distributed import DistributedIsing
from repro.mesh.faults import FaultEvent, FaultPlan, PodLostError
from repro.mesh.links import LinkModel, TwoTierLinkModel, interior_fraction
from repro.mesh.runtime import LockstepError, OverlapCommit, PermuteRequest, SPMDRuntime
from repro.mesh.topology import HierarchicalTorus, Torus2D
from repro.observables.onsager import spontaneous_magnetization
from repro.telemetry.report import RunTelemetry
from repro.telemetry.trace import chrome_trace


def _transient_plan() -> FaultPlan:
    return FaultPlan(
        events=(
            FaultEvent("drop", collective=3, count=1),
            FaultEvent("delay", collective=9, seconds=20e-6),
            FaultEvent("stall", collective=13, core=1, seconds=40e-6),
        )
    )


class TestTwoTierLinkModel:
    def test_intra_pod_tier_reproduces_flat_fit(self):
        """The calibration contract: single-pod pricing is Table 4 pricing."""
        flat = LinkModel()
        two = TwoTierLinkModel()
        pairs = Torus2D(4, 4).shift_pairs("south")
        for topo in (Torus2D(4, 4), HierarchicalTorus(4, 4, 1, 1)):
            assert two.permute_time_on(topo, pairs, 1024.0) == pytest.approx(
                flat.permute_time(16, 1024.0)
            )

    def test_pod_crossing_collectives_pay_the_inter_tier(self):
        two = TwoTierLinkModel()
        hier = HierarchicalTorus(4, 4, 2, 2)
        crossing = hier.shift_pairs("south")  # wraps across pod boundaries
        inside = [(0, 1)]  # both cores in pod 0
        intra_only = two.permute_time_on(hier, inside, 256.0)
        assert intra_only == pytest.approx(
            two.permute_time(hier.cores_per_pod, 256.0)
        )
        full = two.permute_time_on(hier, crossing, 256.0)
        assert full == pytest.approx(
            intra_only + two.inter_pod_time(hier.num_pods, 256.0)
        )
        assert full > 2 * intra_only  # the slow tier dominates

    def test_inter_pod_time_validation(self):
        two = TwoTierLinkModel()
        with pytest.raises(ValueError, match="positive"):
            two.inter_pod_time(0, 16.0)
        with pytest.raises(ValueError, match=">= 0"):
            two.inter_pod_time(4, -1.0)

    def test_interior_fraction(self):
        assert interior_fraction((2, 2)) == 0.0  # all boundary
        assert interior_fraction((64, 64)) == pytest.approx(1 - 126 / 2048)
        assert interior_fraction((4096, 2048)) > 0.998
        with pytest.raises(ValueError, match="positive"):
            interior_fraction((0, 8))


class TestOverlapBitIdentity:
    """Overlap may only move the modeled clock, never the chain."""

    @pytest.mark.parametrize(
        "updater", ["compact", "conv", "checkerboard", "masked_conv"]
    )
    @pytest.mark.parametrize("dtype", ["float32", "bfloat16"])
    @pytest.mark.parametrize("faulted", [False, True], ids=["solo", "faulted"])
    def test_states_and_counters_match_blocking(self, updater, dtype, faulted):
        lattices, counters = [], []
        for overlap in (False, True):
            sim = distributed(
                SimulationConfig(
                    shape=16,
                    temperature=2.2,
                    updater=updater,
                    dtype=dtype,
                    grid=(2, 2),
                    pod_grid=(2, 2),
                    overlap=overlap,
                    seed=7,
                    fault_plan=_transient_plan() if faulted else None,
                )
            )
            sim.sweep(3)
            lattices.append(sim.gather_lattice())
            counters.append([s.state() for s in sim._streams])
        assert np.array_equal(lattices[0], lattices[1])
        assert counters[0] == counters[1]

    def test_overlap_on_flat_torus_is_also_bit_identical(self):
        lattices = []
        for overlap in (False, True):
            sim = DistributedIsing(
                (16, 16), 2.2, core_grid=(2, 2), seed=5, overlap=overlap
            )
            sim.sweep(4)
            lattices.append(sim.gather_lattice())
        assert np.array_equal(lattices[0], lattices[1])


class TestOverlapClock:
    def test_auto_resolution(self):
        flat = DistributedIsing((16, 16), 2.2, core_grid=(2, 2))
        assert flat.overlap is False
        single_pod = DistributedIsing(
            (16, 16), 2.2, core_grid=(2, 2), pod_grid=(1, 1)
        )
        assert single_pod.overlap is False
        multi_pod = DistributedIsing(
            (16, 16), 2.2, core_grid=(2, 2), pod_grid=(2, 2)
        )
        assert multi_pod.overlap is True
        assert isinstance(multi_pod.torus, HierarchicalTorus)
        assert isinstance(multi_pod.runtime.link_model, TwoTierLinkModel)

    def test_overlap_beats_blocking_on_the_modeled_clock(self):
        steps = {}
        for overlap in (False, True):
            sim = DistributedIsing(
                (128, 128),
                2.2,
                core_grid=(4, 4),
                pod_grid=(2, 2),
                seed=1,
                overlap=overlap,
            )
            sim.sweep(2)
            steps[overlap] = sim.step_time()
        assert steps[True] < steps[False]

    def test_window_counters_and_log(self):
        sim = DistributedIsing(
            (16, 16), 2.2, core_grid=(2, 2), pod_grid=(2, 2), seed=3
        )
        sim.sweep(2)
        rt = sim.runtime
        assert rt.overlap_windows == 4  # two colour phases x two sweeps
        assert len(rt.overlap_log) == 4
        span = rt.overlap_log[0]
        assert span["permutes"] == 4
        assert span["comm_seconds"] == pytest.approx(
            span["hidden_seconds"] + span["exposed_seconds"]
        )
        assert rt.overlap_hidden_seconds + rt.overlap_exposed_seconds == (
            pytest.approx(sum(s["comm_seconds"] for s in rt.overlap_log))
        )

    def test_total_comm_bytes_match_blocking(self):
        """Hidden time must not hide bytes: profiler byte totals agree."""
        totals = []
        for overlap in (False, True):
            sim = DistributedIsing(
                (16, 16), 2.2, core_grid=(2, 2), pod_grid=(2, 2),
                seed=3, overlap=overlap,
            )
            sim.sweep(2)
            totals.append(
                sum(
                    core.profiler.bytes["communication"]
                    for core in sim.pod.cores
                )
            )
        assert totals[0] == pytest.approx(totals[1])

    def test_uncommitted_window_raises(self):
        torus = Torus2D(1, 2)
        runtime = SPMDRuntime(torus)

        def program(core_id):
            yield PermuteRequest(
                tensor=np.ones(4, dtype=np.float32),
                pairs=torus.shift_pairs("east"),
                overlap=True,
            )
            return core_id

        with pytest.raises(LockstepError, match="open overlap window"):
            runtime.run(program)

    def test_commit_permute_divergence_raises(self):
        torus = Torus2D(1, 2)
        runtime = SPMDRuntime(torus)

        def program(core_id):
            if core_id == 0:
                yield OverlapCommit(interior_seconds=0.0)
            else:
                yield PermuteRequest(
                    tensor=np.ones(4, dtype=np.float32),
                    pairs=torus.shift_pairs("east"),
                )
            return core_id

        with pytest.raises(LockstepError, match="must not diverge"):
            runtime.run(program)


class TestPodLoss:
    def test_kill_pod_event_validation(self):
        with pytest.raises(ValueError, match="pod"):
            FaultEvent("kill_pod", sweep=2)  # no pod named
        with pytest.raises(ValueError):
            FaultEvent("kill_pod", pod=1)  # no trigger
        event = FaultEvent("kill_pod", pod=1, sweep=2)
        assert FaultEvent.from_json_dict(event.to_json_dict()) == event

    def test_sub_pod_kill_degrades_onto_surviving_pod_grid(self):
        plan = FaultPlan(events=(FaultEvent("kill_pod", pod=3, sweep=4),))
        telemetry = RunTelemetry()
        sim = DistributedIsing(
            (32, 32),
            2.0,
            core_grid=(4, 4),
            pod_grid=(2, 2),
            seed=11,
            fault_plan=plan,
            checkpoint_interval=2,
            telemetry=telemetry,
        )
        sim.run_resilient(10)
        assert sim.sweeps_done == 10
        assert isinstance(sim.torus, HierarchicalTorus)
        assert sim.pod_grid == (2, 1)
        assert sim.torus.pod_shape == (2, 2)  # intra-pod shape intact
        assert sim.num_cores == 8
        (event,) = sim.topology_events
        assert event["dead_pod"] == 3
        assert event["dead_core"] is None
        assert event["old_pod_grid"] == [2, 2]
        assert event["new_pod_grid"] == [2, 1]
        assert event["resumed_from_sweep"] == 4
        assert telemetry.registry.counter("topology_degrades").value == 1

    def test_single_core_kill_sheds_its_whole_pod(self):
        plan = FaultPlan(events=(FaultEvent("kill", core=5, sweep=3),))
        sim = DistributedIsing(
            (32, 32),
            2.0,
            core_grid=(4, 4),
            pod_grid=(2, 2),
            seed=11,
            fault_plan=plan,
            checkpoint_interval=1,
        )
        sim.run_resilient(6)
        (event,) = sim.topology_events
        assert event["dead_core"] == 5
        assert event["dead_pod"] == HierarchicalTorus(4, 4, 2, 2).pod_of(5)
        assert sim.pod_grid == (2, 1)

    def test_single_pod_mesh_cannot_degrade(self):
        plan = FaultPlan(events=(FaultEvent("kill_pod", pod=0, sweep=1),))
        sim = DistributedIsing(
            (16, 16),
            2.0,
            core_grid=(2, 2),
            pod_grid=(1, 1),
            seed=11,
            fault_plan=plan,
            checkpoint_interval=1,
        )
        with pytest.raises(PodLostError):
            sim.run_resilient(4)

    def test_degraded_physics_tracks_onsager(self):
        """Post-pod-loss chains stay honest Metropolis chains."""
        plan = FaultPlan(events=(FaultEvent("kill_pod", pod=1, sweep=60),))
        sim = DistributedIsing(
            (16, 16),
            1.5,
            core_grid=(4, 4),
            pod_grid=(2, 2),
            seed=23,
            initial="cold",
            fault_plan=plan,
            checkpoint_interval=10,
        )
        sim.run_resilient(120)
        assert sim.topology_events  # the pod kill really happened
        samples = []
        for _ in range(160):
            sim.run_resilient(1)
            samples.append(abs(sim.magnetization()))
        expected = float(spontaneous_magnetization(1.5))
        assert np.mean(samples) == pytest.approx(expected, abs=0.02)


class TestCheckpointRoundTrip:
    def test_pod_grid_and_overlap_round_trip(self):
        sim = DistributedIsing(
            (16, 16),
            2.2,
            core_grid=(2, 2),
            pod_grid=(2, 2),
            overlap=True,
            seed=9,
        )
        sim.sweep(3)
        state = sim.state_dict()
        assert state["pod_grid"] == [2, 2]
        assert state["overlap"] is True
        resumed = DistributedIsing.from_state_dict(state)
        assert resumed.pod_grid == (2, 2)
        assert resumed.overlap is True
        assert isinstance(resumed.torus, HierarchicalTorus)
        sim.sweep(3)
        resumed.sweep(3)
        assert np.array_equal(sim.gather_lattice(), resumed.gather_lattice())

    def test_legacy_checkpoint_without_pod_fields_loads_flat(self):
        sim = DistributedIsing((16, 16), 2.2, core_grid=(2, 2), seed=9)
        sim.sweep(1)
        state = sim.state_dict()
        del state["pod_grid"], state["overlap"]
        resumed = DistributedIsing.from_state_dict(state)
        assert resumed.pod_grid is None
        assert resumed.overlap is False


class TestTelemetrySurface:
    def test_report_gauges_and_trace_track(self):
        telemetry = RunTelemetry()
        sim = DistributedIsing(
            (16, 16),
            2.2,
            core_grid=(2, 2),
            pod_grid=(2, 2),
            seed=3,
            telemetry=telemetry,
            record_trace=True,
        )
        sim.sweep(2)
        report = sim.report()
        metrics = report.metrics
        assert metrics["halo_overlap_windows"]["value"] == 4
        assert metrics["halo_overlap_hidden_seconds"]["value"] > 0.0
        assert metrics["halo_overlap_exposed_seconds"]["value"] >= 0.0
        assert report.run["pod_grid"] == [2, 2]
        assert report.run["overlap"] is True
        registry = telemetry.registry
        assert registry.counter("halo_overlap_windows_total").value == 4
        trace = chrome_trace(sim)
        assert trace["otherData"]["num_overlap_spans"] == 4
        names = {
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev.get("ph") == "M"
        }
        assert "halo overlap" in names

    def test_blocking_run_has_no_overlap_track(self):
        sim = DistributedIsing(
            (16, 16), 2.2, core_grid=(2, 2), seed=3, record_trace=True
        )
        sim.sweep(1)
        trace = chrome_trace(sim)
        assert trace["otherData"]["num_overlap_spans"] == 0


class TestApiConfig:
    def test_distributed_passes_pod_grid_and_overlap(self):
        sim = distributed(
            SimulationConfig(
                shape=16, temperature=2.2, grid=(2, 2), pod_grid=(2, 2)
            )
        )
        assert sim.pod_grid == (2, 2)
        assert sim.overlap is True

    def test_pod_grid_must_divide_grid(self):
        with pytest.raises(ValueError, match="not divisible"):
            SimulationConfig(grid=(3, 3), pod_grid=(2, 2))
        with pytest.raises(ValueError, match="positive"):
            SimulationConfig(pod_grid=(0, 2))

    def test_overlap_junk_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            SimulationConfig(overlap="yes")

    def test_single_core_factories_reject_pod_fields(self):
        with pytest.raises(ValueError, match="pod_grid"):
            simulate(SimulationConfig(pod_grid=(2, 2)))
        with pytest.raises(ValueError, match="overlap"):
            simulate(SimulationConfig(overlap=True))
        with pytest.raises(ValueError, match="pod_grid"):
            ensemble(SimulationConfig(pod_grid=(2, 2)), n_chains=2)
