"""Parallel tempering and disordered couplings.

The layer's contracts, in suite order:

* swap decisions follow the exact two-chain detailed-balance
  probability, bit-for-bit replayable from the dedicated Philox stream;
* swaps move temperature assignments only — the swaps-disabled ladder
  is bit-identical to a plain :class:`EnsembleSimulation`;
* the whole trajectory is a pure function of ``(seed, disorder_seed)``
  and survives a mid-ladder checkpoint, partial swap-stream Philox
  block included;
* ``couplings="ferro"`` with swaps on reproduces Onsager (the swap
  move is a physics no-op for the clean ferromagnet);
* disordered kernels keep the fused ≡ elementwise bit-identity, and
  the bimodal ±J ladder produces sensible spin-glass overlap physics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.couplings import (
    BondCouplings,
    bond_total_energy,
    weighted_neighbor_sum,
)
from repro.core.ensemble import EnsembleSimulation
from repro.core.tempering import (
    SWAP_STREAM_ID,
    TemperingEnsemble,
    swap_acceptance_probability,
)
from repro.observables.binder import replica_overlap, spin_glass_binder
from repro.observables.onsager import spontaneous_magnetization
from repro.rng.streams import PhiloxStream


class TestSwapAcceptanceProbability:
    def test_equal_betas_always_accept(self):
        assert swap_acceptance_probability(0.5, 0.5, -10.0, 40.0) == 1.0

    def test_favourable_swap_always_accepts(self):
        # Colder slot (larger beta) holding the higher energy: delta
        # = (b_i - b_j)(E_i - E_j) > 0 -> certain accept.
        assert swap_acceptance_probability(1.0, 0.5, 10.0, -10.0) == 1.0

    def test_unfavourable_swap_is_exponential(self):
        p = swap_acceptance_probability(1.0, 0.5, -10.0, 10.0)
        assert p == pytest.approx(float(np.exp(-10.0)))

    def test_detailed_balance_ratio(self):
        # p(i<->j) / p(j<->i) = exp(delta) for an unfavourable move and
        # its reverse — the two-chain detailed-balance condition.
        b_i, b_j, e_i, e_j = 0.9, 0.4, -30.0, -26.0
        forward = swap_acceptance_probability(b_i, b_j, e_i, e_j)
        reverse = swap_acceptance_probability(b_i, b_j, e_j, e_i)
        delta = (b_i - b_j) * (e_i - e_j)
        assert forward / reverse == pytest.approx(float(np.exp(delta)))


class TestSwapDecisions:
    def test_decisions_replay_from_the_swap_stream(self):
        """Every swap decision equals the exact two-chain acceptance
        test evaluated with the documented Philox draw — replayed here
        with an independent mirror of stream, energies and pairing."""
        sim = TemperingEnsemble(
            16,
            np.linspace(0.35, 0.55, 5),
            n_replicas=2,
            swap_interval=1,
            seed=13,
        )
        mirror = PhiloxStream(13, SWAP_STREAM_ID)
        for round_idx in range(12):
            parity = round_idx % 2
            pairs = list(range(parity, sim.n_temps - 1, 2))
            energies = sim.ensemble.total_energies()
            uniforms = mirror.uniform((sim.n_replicas, len(pairs)))
            expected = sim.pairing.copy()
            for r in range(sim.n_replicas):
                for p, t in enumerate(pairs):
                    lo, hi = int(expected[r, t]), int(expected[r, t + 1])
                    accept_p = swap_acceptance_probability(
                        sim.betas[t], sim.betas[t + 1],
                        float(energies[lo]), float(energies[hi]),
                    )
                    if float(uniforms[r, p]) < accept_p:
                        expected[r, t], expected[r, t + 1] = hi, lo
            sim.attempt_swaps()
            np.testing.assert_array_equal(sim.pairing, expected)
            sim.ensemble.run(1)

    def test_acceptance_counters_consistent(self):
        sim = TemperingEnsemble(
            16, np.linspace(0.40, 0.46, 4), n_replicas=3,
            swap_interval=2, seed=5,
        )
        sim.run(20)
        assert sim.swap_rounds == 10
        assert sim.swap_attempts == sum(
            3 * len(range(k % 2, 3, 2)) for k in range(10)
        )
        assert 0 <= sim.swap_accepts <= sim.swap_attempts
        assert sim.swap_acceptance == sim.swap_accepts / sim.swap_attempts

    def test_tight_ladder_accepts_swaps(self):
        sim = TemperingEnsemble(
            16, np.linspace(0.40, 0.44, 4), n_replicas=2,
            swap_interval=1, seed=0,
        )
        sim.run(30)
        assert sim.swap_accepts > 0


class TestSwapsDisabledBitIdentity:
    def test_matches_plain_ensemble(self):
        betas = np.linspace(0.35, 0.50, 4)
        sim = TemperingEnsemble(
            16, betas, n_replicas=2, swap_interval=1, seed=3,
            swaps_enabled=False,
        )
        plain = EnsembleSimulation(
            16,
            sim.ensemble.temperatures.copy(),
            seed=3,
            traced=False,
        )
        sim.run(25)
        plain.run(25)
        np.testing.assert_array_equal(sim.lattices, plain.lattices)

    def test_split_runs_equal_one_run(self):
        betas = np.linspace(0.40, 0.46, 4)
        a = TemperingEnsemble(16, betas, n_replicas=2, swap_interval=3, seed=7)
        b = TemperingEnsemble(16, betas, n_replicas=2, swap_interval=3, seed=7)
        a.run(14)
        for n in (5, 4, 3, 2):
            b.run(n)
        np.testing.assert_array_equal(a.lattices, b.lattices)
        np.testing.assert_array_equal(a.pairing, b.pairing)
        assert a.swap_rounds == b.swap_rounds
        assert a.swap_accepts == b.swap_accepts


class TestDeterminism:
    def test_trajectory_is_a_function_of_seeds(self):
        kwargs = dict(
            shape=16,
            betas=np.linspace(0.40, 0.46, 4),
            n_replicas=2,
            swap_interval=2,
            couplings="bimodal",
            disorder_seed=11,
            updater="masked_conv",
            seed=9,
        )
        a = TemperingEnsemble(**kwargs)
        b = TemperingEnsemble(**kwargs)
        a.run(20)
        b.run(20)
        assert a.swap_accepts == b.swap_accepts
        np.testing.assert_array_equal(a.pairing, b.pairing)
        np.testing.assert_array_equal(a.lattices, b.lattices)

    def test_disorder_seed_changes_trajectory(self):
        base = dict(
            shape=16,
            betas=np.linspace(0.40, 0.46, 3),
            n_replicas=1,
            couplings="bimodal",
            updater="masked_conv",
            seed=9,
        )
        a = TemperingEnsemble(disorder_seed=1, **base)
        b = TemperingEnsemble(disorder_seed=2, **base)
        a.run(10)
        b.run(10)
        assert not np.array_equal(a.lattices, b.lattices)


class TestCheckpointRoundTrip:
    def test_mid_ladder_resume_with_partial_philox_block(self):
        # 3 replicas x 2 pairs = 6 uniforms/round = 1.5 Philox blocks:
        # the restored swap stream must continue from a partial block.
        sim = TemperingEnsemble(
            16,
            np.linspace(0.38, 0.48, 5),
            n_replicas=3,
            swap_interval=2,
            couplings="bimodal",
            disorder_seed=4,
            updater="masked_conv",
            seed=21,
        )
        sim.run(6)
        state = sim.state_dict()
        resumed = TemperingEnsemble.from_state_dict(state)
        sim.run(8)
        resumed.run(8)
        np.testing.assert_array_equal(sim.lattices, resumed.lattices)
        np.testing.assert_array_equal(sim.pairing, resumed.pairing)
        assert sim.swap_rounds == resumed.swap_rounds
        assert sim.swap_accepts == resumed.swap_accepts
        assert sim._swap_stream.state() == resumed._swap_stream.state()

    def test_round_trip_preserves_couplings(self):
        sim = TemperingEnsemble(
            16,
            (0.4, 0.45),
            couplings="gaussian",
            disorder_seed=8,
            updater="masked_conv",
            seed=2,
        )
        sim.run(3)
        resumed = TemperingEnsemble.from_state_dict(sim.state_dict())
        assert resumed.couplings.kind == "gaussian"
        assert resumed.couplings.disorder_seed == 8
        np.testing.assert_array_equal(
            resumed.couplings.right, sim.couplings.right
        )
        np.testing.assert_array_equal(
            resumed.couplings.down, sim.couplings.down
        )


class TestFerroPhysicsNoOp:
    def test_ferro_ladder_reproduces_onsager(self):
        """Swaps on, clean ferromagnet: every ladder slot must still
        sample its own Boltzmann distribution — the ordered-phase slots
        reproduce the Onsager spontaneous magnetization."""
        temps = np.array([1.4, 1.5, 1.6])
        sim = TemperingEnsemble(
            16,
            1.0 / temps,
            n_replicas=2,
            swap_interval=2,
            seed=3,
            initial="cold",
        )
        sim.run(60)
        samples = []
        for _ in range(120):
            sim.run(1)
            samples.append(np.abs(sim.slot_magnetizations()))
        mean_abs_m = np.mean(samples, axis=0)  # (n_replicas, n_temps)
        assert sim.swap_accepts > 0  # the no-op claim needs real swaps
        for t_idx, t in enumerate(temps):
            expected = float(spontaneous_magnetization(float(t)))
            for r in range(sim.n_replicas):
                assert mean_abs_m[r, t_idx] == pytest.approx(
                    expected, abs=0.03
                )


class TestDisorderedKernels:
    @pytest.mark.parametrize("kind", ["bimodal", "gaussian"])
    def test_fused_matches_elementwise(self, kind):
        bonds = BondCouplings.generate(kind, (16, 16), 5)
        runs = []
        for fused in (False, True):
            ens = EnsembleSimulation(
                16,
                [2.0, 2.4],
                updater="masked_conv",
                couplings=bonds,
                seed=7,
                fused=fused,
                traced=False,
            )
            ens.run(15)
            runs.append(ens.lattices)
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_bimodal_neighbor_sums_stay_even(self):
        bonds = BondCouplings.generate("bimodal", (16, 16), 3)
        ens = EnsembleSimulation(
            16, [2.0], updater="masked_conv", couplings=bonds, seed=1,
            traced=False,
        )
        ens.run(5)
        from repro.backend.numpy_backend import NumpyBackend

        backend = NumpyBackend()
        nn = np.asarray(
            weighted_neighbor_sum(
                backend, backend.array(ens.lattices), bonds
            )
        )
        assert set(np.unique(nn)).issubset({-4.0, -2.0, 0.0, 2.0, 4.0})

    def test_energy_consistency_across_kinds(self):
        rng = np.random.default_rng(0)
        lat = np.where(rng.random((3, 8, 8)) < 0.5, -1.0, 1.0).astype(
            np.float32
        )
        ferro = bond_total_energy(lat, None)
        ones = BondCouplings.generate("ferro", (8, 8), 0)
        np.testing.assert_array_equal(ferro, bond_total_energy(lat, ones))
        # Brute-force reference for one disordered realisation.
        bonds = BondCouplings.generate("gaussian", (8, 8), 2)
        ref = np.zeros(3)
        for i in range(8):
            for j in range(8):
                ref -= bonds.right[i, j] * lat[:, i, j] * lat[:, i, (j + 1) % 8]
                ref -= bonds.down[i, j] * lat[:, i, j] * lat[:, (i + 1) % 8, j]
        np.testing.assert_allclose(bond_total_energy(lat, bonds), ref, rtol=1e-12)


class TestSetTemperatures:
    def test_retemper_matches_rebuilt_updater(self):
        """The cheap retemper path (swap the beta, keep the workspace)
        must continue bit-identically to a freshly built ensemble at
        the new temperatures."""
        temps = np.array([2.6, 2.2, 2.0])
        a = EnsembleSimulation(16, temps, seed=5, traced=False)
        a.run(10)
        swapped = np.array([2.0, 2.2, 2.6])
        a.set_temperatures(swapped)

        b = EnsembleSimulation(16, temps, seed=5, traced=False)
        b.run(10)
        state = b.state_dict()
        state["temperatures"] = [float(t) for t in swapped]
        state["betas"] = [1.0 / float(t) for t in swapped]
        c = EnsembleSimulation.from_state_dict(state)

        a.run(10)
        c.run(10)
        np.testing.assert_array_equal(a.lattices, c.lattices)

    def test_rejects_bad_shapes_and_values(self):
        ens = EnsembleSimulation(16, [2.0, 2.2], seed=0, traced=False)
        with pytest.raises(ValueError):
            ens.set_temperatures([2.0])
        with pytest.raises(ValueError):
            ens.set_temperatures([2.0, -1.0])


class TestSpinGlassObservables:
    def test_replica_overlap_bounds_and_symmetry(self):
        rng = np.random.default_rng(1)
        a = np.where(rng.random((8, 8)) < 0.5, -1.0, 1.0)
        b = np.where(rng.random((8, 8)) < 0.5, -1.0, 1.0)
        q = replica_overlap(a, b)
        assert -1.0 <= q <= 1.0
        assert replica_overlap(a, b) == replica_overlap(b, a)
        assert replica_overlap(a, a) == 1.0

    def test_overlap_matrix_shape_and_range(self):
        sim = TemperingEnsemble(
            16,
            (0.3, 0.6, 1.0),
            n_replicas=3,
            couplings="bimodal",
            disorder_seed=2,
            updater="masked_conv",
            seed=4,
        )
        sim.run(5)
        q = sim.replica_overlaps()
        assert q.shape == (3, 3)  # C(3,2) pairs x 3 temps
        assert np.all(np.abs(q) <= 1.0)

    def test_single_replica_has_no_overlaps(self):
        sim = TemperingEnsemble(
            16, (0.4, 0.5), n_replicas=1, seed=0,
        )
        with pytest.raises(ValueError):
            sim.replica_overlaps()

    def test_bimodal_overlap_orders_with_temperature(self):
        """±J spin-glass: deep in the frozen regime |q| is large, in
        the paramagnet it is near zero — the ordering the finite-size
        Binder crossing analysis rests on."""
        sim = TemperingEnsemble(
            8,
            np.linspace(0.2, 1.6, 8),
            n_replicas=2,
            swap_interval=5,
            couplings="bimodal",
            disorder_seed=6,
            updater="masked_conv",
            seed=8,
        )
        q = sim.sample_overlaps(n_samples=80, burn_in=100, thin=2)
        # Tempering must actually mix for the cold slots to freeze.
        assert sim.swap_acceptance > 0.1
        # Slot 0 is beta=0.2 (paramagnet), slot -1 beta=1.6 (frozen).
        q_hot = np.abs(q[:, :, 0]).mean()
        q_cold = np.abs(q[:, :, -1]).mean()
        assert q_cold > q_hot + 0.3
        g_cold = spin_glass_binder(q[:, :, -1])
        g_hot = spin_glass_binder(q[:, :, 0])
        assert g_cold > g_hot

    def test_spin_glass_binder_limits(self):
        # Delta-distributed overlap -> g = 2/3; broad Gaussian -> ~0.
        assert spin_glass_binder(np.full(100, 0.8)) == pytest.approx(2 / 3)
        rng = np.random.default_rng(0)
        g = spin_glass_binder(rng.normal(0.0, 0.3, size=20000))
        assert abs(g) < 0.05


class TestValidation:
    def test_packed_rejects_disorder(self):
        from repro.backend.numpy_backend import NumpyBackend
        from repro.tpu.dtypes import PACKED

        bonds = BondCouplings.generate("bimodal", (128, 128), 0)
        with pytest.raises(ValueError, match="packed"):
            EnsembleSimulation(
                128,
                [2.0],
                updater="masked_conv",
                backend=NumpyBackend(PACKED),
                couplings=bonds,
            )

    def test_non_masked_conv_rejects_disorder(self):
        bonds = BondCouplings.generate("bimodal", (16, 16), 0)
        with pytest.raises(ValueError, match="masked_conv"):
            EnsembleSimulation(16, [2.0], updater="compact", couplings=bonds)

    def test_bad_coupling_kind(self):
        with pytest.raises(ValueError, match="couplings"):
            BondCouplings.generate("antiferro", (8, 8), 0)

    def test_ladder_validation(self):
        with pytest.raises(ValueError):
            TemperingEnsemble(16, [])
        with pytest.raises(ValueError):
            TemperingEnsemble(16, [0.4, -0.1])
        with pytest.raises(ValueError):
            TemperingEnsemble(16, [0.4, 0.5], n_replicas=0)
        with pytest.raises(ValueError):
            TemperingEnsemble(16, [0.4, 0.5], swap_interval=0)
