"""Exact Onsager/Yang results for the infinite lattice."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.observables.onsager import (
    BETA_CRITICAL,
    T_CRITICAL,
    critical_temperature,
    internal_energy,
    spontaneous_magnetization,
)


class TestCriticalTemperature:
    def test_value(self):
        assert T_CRITICAL == pytest.approx(2.269185314213022, rel=1e-12)
        assert critical_temperature() == T_CRITICAL
        assert BETA_CRITICAL == pytest.approx(1.0 / T_CRITICAL)

    def test_self_duality_condition(self):
        # Tc satisfies sinh(2/Tc) = 1 (Kramers-Wannier duality).
        assert math.sinh(2.0 / T_CRITICAL) == pytest.approx(1.0, rel=1e-12)


class TestSpontaneousMagnetization:
    def test_zero_above_tc(self):
        assert spontaneous_magnetization(T_CRITICAL) == 0.0
        assert spontaneous_magnetization(3.0) == 0.0

    def test_saturates_at_low_temperature(self):
        assert spontaneous_magnetization(0.5) == pytest.approx(1.0, abs=1e-6)

    def test_known_value(self):
        # m(2.0) = (1 - sinh(1)^-4)^(1/8).
        expected = (1.0 - math.sinh(1.0) ** -4) ** 0.125
        assert spontaneous_magnetization(2.0) == pytest.approx(expected, rel=1e-12)

    def test_monotone_decreasing(self):
        t = np.linspace(0.5, T_CRITICAL - 1e-6, 50)
        m = spontaneous_magnetization(t)
        assert np.all(np.diff(m) < 0)

    def test_continuous_at_tc(self):
        # The 1/8 critical exponent makes the approach steep but continuous.
        assert spontaneous_magnetization(T_CRITICAL - 1e-9) < 0.1
        assert spontaneous_magnetization(T_CRITICAL - 1e-13) < 0.03

    def test_vectorised(self):
        out = spontaneous_magnetization(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3,)
        assert out[2] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            spontaneous_magnetization(-1.0)


class TestInternalEnergy:
    def test_ground_state_limit(self):
        assert internal_energy(0.1) == pytest.approx(-2.0, abs=1e-6)

    def test_high_temperature_limit(self):
        assert internal_energy(1e4) == pytest.approx(0.0, abs=1e-3)

    def test_critical_value(self):
        # u(Tc) = -sqrt(2) exactly.
        assert internal_energy(T_CRITICAL) == pytest.approx(-math.sqrt(2.0), rel=1e-6)

    def test_monotone_increasing_in_t(self):
        t = np.concatenate([np.linspace(0.5, 2.2, 30), np.linspace(2.35, 8.0, 30)])
        u = internal_energy(t)
        assert np.all(np.diff(u) > 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            internal_energy(0.0)
