"""Magnetization, energy and Binder-cumulant observable tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observables import (
    abs_magnetization,
    binder_cumulant,
    binder_from_moments,
    energy_per_spin,
    magnetization,
    total_energy,
)

from .conftest import make_lattice


class TestMagnetization:
    def test_ordered(self):
        assert magnetization(np.ones((4, 4), dtype=np.float32)) == 1.0
        assert magnetization(-np.ones((4, 4), dtype=np.float32)) == -1.0
        assert abs_magnetization(-np.ones((4, 4), dtype=np.float32)) == 1.0

    def test_balanced(self):
        plain = np.ones((4, 4), dtype=np.float32)
        plain[:, ::2] = -1.0
        assert magnetization(plain) == 0.0


class TestEnergy:
    def test_ground_state(self):
        assert energy_per_spin(np.ones((6, 6), dtype=np.float32)) == -2.0
        assert total_energy(np.ones((6, 6), dtype=np.float32)) == -72.0

    def test_antiferromagnetic_state(self):
        from repro.core.lattice import checkerboard_mask

        plain = (2.0 * checkerboard_mask((6, 6), "black") - 1.0).astype(np.float32)
        assert energy_per_spin(plain) == 2.0

    def test_single_flip_costs_eight(self):
        plain = np.ones((6, 6), dtype=np.float32)
        base = total_energy(plain)
        plain[2, 3] = -1.0
        assert total_energy(plain) - base == 8.0

    def test_forward_sum_equals_half_full_sum(self):
        """The forward-bond convention matches 0.5 * sum(sigma * nn)."""
        from repro.core.kernels import neighbor_sum_roll

        for seed in range(5):
            plain = make_lattice((6, 8), seed=seed)
            half_sum = -0.5 * float(
                np.sum(plain.astype(np.float64) * neighbor_sum_roll(plain))
            )
            assert total_energy(plain) == pytest.approx(half_sum, rel=1e-12)

    def test_side_two_torus_double_bonds(self):
        """On a 2xN torus vertical bonds are doubled; conventions agree."""
        plain = make_lattice((2, 6), seed=3)
        from repro.core.kernels import neighbor_sum_roll

        half_sum = -0.5 * float(
            np.sum(plain.astype(np.float64) * neighbor_sum_roll(plain))
        )
        assert total_energy(plain) == pytest.approx(half_sum, rel=1e-12)


class TestBinder:
    def test_limits(self):
        # Perfectly ordered: m = +-1 -> U4 = 2/3.
        ordered = np.ones(1000)
        assert binder_cumulant(ordered) == pytest.approx(2.0 / 3.0)
        # Gaussian m (disordered phase): <m^4> = 3 <m^2>^2 -> U4 = 0.
        rng = np.random.default_rng(0)
        gaussian = rng.normal(0.0, 0.1, size=200_000)
        assert binder_cumulant(gaussian) == pytest.approx(0.0, abs=0.02)

    def test_from_moments(self):
        assert binder_from_moments(1.0, 1.0) == pytest.approx(2.0 / 3.0)
        assert binder_from_moments(1.0, 3.0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            binder_from_moments(0.0, 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            binder_from_moments(1.0, -1.0)
        with pytest.raises(ValueError, match="sample"):
            binder_cumulant(np.array([]))

    def test_two_point_distribution(self):
        """m = +-m0 with equal probability gives U4 = 2/3 regardless of m0."""
        samples = np.array([0.5, -0.5] * 100)
        assert binder_cumulant(samples) == pytest.approx(2.0 / 3.0)
