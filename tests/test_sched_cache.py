"""Canonical cache keys and the LRU result cache."""

import numpy as np
import pytest

from repro.api import SimulationConfig
from repro.sched.cache import ResultCache, canonical_cache_key
from repro.sched.job import JobResult


def _result(value: float = 1.0) -> JobResult:
    return JobResult(
        magnetization=value,
        energy=-value,
        sweeps=3,
        lattice=np.full((4, 4), 1.0, dtype=np.float32),
    )


class TestCanonicalKey:
    def test_equal_configs_equal_keys(self):
        a = SimulationConfig(shape=16, temperature=2.0, seed=3)
        b = SimulationConfig(shape=16, temperature=2.0, seed=3)
        assert canonical_cache_key(a, 10) == canonical_cache_key(b, 10)

    def test_beta_and_temperature_spellings_collide(self):
        by_temp = SimulationConfig(shape=16, temperature=2.0)
        by_beta = SimulationConfig(shape=16, beta=0.5)
        assert canonical_cache_key(by_temp, 5) == canonical_cache_key(by_beta, 5)

    def test_int_and_tuple_shape_spellings_collide(self):
        assert canonical_cache_key(
            SimulationConfig(shape=16), 5
        ) == canonical_cache_key(SimulationConfig(shape=(16, 16)), 5)

    def test_explicit_default_block_shape_collides(self):
        implicit = SimulationConfig(shape=16)
        explicit = SimulationConfig(shape=16, block_shape=(8, 8))
        assert canonical_cache_key(implicit, 5) == canonical_cache_key(explicit, 5)

    def test_backend_kind_excluded(self):
        numpy_cfg = SimulationConfig(shape=16, backend="numpy")
        tpu_cfg = SimulationConfig(shape=16, backend="tpu")
        assert canonical_cache_key(numpy_cfg, 5) == canonical_cache_key(tpu_cfg, 5)

    def test_fused_selection_excluded(self):
        fused = SimulationConfig(shape=16, fused=True)
        elementwise = SimulationConfig(shape=16, fused=False)
        assert canonical_cache_key(fused, 5) == canonical_cache_key(elementwise, 5)

    @pytest.mark.parametrize(
        "changes",
        [
            {"temperature": 2.1},
            {"field": 0.1},
            {"updater": "conv"},
            {"dtype": "bfloat16"},
            {"seed": 1},
            {"shape": 24},
            {"initial": "cold"},
        ],
    )
    def test_trajectory_fields_included(self, changes):
        base = SimulationConfig(shape=16, temperature=2.0)
        assert canonical_cache_key(base, 5) != canonical_cache_key(
            base.evolve(**changes), 5
        )

    def test_sweep_count_included(self):
        config = SimulationConfig(shape=16)
        assert canonical_cache_key(config, 5) != canonical_cache_key(config, 6)

    def test_flat_field_and_model_spec_collide(self):
        """Satellite of the ModelSpec redesign: flat kwargs and
        spec-built configs of the same physics dedup to one entry."""
        from repro.api import ModelSpec

        flat = SimulationConfig(shape=16, field=0.25)
        spec = SimulationConfig(shape=16, model=ModelSpec(field=0.25))
        assert canonical_cache_key(flat, 5) == canonical_cache_key(spec, 5)

    def test_default_model_and_none_collide(self):
        from repro.api import ModelSpec

        implicit = SimulationConfig(shape=16)
        explicit = SimulationConfig(shape=16, model=ModelSpec())
        assert canonical_cache_key(implicit, 5) == canonical_cache_key(explicit, 5)

    def test_disorder_fields_included(self):
        from repro.api import ModelSpec

        base = SimulationConfig(
            shape=16, updater="masked_conv",
            model=ModelSpec(couplings="bimodal", disorder_seed=1),
        )
        other_kind = SimulationConfig(
            shape=16, updater="masked_conv",
            model=ModelSpec(couplings="gaussian", disorder_seed=1),
        )
        other_seed = SimulationConfig(
            shape=16, updater="masked_conv",
            model=ModelSpec(couplings="bimodal", disorder_seed=2),
        )
        keys = {
            canonical_cache_key(c, 5) for c in (base, other_kind, other_seed)
        }
        assert len(keys) == 3

    def test_ladder_spellings_collide_but_order_matters(self):
        from repro.api import LadderSpec

        by_beta = SimulationConfig(
            shape=16, ladder=LadderSpec(betas=(0.4, 0.5))
        )
        by_temp = SimulationConfig(
            shape=16, ladder=LadderSpec(temperatures=(2.5, 2.0))
        )
        reordered = SimulationConfig(
            shape=16, ladder=LadderSpec(betas=(0.5, 0.4))
        )
        assert canonical_cache_key(by_beta, 5) == canonical_cache_key(by_temp, 5)
        # Adjacency order is part of the trajectory, not a spelling.
        assert canonical_cache_key(by_beta, 5) != canonical_cache_key(reordered, 5)

    def test_explicit_initial_hashed_by_content(self):
        lattice = np.ones((8, 8), dtype=np.float32)
        a = SimulationConfig(shape=8, initial=lattice)
        b = SimulationConfig(shape=8, initial=lattice.copy())
        assert canonical_cache_key(a, 5) == canonical_cache_key(b, 5)
        flipped = lattice.copy()
        flipped[0, 0] = -1.0
        c = SimulationConfig(shape=8, initial=flipped)
        assert canonical_cache_key(a, 5) != canonical_cache_key(c, 5)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", _result())
        assert cache.get("k").magnetization == 1.0
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_hit_returns_isolated_copy(self):
        cache = ResultCache()
        cache.put("k", _result())
        first = cache.get("k")
        first.lattice[0, 0] = -99.0
        assert cache.get("k").lattice[0, 0] == 1.0

    def test_put_copies_input(self):
        cache = ResultCache()
        result = _result()
        cache.put("k", result)
        result.lattice[0, 0] = -99.0
        assert cache.get("k").lattice[0, 0] == 1.0

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", _result(1.0))
        cache.put("b", _result(2.0))
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", _result(3.0))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_contains_does_not_refresh_recency(self):
        # ``in`` is a pure membership probe; only ``get`` counts as a
        # use.  If ``__contains__`` refreshed recency, the probe below
        # would keep "a" alive and evict "b" instead.
        cache = ResultCache(max_entries=2)
        cache.put("a", _result(1.0))
        cache.put("b", _result(2.0))
        assert "a" in cache
        cache.put("c", _result(3.0))
        assert "a" not in cache
        assert "b" in cache
        assert "c" in cache
