"""Lattice construction and layout-conversion tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lattice import (
    CompactLattice,
    checkerboard_mask,
    cold_lattice,
    grid_to_plain,
    plain_to_grid,
    plain_to_quarters,
    quarters_to_plain,
    random_lattice,
    validate_spins,
)
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestConstruction:
    def test_random_lattice_values(self, stream):
        plain = random_lattice((32, 48), stream)
        assert plain.shape == (32, 48)
        assert plain.dtype == np.float32
        assert set(np.unique(plain)) <= {-1.0, 1.0}

    def test_random_lattice_bias(self, stream):
        plain = random_lattice((64, 64), stream, p_up=0.9)
        assert plain.mean() > 0.7

    def test_random_lattice_bad_shape(self, stream):
        with pytest.raises(ValueError, match="positive"):
            random_lattice((0, 4), stream)

    def test_cold_lattice(self):
        assert np.all(cold_lattice((4, 4)) == 1.0)
        assert np.all(cold_lattice((4, 4), value=-1) == -1.0)
        with pytest.raises(ValueError, match="spin value"):
            cold_lattice((4, 4), value=0)

    def test_validate_spins(self):
        validate_spins(cold_lattice((4, 4)))
        with pytest.raises(ValueError, match="must be \\+/-1"):
            validate_spins(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="2D"):
            validate_spins(np.ones((4, 4, 4), dtype=np.float32))


class TestGridLayout:
    def test_known_placement(self):
        plain = np.arange(24, dtype=np.float32).reshape(4, 6)
        grid = plain_to_grid(plain, (2, 3))
        assert grid.shape == (2, 2, 2, 3)
        # Block (1, 0) holds rows 2-3, cols 0-2.
        assert np.array_equal(grid[1, 0], plain[2:4, 0:3])

    def test_roundtrip(self):
        plain = make_lattice((12, 20))
        for block in [(3, 5), (12, 20), (4, 4), (1, 1), (6, 10)]:
            assert np.array_equal(grid_to_plain(plain_to_grid(plain, block)), plain)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            plain_to_grid(np.zeros((4, 6), dtype=np.float32), (3, 3))

    def test_bad_block_raises(self):
        with pytest.raises(ValueError, match="positive"):
            plain_to_grid(np.zeros((4, 6), dtype=np.float32), (0, 2))

    def test_grid_to_plain_rank_check(self):
        with pytest.raises(ValueError, match="rank-4"):
            grid_to_plain(np.zeros((2, 3, 4), dtype=np.float32))


class TestQuarters:
    def test_known_placement(self):
        plain = np.arange(16, dtype=np.float32).reshape(4, 4)
        q00, q01, q10, q11 = plain_to_quarters(plain)
        assert np.array_equal(q00, [[0, 2], [8, 10]])
        assert np.array_equal(q01, [[1, 3], [9, 11]])
        assert np.array_equal(q10, [[4, 6], [12, 14]])
        assert np.array_equal(q11, [[5, 7], [13, 15]])

    def test_roundtrip(self):
        plain = make_lattice((10, 14))
        assert np.array_equal(quarters_to_plain(*plain_to_quarters(plain)), plain)

    def test_odd_shape_raises(self):
        with pytest.raises(ValueError, match="even"):
            plain_to_quarters(np.zeros((3, 4), dtype=np.float32))

    def test_mismatched_quarters_raise(self):
        q = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            quarters_to_plain(q, q, q, np.zeros((2, 3), dtype=np.float32))

    def test_quarters_hold_one_color_each(self):
        mask = checkerboard_mask((8, 8), "black")
        q00, q01, q10, q11 = plain_to_quarters(mask)
        assert np.all(q00 == 1.0) and np.all(q11 == 1.0)
        assert np.all(q01 == 0.0) and np.all(q10 == 0.0)


class TestCheckerboardMask:
    def test_complementary(self):
        black = checkerboard_mask((6, 8), "black")
        white = checkerboard_mask((6, 8), "white")
        assert np.array_equal(black + white, np.ones((6, 8), dtype=np.float32))

    def test_no_adjacent_same_color(self):
        black = checkerboard_mask((8, 8), "black")
        assert np.all(black + np.roll(black, 1, axis=0) == 1.0)
        assert np.all(black + np.roll(black, 1, axis=1) == 1.0)

    def test_origin_is_black(self):
        assert checkerboard_mask((4, 4), "black")[0, 0] == 1.0

    def test_bad_color(self):
        with pytest.raises(ValueError, match="color"):
            checkerboard_mask((4, 4), "red")


class TestCompactLattice:
    def test_roundtrip_and_shapes(self):
        plain = make_lattice((16, 24))
        lat = CompactLattice.from_plain(plain, (4, 6))
        assert lat.grid_shape == (2, 2, 4, 6)
        assert lat.plain_shape == (16, 24)
        assert lat.n_sites == 16 * 24
        assert np.array_equal(lat.to_plain(), plain)

    def test_default_block_is_whole_quarter(self):
        plain = make_lattice((8, 12))
        lat = CompactLattice.from_plain(plain)
        assert lat.grid_shape == (1, 1, 4, 6)

    def test_black_white_accessors(self):
        plain = make_lattice((8, 8))
        lat = CompactLattice.from_plain(plain)
        assert lat.black() == (lat.s00, lat.s11)
        assert lat.white() == (lat.s01, lat.s10)

    def test_copy_is_independent(self):
        lat = CompactLattice.from_plain(make_lattice((8, 8)))
        dup = lat.copy()
        dup.s00[...] = -dup.s00
        assert not np.array_equal(dup.s00, lat.s00)

    def test_shape_validation(self):
        good = np.zeros((1, 1, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="rank 4"):
            CompactLattice(np.zeros((2, 2)), good, good, good)
        with pytest.raises(ValueError, match="shape"):
            CompactLattice(good, good, good, np.zeros((1, 1, 2, 3), dtype=np.float32))


class TestPropertyRoundtrips:
    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 4),
        n=st.integers(1, 4),
        r=st.integers(1, 6),
        c=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    def test_grid_roundtrip(self, m, n, r, c, seed):
        plain = random_lattice((m * r, n * c), PhiloxStream(seed, 0))
        assert np.array_equal(grid_to_plain(plain_to_grid(plain, (r, c))), plain)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 3),
        n=st.integers(1, 3),
        r=st.integers(1, 4),
        c=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_compact_roundtrip(self, m, n, r, c, seed):
        plain = random_lattice((2 * m * r, 2 * n * c), PhiloxStream(seed, 1))
        lat = CompactLattice.from_plain(plain, (r, c))
        assert np.array_equal(lat.to_plain(), plain)
