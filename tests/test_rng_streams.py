"""Per-core Philox stream tests: reproducibility, independence, state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import BatchedPhiloxStream, PhiloxStream, split_key


class TestSplitKey:
    def test_deterministic(self):
        assert split_key(42, 3) == split_key(42, 3)

    def test_seed_and_stream_sensitivity(self):
        base = split_key(42, 3)
        assert split_key(43, 3) != base
        assert split_key(42, 4) != base

    def test_words_are_32_bit(self):
        for seed in (0, 1, 2**63, 2**64 - 1):
            k0, k1 = split_key(seed, seed // 2)
            assert 0 <= k0 < 2**32
            assert 0 <= k1 < 2**32

    def test_nearby_seeds_decorrelated(self):
        keys = {split_key(s, 0) for s in range(256)}
        assert len(keys) == 256


class TestPhiloxStream:
    def test_reproducible(self):
        a = PhiloxStream(7, 1).uniform(1000)
        b = PhiloxStream(7, 1).uniform(1000)
        assert np.array_equal(a, b)

    def test_draw_order_is_part_of_the_stream(self):
        s1 = PhiloxStream(7, 1)
        first, second = s1.uniform(500), s1.uniform(500)
        combined = PhiloxStream(7, 1).uniform(1000)
        assert np.array_equal(np.concatenate([first, second]), combined)

    def test_streams_are_distinct(self):
        a = PhiloxStream(7, 1).uniform(4096).astype(np.float64)
        b = PhiloxStream(7, 2).uniform(4096).astype(np.float64)
        assert not np.array_equal(a, b)
        # Cross-correlation consistent with independence.
        corr = float(np.corrcoef(a, b)[0, 1])
        assert abs(corr) < 0.05

    def test_shapes(self):
        s = PhiloxStream(0, 0)
        assert s.uniform(5).shape == (5,)
        assert s.uniform((3, 4)).shape == (3, 4)
        assert s.uniform((2, 3, 4)).shape == (2, 3, 4)

    def test_counter_advances_by_counters_used(self):
        s = PhiloxStream(0, 0)
        s.random_bits(4)
        assert s.counter == 1
        s.random_bits(5)  # needs 2 counters
        assert s.counter == 3
        s.random_bits(0)
        assert s.counter == 3

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            PhiloxStream(0, 0).random_bits(-1)

    def test_state_roundtrip(self):
        s = PhiloxStream(11, 5)
        s.uniform(123)
        resumed = PhiloxStream.from_state(s.state())
        assert np.array_equal(resumed.uniform(64), s.uniform(64))

    def test_spawn_is_deterministic_and_distinct(self):
        parent = PhiloxStream(3, 1)
        child_a = parent.spawn(0)
        child_b = parent.spawn(1)
        assert np.array_equal(child_a.uniform(32), parent.spawn(0).uniform(32))
        assert not np.array_equal(child_a.uniform(32), child_b.uniform(32))

    def test_repr_mentions_state(self):
        s = PhiloxStream(1, 2)
        assert "seed=1" in repr(s)
        assert "stream_id=2" in repr(s)

    def test_counter_counts_blocks_not_words(self):
        # The counter property counts 128-bit blocks consumed (each
        # yielding four words), NOT 32-bit words drawn.
        s = PhiloxStream(0, 0)
        s.random_bits(3)  # partial block: 3 of 4 words used
        assert s.counter == 1
        s.random_bits(8)
        assert s.counter == 3
        assert "counter blocks" in type(s).counter.__doc__

    def test_partial_word_checkpoint_resumes_bit_identically(self):
        # Regression: a checkpoint taken right after a partial-word draw
        # (3 of a block's 4 words consumed) must resume bit-identically —
        # the resumed stream starts at the next whole block, exactly
        # where the original continues.
        s = PhiloxStream(21, 9)
        s.random_bits(3)
        resumed = PhiloxStream.from_state(s.state())
        assert resumed.counter == s.counter
        for n_words in (1, 3, 4, 7):
            assert np.array_equal(resumed.random_bits(n_words), s.random_bits(n_words))
        assert np.array_equal(resumed.uniform((2, 5)), s.uniform((2, 5)))


class TestBatchedPhiloxStream:
    def test_chains_match_solo_streams(self):
        batched = BatchedPhiloxStream(5, [0, 3, 17])
        solos = [PhiloxStream(5, sid) for sid in (0, 3, 17)]
        u = batched.uniform((3, 4, 4))
        for b, solo in enumerate(solos):
            assert np.array_equal(u[b], solo.uniform((4, 4)))
        assert batched.counters == [s.counter for s in solos]

    def test_from_streams_carries_counters(self):
        solos = [PhiloxStream(9, 0), PhiloxStream(9, 1)]
        solos[0].uniform(10)  # desync the counters
        batched = BatchedPhiloxStream.from_streams(solos)
        assert batched.counters == [solos[0].counter, solos[1].counter]
        u = batched.uniform((2, 6))
        assert np.array_equal(u[0], solos[0].uniform(6))
        assert np.array_equal(u[1], solos[1].uniform(6))

    def test_chain_splits_out_equivalent_solo(self):
        batched = BatchedPhiloxStream(2, [4, 5])
        batched.uniform((2, 8))
        split = batched.chain(1)
        reference = PhiloxStream(2, 5)
        reference.uniform(8)
        assert np.array_equal(split.uniform(16), reference.uniform(16))

    def test_uniform_requires_chain_axis(self):
        batched = BatchedPhiloxStream(0, [0, 1])
        with pytest.raises(ValueError, match="chain axis"):
            batched.uniform((3, 4))

    def test_state_roundtrip(self):
        batched = BatchedPhiloxStream([1, 2], [0, 1])
        batched.uniform((2, 5))
        resumed = BatchedPhiloxStream.from_state(batched.state())
        assert np.array_equal(resumed.uniform((2, 9)), batched.uniform((2, 9)))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedPhiloxStream(0, [])
        with pytest.raises(ValueError, match="seeds"):
            BatchedPhiloxStream([1, 2, 3], [0, 1])
        with pytest.raises(ValueError, match=">= 0"):
            BatchedPhiloxStream(0, [0]).random_bits(-1)
