"""The HTTP front door end to end, over real loopback sockets.

Every test stands up a :class:`~repro.serve.ServeApp` inside
``asyncio.run`` and talks to it with the dependency-free client in
:mod:`repro.serve.protocol` — the same wire path a tenant would use.
The load-bearing assertions: a result fetched over HTTP is bit-identical
to the in-process client (exact float equality, matching lattice hash),
shedding always carries ``Retry-After``, and a 202 means the result is
eventually retrievable.
"""

import asyncio
import hashlib

import numpy as np
import pytest

from repro.api import SimulationConfig
from repro.sched import Client, Scheduler
from repro.serve import (
    PROTOCOL_VERSION,
    ProtocolError,
    RateLimiter,
    ServeApp,
    ShardRouter,
    TenantQuota,
    config_from_wire,
    http_request,
    result_to_wire,
    stream_frames,
)


def with_app(coro_fn, **app_kwargs):
    """Run ``coro_fn(app)`` against a live server on a private loop."""

    async def main():
        async with ServeApp(**app_kwargs) as app:
            return await coro_fn(app)

    return asyncio.run(main())


def wire_config(**overrides):
    base = {"shape": [12, 12], "temperature": 2.1, "seed": 4}
    base.update(overrides)
    return base


async def post_job(app, config=None, sweeps=30, **fields):
    payload = {"config": config or wire_config(), "sweeps": sweeps, **fields}
    return await http_request(
        "127.0.0.1", app.port, "POST", "/v1/jobs", payload
    )


class TestLifecycle:
    def test_submit_status_result_roundtrip(self):
        async def scenario(app):
            status, _, body = await post_job(app)
            assert status == 202
            assert body["protocol"] == PROTOCOL_VERSION
            assert body["id"].startswith("j")
            status, _, info = await http_request(
                "127.0.0.1", app.port, "GET", f"/v1/jobs/{body['id']}"
            )
            assert status == 200
            assert info["state"] in ("queued", "admitted", "running", "done")
            status, _, res = await http_request(
                "127.0.0.1", app.port, "GET", f"/v1/jobs/{body['id']}/result"
            )
            assert status == 200
            assert res["state"] == "done"
            assert res["cache_key"] == body["cache_key"]
            return res

        res = with_app(scenario)
        # Bit-identity with the in-process client: exact float equality,
        # exact lattice, matching integrity hash.
        client = Client()
        local = client.result(
            client.submit(
                SimulationConfig(shape=(12, 12), temperature=2.1, seed=4), 30
            )
        )
        wire = res["result"]
        assert wire["magnetization"] == float(local.magnetization)
        assert wire["energy"] == float(local.energy)
        assert wire["sweeps"] == local.sweeps
        lattice = np.asarray(wire["lattice"], dtype=np.float32)
        np.testing.assert_array_equal(lattice, local.lattice)
        assert (
            wire["lattice_sha256"]
            == hashlib.sha256(
                np.ascontiguousarray(local.lattice.astype(np.float32)).tobytes()
            ).hexdigest()
        )

    def test_duplicate_submission_dedups(self):
        async def scenario(app):
            _, _, first = await post_job(app)
            _, _, second = await post_job(app)
            assert second["cache_key"] == first["cache_key"]
            results = []
            for body in (first, second):
                _, _, res = await http_request(
                    "127.0.0.1", app.port, "GET",
                    f"/v1/jobs/{body['id']}/result",
                )
                results.append(res["result"])
            assert results[0]["lattice_sha256"] == results[1]["lattice_sha256"]
            # The duplicate was deduped, not recomputed: at most one
            # compute landed an entry in the whole fleet's caches.
            assert app.router.aggregate_cache_stats()["entries"] == 1

        with_app(scenario, router=ShardRouter(n_shards=1))


class TestErrors:
    def test_unknown_job_404(self):
        async def scenario(app):
            status, _, body = await http_request(
                "127.0.0.1", app.port, "GET", "/v1/jobs/j999999"
            )
            assert status == 404
            assert "no such job" in body["error"]
            status, _, _ = await http_request(
                "127.0.0.1", app.port, "GET", "/v1/nope"
            )
            assert status == 404

        with_app(scenario)

    def test_bad_requests_400(self):
        async def scenario(app):
            status, _, body = await post_job(
                app, config=wire_config(bogus_field=1)
            )
            assert status == 400
            assert "bogus_field" in body["error"]
            status, _, body = await post_job(app, sweeps="ten")
            assert status == 400
            assert "sweeps" in body["error"]
            status, _, body = await http_request(
                "127.0.0.1", app.port, "POST", "/v1/jobs",
                {"config": wire_config(), "surprise": True},
            )
            assert status == 400
            assert "surprise" in body["error"]

        with_app(scenario)

    def test_wrong_method_405(self):
        async def scenario(app):
            status, _, body = await http_request(
                "127.0.0.1", app.port, "GET", "/v1/jobs"
            )
            assert status == 405
            status, _, _ = await http_request(
                "127.0.0.1", app.port, "POST", "/v1/healthz", {}
            )
            assert status == 405

        with_app(scenario)


class TestBackpressure:
    def test_quota_429_carries_retry_after(self):
        limiter = RateLimiter(
            per_tenant={"meek": TenantQuota(rate=0.001, burst=1.0)}
        )

        async def scenario(app):
            status, _, _ = await post_job(app, tenant="meek")
            assert status == 202
            status, headers, body = await post_job(
                app, config=wire_config(seed=5), tenant="meek"
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert body["retry_after_s"] > 0
            assert app.throttled == 1

        with_app(scenario, limiter=limiter)

    def test_saturated_429_and_zero_accepted_loss(self):
        """Past capacity the server sheds with 429 + Retry-After, and
        every job it answered 202 for still completes."""

        def factory(shard_id):
            return Scheduler(n_devices=1, max_batch=1, quantum=4, max_queue=1)

        async def scenario(app):
            accepted, shed = [], 0
            for seed in range(6):
                status, headers, body = await post_job(
                    app, config=wire_config(seed=seed), sweeps=200
                )
                if status == 202:
                    accepted.append(body["id"])
                else:
                    assert status == 429
                    assert int(headers["retry-after"]) >= 1
                    shed += 1
            assert accepted, "nothing was admitted"
            assert shed >= 1, "offered load never exceeded capacity"
            for ref_id in accepted:
                status, _, res = await http_request(
                    "127.0.0.1", app.port, "GET", f"/v1/jobs/{ref_id}/result"
                )
                assert status == 200
                assert res["state"] == "done"

        with_app(
            scenario,
            router=ShardRouter(n_shards=1, scheduler_factory=factory),
            autoscale=False,
        )


class TestStream:
    def test_stream_frames_progress_then_final(self):
        # max_batch=1 serializes jobs, so the last submission is still
        # queued when its stream opens — the first frames must show
        # pre-completion states before the final result frame.
        def factory(shard_id):
            return Scheduler(n_devices=1, max_batch=1, quantum=4, max_queue=16)

        async def scenario(app):
            ids = []
            for seed in range(4):
                _, _, body = await post_job(
                    app, config=wire_config(seed=seed), sweeps=60
                )
                ids.append(body["id"])
            frames = await stream_frames(
                "127.0.0.1", app.port, f"/v1/jobs/{ids[-1]}/stream"
            )
            assert len(frames) >= 2
            assert all(frame["id"] == ids[-1] for frame in frames)
            final = frames[-1]
            assert final["final"] is True
            assert final["state"] == "done"
            assert "lattice_sha256" in final["result"]
            progress = [f["sweeps_done"] for f in frames[:-1]]
            assert progress == sorted(progress)
            assert frames[0]["state"] != "done"

        with_app(
            scenario,
            router=ShardRouter(n_shards=1, scheduler_factory=factory),
            autoscale=False,
        )

    def test_stream_of_finished_job_still_closes_with_result(self):
        async def scenario(app):
            _, _, body = await post_job(app, sweeps=10)
            # Ensure it is done before the stream opens.
            await http_request(
                "127.0.0.1", app.port, "GET", f"/v1/jobs/{body['id']}/result"
            )
            frames = await stream_frames(
                "127.0.0.1", app.port, f"/v1/jobs/{body['id']}/stream"
            )
            assert frames[-1]["final"] is True
            assert frames[-1]["state"] == "done"

        with_app(scenario)


class TestIntrospection:
    def test_healthz_and_statsz(self):
        async def scenario(app):
            status, _, health = await http_request(
                "127.0.0.1", app.port, "GET", "/v1/healthz"
            )
            assert status == 200
            assert health["status"] == "ok"
            assert health["n_shards"] == app.router.n_shards
            await post_job(app)
            status, _, stats = await http_request(
                "127.0.0.1", app.port, "GET", "/v1/statsz"
            )
            assert status == 200
            assert stats["http"]["accepted"] == 1
            assert stats["router"]["n_shards"] == app.router.n_shards
            assert "autoscaler" in stats and "limiter" in stats
            assert "serve_http_accepted" in stats["metrics"]

        with_app(scenario)


class TestProtocolUnits:
    def test_config_from_wire_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown config field"):
            config_from_wire({"shape": [8, 8], "wat": 1})
        with pytest.raises(ProtocolError, match="JSON object"):
            config_from_wire([1, 2, 3])
        with pytest.raises(ProtocolError, match="backend"):
            config_from_wire({"shape": [8, 8], "backend": "gpu"})

    def test_config_from_wire_builds_equivalent_config(self):
        wire = config_from_wire(
            {"shape": [16, 16], "temperature": 2.0, "seed": 9}
        )
        native = SimulationConfig(shape=(16, 16), temperature=2.0, seed=9)
        from repro.sched import canonical_cache_key

        assert canonical_cache_key(wire, 10) == canonical_cache_key(native, 10)

    def test_result_to_wire_hash_matches_payload(self):
        client = Client()
        result = client.result(
            client.submit(SimulationConfig(shape=8, temperature=2.0, seed=0), 5)
        )
        wire = result_to_wire(result)
        lattice = np.asarray(wire["lattice"], dtype=np.float32)
        assert (
            hashlib.sha256(np.ascontiguousarray(lattice).tobytes()).hexdigest()
            == wire["lattice_sha256"]
        )
