"""Batched ensemble tests: per-chain bit-identity with solo simulations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.core.ensemble import EnsembleSimulation
from repro.core.simulation import IsingSimulation, run_temperature_scan

UPDATERS = ["compact", "conv", "checkerboard", "masked_conv"]
DTYPES = ["float32", "bfloat16"]

TEMPS = np.array([1.5, 2.269, 3.5])


def make_solo_chains(updater, dtype, seed=11, n_sweeps=6, initial="hot", field=0.0):
    sims = []
    for idx in range(TEMPS.size):
        sim = IsingSimulation(
            8,
            float(TEMPS[idx]),
            updater=updater,
            backend=NumpyBackend(dtype),
            seed=seed,
            stream_id=idx,
            initial=initial,
            field=field,
        )
        sim.run(n_sweeps)
        sims.append(sim)
    return sims


class TestBitIdentity:
    @pytest.mark.parametrize("updater", UPDATERS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_chains_match_solo_simulations(self, updater, dtype):
        # The core ensemble contract: chain b of the batched run is
        # bit-identical to a solo IsingSimulation fed the same
        # (seed, stream_id) pair, for every updater and both dtypes.
        ensemble = EnsembleSimulation(
            8, TEMPS, updater=updater, backend=NumpyBackend(dtype), seed=11
        )
        ensemble.run(6)
        solos = make_solo_chains(updater, dtype)
        lattices = ensemble.lattices
        for b, solo in enumerate(solos):
            assert np.array_equal(lattices[b], solo.lattice), f"chain {b} diverged"

    def test_mixed_hot_cold_initials(self):
        ensemble = EnsembleSimulation(
            8, TEMPS, seed=4, initial=["cold", "hot", "hot"]
        )
        ensemble.run(4)
        for b, start in enumerate(["cold", "hot", "hot"]):
            solo = IsingSimulation(
                8, float(TEMPS[b]), seed=4, stream_id=b, initial=start
            )
            solo.run(4)
            assert np.array_equal(ensemble.lattices[b], solo.lattice)

    def test_sample_matches_solo_sample(self):
        ensemble = EnsembleSimulation(8, TEMPS, seed=2)
        results = ensemble.sample(n_samples=24, burn_in=4, thin=2)
        for b in range(TEMPS.size):
            solo = IsingSimulation(8, float(TEMPS[b]), seed=2, stream_id=b)
            ref = solo.sample(n_samples=24, burn_in=4, thin=2)
            res = results[b]
            assert np.array_equal(res.m_series, ref.m_series)
            assert np.array_equal(res.e_series, ref.e_series)
            assert res.u4 == ref.u4
            assert res.abs_m == ref.abs_m
            assert res.energy == ref.energy

    def test_field_matches_solo_chains(self):
        ensemble = EnsembleSimulation(8, TEMPS, seed=7, field=0.4)
        ensemble.run(5)
        solos = make_solo_chains("compact", "float32", seed=7, n_sweeps=5, field=0.4)
        for b, solo in enumerate(solos):
            assert np.array_equal(ensemble.lattices[b], solo.lattice)


class TestTemperatureScanWrapper:
    def test_scan_bit_identical_to_serial_loop(self):
        # run_temperature_scan is now a thin wrapper over the ensemble;
        # it must reproduce the historical serial loop exactly.
        scanned = run_temperature_scan(8, TEMPS, n_samples=20, burn_in=4, seed=1)
        for idx, t in enumerate(TEMPS):
            sim = IsingSimulation(
                8,
                float(t),
                seed=1,
                stream_id=idx,
                initial="hot" if t >= 2.0 else "cold",
            )
            ref = sim.sample(20, burn_in=4)
            assert np.array_equal(scanned[idx].m_series, ref.m_series)
            assert scanned[idx].u4 == ref.u4

    def test_scan_threads_field(self):
        # Regression: a scan with an external field used to silently run
        # at h = 0.  With a strong field the high-T chain must polarise.
        with_field = run_temperature_scan(
            8, TEMPS, n_samples=24, burn_in=16, seed=3, field=4.0
        )
        without = run_temperature_scan(8, TEMPS, n_samples=24, burn_in=16, seed=3)
        assert with_field[-1].abs_m > 0.8  # h = 4 polarises even at T = 3.5
        assert with_field[-1].abs_m != without[-1].abs_m

    def test_scan_threads_field_bit_identically(self):
        scanned = run_temperature_scan(
            8, TEMPS, n_samples=12, burn_in=2, seed=5, field=0.25
        )
        for idx, t in enumerate(TEMPS):
            sim = IsingSimulation(
                8,
                float(t),
                seed=5,
                stream_id=idx,
                initial="hot" if t >= 2.0 else "cold",
                field=0.25,
            )
            ref = sim.sample(12, burn_in=2)
            assert np.array_equal(scanned[idx].m_series, ref.m_series)

    def test_scan_threads_block_shape(self):
        scanned = run_temperature_scan(
            8, TEMPS, n_samples=12, burn_in=2, seed=5, block_shape=(2, 2)
        )
        for idx, t in enumerate(TEMPS):
            sim = IsingSimulation(
                8,
                float(t),
                seed=5,
                stream_id=idx,
                initial="hot" if t >= 2.0 else "cold",
                block_shape=(2, 2),
            )
            ref = sim.sample(12, burn_in=2)
            assert np.array_equal(scanned[idx].m_series, ref.m_series)


class TestEnsembleLifecycle:
    def test_checkpoint_roundtrip_bit_identical(self):
        ensemble = EnsembleSimulation(
            8, TEMPS, seed=6, backend=NumpyBackend("bfloat16"), block_shape=(2, 2)
        )
        ensemble.run(4)
        state = ensemble.state_dict()
        resumed = EnsembleSimulation.from_state_dict(state)
        assert resumed.backend.dtype.name == "bfloat16"
        assert resumed.block_shape == (2, 2)
        assert resumed.sweeps_done == ensemble.sweeps_done
        ensemble.run(5)
        resumed.run(5)
        assert np.array_equal(ensemble.lattices, resumed.lattices)

    def test_to_single_continues_bit_identically(self):
        ensemble = EnsembleSimulation(8, TEMPS, seed=8)
        ensemble.run(3)
        solo = ensemble.to_single(2)
        assert solo.temperature == pytest.approx(float(TEMPS[2]))
        ensemble.run(4)
        solo.run(4)
        assert np.array_equal(ensemble.lattices[2], solo.lattice)

    def test_replica_ensemble_distinct_chains(self):
        # Same temperature, distinct stream ids: chains must decorrelate.
        ensemble = EnsembleSimulation(16, np.full(4, 2.3), seed=1)
        ensemble.run(5)
        lattices = ensemble.lattices
        for a in range(4):
            for b in range(a + 1, 4):
                assert not np.array_equal(lattices[a], lattices[b])

    def test_observable_helpers(self):
        ensemble = EnsembleSimulation(8, TEMPS, seed=0, initial="cold")
        assert np.allclose(ensemble.magnetizations(), 1.0)
        assert np.allclose(ensemble.energies_per_spin(), -2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="even"):
            EnsembleSimulation((7, 8), TEMPS)
        with pytest.raises(ValueError, match="positive"):
            EnsembleSimulation(8, [2.0, -1.0])
        with pytest.raises(ValueError, match="unknown updater"):
            EnsembleSimulation(8, TEMPS, updater="wolff")
        with pytest.raises(ValueError, match="stream ids"):
            EnsembleSimulation(8, TEMPS, stream_ids=[0, 1])
        with pytest.raises(ValueError, match="initial"):
            EnsembleSimulation(8, TEMPS, initial=["hot", "warm", "cold"])
        with pytest.raises(ValueError, match="initial lattice stack"):
            EnsembleSimulation(8, TEMPS, initial=np.ones((2, 8, 8), dtype=np.float32))
        with pytest.raises(ValueError, match="block_shape"):
            EnsembleSimulation(8, TEMPS, updater="masked_conv", block_shape=(2, 2))
        with pytest.raises(ValueError, match="n_sweeps"):
            EnsembleSimulation(8, TEMPS).run(-1)
        with pytest.raises(ValueError, match="n_samples"):
            EnsembleSimulation(8, TEMPS).sample(0)
