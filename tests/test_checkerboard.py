"""Algorithm 1 (naive checkerboard) updater tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkerboard import CheckerboardUpdater
from repro.core.lattice import checkerboard_mask, grid_to_plain, plain_to_grid
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestMechanics:
    def test_sweep_preserves_spin_values(self, backend, stream):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        grid = updater.to_state(make_lattice((8, 12)))
        out = updater.sweep(grid, stream)
        assert out.shape == grid.shape
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_one_phase_touches_only_one_color(self, backend, stream):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        plain = make_lattice((8, 8))
        grid = updater.to_state(plain)
        after = grid_to_plain(updater.update_color(grid, "black", stream))
        changed = after != plain
        white_mask = checkerboard_mask((8, 8), "white").astype(bool)
        assert not changed[white_mask].any()
        # At moderate temperature some black sites do flip.
        assert changed.any()

    def test_reproducible(self, backend):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        grid = updater.to_state(make_lattice((8, 8)))
        a = updater.sweep(grid, PhiloxStream(3, 0))
        b = updater.sweep(grid, PhiloxStream(3, 0))
        assert np.array_equal(a, b)

    def test_explicit_probs_override_stream(self, backend):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        grid = updater.to_state(make_lattice((8, 8)))
        probs = plain_to_grid(np.full((8, 8), 0.5, dtype=np.float32), (4, 4))
        out = updater.sweep(grid, probs_black=probs, probs_white=probs)
        out2 = updater.sweep(grid, probs_black=probs, probs_white=probs)
        assert np.array_equal(out, out2)

    def test_requires_stream_or_probs(self, backend):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        grid = updater.to_state(make_lattice((8, 8)))
        with pytest.raises(ValueError, match="stream or probs"):
            updater.update_color(grid, "black")

    def test_probs_shape_validated(self, backend, stream):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        grid = updater.to_state(make_lattice((8, 8)))
        with pytest.raises(ValueError, match="probs shape"):
            updater.update_color(grid, "black", probs=np.zeros((1, 1, 4, 4), dtype=np.float32))

    def test_bad_beta(self, backend):
        with pytest.raises(ValueError, match="beta"):
            CheckerboardUpdater(0.0, backend)

    def test_sweep_plain_roundtrip(self, backend, stream):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        out = updater.sweep_plain(make_lattice((8, 8)), stream)
        assert out.shape == (8, 8)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_mask_cache_reused(self, backend, stream):
        updater = CheckerboardUpdater(0.44, backend, block_shape=(4, 4))
        grid = updater.to_state(make_lattice((8, 8)))
        updater.sweep(grid, stream)
        masks_before = updater._mask_cache[grid.shape]
        updater.sweep(grid, stream)
        assert updater._mask_cache[grid.shape] is masks_before


class TestPhysicsLimits:
    def test_high_temperature_randomizes(self, backend):
        updater = CheckerboardUpdater(0.01, backend, block_shape=(8, 8))
        grid = updater.to_state(np.ones((16, 16), dtype=np.float32))
        stream = PhiloxStream(1, 0)
        for _ in range(20):
            grid = updater.sweep(grid, stream)
        m = abs(float(grid_to_plain(grid).mean()))
        assert m < 0.3

    def test_low_temperature_stays_ordered(self, backend):
        updater = CheckerboardUpdater(2.0, backend, block_shape=(8, 8))
        grid = updater.to_state(np.ones((16, 16), dtype=np.float32))
        stream = PhiloxStream(1, 0)
        for _ in range(20):
            grid = updater.sweep(grid, stream)
        m = float(grid_to_plain(grid).mean())
        assert m > 0.95
