"""Roll-based baseline and published-number tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ALL_BENCHMARKS,
    MULTI_GPU_64_BLOCK_2010,
    PREIS_2009_GPU,
    RollUpdater,
    TESLA_V100_THIS_PAPER,
    FPGA_ORTEGA_2016,
)
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestRollUpdater:
    def test_sweep_preserves_spins(self):
        out = RollUpdater(0.44).sweep_plain(make_lattice((8, 8)), PhiloxStream(1, 0))
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_reproducible(self):
        plain = make_lattice((8, 8))
        a = RollUpdater(0.44).sweep_plain(plain, PhiloxStream(2, 0))
        b = RollUpdater(0.44).sweep_plain(plain, PhiloxStream(2, 0))
        assert np.array_equal(a, b)

    def test_requires_stream_or_probs(self):
        with pytest.raises(ValueError, match="stream or probs"):
            RollUpdater(0.44).update_color(make_lattice((4, 4)), "black")

    def test_validation(self):
        with pytest.raises(ValueError, match="beta"):
            RollUpdater(-0.1)

    def test_one_phase_freezes_other_color(self):
        from repro.core.lattice import checkerboard_mask

        plain = make_lattice((8, 8))
        after = RollUpdater(0.44).update_color(plain, "white", PhiloxStream(3, 0))
        black = checkerboard_mask((8, 8), "black").astype(bool)
        assert np.array_equal(after[black], plain[black])


class TestPublishedNumbers:
    def test_paper_table1_rows(self):
        assert PREIS_2009_GPU.flips_per_ns == pytest.approx(7.9774)
        assert TESLA_V100_THIS_PAPER.flips_per_ns == pytest.approx(11.3704)
        assert TESLA_V100_THIS_PAPER.energy_nj_per_flip == pytest.approx(21.9869)
        assert FPGA_ORTEGA_2016.flips_per_ns == pytest.approx(614.4)

    def test_per_device_throughput(self):
        assert MULTI_GPU_64_BLOCK_2010.flips_per_ns_per_device == pytest.approx(
            206.0 / 64.0
        )

    def test_catalog_has_provenance(self):
        for bench in ALL_BENCHMARKS:
            assert bench.source, f"{bench.system} missing source"
            assert bench.flips_per_ns > 0

    def test_approximate_points_flagged(self):
        approx = [b for b in ALL_BENCHMARKS if b.approximate]
        assert approx, "figure-derived points must be flagged approximate"
        for bench in approx:
            assert "Fig. 8" in bench.notes
