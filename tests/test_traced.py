"""Traced sweep executor: record once, replay N, stay bit-identical.

The contract under test (see ``docs/traced_executor.md``): replayed
sweeps are bit-identical to eager-fused sweeps (which are themselves
bit-identical to the elementwise path), across all four updaters, both
dtypes, solo / ensemble / distributed drivers, field on and off; traces
invalidate on any binding change (restored checkpoints, roster rebuilds,
new streams); checkpoints taken mid-replay round-trip; and the
``traced_*`` telemetry gauges tell the recorder's story.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SimulationConfig, load, simulate
from repro.backend.numpy_backend import NumpyBackend
from repro.core.config import default_block_shape, resolve_traced
from repro.core.distributed import DistributedIsing
from repro.core.ensemble import EnsembleSimulation
from repro.core.simulation import IsingSimulation
from repro.core.traced import (
    ALLOCATING_OPS,
    HAVE_NUMBA,
    REPLAYABLE_OPS,
    SweepTrace,
    TracedExecutor,
    record_traced_metrics,
)
from repro.telemetry.report import RunTelemetry
from repro.tpu.dtypes import BFLOAT16

UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")


def _solo(traced, updater="compact", dtype=None, field=0.0, seed=11, side=16):
    backend = NumpyBackend(dtype) if dtype is not None else None
    return IsingSimulation(
        side, 2.2, updater=updater, backend=backend, seed=seed,
        field=field, fused=True, traced=traced,
    )


class TestResolve:
    def test_auto_follows_fused(self):
        sim = _solo("auto")
        assert sim.traced is True
        assert sim._executor is not None

    def test_off_by_default_on_tpu_cost_model(self):
        sim = DistributedIsing(16, 2.2, core_grid=(1, 1))
        assert sim.traced is False
        assert sim._executors == [None]

    def test_true_requires_fused(self):
        with pytest.raises(ValueError, match="requires the fused"):
            IsingSimulation(16, 2.2, fused=False, traced=True)
        with pytest.raises(ValueError, match="requires the fused"):
            EnsembleSimulation(16, [2.0, 2.2], fused=False, traced=True)
        with pytest.raises(ValueError, match="requires the fused"):
            DistributedIsing(16, 2.2, core_grid=(1, 1), traced=True)

    def test_rejects_junk(self):
        with pytest.raises(ValueError, match="traced must be"):
            resolve_traced("yes")
        with pytest.raises(ValueError, match="traced must be"):
            SimulationConfig(traced="sometimes")

    def test_op_sets_are_disjoint(self):
        assert not (REPLAYABLE_OPS & ALLOCATING_OPS)


class TestSoloBitIdentity:
    @pytest.mark.parametrize("updater", UPDATERS)
    @pytest.mark.parametrize("dtype", [None, BFLOAT16])
    def test_traced_matches_eager_fused(self, updater, dtype):
        traced = _solo(True, updater=updater, dtype=dtype)
        eager = _solo(False, updater=updater, dtype=dtype)
        traced.run(9)
        eager.run(9)
        assert np.array_equal(traced.lattice, eager.lattice)
        ex = traced._executor
        assert ex.traces_recorded == 1
        assert ex.fallbacks == 0
        assert ex.sweeps_replayed == 7  # 1 warm-up + 1 recording + 7 replays

    @pytest.mark.parametrize("updater", UPDATERS)
    def test_traced_matches_elementwise(self, updater):
        traced = _solo(True, updater=updater)
        elementwise = IsingSimulation(
            16, 2.2, updater=updater, seed=11, fused=False, traced=False
        )
        traced.run(8)
        elementwise.run(8)
        assert np.array_equal(traced.lattice, elementwise.lattice)

    @pytest.mark.parametrize("updater", ["compact", "masked_conv"])
    def test_with_external_field(self, updater):
        traced = _solo(True, updater=updater, field=0.3)
        eager = _solo(False, updater=updater, field=0.3)
        traced.run(8)
        eager.run(8)
        assert np.array_equal(traced.lattice, eager.lattice)

    def test_split_runs_match_one_run(self):
        whole = _solo(True)
        split = _solo(True)
        whole.run(10)
        for _ in range(10):
            split.run(1)
        assert np.array_equal(whole.lattice, split.lattice)

    def test_per_sweep_calls_still_reach_replay(self):
        # Telemetry-attached drivers advance one sweep per call; warm-up
        # state must persist across calls or tracing never engages.
        sim = IsingSimulation(
            16, 2.2, seed=4, fused=True, traced=True,
            telemetry=RunTelemetry(physics_interval=0),
        )
        sim.run(6)
        assert sim._executor.sweeps_replayed == 4
        bare = _solo(False, seed=4)
        bare.run(6)
        assert np.array_equal(sim.lattice, bare.lattice)


class TestInvalidation:
    def test_new_stream_invalidates(self):
        sim = _solo(True)
        sim.run(5)
        ex = sim._executor
        assert ex.traces_recorded == 1
        sim.stream = type(sim.stream)(sim.stream.seed, sim.stream.stream_id)
        sim.run(5)
        assert ex.invalidations == 1
        assert ex.traces_recorded == 2

    def test_ensemble_roster_change_invalidates(self):
        ens = EnsembleSimulation(16, [2.0, 2.2], seed=2, traced=True)
        ens.run(5)
        ex = ens._executor
        assert ex.traces_recorded == 1
        lattice, stream = ens.remove_chain(1)
        ens.run(5)
        assert ex.invalidations == 1
        assert ex.traces_recorded == 2
        # The rejoined roster stays bit-identical to an undisturbed solo.
        ens.add_chain(2.2, stream, lattice)
        ens.run(3)

    def test_unsound_trace_falls_back_eagerly(self):
        sim = _solo(True)
        ex = sim._executor
        trace = SweepTrace()
        trace.mark_unsound("array")
        assert not trace.sound
        with pytest.raises(RuntimeError, match="unsound"):
            trace.compile(sim.backend)
        # An executor over a non-fused updater records nothing and
        # permanently falls back rather than replaying garbage.
        eager = IsingSimulation(16, 2.2, seed=11, fused=False)
        bad = TracedExecutor(eager._updater)
        state = eager._updater.to_state(eager.lattice)
        state = bad.run(state, eager.stream, 4)
        assert bad.fallbacks == 1
        assert bad.sweeps_replayed == 0
        assert bad.sweeps_eager == 4
        assert ex.fallbacks == 0


class TestCheckpointRoundTrip:
    def test_solo_checkpoint_mid_replay(self):
        sim = _solo(True)
        sim.run(6)  # well into replay territory
        resumed = IsingSimulation.from_state_dict(sim.state_dict())
        assert resumed.traced_config is True
        assert resumed.traced is True
        baseline = _solo(False)
        baseline.run(13)
        sim.run(7)
        resumed.run(7)
        assert np.array_equal(sim.lattice, baseline.lattice)
        assert np.array_equal(resumed.lattice, baseline.lattice)

    def test_explicit_traced_flag_round_trips(self):
        sim = _solo(False)
        state = sim.state_dict()
        assert state["traced"] is False
        assert IsingSimulation.from_state_dict(state).traced is False

    def test_ensemble_checkpoint_mid_replay(self):
        ens = EnsembleSimulation(16, [2.0, 2.4], seed=5, traced=True)
        ens.run(6)
        resumed = load(ens.state_dict())
        ens.run(6)
        resumed.run(6)
        assert np.array_equal(ens.lattices, resumed.lattices)

    def test_distributed_checkpoint_mid_replay(self):
        sim = DistributedIsing(
            16, 2.2, core_grid=(2, 2), seed=3, fused=True, traced=True
        )
        sim.sweep(5)
        state = sim.state_dict()
        assert state["traced"] is True
        resumed = DistributedIsing.from_state_dict(state)
        assert resumed.traced is True
        sim.sweep(5)
        resumed.sweep(5)
        assert np.array_equal(sim.gather_lattice(), resumed.gather_lattice())


class TestDistributed:
    @pytest.mark.parametrize("dtype", ["float32", "bfloat16"])
    def test_matches_eager_fused_and_elementwise(self, dtype):
        kw = dict(core_grid=(2, 2), seed=7, dtype=dtype)
        traced = DistributedIsing(16, 2.2, fused=True, traced=True, **kw)
        eager = DistributedIsing(16, 2.2, fused=True, traced=False, **kw)
        elementwise = DistributedIsing(16, 2.2, fused=False, **kw)
        traced.sweep(6)
        eager.sweep(6)
        elementwise.sweep(6)
        assert np.array_equal(traced.gather_lattice(), eager.gather_lattice())
        assert np.array_equal(
            traced.gather_lattice(), elementwise.gather_lattice()
        )
        for ex in traced._executors:
            assert ex.traces_recorded == 2  # one program per colour phase
            assert ex.fallbacks == 0
            assert ex.sweeps_replayed == 8  # (6 sweeps x 2 phases) - 4 warm

    def test_explicit_probs_bypass_tracing(self):
        sim = DistributedIsing(
            16, 2.2, core_grid=(1, 1), seed=1, fused=True, traced=True
        )
        rng = np.random.default_rng(0)
        pb = rng.random((16, 16)).astype(np.float32)
        pw = rng.random((16, 16)).astype(np.float32)
        sim.sweep(1, probs_black=pb, probs_white=pw)
        assert sim._executors[0].traces_recorded == 0

    def test_traced_log_spans_on_modeled_timeline(self):
        from repro.telemetry.trace import chrome_trace

        sim = DistributedIsing(
            16, 2.2, core_grid=(2, 2), seed=2,
            fused=True, traced=True, record_trace=True,
        )
        sim.sweep(5)
        names = [span["name"] for span in sim.traced_log]
        assert names[0] == "traced warmup"
        assert names[-1] == "traced replay"
        trace = chrome_trace(sim)
        assert trace["otherData"]["num_traced_spans"] == 5
        labels = [
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev["ph"] == "M"
        ]
        assert "traced replay" in labels


class TestTelemetryAndApi:
    def test_gauges(self):
        sim = IsingSimulation(
            16, 2.2, seed=9, fused=True, traced=True,
            telemetry=RunTelemetry(physics_interval=0),
        )
        sim.run(6)
        report = sim.report()
        assert report.run["traced"] is True
        metrics = report.metrics
        assert metrics["traced_sweeps_replayed"]["value"] == 4
        assert metrics["traced_sweeps_eager"]["value"] == 2
        assert metrics["traced_traces_recorded"]["value"] == 1
        assert metrics["traced_fallbacks"]["value"] == 0
        assert metrics["traced_program_ops"]["value"] > 0

    def test_gauges_zero_when_off(self):
        registry = RunTelemetry().registry
        record_traced_metrics(registry, None)
        assert registry.gauge("traced_sweeps_replayed").value == 0

    def test_config_passes_traced_through(self):
        cfg = SimulationConfig(shape=16, temperature=2.2, traced=False)
        sim = simulate(cfg)
        assert sim.traced is False
        assert simulate(cfg.evolve(traced="auto")).traced is True

    def test_numba_absent_is_graceful(self):
        # The container has no numba; the pure-Python replay loop is the
        # authoritative path and everything above already exercised it.
        assert HAVE_NUMBA is False


class TestDefaultBlockShape:
    @pytest.mark.parametrize(
        "updater, expected",
        [
            ("masked_conv", None),
            ("checkerboard", (16, 20)),
            ("compact", (8, 10)),
            ("conv", (8, 10)),
        ],
    )
    def test_matches_driver_defaults(self, updater, expected):
        assert default_block_shape(updater, (16, 20)) == expected

    @pytest.mark.parametrize("updater", ["compact", "conv", "checkerboard"])
    def test_driver_consumes_helper(self, updater):
        implicit = IsingSimulation(16, 2.2, updater=updater)
        assert implicit.block_shape == default_block_shape(updater, (16, 16))
