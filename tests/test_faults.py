"""Fault-matrix regression suite for the fault-tolerant SPMD runtime.

Covers the four fault kinds (drop / delay / stall / kill) end to end:
transient faults are retried or absorbed without perturbing the chain
(bit-identity), retry storms book honest modeled time and telemetry
counters, permanent kills degrade onto the surviving sub-grid from the
last checkpoint, and the degraded chain still tracks Onsager's exact
magnetization on both sides of T_c.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributed import DistributedIsing
from repro.mesh.faults import (
    CollectiveFaults,
    CoreLostError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    MeshTimeoutError,
    RetryPolicy,
)
from repro.mesh.topology import degraded_grid
from repro.observables.onsager import spontaneous_magnetization
from repro.telemetry.report import RunTelemetry
from repro.telemetry.trace import chrome_trace


def _total_comm_seconds(sim: DistributedIsing) -> float:
    return sum(
        core.profiler.seconds["communication"] for core in sim.pod.cores
    )


# -- FaultEvent / FaultPlan validation ----------------------------------


class TestFaultPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("melt", collective=0)

    def test_link_events_need_a_collective(self):
        for kind in ("drop", "delay", "stall"):
            with pytest.raises(ValueError, match="collective"):
                FaultEvent(kind, core=0, seconds=1e-6)

    def test_kill_needs_core_and_trigger(self):
        with pytest.raises(ValueError, match="name a core"):
            FaultEvent("kill", sweep=3)
        with pytest.raises(ValueError, match="trigger"):
            FaultEvent("kill", core=1)

    def test_rates_bounded(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=1.5)

    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            events=(
                FaultEvent("drop", collective=3, count=2),
                FaultEvent("kill", core=1, sweep=5),
            ),
            drop_rate=0.01,
            delay_rate=0.02,
            delay_seconds=1e-5,
            seed=9,
            retry=RetryPolicy(max_retries=5, backoff_base=1e-6),
        )
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan


class TestFaultInjector:
    def test_scheduled_events_fire_once(self):
        plan = FaultPlan(events=(FaultEvent("drop", collective=2, count=3),))
        inj = FaultInjector(plan, n_cores=4)
        assert inj.collective_faults(2).drops == 3
        assert inj.collective_faults(2).drops == 0  # consumed

    def test_random_faults_reproducible(self):
        # Each injector owns its stream position: replaying the plan
        # from scratch reproduces the draw sequence exactly.
        plan = FaultPlan(drop_rate=0.3, delay_rate=0.3, seed=17)
        a = FaultInjector(plan, 4)
        b = FaultInjector(plan, 4)
        seq_a = [a.collective_faults(i).injected for i in range(50)]
        seq_b = [b.collective_faults(i).injected for i in range(50)]
        assert seq_a == seq_b
        assert sum(seq_a) > 0

    def test_kill_raises_core_lost(self):
        plan = FaultPlan(events=(FaultEvent("kill", core=2, sweep=1),))
        inj = FaultInjector(plan, n_cores=4)
        inj.begin_sweep(0)
        assert isinstance(inj.collective_faults(0), CollectiveFaults)
        inj.begin_sweep(1)
        with pytest.raises(CoreLostError) as exc:
            inj.collective_faults(5)
        assert exc.value.core_id == 2
        assert 2 in inj.dead_cores


# -- transient faults: bit-identity + honest accounting -----------------


class TestTransientFaults:
    def _pair(self, plan, sweeps=4, **kwargs):
        clean = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=5, **kwargs)
        faulty = DistributedIsing(
            16, 2.0, core_grid=(2, 2), seed=5, fault_plan=plan, **kwargs
        )
        clean.sweep(sweeps)
        faulty.sweep(sweeps)
        return clean, faulty

    @pytest.mark.parametrize(
        "event",
        [
            FaultEvent("drop", collective=5, count=2),
            FaultEvent("delay", collective=5, seconds=20e-6),
            FaultEvent("stall", collective=5, core=1, seconds=100e-6),
        ],
        ids=["drop", "delay", "stall"],
    )
    def test_transient_fault_is_bit_identical_but_slower(self, event):
        clean, faulty = self._pair(FaultPlan(events=(event,)))
        assert np.array_equal(clean.gather_lattice(), faulty.gather_lattice())
        assert _total_comm_seconds(faulty) > _total_comm_seconds(clean)
        assert faulty.runtime.fault_log

    def test_empty_plan_is_bit_identical(self):
        clean, faulty = self._pair(FaultPlan())
        assert np.array_equal(clean.gather_lattice(), faulty.gather_lattice())
        assert faulty.runtime.fault_log == []

    def test_random_drops_retried_and_counted(self):
        plan = FaultPlan(drop_rate=0.2, seed=3)
        telemetry = RunTelemetry()
        clean = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=5)
        faulty = DistributedIsing(
            16, 2.0, core_grid=(2, 2), seed=5, fault_plan=plan, telemetry=telemetry
        )
        clean.sweep(6)
        faulty.sweep(6)
        assert np.array_equal(clean.gather_lattice(), faulty.gather_lattice())
        registry = telemetry.registry
        assert registry.counter("mesh_retries").value > 0
        assert registry.counter("fault_injected").value > 0

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan(
            events=(FaultEvent("drop", collective=0, count=10),),
            retry=RetryPolicy(max_retries=2),
        )
        sim = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=5, fault_plan=plan)
        with pytest.raises(MeshTimeoutError) as exc:
            sim.sweep()
        assert exc.value.attempts == 3  # initial + 2 retries, all failed

    def test_retry_spans_reach_chrome_trace(self):
        plan = FaultPlan(events=(FaultEvent("drop", collective=5, count=2),))
        sim = DistributedIsing(
            16, 2.0, core_grid=(2, 2), seed=5, fault_plan=plan, record_trace=True
        )
        sim.sweep(2)
        trace = chrome_trace(sim)
        fault_events = [e for e in trace["traceEvents"] if e.get("cat") == "fault"]
        assert fault_events
        assert trace["otherData"]["num_fault_spans"] == len(sim.runtime.fault_log)
        names = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert "mesh faults" in names


# -- checkpoint/v2 + resume ---------------------------------------------


class TestDistributedCheckpoint:
    @pytest.mark.parametrize("fused", [False, True], ids=["elementwise", "fused"])
    def test_resume_is_bit_identical(self, fused):
        sim = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=7, fused=fused)
        sim.sweep(3)
        state = sim.state_dict()
        assert state["schema"] == "checkpoint/v2"
        assert state["kind"] == "distributed"
        sim.sweep(4)
        resumed = DistributedIsing.from_state_dict(state)
        resumed.sweep(4)
        assert resumed.sweeps_done == sim.sweeps_done
        assert np.array_equal(resumed.gather_lattice(), sim.gather_lattice())

    def test_resume_alias(self):
        sim = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=7)
        sim.sweep(2)
        resumed = DistributedIsing.resume(sim.state_dict())
        assert np.array_equal(resumed.gather_lattice(), sim.gather_lattice())

    def test_periodic_checkpoints_do_not_perturb_chain(self):
        plain = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=7)
        snap = DistributedIsing(
            16, 2.0, core_grid=(2, 2), seed=7, checkpoint_interval=2
        )
        plain.sweep(6)
        snap.sweep(6)
        assert np.array_equal(plain.gather_lattice(), snap.gather_lattice())
        assert snap._last_checkpoint["sweeps_done"] == 6

    def test_v1_checkpoint_reads_with_deprecation_warning(self):
        sim = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=7)
        sim.sweep(2)
        v1 = {
            k: v
            for k, v in sim.state_dict().items()
            if k not in ("schema", "kind")
        }
        with pytest.warns(DeprecationWarning, match="legacy v1"):
            resumed = DistributedIsing.from_state_dict(v1)
        assert np.array_equal(resumed.gather_lattice(), sim.gather_lattice())


# -- degraded_grid + elastic degrade ------------------------------------


class TestDegradedGrid:
    def test_prefers_largest_valid_subgrid(self):
        assert degraded_grid((4, 4), (64, 64)) == (4, 2)

    def test_divisibility_respected(self):
        # (3, 4) would be larger than (2, 4) but 64 % 3 != 0.
        assert degraded_grid((4, 4), (64, 64)) != (3, 4)

    def test_single_core_cannot_degrade(self):
        assert degraded_grid((1, 1), (16, 16)) is None

    def test_even_local_sides_required(self):
        # Degrading (2, 1) on a 6x6 would need odd local sides everywhere.
        assert degraded_grid((2, 1), (6, 6)) == (1, 1)


class TestElasticDegrade:
    def test_kill_on_4x4_grid_degrades_and_finishes(self):
        plan = FaultPlan(events=(FaultEvent("kill", core=5, sweep=4),))
        telemetry = RunTelemetry()
        sim = DistributedIsing(
            (16, 16),
            2.0,
            core_grid=(4, 4),
            seed=11,
            fault_plan=plan,
            checkpoint_interval=2,
            telemetry=telemetry,
        )
        sim.run_resilient(10)
        assert sim.sweeps_done == 10
        assert sim.core_grid == (4, 2)
        assert sim.num_cores == 8
        (event,) = sim.topology_events
        assert event["dead_core"] == 5
        assert event["old_grid"] == [4, 4]
        assert event["new_grid"] == [4, 2]
        assert event["resumed_from_sweep"] == 4
        assert telemetry.registry.counter("topology_degrades").value == 1
        report = sim.report()
        assert report.run["topology_events"] == sim.topology_events

    def test_degrade_without_checkpoint_raises(self):
        sim = DistributedIsing(16, 2.0, core_grid=(2, 2), seed=11)
        err = CoreLostError(1, 0, 0)
        sim._last_checkpoint = None
        with pytest.raises(RuntimeError, match="no checkpoint"):
            sim._degrade(err)

    def test_degrade_on_single_core_reraises(self):
        plan = FaultPlan(events=(FaultEvent("kill", core=0, sweep=1),))
        sim = DistributedIsing(16, 2.0, core_grid=(1, 1), seed=11, fault_plan=plan)
        with pytest.raises(CoreLostError):
            sim.run_resilient(4)

    def test_degraded_chain_state_round_trips(self):
        plan = FaultPlan(events=(FaultEvent("kill", core=2, sweep=2),))
        sim = DistributedIsing(
            (16, 16), 2.0, core_grid=(2, 2), seed=11, fault_plan=plan
        )
        sim.run_resilient(5)
        assert sim.core_grid == (2, 1)
        state = sim.state_dict()
        sim.sweep(3)
        resumed = DistributedIsing.from_state_dict(state)
        resumed.sweep(3)
        assert np.array_equal(resumed.gather_lattice(), sim.gather_lattice())
        assert resumed.topology_events == sim.topology_events


class TestDegradedPhysics:
    """Degraded runs stay honest Metropolis chains (Onsager tolerance)."""

    @pytest.mark.parametrize(
        "temperature,shape,expected,tol",
        [
            # Deep in the ordered phase |m| tracks Onsager's exact curve;
            # in the disordered phase the exact m is 0 and the finite-size
            # |m| floor (~ sqrt(chi/N)) needs the larger lattice to sit
            # inside the tolerance.
            (1.5, (16, 16), float(spontaneous_magnetization(1.5)), 0.02),
            (3.0, (32, 32), 0.0, 0.12),
        ],
        ids=["T1.5-ordered", "T3.0-disordered"],
    )
    def test_degraded_magnetization_tracks_onsager(
        self, temperature, shape, expected, tol
    ):
        plan = FaultPlan(events=(FaultEvent("kill", core=3, sweep=60),))
        sim = DistributedIsing(
            shape,
            temperature,
            core_grid=(4, 4),
            seed=23,
            initial="cold" if temperature < 2.0 else "hot",
            fault_plan=plan,
            checkpoint_interval=10,
        )
        sim.run_resilient(120)
        assert sim.topology_events  # the kill really happened
        samples = []
        for _ in range(160):
            sim.run_resilient(1)
            samples.append(abs(sim.magnetization()))
        assert np.mean(samples) == pytest.approx(expected, abs=tol)
