"""MCMC error-analysis tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observables.stats import (
    binder_jackknife,
    blocking_error,
    effective_sample_size,
    integrated_autocorrelation_time,
    jackknife,
)


def _ar1(n: int, phi: float, seed: int = 0) -> np.ndarray:
    """An AR(1) series with known autocorrelation time (1+phi)/(2(1-phi))."""
    rng = np.random.default_rng(seed)
    noise = rng.normal(size=n)
    x = np.empty(n)
    x[0] = noise[0]
    for i in range(1, n):
        x[i] = phi * x[i - 1] + noise[i]
    return x


class TestBlocking:
    def test_iid_error_matches_theory(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0.0, 1.0, size=32_768)
        mean, err = blocking_error(x)
        theory = 1.0 / np.sqrt(x.size)
        assert mean == pytest.approx(0.0, abs=5 * theory)
        assert err == pytest.approx(theory, rel=0.5)

    def test_correlated_error_larger_than_naive(self):
        x = _ar1(65_536, phi=0.95)
        _, blocked = blocking_error(x, n_blocks=32)
        naive = x.std(ddof=1) / np.sqrt(x.size)
        assert blocked > 2 * naive

    def test_validation(self):
        with pytest.raises(ValueError, match="samples"):
            blocking_error(np.arange(10), n_blocks=32)


class TestAutocorrelation:
    def test_iid_tau_is_half(self):
        rng = np.random.default_rng(2)
        tau = integrated_autocorrelation_time(rng.normal(size=65_536))
        assert tau == pytest.approx(0.5, abs=0.1)

    def test_ar1_tau_matches_theory(self):
        phi = 0.9
        tau = integrated_autocorrelation_time(_ar1(1 << 17, phi))
        theory = 0.5 * (1 + phi) / (1 - phi)
        assert tau == pytest.approx(theory, rel=0.2)

    def test_constant_series(self):
        assert integrated_autocorrelation_time(np.ones(100)) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="samples"):
            integrated_autocorrelation_time(np.array([1.0, 2.0]))

    def test_effective_sample_size(self):
        x = _ar1(1 << 15, phi=0.8)
        n_eff = effective_sample_size(x)
        assert n_eff < x.size / 2
        assert n_eff > x.size / 50


class TestJackknife:
    def test_linear_estimator_matches_mean(self):
        rng = np.random.default_rng(3)
        x = rng.normal(2.0, 1.0, size=4096)
        est, err = jackknife(x, np.mean)
        assert est == pytest.approx(x.mean(), rel=1e-10)
        assert err == pytest.approx(x.std(ddof=1) / np.sqrt(x.size), rel=0.5)

    def test_nonlinear_estimator_bias_correction(self):
        rng = np.random.default_rng(4)
        x = rng.normal(5.0, 1.0, size=8192)
        est, err = jackknife(x, lambda s: float(np.mean(s)) ** 2)
        assert est == pytest.approx(25.0, abs=5 * err + 0.1)

    def test_binder_jackknife_on_gaussian(self):
        rng = np.random.default_rng(5)
        m = rng.normal(0.0, 0.3, size=65_536)
        u4, err = binder_jackknife(m)
        assert u4 == pytest.approx(0.0, abs=4 * err + 0.01)
        assert err > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="samples"):
            jackknife(np.arange(5), np.mean, n_blocks=32)
