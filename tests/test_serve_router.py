"""Shard routing: affinity, spill, scaling, and zero-loss re-homing.

The router's contract has three legs: (1) identical configs always try
the same "affine" shard, so dedup and the content-addressed cache stay
effective under sharding; (2) rendezvous hashing moves only ~1/N of the
keyspace per topology change; (3) removing a shard hands its unfinished
jobs to survivors with bit-identical results.
"""

import numpy as np
import pytest

from repro.api import SimulationConfig, simulate
from repro.sched import Scheduler, SchedulerSaturatedError
from repro.serve import ShardRouter


def tiny_factory(max_queue=4):
    def factory(shard_id):
        return Scheduler(
            n_devices=1, max_batch=2, quantum=4, max_queue=max_queue
        )

    return factory


def configs(n, **overrides):
    base = dict(shape=8, temperature=2.0)
    base.update(overrides)
    return [
        SimulationConfig(seed=seed, **base) for seed in range(n)
    ]


class TestAffinity:
    def test_same_config_same_shard(self):
        router = ShardRouter(n_shards=4)
        config = SimulationConfig(shape=8, temperature=2.2, seed=3)
        first = router.shard_for(config, 10)
        for _ in range(5):
            assert router.shard_for(config, 10) is first

    def test_distinct_configs_spread(self):
        router = ShardRouter(n_shards=4)
        homes = {router.shard_for(c, 10).id for c in configs(32)}
        assert len(homes) > 1

    def test_sweep_count_is_part_of_the_key(self):
        router = ShardRouter(n_shards=8)
        config = SimulationConfig(shape=8, temperature=2.0, seed=0)
        homes = {router.shard_for(config, sweeps).id for sweeps in range(1, 30)}
        assert len(homes) > 1

    def test_duplicates_dedup_on_affine_shard(self):
        router = ShardRouter(n_shards=4)
        config = SimulationConfig(shape=8, temperature=2.0, seed=1)
        shard1, job1 = router.submit(config, 10)
        shard2, job2 = router.submit(config, 10)
        assert shard1 is shard2
        assert job2 is not job1
        router.drain()
        # The duplicate was served by its primary, never recomputed.
        assert job2.from_cache
        np.testing.assert_array_equal(job1.result.lattice, job2.result.lattice)

    def test_adding_shard_moves_minority_of_keys(self):
        router = ShardRouter(n_shards=4)
        keys = [router.route_key(c, 10) for c in configs(64)]
        before = {key: router.ranked(key)[0].id for key in keys}
        new = router.add_shard()
        moved = 0
        for key in keys:
            after = router.ranked(key)[0].id
            if after != before[key]:
                moved += 1
                # A key only ever moves TO the new shard.
                assert after == new.id
        assert 0 < moved < len(keys) // 2


class TestSpill:
    def test_spills_past_ratio_and_counts(self):
        router = ShardRouter(
            n_shards=3, scheduler_factory=tiny_factory(max_queue=2),
            spill_ratio=0.5,
        )
        config = SimulationConfig(shape=8, temperature=2.0, seed=0)
        affine = router.shard_for(config, 10)
        # Saturate the affine shard with unrelated keys homed elsewhere.
        affine.scheduler.submit(
            SimulationConfig(shape=8, temperature=9.9, seed=77), 10
        )
        assert affine.load_factor >= 0.5
        shard, _job = router.submit(config, 10)
        assert shard is not affine
        assert router.routed_spilled == 1

    def test_duplicate_sticks_to_loaded_affine_shard(self):
        router = ShardRouter(
            n_shards=3, scheduler_factory=tiny_factory(max_queue=2),
            spill_ratio=0.5,
        )
        config = SimulationConfig(shape=8, temperature=2.0, seed=0)
        affine, first = router.submit(config, 10)
        # Load the affine shard past the spill ratio.
        affine.scheduler.submit(
            SimulationConfig(shape=8, temperature=9.9, seed=77), 10
        )
        assert affine.load_factor >= 0.5
        shard, job = router.submit(config, 10)  # duplicate: free dedup
        assert shard is affine
        assert job is not first and job.cache_key == first.cache_key

    def test_all_saturated_raises_with_min_hint(self):
        router = ShardRouter(
            n_shards=2, scheduler_factory=tiny_factory(max_queue=1)
        )
        for config in configs(8):
            try:
                router.submit(config, 10)
            except SchedulerSaturatedError:
                break
        else:
            pytest.fail("router never saturated")
        with pytest.raises(SchedulerSaturatedError) as excinfo:
            router.submit(
                SimulationConfig(shape=8, temperature=8.8, seed=99), 10
            )
        assert excinfo.value.retry_after_s is not None
        assert excinfo.value.retry_after_s > 0
        assert router.rejected >= 1


class TestScaling:
    def test_remove_shard_rehomes_jobs_bit_identically(self):
        router = ShardRouter(
            n_shards=3, scheduler_factory=tiny_factory(max_queue=16)
        )
        cfgs = configs(6, shape=10)
        jobs = [router.submit(c, 9)[1] for c in cfgs]
        for _ in range(2):  # some batches running, some queued
            router.step()
        victim = router.shards[0]
        moved = router.remove_shard(victim.id)
        assert router.n_shards == 2
        assert moved == router.jobs_rehomed
        router.drain()
        by_key = {}
        for shard in router.shards:
            for key, result in shard.scheduler.cache.export():
                by_key[key] = result
        for config, job in zip(cfgs, jobs):
            solo = simulate(config)
            solo.run(9)
            expected = solo.lattice
            key = router.route_key(config, 9)
            np.testing.assert_array_equal(by_key[key].lattice, expected)
            if job.done:  # original handle finished before handoff
                np.testing.assert_array_equal(job.result.lattice, expected)

    def test_remove_shard_rehomes_cache_entries(self):
        router = ShardRouter(n_shards=2)
        config = SimulationConfig(shape=8, temperature=2.0, seed=5)
        affine, _ = router.submit(config, 10)
        router.drain()
        other = next(s for s in router.shards if s is not affine)
        router.remove_shard(affine.id)
        assert router.cache_entries_rehomed >= 1
        # Resubmission is a cache hit on the surviving shard.
        shard, job = router.submit(config, 10)
        assert shard is other
        assert job.from_cache

    def test_on_rehome_callback_sees_new_handles(self):
        router = ShardRouter(
            n_shards=2, scheduler_factory=tiny_factory(max_queue=16)
        )
        jobs = [router.submit(c, 8)[1] for c in configs(4)]
        seen = []
        router.remove_shard(
            router.shards[0].id,
            on_rehome=lambda token, shard, new_job: seen.append(
                (token["job"], shard, new_job)
            ),
        )
        assert seen, "expected at least one rehomed job"
        for old_job, shard, new_job in seen:
            assert old_job in jobs
            assert shard in router.shards
        router.drain()
        for _, _, new_job in seen:
            assert new_job.done

    def test_cannot_remove_last_or_unknown_shard(self):
        router = ShardRouter(n_shards=1)
        with pytest.raises(ValueError, match="last shard"):
            router.remove_shard(router.shards[0].id)
        with pytest.raises(ValueError, match="no shard"):
            router.remove_shard(999)

    def test_shard_ids_never_reused(self):
        router = ShardRouter(n_shards=2)
        router.remove_shard(router.shards[0].id)
        replacement = router.add_shard()
        assert replacement.id == 2  # 0 and 1 were taken; 0 is retired


class TestValidationAndStats:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(n_shards=0)
        with pytest.raises(ValueError, match="spill_ratio"):
            ShardRouter(spill_ratio=0.0)

    def test_stats_aggregates_cache(self):
        router = ShardRouter(n_shards=2)
        config = SimulationConfig(shape=8, temperature=2.0, seed=0)
        router.submit(config, 10)
        router.drain()
        router.submit(config, 10)  # cache hit
        stats = router.stats()
        assert stats["n_shards"] == 2
        assert stats["cache"]["hits"] >= 1
        assert set(stats["shards"]) == {str(s.id) for s in router.shards}
