"""2D torus topology tests."""

from __future__ import annotations

import pytest

from repro.mesh.topology import DIRECTIONS, Torus2D


class TestCoordinates:
    def test_linear_id_roundtrip(self):
        torus = Torus2D(3, 4)
        for cid in range(12):
            row, col = torus.coords(cid)
            assert torus.linear_id(row, col) == cid

    def test_wrapping(self):
        torus = Torus2D(3, 4)
        assert torus.linear_id(-1, 0) == torus.linear_id(2, 0)
        assert torus.linear_id(0, 4) == torus.linear_id(0, 0)
        assert torus.linear_id(3, -1) == torus.linear_id(0, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            Torus2D(0, 4)
        with pytest.raises(ValueError, match="outside"):
            Torus2D(2, 2).coords(4)


class TestNeighbors:
    def test_directions(self):
        torus = Torus2D(3, 3)
        center = torus.linear_id(1, 1)
        assert torus.neighbor(center, "north") == torus.linear_id(0, 1)
        assert torus.neighbor(center, "south") == torus.linear_id(2, 1)
        assert torus.neighbor(center, "west") == torus.linear_id(1, 0)
        assert torus.neighbor(center, "east") == torus.linear_id(1, 2)

    def test_torus_wrap(self):
        torus = Torus2D(2, 3)
        assert torus.neighbor(torus.linear_id(0, 0), "north") == torus.linear_id(1, 0)
        assert torus.neighbor(torus.linear_id(0, 2), "east") == torus.linear_id(0, 0)

    def test_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            Torus2D(2, 2).neighbor(0, "up")

    def test_single_core_neighbors_itself(self):
        torus = Torus2D(1, 1)
        for direction in DIRECTIONS:
            assert torus.neighbor(0, direction) == 0


class TestShiftPairs:
    def test_pairs_are_a_permutation(self):
        torus = Torus2D(3, 4)
        for direction in DIRECTIONS:
            pairs = torus.shift_pairs(direction)
            sources = [s for s, _ in pairs]
            targets = [t for _, t in pairs]
            assert sorted(sources) == list(range(12))
            assert sorted(targets) == list(range(12))

    def test_south_shift_semantics(self):
        torus = Torus2D(2, 2)
        pairs = dict(torus.shift_pairs("south"))
        # Core (0, 0) sends to (1, 0); (1, 0) wraps to (0, 0).
        assert pairs[torus.linear_id(0, 0)] == torus.linear_id(1, 0)
        assert pairs[torus.linear_id(1, 0)] == torus.linear_id(0, 0)

    def test_opposite_shifts_invert(self):
        torus = Torus2D(3, 5)
        south = dict(torus.shift_pairs("south"))
        north = dict(torus.shift_pairs("north"))
        for src, dst in south.items():
            assert north[dst] == src


class TestHopDistance:
    def test_shortest_path_wraps(self):
        torus = Torus2D(4, 4)
        assert torus.hop_distance(torus.linear_id(0, 0), torus.linear_id(3, 0)) == 1
        assert torus.hop_distance(torus.linear_id(0, 0), torus.linear_id(2, 2)) == 4
        assert torus.hop_distance(5, 5) == 0

    def test_symmetric(self):
        torus = Torus2D(3, 7)
        for a in range(0, 21, 5):
            for b in range(0, 21, 4):
                assert torus.hop_distance(a, b) == torus.hop_distance(b, a)
