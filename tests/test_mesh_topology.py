"""2D torus topology tests (flat and hierarchical)."""

from __future__ import annotations

import pytest

from repro.mesh.topology import (
    DIRECTIONS,
    HierarchicalTorus,
    Torus2D,
    degraded_pod_grid,
)


@pytest.fixture(params=["flat", "hierarchical"])
def make_torus(request):
    """Build a flat or hierarchical torus of the same core-id space.

    The hierarchical subclass inherits the flat id space, so every
    wrap-around / edge-case invariant of ``shift_pairs`` and
    ``hop_distance`` must hold identically for both.
    """

    def make(rows: int, cols: int) -> Torus2D:
        if request.param == "flat":
            return Torus2D(rows, cols)
        pod_rows = 2 if rows % 2 == 0 and rows > 1 else 1
        pod_cols = 2 if cols % 2 == 0 and cols > 1 else 1
        return HierarchicalTorus(rows, cols, pod_rows, pod_cols)

    return make


class TestCoordinates:
    def test_linear_id_roundtrip(self):
        torus = Torus2D(3, 4)
        for cid in range(12):
            row, col = torus.coords(cid)
            assert torus.linear_id(row, col) == cid

    def test_wrapping(self):
        torus = Torus2D(3, 4)
        assert torus.linear_id(-1, 0) == torus.linear_id(2, 0)
        assert torus.linear_id(0, 4) == torus.linear_id(0, 0)
        assert torus.linear_id(3, -1) == torus.linear_id(0, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            Torus2D(0, 4)
        with pytest.raises(ValueError, match="outside"):
            Torus2D(2, 2).coords(4)


class TestNeighbors:
    def test_directions(self):
        torus = Torus2D(3, 3)
        center = torus.linear_id(1, 1)
        assert torus.neighbor(center, "north") == torus.linear_id(0, 1)
        assert torus.neighbor(center, "south") == torus.linear_id(2, 1)
        assert torus.neighbor(center, "west") == torus.linear_id(1, 0)
        assert torus.neighbor(center, "east") == torus.linear_id(1, 2)

    def test_torus_wrap(self):
        torus = Torus2D(2, 3)
        assert torus.neighbor(torus.linear_id(0, 0), "north") == torus.linear_id(1, 0)
        assert torus.neighbor(torus.linear_id(0, 2), "east") == torus.linear_id(0, 0)

    def test_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            Torus2D(2, 2).neighbor(0, "up")

    def test_single_core_neighbors_itself(self):
        torus = Torus2D(1, 1)
        for direction in DIRECTIONS:
            assert torus.neighbor(0, direction) == 0


class TestShiftPairs:
    def test_pairs_are_a_permutation(self):
        torus = Torus2D(3, 4)
        for direction in DIRECTIONS:
            pairs = torus.shift_pairs(direction)
            sources = [s for s, _ in pairs]
            targets = [t for _, t in pairs]
            assert sorted(sources) == list(range(12))
            assert sorted(targets) == list(range(12))

    def test_south_shift_semantics(self):
        torus = Torus2D(2, 2)
        pairs = dict(torus.shift_pairs("south"))
        # Core (0, 0) sends to (1, 0); (1, 0) wraps to (0, 0).
        assert pairs[torus.linear_id(0, 0)] == torus.linear_id(1, 0)
        assert pairs[torus.linear_id(1, 0)] == torus.linear_id(0, 0)

    def test_opposite_shifts_invert(self):
        torus = Torus2D(3, 5)
        south = dict(torus.shift_pairs("south"))
        north = dict(torus.shift_pairs("north"))
        for src, dst in south.items():
            assert north[dst] == src


class TestHopDistance:
    def test_shortest_path_wraps(self):
        torus = Torus2D(4, 4)
        assert torus.hop_distance(torus.linear_id(0, 0), torus.linear_id(3, 0)) == 1
        assert torus.hop_distance(torus.linear_id(0, 0), torus.linear_id(2, 2)) == 4
        assert torus.hop_distance(5, 5) == 0

    def test_symmetric(self):
        torus = Torus2D(3, 7)
        for a in range(0, 21, 5):
            for b in range(0, 21, 4):
                assert torus.hop_distance(a, b) == torus.hop_distance(b, a)


class TestShiftPairsEdgeCases:
    """Wrap-around invariants both topology classes must satisfy."""

    def test_degenerate_axis_self_sends(self, make_torus):
        # On a 1 x n torus, north/south shifts wrap every core onto itself.
        torus = make_torus(1, 4)
        for direction in ("north", "south"):
            assert all(s == t for s, t in torus.shift_pairs(direction))
        for s, t in torus.shift_pairs("east"):
            assert t == torus.neighbor(s, "east")

    def test_two_wide_axis_shifts_invert_themselves(self, make_torus):
        # With exactly two cores along an axis, the wrap makes opposite
        # shifts identical: everyone swaps with the same partner.
        torus = make_torus(2, 6)
        assert torus.shift_pairs("south") == torus.shift_pairs("north")

    def test_pairs_are_a_permutation(self, make_torus):
        torus = make_torus(4, 6)
        n = torus.num_cores
        for direction in DIRECTIONS:
            pairs = torus.shift_pairs(direction)
            assert sorted(s for s, _ in pairs) == list(range(n))
            assert sorted(t for _, t in pairs) == list(range(n))

    def test_every_shift_moves_one_hop(self, make_torus):
        torus = make_torus(4, 6)
        for direction in DIRECTIONS:
            for src, dst in torus.shift_pairs(direction):
                assert torus.hop_distance(src, dst) in (0, 1)
                assert dst == torus.neighbor(src, direction)


class TestHopDistanceEdgeCases:
    """Wrap-around invariants both topology classes must satisfy."""

    def test_wrap_beats_direct_path(self, make_torus):
        torus = make_torus(6, 8)
        # Last row/col to first is one wrapped hop, not size - 1.
        assert torus.hop_distance(torus.linear_id(5, 0), torus.linear_id(0, 0)) == 1
        assert torus.hop_distance(torus.linear_id(0, 7), torus.linear_id(0, 0)) == 1

    def test_diameter(self, make_torus):
        torus = make_torus(4, 6)
        far = torus.linear_id(2, 3)
        assert torus.hop_distance(0, far) == 2 + 3
        assert all(
            torus.hop_distance(0, cid) <= 5 for cid in range(torus.num_cores)
        )

    def test_triangle_inequality_across_wrap(self, make_torus):
        torus = make_torus(4, 4)
        for a in range(torus.num_cores):
            for b in range(torus.num_cores):
                via = torus.neighbor(a, "east")
                assert torus.hop_distance(a, b) <= 1 + torus.hop_distance(via, b)


class TestHierarchicalTorus:
    def test_flat_id_space_is_inherited(self):
        flat = Torus2D(4, 6)
        hier = HierarchicalTorus(4, 6, 2, 3)
        for direction in DIRECTIONS:
            assert hier.shift_pairs(direction) == flat.shift_pairs(direction)
        for cid in range(flat.num_cores):
            assert hier.coords(cid) == flat.coords(cid)

    def test_pod_structure(self):
        hier = HierarchicalTorus(4, 6, 2, 3)
        assert hier.pod_grid == (2, 3)
        assert hier.pod_shape == (2, 2)
        assert hier.num_pods == 6
        assert hier.cores_per_pod == 4
        seen = []
        for pod_id in range(hier.num_pods):
            cores = hier.cores_in_pod(pod_id)
            assert len(cores) == 4
            assert all(hier.pod_of(c) == pod_id for c in cores)
            seen.extend(cores)
        assert sorted(seen) == list(range(hier.num_cores))

    def test_crosses_pods(self):
        hier = HierarchicalTorus(4, 4, 2, 2)
        inside = hier.linear_id(0, 0), hier.linear_id(0, 1)
        across = hier.linear_id(0, 1), hier.linear_id(0, 2)
        assert not hier.crosses_pods(*inside)
        assert hier.crosses_pods(*across)
        assert hier.pairs_cross_pods([across])
        assert not hier.pairs_cross_pods([inside])

    def test_single_pod_never_crosses(self):
        hier = HierarchicalTorus(2, 2, 1, 1)
        for direction in DIRECTIONS:
            assert not hier.pairs_cross_pods(hier.shift_pairs(direction))

    def test_halo_shifts_cross_pods_on_multi_pod_grids(self):
        hier = HierarchicalTorus(4, 4, 2, 2)
        for direction in DIRECTIONS:
            assert hier.pairs_cross_pods(hier.shift_pairs(direction))

    def test_validation(self):
        with pytest.raises(ValueError, match="not divisible"):
            HierarchicalTorus(4, 4, 3, 2)
        with pytest.raises(ValueError, match="positive"):
            HierarchicalTorus(4, 4, 0, 2)
        with pytest.raises(ValueError, match="outside"):
            HierarchicalTorus(4, 4, 2, 2).pod_coords(4)


class TestDegradedPodGrid:
    def test_sheds_one_pod_keeps_pod_shape(self):
        hier = HierarchicalTorus(4, 4, 2, 2)
        survivor = degraded_pod_grid(hier, (32, 32))
        assert survivor is not None
        assert survivor.pod_shape == hier.pod_shape
        assert survivor.num_pods < hier.num_pods
        # Ties prefer more pod rows: 2x1 over 1x2.
        assert survivor.pod_grid == (2, 1)
        assert (32 // survivor.rows) % 2 == 0
        assert (32 // survivor.cols) % 2 == 0

    def test_single_pod_is_unrecoverable(self):
        hier = HierarchicalTorus(2, 2, 1, 1)
        assert degraded_pod_grid(hier, (8, 8)) is None

    def test_respects_even_local_sides(self):
        # Global 6 x 8 over a 2x2-pod grid of 1x1-core pods: keeping two
        # pod rows would give odd (3-row) local lattices, so the even-
        # sides constraint forces the surviving grid to one pod row.
        hier = HierarchicalTorus(2, 2, 2, 2)
        survivor = degraded_pod_grid(hier, (6, 8))
        assert survivor is not None
        assert survivor.pod_grid == (1, 2)
