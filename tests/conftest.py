"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.core.lattice import random_lattice
from repro.rng import PhiloxStream


@pytest.fixture
def stream() -> PhiloxStream:
    """A fresh reproducible uniform stream."""
    return PhiloxStream(seed=20190317, stream_id=0)


@pytest.fixture
def backend() -> NumpyBackend:
    """A plain float32 numpy backend."""
    return NumpyBackend()


@pytest.fixture
def bf16_backend() -> NumpyBackend:
    """A bfloat16-rounding numpy backend."""
    return NumpyBackend("bfloat16")


def make_lattice(shape: tuple[int, int], seed: int = 7) -> np.ndarray:
    """A reproducible random +/-1 lattice."""
    return random_lattice(shape, PhiloxStream(seed, 99))
