"""Cost model tests: op pricing, roofline, and the paper-anchor calibration."""

from __future__ import annotations

import pytest

from repro.tpu.cost_model import TPU_V3, TPUCostModel
from repro.tpu.mxu import MXUModel
from repro.tpu.vpu import VPUModel


class TestOpTimes:
    def test_mxu_op_scales_with_flops(self):
        t1 = TPU_V3.op_times("mxu", 1e9, 0.0, batch=1e6)
        t2 = TPU_V3.op_times("mxu", 2e9, 0.0, batch=1e6)
        overhead = TPU_V3.op_overhead
        assert (t2["mxu"] - overhead) == pytest.approx(2 * (t1["mxu"] - overhead))

    def test_relayout_charged_to_formatting(self):
        times = TPU_V3.op_times("vpu", 1e6, 1e9)
        assert times["formatting"] == pytest.approx(
            TPU_V3.relayout_fraction * 1e9 / TPU_V3.hbm.bandwidth
        )

    def test_pure_formatting_op(self):
        times = TPU_V3.op_times("formatting", 0.0, 9e8)
        assert set(times) == {"formatting"}
        assert times["formatting"] == pytest.approx(
            9e8 / TPU_V3.hbm.bandwidth + TPU_V3.op_overhead
        )

    def test_zero_byte_op_has_no_relayout(self):
        times = TPU_V3.op_times("vpu", 1e6, 0.0)
        assert set(times) == {"vpu"}

    def test_unknown_category(self):
        with pytest.raises(ValueError, match="category"):
            TPU_V3.op_times("tensorcore", 1.0, 1.0)

    def test_negative_inputs(self):
        with pytest.raises(ValueError, match=">= 0"):
            TPU_V3.op_times("mxu", -1.0, 0.0)


class TestMXUModel:
    def test_utilization_ramp(self):
        mxu = MXUModel(batch_half_utilization=16.0)
        assert mxu.utilization(16.0) == pytest.approx(0.5)
        assert mxu.utilization(1e9) == pytest.approx(1.0, abs=1e-6)
        with pytest.raises(ValueError, match="batch"):
            mxu.utilization(0)

    def test_small_batches_are_slower_per_flop(self):
        mxu = MXUModel()
        assert mxu.matmul_time(1e9, batch=4) > mxu.matmul_time(1e9, batch=4096)

    def test_validation(self):
        with pytest.raises(ValueError, match="flops"):
            MXUModel().matmul_time(-1.0)
        with pytest.raises(ValueError, match="flops"):
            MXUModel().conv_time(-1.0)


class TestVPUModel:
    def test_linear(self):
        vpu = VPUModel(effective_flops=1e12)
        assert vpu.elementwise_time(1e12) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="flops"):
            vpu.elementwise_time(-1.0)


class TestRoofline:
    def test_memory_bound_region(self):
        # Below the ridge intensity, attainable = intensity * bandwidth.
        ridge = TPU_V3.mxu.peak_flops / TPU_V3.hbm.bandwidth
        low = ridge / 10
        assert TPU_V3.roofline_attainable_flops(low) == pytest.approx(
            low * TPU_V3.hbm.bandwidth
        )

    def test_compute_bound_region(self):
        ridge = TPU_V3.mxu.peak_flops / TPU_V3.hbm.bandwidth
        assert TPU_V3.roofline_attainable_flops(ridge * 10) == TPU_V3.mxu.peak_flops

    def test_fractions(self):
        attainable = TPU_V3.roofline_attainable_flops(1.0)
        assert TPU_V3.roofline_fraction(attainable / 2, 1.0) == pytest.approx(0.5)
        assert TPU_V3.peak_fraction(TPU_V3.mxu.peak_flops) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="intensity"):
            TPU_V3.roofline_attainable_flops(0.0)


class TestPaperAnchorCalibration:
    """The model must keep reproducing the paper's anchor rows; these
    tests pin the calibration so accidental constant changes are caught."""

    def test_table2_anchor_step_time(self):
        from repro.harness.perf import model_pod_step

        model = model_pod_step((896 * 128, 448 * 128), 2)
        assert model.step_time * 1e3 == pytest.approx(574.7, rel=0.02)
        assert model.flips_per_ns == pytest.approx(22.8873, rel=0.02)

    def test_table3_anchor_breakdown(self):
        from repro.harness.perf import model_pod_step

        b = model_pod_step((896 * 128, 448 * 128), 512).breakdown()
        assert 100 * b["mxu"] == pytest.approx(59.4, abs=1.5)
        assert 100 * b["vpu"] == pytest.approx(12.0, abs=1.5)
        assert 100 * b["formatting"] == pytest.approx(28.1, abs=1.5)
        assert 100 * b["communication"] < 0.3

    def test_table6_conv_anchor(self):
        from repro.harness.perf import model_pod_step

        model = model_pod_step((224 * 128, 224 * 128), 64, updater="conv")
        assert model.step_time * 1e3 == pytest.approx(41.06, rel=0.05)

    def test_custom_model_is_honoured(self):
        custom = TPUCostModel(
            mxu=MXUModel(effective_flops=1e12), relayout_fraction=0.0
        )
        t = custom.op_times("mxu", 1e12, 1e6, batch=1e9)
        assert t["mxu"] == pytest.approx(1.0, rel=1e-3)
        assert "formatting" not in t
