"""Specific-heat observable tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulation import IsingSimulation
from repro.observables.energy import specific_heat
from repro.observables.onsager import T_CRITICAL


class TestFormula:
    def test_constant_energy_gives_zero(self):
        assert specific_heat(np.full(100, -1.5), beta=0.5, n_sites=64) == 0.0

    def test_known_variance(self):
        e = np.array([-1.0, -2.0])
        # var = 0.25 -> c = beta^2 * N * 0.25.
        assert specific_heat(e, beta=2.0, n_sites=16) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="beta"):
            specific_heat(np.ones(4), 0.0, 10)
        with pytest.raises(ValueError, match="n_sites"):
            specific_heat(np.ones(4), 1.0, -1)
        with pytest.raises(ValueError, match="sample"):
            specific_heat(np.array([]), 1.0, 10)


class TestPhysics:
    def test_peaks_near_tc(self):
        """c(T) has its finite-size maximum near the critical point."""
        values = {}
        for label, frac in [("below", 0.7), ("near", 1.0), ("above", 1.7)]:
            t = frac * T_CRITICAL
            sim = IsingSimulation(
                16, t, seed=21, initial="cold" if frac < 1 else "hot"
            )
            res = sim.sample(n_samples=3000, burn_in=600)
            values[label] = specific_heat(res.e_series, 1.0 / t, sim.n_sites)
        assert values["near"] > 2 * values["below"]
        assert values["near"] > 1.5 * values["above"]
