"""HBM capacity / tiling model tests."""

from __future__ import annotations

import pytest

from repro.tpu.hbm import HBMModel, tensor_bytes, tiled_shape


class TestTiling:
    def test_aligned_shapes_unchanged(self):
        assert tiled_shape((8, 128)) == (8, 128)
        assert tiled_shape((16, 256)) == (16, 256)
        assert tiled_shape((2, 3, 8, 128)) == (2, 3, 8, 128)

    def test_padding(self):
        assert tiled_shape((5, 100)) == (8, 128)
        assert tiled_shape((9, 129)) == (16, 256)
        assert tiled_shape((1, 1)) == (8, 128)

    def test_rank_one_and_scalar(self):
        assert tiled_shape(()) == (8, 128)
        assert tiled_shape((5,)) == (8, 128)
        assert tiled_shape((200,)) == (8, 256)

    def test_leading_dims_untouched(self):
        assert tiled_shape((7, 7, 7)) == (7, 8, 128)

    def test_tensor_bytes(self):
        assert tensor_bytes((8, 128), 2) == 8 * 128 * 2
        assert tensor_bytes((1, 1), 4) == 8 * 128 * 4
        with pytest.raises(ValueError, match="itemsize"):
            tensor_bytes((8, 128), 0)

    def test_misaligned_waste_is_visible(self):
        aligned = tensor_bytes((128, 128), 2)
        misaligned = tensor_bytes((127, 127), 2)
        assert misaligned == aligned  # both round up to the same tile


class TestCapacity:
    def test_paper_anchor_96_percent(self):
        """The paper: a (656x128)^2 bfloat16 lattice consumes 96% of HBM."""
        hbm = HBMModel()
        side = 656 * 128
        utilization = hbm.utilization(side * side, itemsize=2)
        assert utilization == pytest.approx(0.96, abs=0.01)
        assert hbm.fits(side * side, itemsize=2)

    def test_float32_halves_the_max_lattice(self):
        hbm = HBMModel()
        side_bf16 = hbm.max_square_lattice_side(itemsize=2)
        side_f32 = hbm.max_square_lattice_side(itemsize=4)
        assert side_bf16 >= 656 * 128
        assert side_f32 < side_bf16
        assert side_f32 == pytest.approx(side_bf16 / 2**0.5, rel=0.02)

    def test_max_side_is_aligned_and_fits(self):
        hbm = HBMModel()
        for itemsize in (2, 4):
            side = hbm.max_square_lattice_side(itemsize)
            assert side % 128 == 0
            assert hbm.fits(side * side, itemsize)
            bigger = side + 128
            assert not hbm.fits(bigger * bigger, itemsize)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_sites"):
            HBMModel().lattice_footprint(0, 2)
