"""Tests for the unified ``repro.api`` surface.

SimulationConfig validation, the three factories, kind-dispatching
``load()``, deprecated-kwarg shims, and the checkpoint-resume
bit-identity matrix across solo / ensemble / distributed with the fused
engine on and off.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.api import (
    LadderSpec,
    ModelSpec,
    SimulationConfig,
    deprecated_kwargs,
    distributed,
    ensemble,
    load,
    simulate,
    tempering,
)
from repro.backend import NumpyBackend
from repro.core.distributed import DistributedIsing
from repro.core.ensemble import EnsembleSimulation
from repro.core.simulation import IsingSimulation


class TestSimulationConfig:
    def test_default_config_is_runnable(self):
        sim = simulate(SimulationConfig())
        assert sim.shape == (64, 64)
        assert sim.temperature == 2.0

    def test_temperature_and_beta_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            SimulationConfig(temperature=2.0, beta=0.5)

    def test_beta_resolves_to_temperature(self):
        assert SimulationConfig(beta=0.5).resolved_temperature == 2.0
        assert SimulationConfig(temperature=1.5).resolved_temperature == 1.5
        assert SimulationConfig().resolved_temperature == 2.0

    def test_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(AttributeError):
            cfg.seed = 1

    def test_evolve_switches_temperature_spelling(self):
        cfg = SimulationConfig(temperature=2.5)
        assert cfg.evolve(beta=0.5).resolved_temperature == 2.0
        assert cfg.evolve(temperature=3.0).beta is None

    def test_validation_rejects_junk(self):
        with pytest.raises(ValueError):
            SimulationConfig(updater="quantum")
        with pytest.raises(ValueError):
            SimulationConfig(fused="sometimes")
        with pytest.raises(ValueError):
            SimulationConfig(backend="gpu")
        with pytest.raises(ValueError):
            SimulationConfig(temperature=-1.0)
        with pytest.raises(ValueError):
            SimulationConfig(checkpoint_interval=0)

    def test_every_field_has_a_default(self):
        # The check_api.py lint enforces this too; keep it in-suite so a
        # missing default fails fast with a readable message.
        SimulationConfig()


class TestFactories:
    def test_simulate_carries_config_through(self):
        cfg = SimulationConfig(
            shape=32, temperature=1.9, updater="conv", seed=3, field=0.1
        )
        sim = simulate(cfg)
        assert isinstance(sim, IsingSimulation)
        assert sim.shape == (32, 32)
        assert sim.temperature == 1.9
        assert sim.updater_name == "conv"
        assert sim.field == 0.1

    def test_simulate_backend_and_dtype(self):
        sim = simulate(SimulationConfig(shape=16, backend="numpy", dtype="bfloat16"))
        assert isinstance(sim.backend, NumpyBackend)
        assert sim.backend.dtype.name == "bfloat16"
        explicit = NumpyBackend()
        assert simulate(SimulationConfig(shape=16, backend=explicit)).backend is explicit

    def test_simulate_rejects_distributed_fields(self):
        with pytest.raises(ValueError, match="grid"):
            simulate(SimulationConfig(grid=(2, 2)))
        with pytest.raises(ValueError, match="fault_plan"):
            simulate(SimulationConfig(fault_plan=repro.FaultPlan()))

    def test_ensemble_n_chains(self):
        ens = ensemble(SimulationConfig(shape=16, temperature=2.2), n_chains=5)
        assert isinstance(ens, EnsembleSimulation)
        assert ens.n_chains == 5
        assert np.allclose(ens.temperatures, 2.2)

    def test_ensemble_temperature_scan(self):
        ens = ensemble(SimulationConfig(shape=16), temperatures=[1.5, 2.0, 3.0])
        assert list(ens.temperatures) == [1.5, 2.0, 3.0]

    def test_ensemble_needs_exactly_one_mode(self):
        cfg = SimulationConfig(shape=16)
        with pytest.raises(ValueError, match="exactly one"):
            ensemble(cfg)
        with pytest.raises(ValueError, match="exactly one"):
            ensemble(cfg, n_chains=2, temperatures=[2.0])

    def test_distributed_needs_grid(self):
        with pytest.raises(ValueError, match="grid"):
            distributed(SimulationConfig(shape=32))

    def test_distributed_rejects_host_backend(self):
        with pytest.raises(ValueError, match="backend"):
            distributed(SimulationConfig(shape=32, grid=(2, 2), backend="numpy"))

    def test_distributed_carries_fault_fields(self):
        plan = repro.FaultPlan(drop_rate=0.01)
        sim = distributed(
            SimulationConfig(
                shape=32, grid=(2, 2), fault_plan=plan, checkpoint_interval=4
            )
        )
        assert isinstance(sim, DistributedIsing)
        assert sim.fault_plan is plan
        assert sim.checkpoint_interval == 4

    def test_factory_output_matches_direct_construction(self):
        cfg = SimulationConfig(shape=32, temperature=2.0, seed=9)
        via_api = simulate(cfg)
        direct = IsingSimulation(32, 2.0, seed=9)
        via_api.run(5)
        direct.run(5)
        assert np.array_equal(via_api.lattice, direct.lattice)


class TestLoadDispatch:
    @pytest.mark.parametrize("fused", [False, True], ids=["elementwise", "fused"])
    def test_round_trip_bit_identity_all_kinds(self, fused):
        cfg = SimulationConfig(shape=16, temperature=2.1, seed=4, fused=fused)
        solo = simulate(cfg)
        ens = ensemble(cfg, n_chains=3)
        dist = distributed(cfg.evolve(grid=(2, 2)))
        solo.run(3)
        ens.run(3)
        dist.sweep(3)
        for sim, advance, final in (
            (solo, lambda s: s.run(2), lambda s: s.lattice),
            (ens, lambda s: s.run(2), lambda s: s.lattices),
            (dist, lambda s: s.sweep(2), lambda s: s.gather_lattice()),
        ):
            restored = load(sim.state_dict())
            assert type(restored) is type(sim)
            advance(sim)
            advance(restored)
            assert np.array_equal(final(restored), final(sim)), type(sim).__name__

    def test_v1_dicts_dispatch_with_warning(self):
        solo = simulate(SimulationConfig(shape=16, seed=4))
        ens = ensemble(SimulationConfig(shape=16, seed=4), n_chains=2)
        dist = distributed(SimulationConfig(shape=16, seed=4, grid=(2, 2)))
        for sim in (solo, ens, dist):
            v1 = {
                k: v
                for k, v in sim.state_dict().items()
                if k not in ("schema", "kind")
            }
            with pytest.warns(DeprecationWarning, match="legacy v1"):
                restored = load(v1)
            assert type(restored) is type(sim)

    def test_wrong_kind_is_an_error(self):
        solo = simulate(SimulationConfig(shape=16))
        with pytest.raises(ValueError, match="repro.api.load"):
            DistributedIsing.from_state_dict(solo.state_dict())

    def test_unknown_schema_is_an_error(self):
        with pytest.raises(ValueError, match="unsupported checkpoint schema"):
            load({"schema": "checkpoint/v99", "kind": "single"})


class TestDeprecatedKwargs:
    def test_renamed_kwarg_forwards_and_warns_once(self):
        calls = []

        @deprecated_kwargs(old="new")
        def f(new=None):
            calls.append(new)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            f(old=1)
            f(old=2)
        assert calls == [1, 2]
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "old" in str(dep[0].message)

    def test_both_spellings_is_an_error(self):
        @deprecated_kwargs(old="new")
        def f(new=None):
            return new

        with pytest.raises(TypeError, match="both"):
            f(old=1, new=2)

    def test_core_grid_spelling_removed(self):
        """PR-4's ``core_grid=`` finished its deprecation window: it now
        fails fast with a TypeError that names the replacement."""
        with pytest.raises(TypeError, match="'grid'"):
            SimulationConfig(shape=32, core_grid=(2, 2))

    def test_T_spelling_removed(self):
        with pytest.raises(TypeError, match="'temperature'"):
            SimulationConfig(T=2.5)

    def test_removed_spellings_do_not_warn_they_raise(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(TypeError, match="no longer accepts"):
                SimulationConfig(T=2.5)


class TestModelSpec:
    def test_default_is_the_clean_ferromagnet(self):
        spec = ModelSpec()
        assert spec.couplings == "ferro"
        assert spec.field == 0.0
        assert spec.disorder_seed == 0
        assert spec.lattice == "square"

    def test_frozen_and_hashable(self):
        spec = ModelSpec(couplings="bimodal", disorder_seed=3)
        with pytest.raises(AttributeError):
            spec.couplings = "gaussian"
        assert spec == ModelSpec(couplings="bimodal", disorder_seed=3)
        assert hash(spec) == hash(ModelSpec(couplings="bimodal", disorder_seed=3))

    def test_validation(self):
        with pytest.raises(ValueError, match="couplings"):
            ModelSpec(couplings="antiferro")
        with pytest.raises(ValueError, match="lattice"):
            ModelSpec(lattice="triangular")

    def test_resolved_model_folds_flat_field(self):
        """Flat kwargs and spec-built configs of the same physics
        resolve to equal ModelSpecs."""
        flat = SimulationConfig(field=0.25)
        spec = SimulationConfig(model=ModelSpec(field=0.25))
        assert flat.resolved_model == spec.resolved_model
        mixed = SimulationConfig(
            field=0.25,
            updater="masked_conv",
            model=ModelSpec(couplings="bimodal"),
        )
        assert mixed.resolved_model == ModelSpec(couplings="bimodal", field=0.25)

    def test_conflicting_field_spellings_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            SimulationConfig(field=0.1, model=ModelSpec(field=0.2))


class TestLadderSpec:
    def test_betas_or_temperatures_not_both(self):
        with pytest.raises(ValueError, match="not both"):
            LadderSpec(betas=(0.4, 0.5), temperatures=(2.0, 2.5))

    def test_two_spellings_canonicalise_to_same_betas(self):
        by_beta = LadderSpec(betas=(0.4, 0.5))
        by_temp = LadderSpec(temperatures=(2.5, 2.0))
        assert by_beta.resolved_betas == by_temp.resolved_betas

    def test_order_is_preserved(self):
        # Adjacency order is part of the trajectory — never sorted.
        assert LadderSpec(betas=(0.5, 0.3, 0.4)).resolved_betas == (0.5, 0.3, 0.4)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            LadderSpec(betas=(0.4, -0.5))
        with pytest.raises(ValueError, match="positive"):
            LadderSpec(temperatures=(2.0, 0.0))
        with pytest.raises(ValueError, match="n_replicas"):
            LadderSpec(betas=(0.4,), n_replicas=0)
        with pytest.raises(ValueError, match="swap_interval"):
            LadderSpec(betas=(0.4,), swap_interval=0)

    def test_ladder_config_rejects_flat_temperature(self):
        with pytest.raises(ValueError, match="ladder"):
            SimulationConfig(
                temperature=2.0, ladder=LadderSpec(betas=(0.4, 0.5))
            )


class TestTemperingFactory:
    def test_builds_the_described_ladder(self):
        cfg = SimulationConfig(
            shape=16,
            updater="masked_conv",
            model=ModelSpec(couplings="bimodal", disorder_seed=7),
            ladder=LadderSpec(betas=(0.4, 0.5, 0.6), n_replicas=2,
                              swap_interval=3),
            seed=11,
        )
        sim = tempering(cfg)
        assert sim.n_temps == 3
        assert sim.n_replicas == 2
        assert sim.swap_interval == 3
        assert sim.couplings.kind == "bimodal"
        assert sim.couplings.disorder_seed == 7
        np.testing.assert_array_equal(sim.betas, [0.4, 0.5, 0.6])

    def test_factory_matches_direct_construction(self):
        from repro.core.tempering import TemperingEnsemble

        cfg = SimulationConfig(
            shape=16, ladder=LadderSpec(betas=(0.4, 0.45)), seed=3
        )
        a = tempering(cfg)
        b = TemperingEnsemble(16, (0.4, 0.45), n_replicas=2, seed=3)
        a.run(8)
        b.run(8)
        np.testing.assert_array_equal(a.lattices, b.lattices)
        np.testing.assert_array_equal(a.pairing, b.pairing)

    def test_needs_a_ladder(self):
        with pytest.raises(ValueError, match="ladder"):
            tempering(SimulationConfig(shape=16))

    def test_other_factories_reject_ladder(self):
        cfg = SimulationConfig(
            shape=16, ladder=LadderSpec(betas=(0.4, 0.5))
        )
        with pytest.raises(ValueError, match="ladder"):
            simulate(cfg)
        with pytest.raises(ValueError, match="ladder"):
            ensemble(cfg, n_chains=2)
        with pytest.raises(ValueError, match="ladder"):
            distributed(cfg.evolve(grid=(1, 1)))


class TestPublicSurface:
    def test_api_symbols_reexported_from_repro(self):
        for name in (
            "SimulationConfig",
            "ModelSpec",
            "LadderSpec",
            "simulate",
            "ensemble",
            "tempering",
            "distributed",
            "load",
            "deprecated_kwargs",
            "FaultPlan",
            "FaultEvent",
            "RetryPolicy",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_check_api_lint_passes(self):
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        proc = subprocess.run(
            [sys.executable, str(root / "tools" / "check_api.py")],
            capture_output=True,
            text=True,
            cwd=root,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestLoadSchemaVersioning:
    """Regression: an unknown envelope version must fail by *name*,
    before any kind dispatch can produce a misleading error."""

    def test_unknown_schema_names_found_and_supported(self):
        with pytest.raises(ValueError) as excinfo:
            load({"schema": "checkpoint/v9", "kind": "pod"})
        message = str(excinfo.value)
        assert "checkpoint/v9" in message  # the version it found
        assert "checkpoint/v2" in message  # the version it supports
        assert "v1" in message  # and the legacy fallback

    def test_unknown_schema_beats_kind_guessing(self):
        # Even a recognisable kind must not be dispatched under an
        # unknown schema (the payload layout may have changed).
        with pytest.raises(ValueError, match="checkpoint/v3"):
            load({"schema": "checkpoint/v3", "kind": "single"})

    def test_non_dict_is_a_type_error(self):
        with pytest.raises(TypeError, match="dict"):
            load("not-a-checkpoint")

    def test_v2_and_legacy_v1_still_load(self):
        sim = simulate(SimulationConfig(shape=8, seed=1))
        sim.run(2)
        state = sim.state_dict()
        np.testing.assert_array_equal(load(state).lattice, sim.lattice)
        legacy = {k: v for k, v in state.items() if k not in ("schema", "kind")}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            np.testing.assert_array_equal(load(legacy).lattice, sim.lattice)


class TestUpdaterWhitelist:
    """Regression: the config accepts exactly the core's four updaters
    (the stale list accepted 'naive', which crashed downstream)."""

    @pytest.mark.parametrize(
        "updater", ["compact", "conv", "checkerboard", "masked_conv"]
    )
    def test_all_core_updaters_buildable(self, updater):
        sim = simulate(SimulationConfig(shape=8, updater=updater, seed=2))
        sim.run(1)

    def test_naive_is_rejected_up_front(self):
        with pytest.raises(ValueError, match="updater"):
            SimulationConfig(updater="naive")


class TestSubmitSurface:
    def test_submit_and_client_reexported(self):
        for name in ("submit", "Client", "Scheduler"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_module_level_submit_shares_a_cache(self):
        from repro.sched.client import default_client, reset_default_client

        reset_default_client()
        try:
            config = SimulationConfig(shape=8, seed=5)
            first = repro.submit(config, sweeps=4)
            second = repro.submit(config, sweeps=4)
            np.testing.assert_array_equal(first.lattice, second.lattice)
            assert default_client().scheduler.cache.hits >= 1
            solo = simulate(config)
            solo.run(4)
            np.testing.assert_array_equal(first.lattice, solo.lattice)
        finally:
            reset_default_client()

    def test_client_builds_config_from_keywords(self):
        client = repro.Client(n_devices=1)
        job = client.submit(shape=8, temperature=2.2, seed=9, sweeps=3)
        result = client.result(job)
        solo = simulate(SimulationConfig(shape=8, temperature=2.2, seed=9))
        solo.run(3)
        np.testing.assert_array_equal(result.lattice, solo.lattice)

    def test_client_rejects_config_plus_keywords(self):
        client = repro.Client(n_devices=1)
        with pytest.raises(ValueError, match="not both"):
            client.submit(SimulationConfig(shape=8), 3, shape=16)

    def test_client_result_reraises_failure(self):
        client = repro.Client(n_devices=1)
        job = client.submit(
            SimulationConfig(shape=8, initial="lukewarm"), 3
        )
        with pytest.raises(ValueError, match="hot"):
            client.result(job)
