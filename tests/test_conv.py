"""Conv-variant updater tests (compact-conv and masked-conv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact import CompactUpdater
from repro.core.conv import ConvUpdater, MaskedConvUpdater
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestConvUpdater:
    def test_is_compact_with_conv_sums(self, backend):
        updater = ConvUpdater(0.44, backend, block_shape=(2, 2))
        assert isinstance(updater, CompactUpdater)
        assert updater.nn_method == "conv"

    def test_bitwise_equal_to_matmul_path(self, backend):
        """The conv chain is bit-identical to Algorithm 2 per sweep."""
        plain = make_lattice((16, 16), seed=4)
        conv = ConvUpdater(0.44, backend, block_shape=(4, 4))
        matmul = CompactUpdater(0.44, backend, block_shape=(4, 4))
        stream_a = PhiloxStream(8, 0)
        stream_b = PhiloxStream(8, 0)
        lat_a = conv.to_state(plain)
        lat_b = matmul.to_state(plain)
        for _ in range(5):
            lat_a = conv.sweep(lat_a, stream_a)
            lat_b = matmul.sweep(lat_b, stream_b)
        assert np.array_equal(lat_a.to_plain(), lat_b.to_plain())

    def test_sweep_plain(self, backend, stream):
        out = ConvUpdater(0.44, backend, block_shape=(2, 2)).sweep_plain(
            make_lattice((8, 8)), stream
        )
        assert set(np.unique(out)) <= {-1.0, 1.0}


class TestMaskedConvUpdater:
    def test_sweep_preserves_spin_values(self, backend, stream):
        updater = MaskedConvUpdater(0.44, backend)
        out = updater.sweep(updater.to_state(make_lattice((8, 12))), stream)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_matches_compact_with_same_uniforms(self, backend):
        from repro.core.lattice import plain_to_grid, plain_to_quarters

        plain = make_lattice((8, 12), seed=6)
        beta = 0.5
        stream = PhiloxStream(13, 0)
        u_black = stream.uniform((8, 12))
        u_white = stream.uniform((8, 12))

        masked = MaskedConvUpdater(beta, backend)
        out_masked = masked.sweep(plain.copy(), probs_black=u_black, probs_white=u_white)

        compact = CompactUpdater(beta, backend, block_shape=(2, 3))
        lat = compact.to_state(plain)
        qb, qw = plain_to_quarters(u_black), plain_to_quarters(u_white)
        lat = compact.update_color(
            lat, "black", probs=(plain_to_grid(qb[0], (2, 3)), plain_to_grid(qb[3], (2, 3)))
        )
        lat = compact.update_color(
            lat, "white", probs=(plain_to_grid(qw[1], (2, 3)), plain_to_grid(qw[2], (2, 3)))
        )
        assert np.array_equal(out_masked, lat.to_plain())

    def test_requires_stream_or_probs(self, backend):
        updater = MaskedConvUpdater(0.44, backend)
        with pytest.raises(ValueError, match="stream or probs"):
            updater.update_color(make_lattice((4, 4)), "black")

    def test_probs_shape_validated(self, backend, stream):
        updater = MaskedConvUpdater(0.44, backend)
        with pytest.raises(ValueError, match="probs shape"):
            updater.update_color(
                make_lattice((4, 4)), "black", probs=np.zeros((2, 2), dtype=np.float32)
            )

    def test_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            MaskedConvUpdater(0.0)


class TestShiftedPairSum:
    def test_semantics(self, backend):
        x = np.arange(6, dtype=np.float32).reshape(1, 1, 2, 3)
        prev_col = backend.shifted_pair_sum(x, -1, -1)
        assert np.array_equal(prev_col[0, 0], [[0, 1, 3], [3, 7, 9]])
        next_col = backend.shifted_pair_sum(x, -1, 1)
        assert np.array_equal(next_col[0, 0], [[1, 3, 2], [7, 9, 5]])
        prev_row = backend.shifted_pair_sum(x, -2, -1)
        assert np.array_equal(prev_row[0, 0], [[0, 1, 2], [3, 5, 7]])
        next_row = backend.shifted_pair_sum(x, -2, 1)
        assert np.array_equal(next_row[0, 0], [[3, 5, 7], [3, 4, 5]])

    def test_validation(self, backend):
        x = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="axis"):
            backend.shifted_pair_sum(x, 0, 1)
        with pytest.raises(ValueError, match="offset"):
            backend.shifted_pair_sum(x, -1, 2)
