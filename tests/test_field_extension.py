"""External-magnetic-field extension tests.

The paper's Hamiltonian includes the Zeeman term ``-mu sum_i sigma_i``
but sets mu = 0 everywhere; this library implements the h != 0 case as a
natural extension.  Validation: exact enumeration with a field, symmetry
breaking, h -> 0 consistency, and cross-implementation equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.baselines import RollUpdater
from repro.core import (
    CheckerboardUpdater,
    CompactLattice,
    CompactUpdater,
    MaskedConvUpdater,
    plain_to_grid,
    plain_to_quarters,
    grid_to_plain,
)
from repro.core.distributed import DistributedIsing
from repro.core.simulation import IsingSimulation
from repro.core.update import acceptance_ratio
from repro.observables.exact import exact_observables
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestAcceptanceWithField:
    def test_field_shifts_the_exponent(self, backend):
        sigma = np.ones((1, 1), dtype=np.float32)
        nn = np.zeros((1, 1), dtype=np.float32)
        beta = 0.5
        ratio = acceptance_ratio(backend, sigma, nn, beta, field=1.0)
        # dE = 2 * (+1) * (0 + 1) = 2 -> exp(-1).
        assert ratio[0, 0] == pytest.approx(np.exp(-1.0), rel=1e-6)

    def test_zero_field_is_the_default_path(self, backend):
        sigma = make_lattice((8, 8))
        nn = np.zeros_like(sigma)
        a = acceptance_ratio(backend, sigma, nn, 0.4)
        b = acceptance_ratio(backend, sigma, nn, 0.4, field=0.0)
        assert np.array_equal(a, b)


class TestFieldEquivalenceAcrossImplementations:
    def test_all_updaters_agree_with_field(self):
        shape = (8, 12)
        beta, h = 0.4, 0.35
        stream = PhiloxStream(91, 0)
        plain = make_lattice(shape, seed=12)
        u_black = stream.uniform(shape)
        u_white = stream.uniform(shape)

        reference = RollUpdater(beta, field=h).sweep(
            plain.copy(), probs_black=u_black, probs_white=u_white
        )

        masked = MaskedConvUpdater(beta, NumpyBackend(), field=h).sweep(
            plain.copy(), probs_black=u_black, probs_white=u_white
        )
        assert np.array_equal(masked, reference)

        cb = CheckerboardUpdater(beta, NumpyBackend(), block_shape=(4, 4), field=h)
        grid = cb.sweep(
            plain_to_grid(plain, (4, 4)),
            probs_black=plain_to_grid(u_black, (4, 4)),
            probs_white=plain_to_grid(u_white, (4, 4)),
        )
        assert np.array_equal(grid_to_plain(grid), reference)

        compact = CompactUpdater(beta, NumpyBackend(), block_shape=(2, 3), field=h)
        lat = CompactLattice.from_plain(plain, (2, 3))
        qb, qw = plain_to_quarters(u_black), plain_to_quarters(u_white)
        lat = compact.update_color(
            lat, "black", probs=(plain_to_grid(qb[0], (2, 3)), plain_to_grid(qb[3], (2, 3)))
        )
        lat = compact.update_color(
            lat, "white", probs=(plain_to_grid(qw[1], (2, 3)), plain_to_grid(qw[2], (2, 3)))
        )
        assert np.array_equal(lat.to_plain(), reference)


class TestFieldPhysics:
    def test_mcmc_matches_exact_enumeration_with_field(self):
        # T = 4.0 mixes fast; near Tc the synchronous checkerboard
        # dynamics with a field develops very slow modes on tiny lattices
        # (the exact kernel is still stationary and ergodic — verified in
        # TestFieldKernel below — it just takes >> 1e5 sweeps to
        # equilibrate a 4x4 at T = 2.5, h = 0.2).
        temperature, h = 4.0, 0.3
        exact = exact_observables((4, 4), 1.0 / temperature, field=h)
        assert exact["m"] > 0.1  # the field breaks the symmetry
        sim = IsingSimulation((4, 4), temperature, field=h, seed=31)
        sim.run(1_500)
        samples = []
        for _ in range(12_000):
            sim.sweep()
            samples.append(sim.magnetization())
        measured = float(np.mean(samples))
        assert measured == pytest.approx(exact["m"], abs=0.008)

    def test_field_aligns_magnetization_above_tc(self):
        sim = IsingSimulation(24, 4.0, field=0.5, seed=5)
        res = sim.sample(n_samples=500, burn_in=200)
        assert float(np.mean(res.m_series)) > 0.25

    def test_negative_field_aligns_down(self):
        sim = IsingSimulation(24, 4.0, field=-0.5, seed=5)
        res = sim.sample(n_samples=500, burn_in=200)
        assert float(np.mean(res.m_series)) < -0.25

    def test_field_breaks_updown_symmetry_of_exact_distribution(self):
        from repro.observables.exact import boltzmann_distribution

        pi = boltzmann_distribution((2, 4), 0.4, field=0.3)
        n = pi.size
        complement = (n - 1) - np.arange(n)
        assert not np.allclose(pi, pi[complement])

    def test_distributed_with_field(self):
        d = DistributedIsing(
            (16, 16), 4.0, core_grid=(2, 2), field=0.6, seed=2
        )
        d.sweep(120)
        samples = [d.magnetization()]
        for _ in range(80):
            d.sweep(1)
            samples.append(d.magnetization())
        assert float(np.mean(samples)) > 0.25


class TestFieldKernel:
    def test_stationarity_with_field(self):
        """pi P = pi still holds with a Zeeman term (exact kernel)."""
        from repro.observables.exact import (
            boltzmann_distribution,
            checkerboard_sweep_matrix,
        )

        beta, h = 0.4, 0.2
        matrix = checkerboard_sweep_matrix((2, 4), beta, field=h)
        pi = boltzmann_distribution((2, 4), beta, field=h)
        assert np.allclose(pi @ matrix, pi, atol=1e-10)

    def test_field_restores_ergodicity_on_2x4(self):
        """Unlike h = 0 (reducible on side-2 tori), the field kernel on
        2x4 converges to the Boltzmann distribution from a point mass —
        slowly, which is why the MCMC field tests run at high T."""
        from repro.observables.exact import (
            boltzmann_distribution,
            checkerboard_sweep_matrix,
        )

        beta, h = 0.4, 0.2
        matrix = checkerboard_sweep_matrix((2, 4), beta, field=h)
        pi = boltzmann_distribution((2, 4), beta, field=h)
        state = np.zeros(matrix.shape[0])
        state[0] = 1.0
        for _ in range(5000):
            state = state @ matrix
        assert np.abs(state - pi).max() < 1e-4


class TestCheckpointing:
    def test_resume_is_bitwise_identical(self):
        sim = IsingSimulation(16, 2.3, field=0.1, seed=9, updater="conv")
        sim.run(5)
        checkpoint = sim.state_dict()
        resumed = IsingSimulation.from_state_dict(checkpoint)
        sim.run(7)
        resumed.run(7)
        assert np.array_equal(sim.lattice, resumed.lattice)
        assert resumed.sweeps_done == sim.sweeps_done

    def test_checkpoint_preserves_settings(self):
        sim = IsingSimulation(
            8, 2.0, backend=NumpyBackend("bfloat16"), field=0.25, seed=3
        )
        state = sim.state_dict()
        resumed = IsingSimulation.from_state_dict(state)
        assert resumed.temperature == sim.temperature
        assert resumed.field == sim.field
        assert resumed.backend.dtype.name == "bfloat16"
        assert np.array_equal(resumed.lattice, sim.lattice)
