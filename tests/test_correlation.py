"""Correlation-function and susceptibility observable tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulation import IsingSimulation
from repro.observables.correlation import (
    correlation_function,
    correlation_length,
    susceptibility,
)
from repro.observables.onsager import T_CRITICAL


class TestCorrelationFunction:
    def test_ordered_lattice_fully_correlated_connected_zero(self):
        plain = np.ones((16, 16), dtype=np.float32)
        g = correlation_function(plain)
        assert np.allclose(g, 0.0)  # connected part vanishes when m = 1

    def test_g0_is_variance(self):
        rng = np.random.default_rng(0)
        plain = np.where(rng.random((64, 64)) < 0.5, 1.0, -1.0).astype(np.float32)
        g = correlation_function(plain)
        assert g[0] == pytest.approx(1.0 - plain.mean() ** 2, abs=1e-10)

    def test_random_lattice_uncorrelated(self):
        rng = np.random.default_rng(1)
        plain = np.where(rng.random((128, 128)) < 0.5, 1.0, -1.0).astype(np.float32)
        g = correlation_function(plain)
        assert np.all(np.abs(g[1:]) < 0.05)

    def test_stripe_pattern_anticorrelates_at_distance_one(self):
        plain = np.ones((16, 16), dtype=np.float32)
        plain[::2, :] = -1.0
        g = correlation_function(plain)
        # Row-direction neighbours anti-align, column-direction align:
        # the axis average at r=1 is (-1 + 1)/2 - 0 = 0; at r=2 fully +1.
        assert g[1] == pytest.approx(0.0, abs=1e-10)
        assert g[2] == pytest.approx(1.0, abs=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError, match="2D"):
            correlation_function(np.ones(5, dtype=np.float32))
        with pytest.raises(ValueError, match="max_distance"):
            correlation_function(np.ones((8, 8), dtype=np.float32), max_distance=10)


class TestCorrelationLength:
    def test_exact_exponential(self):
        xi = 3.0
        g = np.exp(-np.arange(10) / xi)
        assert correlation_length(g) == pytest.approx(xi, rel=1e-6)

    def test_rejects_flat_or_short(self):
        with pytest.raises(ValueError, match="points"):
            correlation_length(np.array([1.0, -0.1, 0.0]))

    def test_mcmc_correlation_grows_toward_tc(self):
        """xi is larger near Tc than deep in the disordered phase."""

        def measure(temperature: float, seed: int) -> float:
            sim = IsingSimulation(48, temperature, seed=seed)
            sim.run(400)
            g_total = np.zeros(13)
            n_measure = 60
            for _ in range(n_measure):
                sim.run(5)
                g_total += correlation_function(sim.lattice, max_distance=12)
            return correlation_length(g_total / n_measure)

        xi_near = measure(1.07 * T_CRITICAL, seed=2)
        xi_far = measure(2.0 * T_CRITICAL, seed=3)
        assert xi_near > 1.5 * xi_far


class TestSusceptibility:
    def test_formula(self):
        m = np.array([0.5, -0.5, 0.5, -0.5])
        # <m^2> = 0.25, <|m|> = 0.5 -> chi = 0.
        assert susceptibility(m, beta=1.0, n_sites=100) == pytest.approx(0.0)
        m = np.array([0.0, 1.0])
        # <m^2> = 0.5, <|m|> = 0.5 -> chi = beta*N*0.25.
        assert susceptibility(m, beta=0.5, n_sites=64) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="beta"):
            susceptibility(np.ones(4), 0.0, 10)
        with pytest.raises(ValueError, match="n_sites"):
            susceptibility(np.ones(4), 1.0, 0)
        with pytest.raises(ValueError, match="sample"):
            susceptibility(np.array([]), 1.0, 10)

    def test_peaks_near_tc(self):
        """chi(Tc) exceeds chi deep in either phase (finite-size peak)."""
        chis = {}
        for label, frac in [("below", 0.75), ("near", 1.0), ("above", 1.6)]:
            t = frac * T_CRITICAL
            sim = IsingSimulation(
                16, t, seed=6, initial="cold" if frac < 1 else "hot"
            )
            res = sim.sample(n_samples=3000, burn_in=600)
            chis[label] = susceptibility(res.m_series, 1.0 / t, sim.n_sites)
        assert chis["near"] > 3 * chis["below"]
        assert chis["near"] > 2 * chis["above"]
