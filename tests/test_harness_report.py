"""Report-rendering tests (tables and ascii plots)."""

from __future__ import annotations

import pytest

from repro.harness.report import ExperimentResult, ascii_plot, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "value"], [["a", 1.0], ["bb", 22.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_cell_formats(self):
        out = format_table(["x"], [[1.23456789], [1.5e9], [0.0001], [0]])
        assert "1.235" in out
        assert "1.500e+09" in out
        assert "1.000e-04" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])


class TestAsciiPlot:
    def test_basic_plot_contains_markers_and_legend(self):
        out = ascii_plot(
            {"linear": ([1, 2, 3], [1, 2, 3]), "flat": ([1, 2, 3], [2, 2, 2])},
            width=40,
            height=10,
            title="demo",
            xlabel="x",
            ylabel="y",
        )
        assert "demo" in out
        assert "*" in out and "+" in out
        assert "linear" in out and "flat" in out
        assert "x: x" in out

    def test_log_axes(self):
        out = ascii_plot(
            {"s": ([1, 10, 100], [1, 10, 100])}, logx=True, logy=True, width=30, height=8
        )
        assert "100" in out

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_plot({"s": ([0, 1], [1, 2])}, logx=True)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatched"):
            ascii_plot({"s": ([1, 2], [1])})

    def test_empty(self):
        with pytest.raises(ValueError, match="nothing"):
            ascii_plot({})

    def test_constant_series_does_not_crash(self):
        out = ascii_plot({"s": ([1, 1], [5, 5])}, width=20, height=5)
        assert "*" in out


class TestExperimentResult:
    def test_render_combines_sections(self):
        result = ExperimentResult(
            name="Table X",
            description="demo",
            headers=["a"],
            rows=[[1]],
            plots=["PLOT"],
            notes="NOTE",
        )
        rendered = result.render()
        assert "Table X: demo" in rendered
        assert "PLOT" in rendered
        assert "NOTE" in rendered
