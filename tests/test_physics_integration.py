"""Full-chain physics integration tests against exact references.

These are the reproduction's headline correctness checks (Sec. 4.1 of
the paper): the parallel checkerboard chains must agree with (a) exact
enumeration on small lattices and (b) Onsager's exact infinite-lattice
results on larger ones, in both float32 and bfloat16.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.core.distributed import DistributedIsing
from repro.core.simulation import IsingSimulation
from repro.observables.exact import exact_observables
from repro.observables.onsager import (
    T_CRITICAL,
    internal_energy,
    spontaneous_magnetization,
)


@pytest.mark.parametrize("updater", ["compact", "conv", "checkerboard", "masked_conv"])
def test_mcmc_matches_exact_enumeration(updater):
    """<|m|>, <e> and U4 on 4x4 at T = 2.5 vs brute-force enumeration."""
    temperature = 2.5
    exact = exact_observables((4, 4), 1.0 / temperature)
    sim = IsingSimulation((4, 4), temperature, updater=updater, seed=11)
    res = sim.sample(n_samples=12_000, burn_in=1_500)
    assert res.abs_m == pytest.approx(exact["abs_m"], abs=5 * res.abs_m_err + 0.005)
    assert res.energy == pytest.approx(
        exact["energy_per_spin"], abs=5 * res.energy_err + 0.01
    )
    assert res.u4 == pytest.approx(exact["u4"], abs=5 * res.u4_err + 0.01)


@pytest.mark.parametrize("dtype", ["float32", "bfloat16"])
def test_mcmc_matches_exact_enumeration_in_both_dtypes(dtype):
    """The paper's Fig. 4 claim: bfloat16 does not change the physics."""
    temperature = 2.2
    exact = exact_observables((4, 4), 1.0 / temperature)
    sim = IsingSimulation(
        (4, 4), temperature, backend=NumpyBackend(dtype), seed=13
    )
    res = sim.sample(n_samples=12_000, burn_in=1_500)
    assert res.abs_m == pytest.approx(exact["abs_m"], abs=5 * res.abs_m_err + 0.005)
    assert res.u4 == pytest.approx(exact["u4"], abs=5 * res.u4_err + 0.01)


def test_magnetization_tracks_onsager_below_tc():
    """A 32x32 lattice deep in the ordered phase tracks Yang's exact m."""
    temperature = 1.8
    sim = IsingSimulation(32, temperature, seed=3, initial="cold")
    res = sim.sample(n_samples=2_000, burn_in=400)
    exact_m = float(spontaneous_magnetization(temperature))
    assert res.abs_m == pytest.approx(exact_m, abs=0.01)


def test_energy_tracks_onsager_both_phases():
    """Internal energy matches the exact solution away from Tc."""
    for temperature, tol in [(1.8, 0.01), (3.5, 0.02)]:
        sim = IsingSimulation(
            32,
            temperature,
            seed=5,
            initial="cold" if temperature < T_CRITICAL else "hot",
        )
        res = sim.sample(n_samples=2_000, burn_in=400)
        assert res.energy == pytest.approx(
            float(internal_energy(temperature)), abs=5 * res.energy_err + tol
        )


def test_distributed_chain_has_correct_physics():
    """A 4-core pod simulation reproduces the ordered-phase physics."""
    temperature = 1.8
    d = DistributedIsing(
        (32, 32), temperature, core_grid=(2, 2), seed=7, initial="cold"
    )
    d.sweep(300)
    samples = []
    for _ in range(600):
        d.sweep(1)
        samples.append(abs(d.magnetization()))
    exact_m = float(spontaneous_magnetization(temperature))
    assert float(np.mean(samples)) == pytest.approx(exact_m, abs=0.015)


def test_binder_ordering_brackets_tc():
    """Below Tc the larger lattice has larger U4; above Tc smaller —
    the mechanism behind the Fig. 4 crossing."""
    results = {}
    for size in (8, 24):
        for frac in (0.8, 1.3):
            sim = IsingSimulation(
                size,
                frac * T_CRITICAL,
                seed=17,
                initial="cold" if frac < 1 else "hot",
            )
            res = sim.sample(n_samples=3_000, burn_in=600)
            results[(size, frac)] = res.u4
    assert results[(24, 0.8)] > results[(8, 0.8)] - 0.01
    assert results[(24, 1.3)] < results[(8, 1.3)]


def test_bfloat16_and_float32_statistics_agree():
    """Long 16x16 chains at Tc in both precisions agree within errors."""
    results = {}
    for dtype in ("float32", "bfloat16"):
        sim = IsingSimulation(
            16, T_CRITICAL, backend=NumpyBackend(dtype), seed=23
        )
        results[dtype] = sim.sample(n_samples=6_000, burn_in=1_000)
    a, b = results["float32"], results["bfloat16"]
    err = np.hypot(a.abs_m_err, b.abs_m_err)
    assert a.abs_m == pytest.approx(b.abs_m, abs=5 * err + 0.005)
    u4_err = np.hypot(a.u4_err, b.u4_err)
    assert a.u4 == pytest.approx(b.u4, abs=5 * u4_err + 0.01)
