"""Lockstep SPMD runtime tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.links import LinkModel
from repro.mesh.runtime import LockstepError, PermuteRequest, SPMDRuntime
from repro.mesh.topology import Torus2D
from repro.tpu.tensorcore import TensorCore


def _make_runtime(rows=2, cols=2, with_cores=False):
    torus = Torus2D(rows, cols)
    cores = (
        [TensorCore(core_id=i) for i in range(torus.num_cores)]
        if with_cores
        else None
    )
    return SPMDRuntime(torus, cores=cores), torus, cores


class TestBasicExecution:
    def test_programs_without_collectives(self):
        runtime, torus, _ = _make_runtime()

        def program(core_id):
            return core_id * 10
            yield  # pragma: no cover - makes this a generator function

        results = runtime.run(program)
        assert results == [0, 10, 20, 30]
        assert runtime.collectives_executed == 0

    def test_ring_pass(self):
        runtime, torus, _ = _make_runtime(1, 4)
        pairs = torus.shift_pairs("east")

        def program(core_id):
            received = yield PermuteRequest(
                np.array([float(core_id)], dtype=np.float32), pairs
            )
            return float(received[0])

        results = runtime.run(program)
        # Each core receives from its west neighbour.
        assert results == [3.0, 0.0, 1.0, 2.0]
        assert runtime.collectives_executed == 1

    def test_multiple_rounds(self):
        runtime, torus, _ = _make_runtime(1, 3)
        pairs = torus.shift_pairs("east")

        def program(core_id):
            value = np.array([float(core_id)], dtype=np.float32)
            for _ in range(3):
                value = yield PermuteRequest(value, pairs)
            return float(value[0])

        results = runtime.run(program)
        # Three hops around a 3-ring returns each core its own value.
        assert results == [0.0, 1.0, 2.0]
        assert runtime.collectives_executed == 3


class TestLockstepEnforcement:
    def test_early_finish_detected(self):
        runtime, torus, _ = _make_runtime(1, 2)
        pairs = torus.shift_pairs("east")

        def program(core_id):
            if core_id == 0:
                return 0
            yield PermuteRequest(np.zeros(1, dtype=np.float32), pairs)
            return 1

        with pytest.raises(LockstepError, match="finished while others"):
            runtime.run(program)

    def test_diverging_pairs_detected(self):
        runtime, torus, _ = _make_runtime(1, 2)

        def program(core_id):
            pairs = ((0, 1),) if core_id == 0 else ((1, 0),)
            yield PermuteRequest(np.zeros(1, dtype=np.float32), pairs)
            return core_id

        with pytest.raises(LockstepError, match="globally identical"):
            runtime.run(program)

    def test_core_count_mismatch_rejected(self):
        torus = Torus2D(2, 2)
        with pytest.raises(ValueError, match="cores"):
            SPMDRuntime(torus, cores=[TensorCore(core_id=0)])


class TestCommunicationCharging:
    def test_permutes_charge_all_cores(self):
        runtime, torus, cores = _make_runtime(2, 2, with_cores=True)
        pairs = torus.shift_pairs("south")

        def program(core_id):
            yield PermuteRequest(np.zeros(100, dtype=np.float32), pairs)
            return None

        runtime.run(program)
        expected = LinkModel().permute_time(4, 400.0)
        for core in cores:
            assert core.profiler.seconds["communication"] == pytest.approx(expected)

    def test_no_cores_no_charges(self):
        runtime, torus, _ = _make_runtime(1, 2)
        pairs = torus.shift_pairs("east")

        def program(core_id):
            yield PermuteRequest(np.zeros(4, dtype=np.float32), pairs)
            return None

        runtime.run(program)  # must not raise
