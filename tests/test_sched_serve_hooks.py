"""The scheduler-side hooks the serve layer stands on.

Covers the retry-hint plumbing (``SchedulerSaturatedError.retry_after_s``
from the modeled drain rate, honored by the client's capped backoff),
thread-safe lazy init of the process-wide default client, graceful
shutdown with checkpoint handoff (``shutdown``/``adopt`` bit-identity),
queue-full dedup semantics, and weighted-fair admission under heavily
skewed tenant load.
"""

import threading

import numpy as np
import pytest

from repro.api import SimulationConfig, simulate
from repro.sched import (
    Client,
    Scheduler,
    SchedulerDrainingError,
    SchedulerSaturatedError,
)
from repro.sched.client import default_client, reset_default_client


def tiny_scheduler(**overrides):
    kwargs = dict(n_devices=1, max_batch=2, quantum=4, max_queue=2)
    kwargs.update(overrides)
    return Scheduler(**kwargs)


def fill_queue(scheduler, n, sweeps=50, seed0=0):
    return [
        scheduler.submit(
            SimulationConfig(shape=8, temperature=2.0, seed=seed0 + i), sweeps
        )
        for i in range(n)
    ]


class TestRetryAfter:
    def test_queue_full_error_carries_modeled_hint(self):
        scheduler = tiny_scheduler(max_queue=2)
        fill_queue(scheduler, 2)
        with pytest.raises(SchedulerSaturatedError) as excinfo:
            scheduler.submit(
                SimulationConfig(shape=8, temperature=2.0, seed=99), 50
            )
        hint = excinfo.value.retry_after_s
        assert hint is not None
        assert 1e-3 <= hint <= 60.0

    def test_hint_tracks_outstanding_service(self):
        # The drain rate comes from the modeled device clock, so this
        # needs the simulated-TPU backend (numpy books no modeled time).
        def tpu_jobs(scheduler, n, sweeps, seed0=0):
            for i in range(n):
                scheduler.submit(
                    SimulationConfig(
                        shape=8, temperature=2.0, seed=seed0 + i, backend="tpu"
                    ),
                    sweeps,
                )

        scheduler = tiny_scheduler(max_queue=64)
        tpu_jobs(scheduler, 2, sweeps=20)
        scheduler.drain()  # establishes a drain rate
        assert scheduler.modeled_retry_after() == 1e-3  # nothing pending
        tpu_jobs(scheduler, 1, sweeps=20, seed0=50)
        small = scheduler.modeled_retry_after()
        tpu_jobs(scheduler, 8, sweeps=200, seed0=60)
        large = scheduler.modeled_retry_after()
        assert large > small > 0

    def test_stats_expose_serve_hooks(self):
        scheduler = tiny_scheduler()
        stats = scheduler.stats()
        assert stats["admitting"] is True
        assert stats["outstanding_service"] == 0.0
        assert stats["retry_after_s"] >= 1e-3


class TestClientBackoff:
    def test_client_absorbs_saturation_the_raw_submit_rejects(self):
        scheduler = tiny_scheduler(max_queue=2)
        client = Client(scheduler=scheduler, max_retries=4)
        jobs = [
            client.submit(shape=8, temperature=2.0, seed=i, sweeps=30)
            for i in range(8)
        ]
        assert client.backoff_waits > 0
        client.run()
        assert all(job.done for job in jobs)

    def test_raw_scheduler_rejects_same_load(self):
        scheduler = tiny_scheduler(max_queue=2)
        with pytest.raises(SchedulerSaturatedError):
            fill_queue(scheduler, 8, sweeps=30)

    def test_zero_retries_fails_fast(self):
        scheduler = tiny_scheduler(max_queue=2)
        client = Client(scheduler=scheduler, max_retries=0)
        with pytest.raises(SchedulerSaturatedError):
            for i in range(8):
                client.submit(shape=8, temperature=2.0, seed=i, sweeps=30)
        assert client.backoff_waits == 0

    def test_draining_error_is_not_retried(self):
        scheduler = tiny_scheduler()
        scheduler.shutdown()
        client = Client(scheduler=scheduler, max_retries=4)
        with pytest.raises(SchedulerDrainingError):
            client.submit(shape=8, temperature=2.0, seed=0)
        assert client.backoff_waits == 0

    def test_max_retries_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            Client(max_retries=-1)


class TestDefaultClientThreadSafety:
    def test_concurrent_first_use_builds_one_client(self):
        reset_default_client()
        try:
            barrier = threading.Barrier(8)
            seen = []
            lock = threading.Lock()

            def grab():
                barrier.wait()
                client = default_client()
                with lock:
                    seen.append(client)

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(seen) == 8
            assert len({id(c) for c in seen}) == 1
        finally:
            reset_default_client()

    def test_reset_drops_the_shared_instance(self):
        reset_default_client()
        first = default_client()
        reset_default_client()
        assert default_client() is not first
        reset_default_client()


class TestShutdownHandoff:
    def test_shutdown_stops_admission(self):
        scheduler = tiny_scheduler()
        scheduler.shutdown()
        assert not scheduler.admitting
        with pytest.raises(SchedulerDrainingError) as excinfo:
            scheduler.submit(
                SimulationConfig(shape=8, temperature=2.0, seed=0), 10
            )
        assert excinfo.value.retry_after_s is not None
        # A draining error is still a saturation error for old callers.
        assert isinstance(excinfo.value, SchedulerSaturatedError)

    def test_finish_true_drains_and_flushes_cache(self):
        scheduler = tiny_scheduler(max_queue=16)
        jobs = fill_queue(scheduler, 4, sweeps=10)
        flushed = scheduler.shutdown(finish=True)
        assert all(job.done for job in jobs)
        assert flushed["jobs"] == []
        assert len(flushed["cache"]) == 4

    def test_handoff_resumes_bit_identically_elsewhere(self):
        origin = tiny_scheduler(max_queue=16)
        cfgs = [
            SimulationConfig(shape=10, temperature=1.9 + 0.1 * i, seed=i)
            for i in range(4)
        ]
        jobs = [origin.submit(c, 9) for c in cfgs]
        origin.step()  # some jobs mid-flight with checkpoints
        flushed = origin.shutdown(finish=False)
        assert flushed["jobs"], "expected unfinished jobs to hand off"
        target = tiny_scheduler(max_queue=16)
        target.cache.absorb(flushed["cache"])
        # Adoption mints fresh handles; the front door re-points its
        # references from the token's old handle to the new one.
        adopted = {
            token["cache_key"]: target.adopt(token)
            for token in flushed["jobs"]
        }
        target.drain()
        for config, old in zip(cfgs, jobs):
            solo = simulate(config)
            solo.run(9)
            job = adopted.get(old.cache_key, old)
            assert job.done
            np.testing.assert_array_equal(job.result.lattice, solo.lattice)

    def test_adopt_bypasses_queue_bound(self):
        origin = tiny_scheduler(max_queue=8)
        fill_queue(origin, 6, sweeps=20)
        flushed = origin.shutdown(finish=False)
        target = tiny_scheduler(max_queue=1)  # far too small for 6 jobs
        adopted = [target.adopt(token) for token in flushed["jobs"]]
        assert target.queue_depth > target.max_queue
        target.drain()
        assert all(job.done for job in adopted)

    def test_draining_scheduler_refuses_adoption(self):
        origin = tiny_scheduler()
        fill_queue(origin, 1)
        flushed = origin.shutdown(finish=False)
        closed = tiny_scheduler()
        closed.shutdown()
        with pytest.raises(SchedulerDrainingError):
            closed.adopt(flushed["jobs"][0])


class TestQueueFullDedup:
    def test_duplicate_of_queued_job_dedups_when_queue_is_full(self):
        scheduler = tiny_scheduler(max_queue=2)
        jobs = fill_queue(scheduler, 2, sweeps=30)
        assert scheduler.queue_depth == scheduler.max_queue
        # A distinct config is refused...
        with pytest.raises(SchedulerSaturatedError):
            scheduler.submit(
                SimulationConfig(shape=8, temperature=2.0, seed=99), 30
            )
        # ...but an exact duplicate of a queued job must dedup, because
        # following a primary never costs a queue slot.
        duplicate = scheduler.submit(
            SimulationConfig(shape=8, temperature=2.0, seed=0), 30
        )
        assert duplicate is not jobs[0]
        assert scheduler.queue_depth == scheduler.max_queue
        scheduler.drain()
        assert duplicate.from_cache
        np.testing.assert_array_equal(
            duplicate.result.lattice, jobs[0].result.lattice
        )

    def test_is_duplicate_matches_cache_and_inflight(self):
        from repro.sched import canonical_cache_key

        scheduler = tiny_scheduler(max_queue=8)
        config = SimulationConfig(shape=8, temperature=2.0, seed=0)
        key = canonical_cache_key(config, 10)
        assert not scheduler.is_duplicate(key)
        job = scheduler.submit(config, 10)
        assert scheduler.is_duplicate(key)  # in-flight primary
        scheduler.drain()
        assert scheduler.is_duplicate(key)  # now via the cache
        assert job.done


class TestWeightedFairUnderSkew:
    def test_light_tenant_is_not_starved_by_heavy_backlog(self):
        """A tenant submitting 2 jobs behind a 16-job backlog from one
        heavy tenant must not wait for the whole backlog: fair-share
        admission orders by normalized service, not arrival."""
        scheduler = Scheduler(
            n_devices=1, max_batch=2, quantum=4, max_queue=64
        )
        heavy = [
            scheduler.submit(
                SimulationConfig(shape=8, temperature=2.0, seed=i), 12,
                tenant="heavy",
            )
            for i in range(16)
        ]
        light = [
            scheduler.submit(
                SimulationConfig(shape=8, temperature=2.4, seed=100 + i), 12,
                tenant="light",
            )
            for i in range(2)
        ]
        while not all(job.done for job in light):
            scheduler.step()
        # The light tenant finished while most of the backlog remains.
        assert sum(1 for job in heavy if job.done) < len(heavy) // 2

    def test_tenant_weights_bias_service_share(self):
        scheduler = Scheduler(
            n_devices=1, max_batch=2, quantum=4, max_queue=64,
            tenant_weights={"vip": 8.0},
        )
        for i in range(8):
            scheduler.submit(
                SimulationConfig(shape=8, temperature=2.0, seed=i), 12,
                tenant="std",
            )
            scheduler.submit(
                SimulationConfig(shape=8, temperature=2.4, seed=100 + i), 12,
                tenant="vip",
            )
        for _ in range(10):
            scheduler.step()
        served = scheduler.stats()["tenants"]
        assert served.get("vip", 0.0) > served.get("std", 0.0)
