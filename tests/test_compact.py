"""Algorithm 2 (compact) updater tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact import CompactUpdater
from repro.core.lattice import CompactLattice
from repro.rng import PhiloxStream

from .conftest import make_lattice


class TestMechanics:
    def test_sweep_preserves_spin_values(self, backend, stream):
        updater = CompactUpdater(0.44, backend, block_shape=(2, 3))
        lat = updater.to_state(make_lattice((8, 12)))
        out = updater.sweep(lat, stream)
        assert set(np.unique(out.to_plain())) <= {-1.0, 1.0}

    def test_black_phase_shares_white_tensors(self, backend, stream):
        updater = CompactUpdater(0.44, backend, block_shape=(2, 2))
        lat = updater.to_state(make_lattice((8, 8)))
        out = updater.update_color(lat, "black", stream)
        assert out.s01 is lat.s01
        assert out.s10 is lat.s10
        assert out.s00 is not lat.s00

    def test_white_phase_shares_black_tensors(self, backend, stream):
        updater = CompactUpdater(0.44, backend, block_shape=(2, 2))
        lat = updater.to_state(make_lattice((8, 8)))
        out = updater.update_color(lat, "white", stream)
        assert out.s00 is lat.s00
        assert out.s11 is lat.s11

    def test_reproducible(self, backend):
        updater = CompactUpdater(0.44, backend, block_shape=(2, 2))
        lat = updater.to_state(make_lattice((8, 8)))
        a = updater.sweep(lat, PhiloxStream(9, 0)).to_plain()
        b = updater.sweep(lat, PhiloxStream(9, 0)).to_plain()
        assert np.array_equal(a, b)

    def test_requires_stream_or_probs(self, backend):
        updater = CompactUpdater(0.44, backend, block_shape=(2, 2))
        lat = updater.to_state(make_lattice((8, 8)))
        with pytest.raises(ValueError, match="stream or probs"):
            updater.update_color(lat, "black")

    def test_probs_shape_validated(self, backend):
        updater = CompactUpdater(0.44, backend, block_shape=(2, 2))
        lat = updater.to_state(make_lattice((8, 8)))
        bad = np.zeros((1, 1, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="probs shapes"):
            updater.update_color(lat, "black", probs=(bad, bad))

    def test_default_block_is_whole_quarter(self, backend, stream):
        updater = CompactUpdater(0.44, backend, block_shape=None)
        lat = updater.to_state(make_lattice((8, 12)))
        assert lat.grid_shape == (1, 1, 4, 6)
        out = updater.sweep(lat, stream)
        assert set(np.unique(out.to_plain())) <= {-1.0, 1.0}

    def test_nn_method_validation(self, backend):
        with pytest.raises(ValueError, match="nn_method"):
            CompactUpdater(0.44, backend, nn_method="fft")

    def test_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            CompactUpdater(-1.0)


class TestRNGDrawOrder:
    def test_stream_draw_matches_algorithm2_order(self, backend):
        """probs0 for the first active tensor, then probs1 — lines 1-2."""
        updater = CompactUpdater(0.44, backend, block_shape=(2, 2))
        lat = updater.to_state(make_lattice((8, 8)))
        stream = PhiloxStream(21, 0)
        out_stream = updater.update_color(lat, "black", stream)
        replay = PhiloxStream(21, 0)
        p0 = replay.uniform(lat.grid_shape)
        p1 = replay.uniform(lat.grid_shape)
        out_probs = updater.update_color(lat, "black", probs=(p0, p1))
        assert np.array_equal(out_stream.to_plain(), out_probs.to_plain())


class TestPhysicsLimits:
    def test_zero_temperature_limit_only_lowers_energy(self, backend):
        """At huge beta the sweep is a strict energy descent."""
        from repro.observables.energy import total_energy

        updater = CompactUpdater(20.0, backend, block_shape=None)
        plain = make_lattice((16, 16), seed=3)
        lat = updater.to_state(plain)
        stream = PhiloxStream(2, 0)
        e_prev = total_energy(plain)
        for _ in range(10):
            lat = updater.sweep(lat, stream)
            e_now = total_energy(lat.to_plain())
            assert e_now <= e_prev + 1e-6
            e_prev = e_now
