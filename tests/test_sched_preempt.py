"""Preemption and checkpoint/v2 resume: interrupted == uninterrupted.

Satellite to the scheduler suite: a run snapshotted mid-scan through the
``checkpoint/v2`` envelope and resumed — directly via ``repro.load()``,
or through the scheduler's preemption path — must reproduce the
uninterrupted run's *magnetisation trace* bit for bit, with the fused
engine left on its ``"auto"`` default.  Also covers the fault path:
a revoked device lease requeues the batch's jobs, which replay from
their last consistent tokens to the same answers.
"""

import numpy as np
import pytest

import repro
from repro.api import SimulationConfig, simulate
from repro.observables import magnetization
from repro.sched import DevicePool, Scheduler

TEMPS = [1.8, 2.1, 2.4]
SIDE = 12
SWEEPS = 10
CUT = 4  # the mid-scan interruption point


def _ensemble(**overrides):
    kwargs = dict(fused="auto", seed=3, stream_ids=[0, 1, 2])
    kwargs.update(overrides)
    return repro.EnsembleSimulation(SIDE, TEMPS, **kwargs)


def _mag_trace(ensemble, n_sweeps: int) -> list[tuple]:
    trace = []
    for _ in range(n_sweeps):
        ensemble.run(1)
        trace.append(
            tuple(magnetization(plain) for plain in ensemble.lattices)
        )
    return trace


class TestDirectCheckpointRoundTrip:
    def test_mid_scan_roundtrip_magnetisation_trace(self):
        """checkpoint/v2 at sweep 4 of 10, fused='auto': the restored
        run's per-sweep magnetisations match the uninterrupted run's."""
        uninterrupted = _ensemble()
        reference = _mag_trace(uninterrupted, SWEEPS)

        interrupted = _ensemble()
        head = _mag_trace(interrupted, CUT)
        snapshot = interrupted.state_dict()
        assert snapshot["schema"] == "checkpoint/v2"
        assert snapshot["kind"] == "ensemble"

        restored = repro.load(snapshot)
        tail = _mag_trace(restored, SWEEPS - CUT)
        assert head + tail == reference
        np.testing.assert_array_equal(
            restored.lattices, uninterrupted.lattices
        )

    def test_roundtrip_preserves_fused_resolution(self):
        sim = _ensemble()
        restored = repro.load(sim.state_dict())
        assert restored.fused == sim.fused


class TestSchedulerPreemptionPath:
    def _preempting_scheduler(self):
        """A 1-device scheduler with a low-priority batch mid-scan and a
        high-priority arrival that must preempt it."""
        scheduler = Scheduler(n_devices=1, max_batch=4, quantum=2)
        low_configs = [
            SimulationConfig(shape=SIDE, temperature=t, seed=i)
            for i, t in enumerate(TEMPS)
        ]
        low_jobs = [scheduler.submit(c, SWEEPS) for c in low_configs]
        for _ in range(CUT // scheduler.quantum):
            scheduler.step()
        high_config = SimulationConfig(
            shape=16, temperature=2.0, updater="conv", seed=50
        )
        high_job = scheduler.submit(high_config, 4, priority=5)
        return scheduler, low_configs, low_jobs, high_config, high_job

    def test_preempted_jobs_resume_bit_identically(self):
        scheduler, low_configs, low_jobs, high_config, high_job = (
            self._preempting_scheduler()
        )
        scheduler.drain()
        assert scheduler.preemptions >= 1
        assert all(job.preemptions >= 1 for job in low_jobs)
        for config, job in zip(low_configs + [high_config], low_jobs + [high_job]):
            sim = simulate(config)
            sim.run(job.spec.sweeps)
            np.testing.assert_array_equal(job.result.lattice, sim.lattice)

    def test_preemption_snapshot_is_loadable_checkpoint_v2(self):
        """The scheduler's snapshot is a real checkpoint/v2 envelope:
        repro.load() restores it to the exact preempted state, and its
        magnetisations match the solo runs at the preemption sweep."""
        scheduler, low_configs, low_jobs, _, _ = self._preempting_scheduler()
        scheduler.step()  # fires the preemption
        snapshot = scheduler.last_preemption_checkpoint
        assert snapshot is not None
        assert snapshot["schema"] == "checkpoint/v2"

        restored = repro.load(snapshot)
        for index, (config, job) in enumerate(zip(low_configs, low_jobs)):
            sweeps_at_cut = job.resume["sweeps_done"]
            sim = simulate(config)
            sim.run(sweeps_at_cut)
            np.testing.assert_array_equal(restored.lattices[index], sim.lattice)
            assert magnetization(restored.lattices[index]) == magnetization(
                sim.lattice
            )
        scheduler.drain()

    def test_magnetisation_trace_through_preemption(self):
        """The preempted job's full magnetisation trace (observed at its
        resume token and its final state) lines up with the solo run."""
        scheduler, low_configs, low_jobs, _, _ = self._preempting_scheduler()
        scheduler.step()  # preempt: tokens now hold the mid-scan state
        tokens = [dict(job.resume) for job in low_jobs]
        scheduler.drain()
        for config, job, token in zip(low_configs, low_jobs, tokens):
            sim = simulate(config)
            trace = []
            for _ in range(SWEEPS):
                sim.run(1)
                trace.append(magnetization(sim.lattice))
            assert magnetization(token["lattice"]) == trace[
                token["sweeps_done"] - 1
            ]
            assert job.result.magnetization == trace[-1]


class TestLeaseRevocation:
    @pytest.mark.parametrize("revoke_after", [1, 2])
    def test_revoked_lease_requeues_and_replays(self, revoke_after):
        pool = DevicePool(2)
        scheduler = Scheduler(pool=pool, max_batch=4, quantum=3)
        configs = [
            SimulationConfig(shape=SIDE, temperature=t, seed=40 + i, backend="tpu")
            for i, t in enumerate(TEMPS)
        ]
        jobs = [scheduler.submit(c, SWEEPS) for c in configs]
        for _ in range(revoke_after):
            scheduler.step()
        pool.revoke(0)
        scheduler.drain()
        assert scheduler.lease_revocations >= 1
        assert pool.n_lost == 1
        for config, job in zip(configs, jobs):
            sim = simulate(config)
            sim.run(SWEEPS)
            np.testing.assert_array_equal(job.result.lattice, sim.lattice)
