"""Cross-implementation equivalence: the test-suite centrepiece.

Five independent implementations of one checkerboard sweep exist in this
repository: Algorithm 1 (masked blocked matmul), Algorithm 2 (compact
matmul), the compact conv variant, the naive masked conv, the plain-numpy
roll baseline, and the bit-packed multispin baseline.  Fed identical
per-site uniforms they must produce *bit-identical* chains — any boundary
or colouring bug in any one of them breaks these tests.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.backend import NumpyBackend
from repro.baselines import MultispinUpdater, RollUpdater
from repro.core import (
    CheckerboardUpdater,
    CompactLattice,
    CompactUpdater,
    ConvUpdater,
    MaskedConvUpdater,
    plain_to_grid,
    plain_to_quarters,
    grid_to_plain,
)
from repro.core.lattice import random_lattice
from repro.rng import PhiloxStream


def _reference_sweep(plain, beta, u_black, u_white):
    """RollUpdater as the simple reference implementation."""
    return RollUpdater(beta).sweep(plain.copy(), probs_black=u_black, probs_white=u_white)


def _compact_sweep(plain, beta, u_black, u_white, block, nn_method="matmul"):
    updater = CompactUpdater(beta, NumpyBackend(), block_shape=block, nn_method=nn_method)
    lat = CompactLattice.from_plain(plain, block)
    qb, qw = plain_to_quarters(u_black), plain_to_quarters(u_white)
    lat = updater.update_color(
        lat, "black", probs=(plain_to_grid(qb[0], block), plain_to_grid(qb[3], block))
    )
    lat = updater.update_color(
        lat, "white", probs=(plain_to_grid(qw[1], block), plain_to_grid(qw[2], block))
    )
    return lat.to_plain()


def _checkerboard_sweep(plain, beta, u_black, u_white, block):
    updater = CheckerboardUpdater(beta, NumpyBackend(), block_shape=block)
    grid = plain_to_grid(plain, block)
    grid = updater.sweep(
        grid,
        probs_black=plain_to_grid(u_black, block),
        probs_white=plain_to_grid(u_white, block),
    )
    return grid_to_plain(grid)


def _masked_conv_sweep(plain, beta, u_black, u_white):
    return MaskedConvUpdater(beta, NumpyBackend()).sweep(
        plain.copy(), probs_black=u_black, probs_white=u_white
    )


def _multispin_sweep(plain, beta, u_black, u_white):
    updater = MultispinUpdater(beta)
    qb, qw = plain_to_quarters(u_black), plain_to_quarters(u_white)
    state = updater.to_state(plain)
    state = updater.update_color(state, "black", probs=(qb[0], qb[3]))
    state = updater.update_color(state, "white", probs=(qw[1], qw[2]))
    return state.to_plain()


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(1, 3),
    n=st.integers(1, 3),
    r=st.integers(1, 3),
    c=st.integers(1, 3),
    beta=st.floats(0.05, 1.5),
    seed=st.integers(0, 10_000),
)
def test_all_gridable_updaters_bitwise_equal(m, n, r, c, beta, seed):
    shape = (2 * m * r, 2 * n * c)
    stream = PhiloxStream(seed, 0)
    plain = random_lattice(shape, stream)
    u_black = stream.uniform(shape)
    u_white = stream.uniform(shape)

    reference = _reference_sweep(plain, beta, u_black, u_white)
    block_plain = (2 * r, 2 * c)  # Algorithm 1 blocks must have even sides? no — any divisor
    assert np.array_equal(
        _checkerboard_sweep(plain, beta, u_black, u_white, block_plain), reference
    )
    assert np.array_equal(
        _compact_sweep(plain, beta, u_black, u_white, (r, c)), reference
    )
    assert np.array_equal(
        _compact_sweep(plain, beta, u_black, u_white, (r, c), nn_method="conv"),
        reference,
    )
    assert np.array_equal(_masked_conv_sweep(plain, beta, u_black, u_white), reference)


@settings(max_examples=10, deadline=None)
@given(
    rows=st.sampled_from([4, 8, 12]),
    beta=st.floats(0.05, 1.5),
    seed=st.integers(0, 10_000),
)
def test_multispin_bitwise_equal(rows, beta, seed):
    shape = (rows, 128)  # multispin packs 64 columns per word per quarter
    stream = PhiloxStream(seed, 1)
    plain = random_lattice(shape, stream)
    u_black = stream.uniform(shape)
    u_white = stream.uniform(shape)
    reference = _reference_sweep(plain, beta, u_black, u_white)
    assert np.array_equal(_multispin_sweep(plain, beta, u_black, u_white), reference)


@settings(max_examples=8, deadline=None)
@given(beta=st.floats(0.1, 1.0), seed=st.integers(0, 1000))
def test_block_shape_is_irrelevant(beta, seed):
    """The compact chain does not depend on the grid blocking."""
    shape = (24, 24)
    stream = PhiloxStream(seed, 2)
    plain = random_lattice(shape, stream)
    u_black = stream.uniform(shape)
    u_white = stream.uniform(shape)
    results = [
        _compact_sweep(plain, beta, u_black, u_white, block)
        for block in [(12, 12), (6, 6), (3, 4), (4, 3), (2, 2), (1, 1)]
    ]
    for other in results[1:]:
        assert np.array_equal(results[0], other)


def test_multi_sweep_chain_equivalence():
    """Ten full sweeps stay identical across implementations."""
    shape = (16, 128)
    beta = 1.0 / 2.27
    stream = PhiloxStream(42, 3)
    plain = random_lattice(shape, stream)
    a, b, c = plain.copy(), plain.copy(), plain.copy()
    ms = MultispinUpdater(beta).to_state(plain)
    for _ in range(10):
        u_black = stream.uniform(shape)
        u_white = stream.uniform(shape)
        qb, qw = plain_to_quarters(u_black), plain_to_quarters(u_white)
        a = _reference_sweep(a, beta, u_black, u_white)
        b = _compact_sweep(b, beta, u_black, u_white, (4, 16))
        c = _masked_conv_sweep(c, beta, u_black, u_white)
        updater = MultispinUpdater(beta)
        ms = updater.update_color(ms, "black", probs=(qb[0], qb[3]))
        ms = updater.update_color(ms, "white", probs=(qw[1], qw[2]))
    assert np.array_equal(a, b)
    assert np.array_equal(a, c)
    assert np.array_equal(a, ms.to_plain())


def test_bfloat16_pipeline_equivalence():
    """Compact and conv paths agree in bfloat16 too (same quantized ops)."""
    shape = (16, 16)
    beta = 0.44
    stream = PhiloxStream(17, 4)
    plain = random_lattice(shape, stream)
    be_a, be_b = NumpyBackend("bfloat16"), NumpyBackend("bfloat16")
    compact = CompactUpdater(beta, be_a, block_shape=(4, 4))
    conv = ConvUpdater(beta, be_b, block_shape=(4, 4))
    lat_a, lat_b = compact.to_state(plain), conv.to_state(plain)
    sa, sb = PhiloxStream(5, 5), PhiloxStream(5, 5)
    for _ in range(5):
        lat_a = compact.sweep(lat_a, sa)
        lat_b = conv.sweep(lat_b, sb)
    assert np.array_equal(lat_a.to_plain(), lat_b.to_plain())
