"""Telemetry layer: schema round-trips, trace export, and the invariants
that make it safe to ship — disabled telemetry is free and enabled
telemetry never perturbs the physics (bit-identical chains)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.distributed import DistributedIsing
from repro.core.ensemble import EnsembleSimulation
from repro.core.simulation import IsingSimulation
from repro.harness import smoke
from repro.telemetry import (
    BENCH_REPORT_SCHEMA,
    MetricsRegistry,
    NULL_REGISTRY,
    RUN_REPORT_SCHEMA,
    RunReport,
    RunTelemetry,
    bench_report,
    chrome_trace,
    validate_bench_report,
    validate_run_report,
    write_bench_report,
    write_chrome_trace,
)

UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")


# -- metrics registry ------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_decrements(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        c.inc()
        c.inc(2.5)
        assert reg.counter("events").value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_streaming_moments(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 4
        assert d["mean"] == pytest.approx(2.5)
        assert d["min"] == 1.0 and d["max"] == 4.0
        assert d["std"] == pytest.approx(np.std([1, 2, 3, 4]))

    def test_name_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_as_dict_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(0.25)
        decoded = json.loads(json.dumps(reg.as_dict()))
        assert decoded["a"]["type"] == "counter"
        assert decoded["c"]["count"] == 1

    def test_empty_histogram_serialises_without_inf(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        d = reg.as_dict()["empty"]
        assert d["min"] is None and d["max"] is None

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z").observe(1)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.as_dict() == {}


# -- run report schema -----------------------------------------------------


class TestRunReport:
    def _single_report(self) -> RunReport:
        sim = IsingSimulation(
            16, 2.2, seed=5, telemetry=RunTelemetry(physics_interval=2)
        )
        sim.run(8)
        return sim.report()

    def test_json_round_trip_validates(self):
        report = self._single_report()
        payload = json.loads(json.dumps(report.to_json_dict()))
        validate_run_report(payload)
        back = RunReport.from_json_dict(payload)
        assert back.schema == RUN_REPORT_SCHEMA
        assert back.kind == "single"
        assert back.sweeps["count"] == 8
        assert back.run["updater"] == "compact"
        assert back.rng["streams"][0]["counter"] > 0

    def test_physics_block_has_drift_and_activity(self):
        physics = self._single_report().to_json_dict()["physics"]
        for key in (
            "magnetization_first",
            "magnetization_last",
            "magnetization_drift",
            "energy_drift",
            "flip_activity_mean",
        ):
            assert key in physics
        assert 0.0 <= physics["flip_activity_mean"] <= 1.0

    def test_validation_rejects_wrong_schema_kind_and_shapes(self):
        good = self._single_report().to_json_dict()
        bad = dict(good, schema="repro.telemetry/run-report/v0")
        with pytest.raises(ValueError, match="schema"):
            validate_run_report(bad)
        with pytest.raises(ValueError, match="kind"):
            validate_run_report(dict(good, kind="mystery"))
        with pytest.raises(ValueError, match="sweeps.count"):
            validate_run_report(
                dict(good, sweeps=dict(good["sweeps"], count=-1))
            )
        with pytest.raises(ValueError, match="cores"):
            validate_run_report(dict(good, cores={}))

    def test_report_without_telemetry_raises(self):
        sim = IsingSimulation(8, 2.0)
        with pytest.raises(RuntimeError, match="telemetry"):
            sim.report()

    def test_physics_interval_zero_disables_sampling(self):
        sim = IsingSimulation(
            8, 2.0, seed=1, telemetry=RunTelemetry(physics_interval=0)
        )
        sim.run(5)
        payload = sim.report().to_json_dict()
        assert payload["physics"] == {}
        assert payload["sweeps"]["count"] == 5

    def test_negative_physics_interval_rejected(self):
        with pytest.raises(ValueError):
            RunTelemetry(physics_interval=-1)


# -- bit-identity regressions ---------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("updater", UPDATERS)
    def test_enabled_telemetry_keeps_chains_bit_identical(self, updater):
        """Telemetry must observe, never perturb: same lattice, same RNG
        counter as a seed-equivalent uninstrumented run, per updater."""
        plain = IsingSimulation(16, 2.3, updater=updater, seed=9)
        instrumented = IsingSimulation(
            16,
            2.3,
            updater=updater,
            seed=9,
            telemetry=RunTelemetry(physics_interval=1),
        )
        plain.run(12)
        instrumented.run(12)
        np.testing.assert_array_equal(plain.lattice, instrumented.lattice)
        assert plain.stream.counter == instrumented.stream.counter

    @pytest.mark.parametrize("updater", UPDATERS)
    def test_ensemble_telemetry_bit_identical(self, updater):
        temps = [2.0, 2.3, 2.6]
        plain = EnsembleSimulation(16, temps, updater=updater, seed=4)
        instrumented = EnsembleSimulation(
            16, temps, updater=updater, seed=4, telemetry=RunTelemetry()
        )
        plain.run(6)
        instrumented.run(6)
        np.testing.assert_array_equal(plain.lattices, instrumented.lattices)
        assert plain.stream.counters == instrumented.stream.counters

    def test_distributed_telemetry_bit_identical(self):
        plain = DistributedIsing((32, 32), 2.2, core_grid=(2, 2), seed=3)
        instrumented = DistributedIsing(
            (32, 32),
            2.2,
            core_grid=(2, 2),
            seed=3,
            telemetry=RunTelemetry(physics_interval=2),
        )
        plain.sweep(5)
        instrumented.sweep(5)
        np.testing.assert_array_equal(
            plain.gather_lattice(), instrumented.gather_lattice()
        )


# -- distributed report ----------------------------------------------------


class TestDistributedReport:
    @pytest.fixture(scope="class")
    def sim(self):
        sim = DistributedIsing(
            (32, 64),
            2.1,
            core_grid=(2, 2),
            seed=11,
            record_trace=True,
            telemetry=RunTelemetry(physics_interval=3),
        )
        sim.sweep(6)
        return sim

    def test_report_validates_and_has_one_row_per_core(self, sim):
        payload = sim.report().to_json_dict()
        validate_run_report(payload)
        assert payload["kind"] == "distributed"
        assert len(payload["cores"]) == sim.num_cores
        assert payload["run"]["core_grid"] == [2, 2]

    def test_comm_fractions_match_breakdown_machinery(self, sim):
        """The report's communication attribution must agree with the
        Table 3/4 breakdown path (pod-aggregated profiler fractions)."""
        payload = sim.report().to_json_dict()
        assert payload["breakdown"] == pytest.approx(sim.breakdown())
        for core_row, core in zip(payload["cores"], sim.pod.cores):
            total = core.profiler.total_seconds
            expected = core.profiler.seconds["communication"] / total
            assert core_row["communication_fraction"] == pytest.approx(expected)
            assert core_row["compute_seconds"] + core_row[
                "communication_seconds"
            ] == pytest.approx(total)

    def test_rng_counters_cover_every_core_stream(self, sim):
        payload = sim.report().to_json_dict()
        streams = payload["rng"]["streams"]
        assert [s["stream_id"] for s in streams] == [1, 2, 3, 4]
        assert all(s["counter"] > 0 for s in streams)

    def test_collective_metrics_booked(self, sim):
        metrics = sim.report().to_json_dict()["metrics"]
        # 8 halo exchanges per sweep (4 slabs x 2 colour phases).
        assert metrics["collectives_total"]["value"] == 8 * sim.sweeps_done
        assert metrics["collective_bytes_total"]["value"] > 0


# -- chrome trace export ---------------------------------------------------


class TestChromeTrace:
    def test_one_track_per_core_and_valid_events(self, tmp_path):
        sim = DistributedIsing(
            (32, 32), 2.2, core_grid=(2, 2), seed=1, record_trace=True
        )
        sim.sweep(2)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, sim)
        trace = json.loads(path.read_text())

        events = trace["traceEvents"]
        assert events, "trace must contain events"
        tids = {e["tid"] for e in events}
        assert tids == {0, 1, 2, 3}, "one track per simulated core"

        names = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(names) == 4
        for e in events:
            assert e["ph"] in ("M", "X")
            if e["ph"] == "X":
                assert isinstance(e["ts"], float) and e["ts"] >= 0.0
                assert isinstance(e["dur"], float) and e["dur"] >= 0.0
                assert e["cat"] in (
                    "mxu",
                    "conv",
                    "vpu",
                    "formatting",
                    "communication",
                )

    def test_halo_exchanges_appear_on_every_core(self):
        sim = DistributedIsing(
            (32, 32), 2.2, core_grid=(2, 2), seed=1, record_trace=True
        )
        sim.sweep(1)
        trace = chrome_trace(sim)
        for tid in range(4):
            comm = [
                e
                for e in trace["traceEvents"]
                if e.get("cat") == "communication" and e["tid"] == tid
            ]
            assert len(comm) == 8  # 4 halos x 2 colour phases

    def test_trace_without_recording_raises(self):
        sim = DistributedIsing((32, 32), 2.2, core_grid=(2, 2), seed=1)
        sim.sweep(1)
        with pytest.raises(ValueError, match="record_trace"):
            chrome_trace(sim)

    def test_tempering_swap_track(self):
        from repro.core.tempering import TemperingEnsemble

        sim = TemperingEnsemble(
            16, (0.40, 0.43, 0.46), n_replicas=2, swap_interval=2, seed=1
        )
        sim.run(8)
        trace = chrome_trace(sim)
        events = trace["traceEvents"]
        swap_tid = next(
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        )
        assert swap_tid == "tempering swaps"
        spans = [e for e in events if e.get("cat") == "tempering"]
        assert len(spans) == sim.swap_rounds == 4
        for span in spans:
            assert span["ph"] == "X"
            assert span["args"]["attempted"] >= 0
            assert 0 <= span["args"]["accepted"] <= span["args"]["attempted"]
        assert trace["otherData"]["num_tempering_spans"] == 4


# -- bench report schema ---------------------------------------------------


class TestBenchReport:
    def test_write_and_validate_round_trip(self, tmp_path):
        path = write_bench_report(
            "unit",
            {"throughput_flips_per_ns": 1.5, "sweeps": 10},
            meta={"side": 64},
            out_dir=str(tmp_path),
        )
        assert path.endswith("BENCH_unit.json")
        payload = json.loads((tmp_path / "BENCH_unit.json").read_text())
        validate_bench_report(payload)
        assert payload["schema"] == BENCH_REPORT_SCHEMA
        assert payload["metrics"]["throughput_flips_per_ns"] == 1.5
        assert payload["meta"]["side"] == 64

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(ValueError, match="metrics"):
            bench_report("bad", {"label": "fast"})

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError, match="metrics"):
            bench_report("bad", {})


# -- harness smoke ---------------------------------------------------------


class TestSmokeExperiment:
    def test_artifacts_are_schema_valid(self):
        result = smoke.run(side=32, n_sweeps=4, record_trace=True)
        validate_run_report(result.artifacts["run_report"])
        trace = result.artifacts["trace"]
        assert {e["tid"] for e in trace["traceEvents"]} == {0, 1, 2, 3}
        rendered = result.render()
        assert "comm" in rendered
        # Round-trips through the json module (no numpy leakage).
        json.dumps(result.artifacts)
