"""The paper's future-work direction: the 3D Ising model.

Runs the dimension-generalized checkerboard algorithm on a cubic lattice
and scans temperatures around the (numerically known) 3D critical point
Tc ~ 4.5115 — the regime the paper's conclusion points at via
Ferrenberg, Xu & Landau (2018).

Usage::

    python examples/ising3d_future_work.py
"""

from __future__ import annotations

import numpy as np

from repro.core.ising3d import Ising3D, T_CRITICAL_3D
from repro.harness.report import ascii_plot, format_table


def main() -> None:
    side = 12
    fractions = (0.7, 0.85, 0.95, 1.0, 1.05, 1.2, 1.5)
    rows = []
    curve = []
    print(f"scanning {side}^3 lattice around Tc(3D) = {T_CRITICAL_3D:.4f} ...")
    for idx, frac in enumerate(fractions):
        t = frac * T_CRITICAL_3D
        sim = Ising3D(
            side, t, seed=0, stream_id=idx, initial="cold" if frac < 1 else "hot"
        )
        m = sim.sample_magnetization(n_samples=400, burn_in=150)
        abs_m = float(np.mean(np.abs(m)))
        rows.append([round(frac, 3), round(t, 4), round(abs_m, 4), round(sim.energy_per_spin(), 4)])
        curve.append(abs_m)

    print(format_table(
        ["T/Tc", "T", "<|m|>", "e (last)"],
        rows,
        title="3D Ising: magnetization through the transition",
    ))
    print()
    print(ascii_plot(
        {f"{side}^3": (list(fractions), curve)},
        title="<|m|> vs T/Tc(3D)",
        xlabel="T/Tc",
        ylabel="<|m|>",
        height=14,
    ))


if __name__ == "__main__":
    main()
