"""Regenerate the paper's performance tables from the calibrated model.

Prints the Table 1 (single core), Table 2 (weak scaling) and Figure 8
(all-platform comparison) reproductions side by side with the paper's
numbers.  Pure cost-model evaluation — finishes in seconds.

Usage::

    python examples/throughput_model.py
"""

from __future__ import annotations

from repro.harness import run_experiment


def main() -> None:
    for name in ("table1", "table2", "figure8"):
        print(run_experiment(name).render())
        print()


if __name__ == "__main__":
    main()
