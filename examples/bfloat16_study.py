"""bfloat16 vs float32: the paper's low-precision study.

Three angles, all from Sec. 2 / 4.1 of the paper:

1. physics — identical observables within Monte-Carlo error;
2. memory — bfloat16 doubles the largest lattice a core can hold
   ((656 x 128)^2 at 96% HBM in bf16);
3. speed — halved HBM traffic shrinks the formatting share of the step.

Usage::

    python examples/bfloat16_study.py
"""

from __future__ import annotations

from repro import IsingSimulation, NumpyBackend, T_CRITICAL
from repro.harness.perf import model_single_core_step
from repro.tpu.hbm import HBMModel


def physics_comparison() -> None:
    print("=== physics: 32x32 at T = Tc, 2000 samples per format")
    for dtype in ("float32", "bfloat16"):
        sim = IsingSimulation(
            32, T_CRITICAL, backend=NumpyBackend(dtype), seed=12
        )
        res = sim.sample(n_samples=2000, burn_in=400)
        print(
            f"  {dtype:9s} <|m|> = {res.abs_m:.4f} +- {res.abs_m_err:.4f}   "
            f"U4 = {res.u4:.4f} +- {res.u4_err:.4f}"
        )


def memory_comparison() -> None:
    print("\n=== memory: largest square lattice per 16 GiB core")
    hbm = HBMModel()
    for dtype, itemsize in (("float32", 4), ("bfloat16", 2)):
        side = hbm.max_square_lattice_side(itemsize)
        util = hbm.utilization(side * side, itemsize)
        print(
            f"  {dtype:9s} ({side})^2 = ({side // 128}x128)^2 sites "
            f"at {100 * util:.1f}% of HBM"
        )


def speed_comparison() -> None:
    print("\n=== modeled speed: (160x128)^2 single-core sweep")
    for dtype in ("float32", "bfloat16"):
        model = model_single_core_step((160 * 128, 160 * 128), dtype=dtype)
        print(
            f"  {dtype:9s} step = {model.step_time * 1e3:8.3f} ms   "
            f"throughput = {model.flips_per_ns:6.3f} flips/ns"
        )


def main() -> None:
    physics_comparison()
    memory_comparison()
    speed_comparison()


if __name__ == "__main__":
    main()
