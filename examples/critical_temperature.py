"""Estimate Tc from the Binder-cumulant crossing of two lattice sizes.

The Binder cumulant U4(T) is size-independent exactly at Tc, so the
curves of two different lattice sizes cross there.  This example scans a
narrow window around the exact Tc, locates the crossing by
interpolation, and compares against Onsager's 2 / ln(1 + sqrt 2).

Usage::

    python examples/critical_temperature.py
"""

from __future__ import annotations

import numpy as np

from repro import T_CRITICAL
from repro.core.simulation import run_temperature_scan
from repro.harness.figure4 import binder_crossing_temperature
from repro.harness.report import format_table


def main() -> None:
    sizes = (12, 24)
    temperatures = np.linspace(0.92 * T_CRITICAL, 1.10 * T_CRITICAL, 7)
    curves = {}
    for size in sizes:
        print(f"scanning {size}x{size} ...")
        results = run_temperature_scan(
            size, temperatures, n_samples=2500, burn_in=600, seed=4
        )
        curves[size] = np.array([r.u4 for r in results])

    rows = [
        [f"{t:.4f}", f"{t / T_CRITICAL:.4f}", round(curves[sizes[0]][i], 4), round(curves[sizes[1]][i], 4)]
        for i, t in enumerate(temperatures)
    ]
    print(format_table(
        ["T", "T/Tc", f"U4 (n={sizes[0]})", f"U4 (n={sizes[1]})"],
        rows,
        title="Binder cumulants around the critical point",
    ))

    crossing = binder_crossing_temperature(
        temperatures, curves[sizes[0]], curves[sizes[1]]
    )
    error = 100.0 * abs(crossing - T_CRITICAL) / T_CRITICAL
    print(f"\nBinder crossing estimate: Tc ~ {crossing:.4f}")
    print(f"Onsager exact:            Tc = {T_CRITICAL:.4f}")
    print(f"deviation:                {error:.2f}%")


if __name__ == "__main__":
    main()
