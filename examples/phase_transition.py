"""Reproduce the paper's Figure 4 at laptop scale.

Scans temperatures through the phase transition for several lattice
sizes, prints the m(T) / U4(T) tables and ascii plots, and reports where
the Binder-cumulant curves cross (the finite-size estimate of Tc).

Usage::

    python examples/phase_transition.py [--full]

``--full`` uses larger lattices and longer chains (minutes instead of
seconds).
"""

from __future__ import annotations

import argparse

from repro.harness.figure4 import run as run_figure4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="bigger, slower, sharper")
    args = parser.parse_args()

    if args.full:
        result = run_figure4(
            sizes=(16, 32, 64), n_samples=4000, burn_in=1000, seed=0
        )
    else:
        result = run_figure4(
            sizes=(8, 16, 32),
            t_over_tc=(0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5),
            n_samples=800,
            burn_in=250,
            seed=0,
            dtypes=("float32",),
        )
    print(result.render())


if __name__ == "__main__":
    main()
