"""Quickstart: simulate a 2D Ising lattice and measure its observables.

Runs a 128 x 128 checkerboard Metropolis chain (Algorithm 2 of the paper)
just below the critical temperature and prints magnetization, energy and
the Binder cumulant against the exact infinite-lattice references.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import IsingSimulation, T_CRITICAL
from repro.observables import internal_energy, spontaneous_magnetization


def main() -> None:
    temperature = 2.0  # below Tc ~ 2.269: the ordered phase
    sim = IsingSimulation(
        shape=128,
        temperature=temperature,
        updater="compact",
        seed=42,
        initial="cold",
    )

    print(f"lattice:      {sim.shape[0]} x {sim.shape[1]}")
    print(f"temperature:  {temperature}  (Tc = {T_CRITICAL:.6f})")
    print("sampling 500 sweeps after 200 burn-in ...")
    result = sim.sample(n_samples=500, burn_in=200)

    exact_m = float(spontaneous_magnetization(temperature))
    exact_e = float(internal_energy(temperature))
    print(f"<|m|> = {result.abs_m:.4f} +- {result.abs_m_err:.4f}   "
          f"(exact infinite lattice: {exact_m:.4f})")
    print(f"<e>   = {result.energy:.4f} +- {result.energy_err:.4f}   "
          f"(exact infinite lattice: {exact_e:.4f})")
    print(f"U4    = {result.u4:.4f} +- {result.u4_err:.4f}   "
          f"(deep ordered phase -> 2/3)")


if __name__ == "__main__":
    main()
