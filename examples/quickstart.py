"""Quickstart: simulate a 2D Ising lattice and measure its observables.

Runs a 128 x 128 checkerboard Metropolis chain (Algorithm 2 of the paper)
just below the critical temperature and prints magnetization, energy and
the Binder cumulant against the exact infinite-lattice references.
Built through the unified ``repro.api`` surface: one
:class:`~repro.api.SimulationConfig` describes the run, ``simulate()``
builds it.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro import T_CRITICAL
from repro.observables import internal_energy, spontaneous_magnetization


def main() -> None:
    config = repro.SimulationConfig(
        shape=128,
        temperature=2.0,  # below Tc ~ 2.269: the ordered phase
        updater="compact",
        seed=42,
        initial="cold",
    )
    sim = repro.simulate(config)

    print(f"lattice:      {sim.shape[0]} x {sim.shape[1]}")
    print(f"temperature:  {config.resolved_temperature}  (Tc = {T_CRITICAL:.6f})")
    print("sampling 500 sweeps after 200 burn-in ...")
    result = sim.sample(n_samples=500, burn_in=200)

    exact_m = float(spontaneous_magnetization(config.resolved_temperature))
    exact_e = float(internal_energy(config.resolved_temperature))
    print(f"<|m|> = {result.abs_m:.4f} +- {result.abs_m_err:.4f}   "
          f"(exact infinite lattice: {exact_m:.4f})")
    print(f"<e>   = {result.energy:.4f} +- {result.energy_err:.4f}   "
          f"(exact infinite lattice: {exact_e:.4f})")
    print(f"U4    = {result.u4:.4f} +- {result.u4_err:.4f}   "
          f"(deep ordered phase -> 2/3)")


if __name__ == "__main__":
    main()
