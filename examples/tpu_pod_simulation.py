"""Distributed Ising simulation on a simulated TPU pod slice.

Spreads a lattice over a 2 x 4 grid of simulated TensorCores, runs
lockstep SPMD sweeps with halo exchange over the toroidal mesh, and
prints the per-category time breakdown (the paper's Table 3 quantities)
plus a slice of the op-level trace (the paper's Fig. 6 trace viewer).
Built through the unified ``repro.api`` surface, and finished with a
fault-tolerance vignette: the same run under an injected core kill
degrades onto the surviving sub-grid and keeps sweeping.

Usage::

    python examples/tpu_pod_simulation.py
"""

from __future__ import annotations

import repro


def main() -> None:
    config = repro.SimulationConfig(
        shape=(256, 512),
        temperature=2.1,
        grid=(2, 4),
        dtype="bfloat16",
        seed=7,
        record_trace=True,
    )
    sim = repro.distributed(config)
    print(f"{sim.num_cores} cores, {sim.local_shape} sites per core, "
          f"{sim.n_sites} sites total")

    sim.sweep(10)
    print(f"magnetization after 10 sweeps: {sim.magnetization():+.4f}")
    print(f"energy per spin:               {sim.energy_per_spin():+.4f}")
    print(f"modeled step time:             {sim.step_time() * 1e3:.3f} ms")
    print(f"modeled throughput:            {sim.throughput_flips_per_ns():.4f} flips/ns")

    print("\nper-category breakdown (cf. paper Table 3):")
    for category, fraction in sim.breakdown().items():
        print(f"  {category:14s} {100 * fraction:7.3f} %")

    print("\nfirst trace events on core 0 (cf. paper Fig. 6):")
    for event in sim.pod.cores[0].profiler.trace[:12]:
        print(
            f"  t={event.start * 1e6:9.3f} us  {event.category:12s} "
            f"{event.name:22s} {event.duration * 1e6:8.3f} us"
        )

    # -- fault tolerance: kill a core mid-run and keep going ------------
    resilient = repro.distributed(config.evolve(
        record_trace=False,
        fault_plan=repro.FaultPlan(
            events=(repro.FaultEvent("kill", core=5, sweep=6),),
        ),
        checkpoint_interval=3,
    ))
    resilient.run_resilient(10)
    (event,) = resilient.topology_events
    print(f"\nfault tolerance: core {event['dead_core']} killed at sweep "
          f"{event['sweep_detected']};")
    print(f"  restarted from checkpointed sweep {event['resumed_from_sweep']} "
          f"on a {tuple(event['new_grid'])} grid "
          f"(was {tuple(event['old_grid'])})")
    print(f"  finished sweep {resilient.sweeps_done} on {resilient.num_cores} "
          f"surviving cores; m = {resilient.magnetization():+.4f}")


if __name__ == "__main__":
    main()
