"""Simulated annealing with the Ising machinery — the intro's use-case.

The paper motivates Ising simulation partly through combinatorial
optimization (VLSI placement, operations research): finding low-energy
spin configurations *is* an optimization problem.  This example contrasts

* an **instant quench** (run directly at very low temperature), which
  traps domain walls and stalls above the ground-state energy, with
* a **geometric annealing schedule** through Tc, which heals the domains
  and reaches (near-)ground-state energy e = -2.

Usage::

    python examples/annealing_optimization.py
"""

from __future__ import annotations

import numpy as np

from repro import IsingSimulation
from repro.harness.report import format_table


def quench(size: int, seed: int) -> float:
    """Run directly at T = 0.5 from a hot start."""
    sim = IsingSimulation(size, 0.5, seed=seed, initial="hot")
    sim.run(300)
    return sim.energy_per_spin()


def anneal(size: int, seed: int) -> float:
    """Cool geometrically from T = 3.5 through Tc down to T = 0.5."""
    temperatures = 3.5 * (0.5 / 3.5) ** np.linspace(0.0, 1.0, 12)
    sim = IsingSimulation(size, float(temperatures[0]), seed=seed, initial="hot")
    lattice = sim.lattice
    for idx, t in enumerate(temperatures):
        sim = IsingSimulation(
            size, float(t), seed=seed, stream_id=idx + 1, initial=lattice
        )
        sim.run(25)
        lattice = sim.lattice
    return sim.energy_per_spin()


def main() -> None:
    size = 64
    rows = []
    for seed in range(4):
        e_quench = quench(size, seed)
        e_anneal = anneal(size, seed)
        rows.append([seed, round(e_quench, 4), round(e_anneal, 4)])
    print(format_table(
        ["seed", "e after quench", "e after annealing"],
        rows,
        title=f"ground-state search on a {size}x{size} lattice (exact minimum: -2)",
    ))
    quenches = [r[1] for r in rows]
    anneals = [r[2] for r in rows]
    print(f"\nmean quench energy:    {np.mean(quenches):+.4f} (trapped domain walls)")
    print(f"mean annealed energy:  {np.mean(anneals):+.4f} (near the ground state)")


if __name__ == "__main__":
    main()
