"""Distributed telemetry smoke: a quick, fully-instrumented pod run.

Unlike the table/figure experiments (which model paper-scale workloads),
this experiment *executes* a small :class:`~repro.core.distributed.DistributedIsing`
chain on a simulated 2x2-core pod slice with telemetry and trace
recording on, and surfaces every observability artifact the repository
can produce: a per-core compute-vs-communication table (the same
attribution machinery behind Tables 3 and 4), a schema-valid
:class:`~repro.telemetry.report.RunReport`, and a Chrome trace with one
track per core.

Run it through the CLI to archive the artifacts::

    ising-tpu smoke --telemetry-out run.json --trace-out trace.json

With a serialized :class:`~repro.mesh.faults.FaultPlan` the same smoke
runs on a degraded mesh (``ising-tpu smoke --fault-plan plan.json``):
transient faults are retried (visible as ``mesh_retries`` /
``fault_injected`` counters and a "mesh faults" trace track), and core
kills degrade onto the surviving sub-grid mid-run.
"""

from __future__ import annotations

from ..core.distributed import DistributedIsing
from ..mesh.faults import FaultPlan
from ..observables.onsager import T_CRITICAL
from ..telemetry.report import RunTelemetry
from ..telemetry.trace import chrome_trace
from .report import ExperimentResult

__all__ = ["run"]


def run(
    side: int = 64,
    core_grid: tuple[int, int] = (2, 2),
    n_sweeps: int = 30,
    temperature: float | None = None,
    seed: int = 7,
    telemetry: RunTelemetry | None = None,
    record_trace: bool = False,
    fault_plan: FaultPlan | None = None,
) -> ExperimentResult:
    """Run the instrumented distributed smoke and return its result.

    A telemetry recorder is created when none is passed, so the smoke is
    always instrumented; the run report (and, with ``record_trace``, the
    Chrome trace) land in ``result.artifacts``.  With a ``fault_plan``
    the run sweeps through :meth:`~repro.core.distributed.DistributedIsing.run_resilient`,
    surviving injected core kills by degrading the topology.
    """
    if telemetry is None:
        telemetry = RunTelemetry(physics_interval=5)
    temp = float(temperature) if temperature is not None else 0.98 * T_CRITICAL
    sim = DistributedIsing(
        (side, side),
        temp,
        core_grid=core_grid,
        dtype="bfloat16",
        seed=seed,
        record_trace=record_trace,
        telemetry=telemetry,
        fault_plan=fault_plan,
        checkpoint_interval=max(1, n_sweeps // 6) if fault_plan else None,
    )
    if fault_plan is not None:
        sim.run_resilient(n_sweeps)
    else:
        sim.sweep(n_sweeps)
    report = sim.report()
    report_dict = report.to_json_dict()

    rows = []
    for core in report_dict["cores"]:
        rows.append(
            [
                core["core_id"],
                f"({core['coords'][0]}, {core['coords'][1]})",
                core["compute_seconds"] * 1e3,
                core["communication_seconds"] * 1e3,
                100.0 * core["communication_fraction"],
            ]
        )
    breakdown = report_dict["breakdown"]
    artifacts = {"run_report": report_dict}
    if record_trace:
        artifacts["trace"] = chrome_trace(sim)
    return ExperimentResult(
        name="Telemetry smoke",
        description=(
            f"instrumented {side}x{side} lattice on a "
            f"{core_grid[0]}x{core_grid[1]}-core pod, {n_sweeps} sweeps "
            f"at T={temp:.4g}"
        ),
        headers=[
            "core",
            "coords",
            "compute ms (modeled)",
            "comm ms (modeled)",
            "comm %",
        ],
        rows=rows,
        notes=(
            "Pod-wide breakdown: "
            + ", ".join(f"{k} {100 * v:.2f}%" for k, v in breakdown.items())
            + f".  Mean sweep wall {report_dict['sweeps']['wall_seconds_mean'] * 1e3:.2f} ms; "
            f"flip activity {report_dict['physics'].get('flip_activity_mean', float('nan')):.3f}.  "
            + (
                "Topology degraded to "
                f"{sim.core_grid[0]}x{sim.core_grid[1]} after "
                f"{len(sim.topology_events)} core loss(es).  "
                if sim.topology_events
                else ""
            )
            + "Use --telemetry-out / --trace-out to archive the JSON artifacts."
        ),
        artifacts=artifacts,
    )
