"""Table 4: step time and collective_permute time vs per-core size / cores.

Three per-core lattice sizes x three slice sizes; the paper's point is
that communication is latency-dominated — growing with core count, only
mildly with edge bytes, and always negligible against the step.
"""

from __future__ import annotations

from .perf import model_pod_step
from .report import ExperimentResult

__all__ = ["PAPER_GRID", "PER_CORE_SHAPES", "run"]

PER_CORE_SHAPES = (
    (896 * 128, 448 * 128),
    (448 * 128, 224 * 128),
    (224 * 128, 112 * 128),
)

#: paper (step ms, collective_permute ms) indexed [shape][chip grid n].
PAPER_GRID = {
    (896 * 128, 448 * 128): {4: (575.0, 0.37), 8: (575.2, 0.47), 16: (575.3, 0.65)},
    (448 * 128, 224 * 128): {4: (255.0, 0.36), 8: (255.11, 0.41), 16: (255.03, 0.64)},
    (224 * 128, 112 * 128): {4: (64.61, 0.18), 8: (64.69, 0.25), 16: (64.92, 0.58)},
}


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Regenerate the Table 4 grid."""
    rows = []
    for shape in PER_CORE_SHAPES:
        label = f"[{shape[0] // 128}x128, {shape[1] // 128}x128]"
        for n in (4, 8, 16):
            n_cores = n * n * 2
            model = model_pod_step(shape, n_cores, dtype=dtype)
            paper_step, paper_cp = PAPER_GRID[shape][n]
            rows.append(
                [
                    label,
                    f"{n}x{n}x2",
                    round(model.step_time * 1e3, 2),
                    paper_step,
                    round(model.seconds["communication"] * 1e3, 3),
                    paper_cp,
                ]
            )
    return ExperimentResult(
        name="Table 4",
        description="(step, collective_permute) times vs per-core size and cores",
        headers=[
            "per-core lattice",
            "cores",
            "step ms (model)",
            "step ms (paper)",
            "cp ms (model)",
            "cp ms (paper)",
        ],
        rows=rows,
        notes=(
            "Communication grows with sqrt(#cores) (mesh-diameter lockstep "
            "sync) and weakly with edge bytes — never bandwidth bound: the "
            "largest edge (229 KiB) would need only ~0.023 ms at 10 GB/s."
        ),
    )
