"""Plain-text rendering of experiment results: tables and ascii plots.

The harness prints the same rows/series the paper reports; everything is
terminal-friendly text so the full reproduction can run in a headless
environment (no plotting dependencies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ExperimentResult", "format_table", "ascii_plot"]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render an aligned ascii table."""
    cells = [[_fmt_cell(v) for v in row] for row in rows]
    for i, row in enumerate(cells):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Scatter several (x, y) series on a character grid.

    Each series gets a marker from ``*+ox#@%&``; axes are annotated with
    the data ranges.  Good enough to see crossings, linear scaling and
    saturation — the qualitative content of the paper's figures.
    """
    markers = "*+ox#@%&"
    points = []
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r} has mismatched x/y lengths")
        marker = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            points.append((float(x), float(y), marker))
    if not points:
        raise ValueError("nothing to plot")

    def tx(v: float) -> float:
        if logx:
            if v <= 0:
                raise ValueError("log x axis requires positive values")
            return math.log10(v)
        return v

    def ty(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("log y axis requires positive values")
            return math.log10(v)
        return v

    xs_t = [tx(p[0]) for p in points]
    ys_t = [ty(p[1]) for p in points]
    x_lo, x_hi = min(xs_t), max(xs_t)
    y_lo, y_hi = min(ys_t), max(ys_t)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int(round((tx(x) - x_lo) / x_span * (width - 1)))
        row = int(round((ty(y) - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{10**y_hi if logy else y_hi:.3g}"
    y_bot = f"{10**y_lo if logy else y_lo:.3g}"
    pad = max(len(y_top), len(y_bot))
    for i, row in enumerate(grid):
        label = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(f"{' ' * pad} +{'-' * width}")
    x_left = f"{10**x_lo if logx else x_lo:.3g}"
    x_right = f"{10**x_hi if logx else x_hi:.3g}"
    gap = width - len(x_left) - len(x_right)
    lines.append(f"{' ' * pad}  {x_left}{' ' * max(gap, 1)}{x_right}")
    if xlabel or ylabel:
        lines.append(f"{' ' * pad}  x: {xlabel}   y: {ylabel}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, label in enumerate(series)
    )
    lines.append(f"{' ' * pad}  {legend}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A rendered experiment: table rows plus optional plots and notes.

    ``artifacts`` carries machine-readable side products keyed by kind —
    ``"run_report"`` (a :class:`~repro.telemetry.report.RunReport` JSON
    dict) and ``"trace"`` (a Chrome trace-event dict) — which the
    ``ising-tpu`` runner writes out when ``--telemetry-out`` /
    ``--trace-out`` are passed.  Rendering ignores them.
    """

    name: str
    description: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    plots: list[str] = field(default_factory=list)
    notes: str = ""
    artifacts: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=f"{self.name}: {self.description}")]
        parts.extend(self.plots)
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)
