"""Table 3: percentage time breakdown per HLO category.

The paper's profiler attributes ~59.5% of the step to MXU matmuls, ~12%
to the VPU (mostly RNG), ~28% to data formatting, and a vanishing (but
core-count-dependent) share to collective_permute.  Our breakdown comes
from the same op stream through the calibrated cost model.
"""

from __future__ import annotations

from .perf import model_pod_step
from .report import ExperimentResult
from .table2 import PER_CORE_SHAPE

__all__ = ["PAPER_ROWS", "run"]

#: (chip grid n, paper MXU %, VPU %, formatting %, collective_permute %).
PAPER_ROWS = (
    (1, 59.6, 12.0, 28.2, 0.024),
    (2, 59.6, 12.0, 28.1, 0.038),
    (4, 59.5, 11.9, 28.2, 0.063),
    (8, 59.5, 12.0, 28.1, 0.08),
    (16, 59.4, 12.0, 28.1, 0.11),
)


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Regenerate Table 3 breakdown rows."""
    rows = []
    for n, p_mxu, p_vpu, p_fmt, p_cp in PAPER_ROWS:
        n_cores = n * n * 2
        model = model_pod_step(PER_CORE_SHAPE, n_cores, dtype=dtype)
        b = model.breakdown()
        rows.append(
            [
                f"{n}x{n}x2",
                round(100 * b["mxu"], 1),
                p_mxu,
                round(100 * b["vpu"], 1),
                p_vpu,
                round(100 * b["formatting"], 1),
                p_fmt,
                round(100 * b["communication"], 3),
                p_cp,
            ]
        )
    return ExperimentResult(
        name="Table 3",
        description="per-category % of step time (model vs paper)",
        headers=[
            "cores",
            "MXU% (model)",
            "MXU% (paper)",
            "VPU% (model)",
            "VPU% (paper)",
            "fmt% (model)",
            "fmt% (paper)",
            "cp% (model)",
            "cp% (paper)",
        ],
        rows=rows,
        notes=(
            "The split is stable across scales because every per-core charge "
            "is proportional to the (fixed) per-core workload; only the "
            "collective share grows, with sqrt(#cores)."
        ),
    )
