"""Table 2: weak scaling on pod slices (original compact implementation).

Each core holds a [896 x 128, 448 x 128] sub-lattice; slices of
n x n x 2 cores (n in 1..16) update the whole lattice in lockstep.  The
paper observes a constant ~575 ms step and strictly linear flips/ns; the
64-GPU MPI row of Block et al. is the comparison point (250% per-device
speedup).
"""

from __future__ import annotations

from ..baselines.published import MULTI_GPU_64_BLOCK_2010
from .perf import model_pod_step
from .report import ExperimentResult

__all__ = ["PAPER_ROWS", "PER_CORE_SHAPE", "run"]

#: Per-core lattice of the paper's Table 2 (superdense packing).
PER_CORE_SHAPE = (896 * 128, 448 * 128)

#: (chip grid n, paper step ms, paper flips/ns, paper nJ/flip).
PAPER_ROWS = (
    (1, 574.7, 22.8873, 8.7385),
    (2, 574.9, 91.5174, 8.7415),
    (4, 575.0, 366.0059, 8.7430),
    (8, 575.2, 1463.5146, 8.7461),
    (16, 575.3, 5853.0408, 8.7476),
)


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Regenerate Table 2 from the pod step model."""
    rows = []
    for n, paper_ms, paper_flips, paper_energy in PAPER_ROWS:
        n_cores = n * n * 2
        model = model_pod_step(PER_CORE_SHAPE, n_cores, dtype=dtype)
        rows.append(
            [
                f"{n}x{n}x2",
                n_cores,
                f"({512 * n}x128)^2",
                round(model.step_time * 1e3, 2),
                paper_ms,
                round(model.flips_per_ns, 2),
                round(paper_flips, 2),
                round(model.energy_nj_per_flip, 4),
                paper_energy,
            ]
        )
    gpu = MULTI_GPU_64_BLOCK_2010
    rows.append(
        [
            gpu.system,
            gpu.n_devices,
            gpu.lattice,
            "~3000",
            "~3000",
            round(gpu.flips_per_ns, 1),
            round(gpu.flips_per_ns, 1),
            "-",
            "-",
        ]
    )
    return ExperimentResult(
        name="Table 2",
        description="weak scaling, per-core [896x128, 448x128] compact sweeps",
        headers=[
            "cores",
            "#",
            "lattice",
            "step ms (model)",
            "step ms (paper)",
            "flips/ns (model)",
            "flips/ns (paper)",
            "nJ/flip (model)",
            "nJ/flip (paper)",
        ],
        rows=rows,
        notes=(
            "Linear scaling holds because halo exchange stays <0.15% of the "
            "step; per-core rate ~11.44 flips/ns vs 3.22 per GPU in the "
            "64-GPU MPI baseline (~250% speedup, as the paper reports)."
        ),
    )
