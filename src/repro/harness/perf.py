"""Paper-scale performance modeling by exact op-stream extrapolation.

The paper's benchmark lattices (up to (14336 x 128)^2 sites across 512
cores) cannot be materialised on a host, but they do not need to be: with
the block size fixed at 128 x 128, *every* op in a compact sweep — the
batched band matmuls, the uniforms, the acceptance arithmetic, and even
the boundary-slab formatting (whose tensors are (m, n, c) grids) — has
flops, bytes and matmul batch exactly proportional to the number of grid
blocks ``m * n``.  So the harness:

1. executes one *real* sweep at a proxy grid size, recording every op's
   raw (category, flops, bytes, batch) descriptor from the TensorCore;
2. multiplies each descriptor by the exact area ratio to the target
   lattice and re-prices it through the calibrated cost model (per-op
   dispatch overhead is per *op* and therefore unscaled);
3. adds the analytic collective_permute times from the link model for
   distributed configurations.

This gives modeled step times whose op mix comes from the actual
implementation, not from hand-derived formulas, while only touching a few
hundred thousand sites on the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..backend.tpu_backend import TPUBackend
from ..core.compact import CompactUpdater
from ..core.conv import MaskedConvUpdater
from ..core.lattice import random_lattice
from ..mesh.links import LinkModel, TwoTierLinkModel, interior_fraction
from ..mesh.topology import HierarchicalTorus, Torus2D
from ..rng.streams import PhiloxStream
from ..tpu.cost_model import TPUCostModel, TPU_V3
from ..tpu.dtypes import DType, BFLOAT16, resolve_dtype
from ..tpu.power import TPU_V3_CORE_WATTS, energy_per_flip_nj
from ..tpu.profiler import CATEGORIES
from ..tpu.tensorcore import TensorCore

__all__ = ["BLOCK", "StepModel", "model_single_core_step", "model_pod_step"]

#: TPU block edge (MXU register / HBM tile dimension).
BLOCK = 128

#: Proxy grid (blocks per quarter) at which the real op stream is recorded.
_PROXY_GRID = (4, 2)
#: Proxy plain-lattice shape for the conv updater (site-proportional ops).
_PROXY_CONV_SHAPE = (8 * BLOCK, 4 * BLOCK)


@dataclass
class StepModel:
    """Modeled cost of one whole-lattice update (sweep)."""

    per_core_shape: tuple[int, int]
    n_cores: int
    updater: str
    dtype: str
    #: Modeled seconds per category for one sweep (per core; communication
    #: is identical on every core, so these are also the pod step's).
    seconds: dict[str, float] = field(default_factory=dict)
    flops: float = 0.0
    bytes: float = 0.0
    #: Communication seconds hidden behind interior compute by the
    #: split-phase overlap schedule (0.0 for blocking runs).  The
    #: ``seconds["communication"]`` entry only holds the *exposed* part,
    #: so ``step_time`` stays the honest modeled wall clock.
    hidden_comm_seconds: float = 0.0

    @property
    def step_time(self) -> float:
        """Whole-lattice update time in seconds (cores run in lockstep)."""
        return sum(self.seconds.values())

    @property
    def sites(self) -> int:
        """Total lattice sites across all cores."""
        rows, cols = self.per_core_shape
        return rows * cols * self.n_cores

    @property
    def flips_per_ns(self) -> float:
        """Whole-lattice throughput in spin flips per nanosecond."""
        return self.sites / (self.step_time * 1e9)

    @property
    def energy_nj_per_flip(self) -> float:
        """Upper-bound energy estimate at 100 W per TPU v3 core."""
        per_core_flips = self.flips_per_ns / self.n_cores
        return energy_per_flip_nj(TPU_V3_CORE_WATTS, per_core_flips)

    def breakdown(self) -> dict[str, float]:
        """Per-category fractions of the step (Table 3 row)."""
        total = self.step_time
        merged = dict(self.seconds)
        merged["mxu"] = merged.get("mxu", 0.0) + merged.pop("conv", 0.0)
        return {c: merged.get(c, 0.0) / total for c in ("mxu", "vpu", "formatting", "communication")}

    @property
    def achieved_flops_rate(self) -> float:
        """Program FLOPS (charged flops over the compute-only step time)."""
        compute = sum(s for c, s in self.seconds.items() if c != "communication")
        return self.flops / compute

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes


def _quarter_grid(per_core_shape: tuple[int, int]) -> tuple[int, int]:
    rows, cols = per_core_shape
    if rows % (2 * BLOCK) or cols % (2 * BLOCK):
        raise ValueError(
            f"per-core shape {per_core_shape} must be a multiple of "
            f"{2 * BLOCK} in both dimensions (compact 128-blocks)"
        )
    return rows // (2 * BLOCK), cols // (2 * BLOCK)


@lru_cache(maxsize=64)
def _recorded_sweep(updater: str, dtype_name: str) -> tuple[tuple, int]:
    """One real proxy-sized sweep's op log and its block (or site) count."""
    dtype = resolve_dtype(dtype_name)
    core = TensorCore(core_id=0, op_log=[])
    backend = TPUBackend(core, dtype)
    stream = PhiloxStream(1234, 0)

    if updater in ("compact", "conv"):
        m, n = _PROXY_GRID
        shape = (2 * m * BLOCK, 2 * n * BLOCK)
        plain = random_lattice(shape, stream)
        driver = CompactUpdater(
            0.44,
            backend,
            block_shape=(BLOCK, BLOCK),
            nn_method="conv" if updater == "conv" else "matmul",
        )
        state = driver.to_state(plain)
        driver.sweep(state, stream)
        units = m * n
    elif updater == "masked_conv":
        shape = _PROXY_CONV_SHAPE
        plain = random_lattice(shape, stream)
        driver = MaskedConvUpdater(0.44, backend)
        driver.sweep(backend.array(plain), stream)
        units = shape[0] * shape[1]
    else:
        raise ValueError(
            f"unknown updater {updater!r}; expected compact/conv/masked_conv"
        )
    return tuple(core.op_log), units


def _scaled_step_seconds(
    updater: str,
    dtype: DType,
    target_units: float,
    cost_model: TPUCostModel,
) -> tuple[dict[str, float], float, float]:
    """Re-price the recorded proxy op stream at the target size."""
    op_log, proxy_units = _recorded_sweep(updater, dtype.name)
    factor = target_units / proxy_units
    seconds = {c: 0.0 for c in CATEGORIES}
    total_flops = 0.0
    total_bytes = 0.0
    for category, flops, bytes_moved, batch in op_log:
        flops *= factor
        bytes_moved *= factor
        scaled_batch = batch * factor if batch is not None else None
        for cat, t in cost_model.op_times(
            category, flops, bytes_moved, scaled_batch
        ).items():
            seconds[cat] += t
        total_flops += flops
        total_bytes += bytes_moved
    return seconds, total_flops, total_bytes


def model_single_core_step(
    per_core_shape: tuple[int, int],
    updater: str = "compact",
    dtype: DType | str = BFLOAT16,
    cost_model: TPUCostModel = TPU_V3,
) -> StepModel:
    """Modeled sweep cost of one core holding ``per_core_shape`` sites."""
    dtype = resolve_dtype(dtype)
    rows, cols = per_core_shape
    if updater in ("compact", "conv"):
        m, n = _quarter_grid(per_core_shape)
        target_units: float = m * n
    else:
        target_units = rows * cols
    seconds, flops, bytes_moved = _scaled_step_seconds(
        updater, dtype, target_units, cost_model
    )
    return StepModel(
        per_core_shape=(rows, cols),
        n_cores=1,
        updater=updater,
        dtype=dtype.name,
        seconds={c: s for c, s in seconds.items() if s > 0.0},
        flops=flops,
        bytes=bytes_moved,
    )


def model_pod_step(
    per_core_shape: tuple[int, int],
    n_cores: int,
    updater: str = "compact",
    dtype: DType | str = BFLOAT16,
    cost_model: TPUCostModel = TPU_V3,
    link_model: LinkModel | None = None,
    topology: Torus2D | None = None,
    overlap: bool = False,
) -> StepModel:
    """Modeled sweep cost of an SPMD pod slice (compute + halo exchange).

    One sweep exchanges eight boundary slabs per core: the two row edges
    (quarter width each) and two column edges (quarter height) per colour
    phase.

    ``topology`` prices each halo direction on a concrete mesh via
    :meth:`~repro.mesh.links.LinkModel.permute_time_on` — pass a
    :class:`~repro.mesh.topology.HierarchicalTorus` to model multi-pod
    slices (pod-crossing shifts pay the inter-pod tier; the default link
    model becomes :class:`~repro.mesh.links.TwoTierLinkModel`, matching
    the distributed driver).  ``overlap=True`` applies the split-phase
    schedule: per colour phase only
    ``max(0, comm - interior_compute)`` of the halo time is exposed,
    with the hidden remainder reported in
    :attr:`StepModel.hidden_comm_seconds`.
    """
    if n_cores <= 0:
        raise ValueError(f"n_cores must be positive, got {n_cores}")
    if topology is not None and topology.num_cores != n_cores:
        raise ValueError(
            f"topology has {topology.num_cores} cores but n_cores={n_cores}"
        )
    link = link_model
    if link is None:
        link = (
            TwoTierLinkModel()
            if isinstance(topology, HierarchicalTorus)
            else LinkModel()
        )
    dtype = resolve_dtype(dtype)
    base = model_single_core_step(per_core_shape, updater, dtype, cost_model)
    rows, cols = per_core_shape
    row_edge_bytes = (cols // 2) * dtype.itemsize
    col_edge_bytes = (rows // 2) * dtype.itemsize
    edges = (
        ("south", row_edge_bytes),
        ("north", row_edge_bytes),
        ("east", col_edge_bytes),
        ("west", col_edge_bytes),
    )
    if topology is None:
        comm_phase = sum(link.permute_time(n_cores, b) for _, b in edges)
    else:
        comm_phase = sum(
            link.permute_time_on(topology, topology.shift_pairs(d), b)
            for d, b in edges
        )
    comm = comm_phase * 2.0  # two colour phases
    hidden = 0.0
    if overlap:
        compute = sum(base.seconds.values())
        interior_phase = interior_fraction(per_core_shape) * compute / 2.0
        exposed = 2.0 * max(0.0, comm_phase - interior_phase)
        hidden = comm - exposed
        comm = exposed
    seconds = dict(base.seconds)
    seconds["communication"] = comm
    return StepModel(
        per_core_shape=base.per_core_shape,
        n_cores=n_cores,
        updater=updater,
        dtype=dtype.name,
        seconds=seconds,
        flops=base.flops,
        bytes=base.bytes,
        hidden_comm_seconds=hidden,
    )
