"""Table 6 (appendix): weak scaling of the conv implementation.

Three packing densities — loose ([224, 224] x 128 per core), dense
([448, 448] x 128) and superdense ([896, 448] x 128) — across core
topologies up to the full 2048-core pod, using the conv-based updater
(~80% faster than the band-matmul compact sweep).
"""

from __future__ import annotations

from .perf import model_pod_step
from .report import ExperimentResult

__all__ = ["PAPER_SECTIONS", "run"]

#: density label -> (per-core multiplier shape, ((topology, paper step ms,
#: paper flips/ns), ...)).
PAPER_SECTIONS = {
    "loose [224,224]x128": (
        (224, 224),
        (
            ((2, 2), 40.78, 80.64),
            ((3, 3), 40.89, 180.93),
            ((4, 4), 40.91, 321.52),
            ((6, 6), 40.87, 724.05),
            ((8, 8), 41.06, 1281.47),
            ((11, 11), 41.06, 2422.60),
            ((16, 16), 41.10, 5120.02),
            ((23, 23), 41.16, 10566.16),
            ((32, 32), 41.15, 20456.20),
            ((45, 45), 41.46, 40456.29),
        ),
    ),
    "dense [448,448]x128": (
        (448, 448),
        (
            ((2, 2), 164.08, 80.17),
            ((3, 3), 164.06, 180.39),
            ((4, 4), 164.14, 320.54),
            ((6, 6), 164.22, 720.85),
            ((8, 8), 164.34, 1280.59),
            ((11, 11), 164.36, 2420.88),
            ((16, 16), 164.39, 5120.83),
            ((23, 23), 164.45, 10577.86),
            ((32, 32), 164.57, 20460.92),
            ((45, 45), 164.75, 40418.07),
        ),
    ),
    "superdense [896,448]x128": (
        (896, 448),
        (
            ((2, 4), 331.80, 158.57),
            ((4, 8), 332.08, 633.75),
            ((8, 16), 332.45, 2532.18),
            ((16, 32), 332.72, 10120.29),
            ((32, 64), 333.36, 40403.46),
        ),
    ),
}


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Regenerate the three Table 6 sections with the conv updater."""
    rows = []
    for section, (mult, entries) in PAPER_SECTIONS.items():
        per_core = (mult[0] * 128, mult[1] * 128)
        for topology, paper_ms, paper_flips in entries:
            n_cores = topology[0] * topology[1]
            model = model_pod_step(per_core, n_cores, updater="conv", dtype=dtype)
            rows.append(
                [
                    section,
                    f"[{topology[0]},{topology[1]}]",
                    n_cores,
                    round(model.step_time * 1e3, 2),
                    paper_ms,
                    round(model.flips_per_ns, 2),
                    paper_flips,
                ]
            )
    return ExperimentResult(
        name="Table 6",
        description="weak scaling of the conv implementation (3 densities)",
        headers=[
            "density",
            "topology",
            "cores",
            "step ms (model)",
            "step ms (paper)",
            "flips/ns (model)",
            "flips/ns (paper)",
        ],
        rows=rows,
        notes=(
            "Linear in all densities; largest configuration reaches the "
            "full 2048-core pod at (128x20160)^2 ~ 6.7e12 sites."
        ),
    )
