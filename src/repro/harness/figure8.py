"""Figure 8: throughput vs problem size across all platforms.

A log-log comparison of every reported performance number: our modeled
TPU configurations (single core across sizes, the Table 2 pods, the
Table 6 conv pods) and the published GPU / multi-GPU / DGX-2 points.
The reproduced claim is the *ordering*: single-core TPU ~ V100 << DGX-2
<< TPU pod slices, with TPU pods extending to lattices orders of
magnitude beyond anything else.
"""

from __future__ import annotations

from ..baselines.published import (
    MULTI_GPU_64_BLOCK_2010,
    PREIS_2009_GPU,
    ROMERO_2019_DGX2,
    ROMERO_2019_V100,
    TESLA_V100_THIS_PAPER,
)
from .perf import model_pod_step, model_single_core_step
from .report import ExperimentResult, ascii_plot
from .table2 import PER_CORE_SHAPE

__all__ = ["run"]


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Collect all series and render the log-log comparison."""
    rows = []
    single_sizes, single_thr = [], []
    for k in (20, 40, 80, 160, 320, 640):
        model = model_single_core_step((k * 128, k * 128), dtype=dtype)
        single_sizes.append(float(model.sites))
        single_thr.append(model.flips_per_ns)
        rows.append(["TPU core (model)", f"({k}x128)^2", model.sites, round(model.flips_per_ns, 2)])

    pod_sizes, pod_thr = [], []
    for n in (1, 2, 4, 8, 16):
        n_cores = n * n * 2
        model = model_pod_step(PER_CORE_SHAPE, n_cores, dtype=dtype)
        pod_sizes.append(float(model.sites))
        pod_thr.append(model.flips_per_ns)
        rows.append(
            ["TPU pod compact (model)", f"{n_cores} cores", model.sites, round(model.flips_per_ns, 2)]
        )

    conv_sizes, conv_thr = [], []
    for topo in ((2, 4), (4, 8), (8, 16), (16, 32), (32, 64)):
        n_cores = topo[0] * topo[1]
        model = model_pod_step(PER_CORE_SHAPE, n_cores, updater="conv", dtype=dtype)
        conv_sizes.append(float(model.sites))
        conv_thr.append(model.flips_per_ns)
        rows.append(
            ["TPU pod conv (model)", f"{n_cores} cores", model.sites, round(model.flips_per_ns, 2)]
        )

    published = {
        PREIS_2009_GPU: 1024**2,
        TESLA_V100_THIS_PAPER: 81920**2,
        ROMERO_2019_V100: 81920**2,
        MULTI_GPU_64_BLOCK_2010: 800000**2,
        ROMERO_2019_DGX2: 327680**2,
    }
    pub_sizes, pub_thr = [], []
    for bench, sites in published.items():
        pub_sizes.append(float(sites))
        pub_thr.append(bench.flips_per_ns)
        flag = " (approx)" if bench.approximate else ""
        rows.append([bench.system + flag, "-", sites, round(bench.flips_per_ns, 2)])

    plot = ascii_plot(
        {
            "TPU core": (single_sizes, single_thr),
            "TPU pod compact": (pod_sizes, pod_thr),
            "TPU pod conv": (conv_sizes, conv_thr),
            "GPU/published": (pub_sizes, pub_thr),
        },
        logx=True,
        logy=True,
        title="Figure 8: throughput vs problem size (log-log)",
        xlabel="lattice sites",
        ylabel="flips/ns",
    )
    return ExperimentResult(
        name="Figure 8",
        description="performance and throughput over problem sizes, all platforms",
        headers=["system", "config", "sites", "flips/ns"],
        rows=rows,
        plots=[plot],
        notes=(
            "Published lattice sizes for single-device points are the largest "
            "reported by each source; DGX-2 points are approximate (read off "
            "the original figure)."
        ),
    )
