"""Serving smoke: a multi-tenant HTTP workload through repro.serve.

Where the ``sched`` experiment drives one scheduler in-process, this one
stands up the full front door — :class:`~repro.serve.app.ServeApp` on a
loopback socket — and pushes a deterministic mixed-tenant workload over
*real HTTP*: a temperature scan, exact duplicates (routed to the same
affine shard, served by dedup/cache), and a bursty tenant whose tight
token bucket demonstrates 429 + ``Retry-After`` shedding.  Every
accepted job's result is fetched back over the wire, and one is checked
bit-identical against an in-process :class:`~repro.sched.client.Client`
run of the same config.

Run it through the CLI to archive the artifacts::

    ising-tpu serve --telemetry-out serve_run.json --trace-out serve_trace.json

The telemetry report is a ``kind="serve"`` RunReport (``serve_*`` gauges:
shards, pressure, queue depth, outstanding jobs); the trace renders the
"serve front door" track of accept/shed events on the modeled timeline.
"""

from __future__ import annotations

import asyncio

from ..sched.client import Client
from ..serve.app import ServeApp
from ..serve.limits import RateLimiter, TenantQuota
from ..serve.protocol import http_request, stream_frames
from ..serve.router import ShardRouter
from ..telemetry.report import RunTelemetry
from ..telemetry.trace import chrome_trace
from .report import ExperimentResult

__all__ = ["run"]


async def _workload(app: ServeApp) -> dict:
    """Drive the deterministic tenant mix; returns observed outcomes."""
    host, port = app.host, app.port
    counts: dict = {}

    async def post(tenant: str, temperature: float, seed: int) -> tuple:
        wire = {
            "config": {
                "shape": [16, 16],
                "temperature": temperature,
                "seed": seed,
            },
            "sweeps": 24,
            "tenant": tenant,
        }
        status, headers, body = await http_request(
            host, port, "POST", "/v1/jobs", wire
        )
        row = counts.setdefault(
            tenant, {"submitted": 0, "accepted": 0, "throttled": 0}
        )
        row["submitted"] += 1
        if status == 202:
            row["accepted"] += 1
        elif status == 429:
            row["throttled"] += 1
        return status, headers, body

    accepted: "list[str]" = []
    # Tenant "scan": eight distinct configs across the temperature range.
    for i in range(8):
        _, _, body = await post("scan", 1.8 + 0.1 * i, seed=i)
        accepted.append(body["id"])
    # Tenant "repeat": exact duplicates of the first scan point — all
    # land on its affine shard and are served by dedup or cache.
    for _ in range(4):
        _, _, body = await post("repeat", 1.8, seed=0)
        accepted.append(body["id"])
    # Tenant "bursty": a tight token bucket (burst 3) sheds the tail of
    # an 8-request burst with 429 + Retry-After.
    retry_after = None
    for i in range(8):
        status, headers, body = await post("bursty", 2.3, seed=100 + i)
        if status == 429:
            retry_after = headers.get("retry-after")
        else:
            accepted.append(body["id"])

    frames = await stream_frames(
        host, port, f"/v1/jobs/{accepted[0]}/stream"
    )
    results = {}
    for ref_id in accepted:
        status, _, body = await http_request(
            host, port, "GET", f"/v1/jobs/{ref_id}/result"
        )
        assert status == 200, (status, body)
        results[ref_id] = body
    _, _, statsz = await http_request(host, port, "GET", "/v1/statsz")
    return {
        "counts": counts,
        "accepted": accepted,
        "results": results,
        "frames": frames,
        "retry_after": retry_after,
        "statsz": statsz,
    }


def run(
    n_shards: int = 2,
    telemetry: RunTelemetry | None = None,
    record_trace: bool = False,
) -> ExperimentResult:
    """Run the serving smoke and return its result.

    Always instrumented; the ``kind="serve"`` run report — and with
    ``record_trace`` the Chrome trace of the "serve front door" track —
    land in ``result.artifacts``.
    """
    if telemetry is None:
        telemetry = RunTelemetry()
    limiter = RateLimiter(
        per_tenant={"bursty": TenantQuota(rate=1.0, burst=3.0)}
    )
    app = ServeApp(
        router=ShardRouter(n_shards=n_shards),
        limiter=limiter,
        metrics=telemetry.registry,
        autoscale=False,  # deterministic topology for the printed table
    )

    async def main() -> dict:
        async with app:
            return await _workload(app)

    observed = asyncio.run(main())

    # Bit-identity spot check: the first scan job's wire result vs an
    # in-process client run of the identical config.
    from ..api import SimulationConfig

    client = Client()
    local = client.result(
        client.submit(SimulationConfig(shape=(16, 16), temperature=1.8, seed=0), 24)
    )
    first = observed["results"][observed["accepted"][0]]["result"]
    identical = (
        first["magnetization"] == float(local.magnetization)
        and first["energy"] == float(local.energy)
    )

    rows = []
    for tenant in sorted(observed["counts"]):
        row = observed["counts"][tenant]
        quota = limiter.quota_for(tenant)
        rows.append(
            [
                tenant,
                row["submitted"],
                row["accepted"],
                row["throttled"],
                f"{quota.rate:g}/s burst {quota.burst:g}",
            ]
        )

    router_stats = observed["statsz"]["router"]
    cache = router_stats["cache"]
    artifacts = {
        "run_report": telemetry.build_report(
            kind="serve",
            run={
                "n_shards": n_shards,
                "jobs_accepted": len(observed["accepted"]),
                "bit_identical": identical,
            },
        ).to_json_dict()
    }
    if record_trace:
        artifacts["trace"] = chrome_trace(app)
    return ExperimentResult(
        name="Serving smoke",
        description=(
            f"{sum(r['submitted'] for r in observed['counts'].values())} "
            f"HTTP submissions from 3 tenants across {n_shards} scheduler "
            "shard(s), with per-tenant token-bucket quotas"
        ),
        headers=["tenant", "submitted", "202 accepted", "429 shed", "quota"],
        rows=rows,
        notes=(
            f"Affinity routing: {router_stats['routed_affine']} affine / "
            f"{router_stats['routed_spilled']} spilled; cache "
            f"{cache['hits']} hit(s) / {cache['misses']} miss(es) "
            f"(hit rate {cache['hit_rate']:.2f}).  Shed requests carried "
            f"Retry-After: {observed['retry_after']} s.  Stream returned "
            f"{len(observed['frames'])} frame(s).  Wire results "
            f"{'are' if identical else 'ARE NOT'} bit-identical to the "
            "in-process client.  Use --telemetry-out / --trace-out to "
            "archive the JSON artifacts."
        ),
        artifacts=artifacts,
    )
