"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(...) -> ExperimentResult`` and embeds the
paper's reference values so the output is a side-by-side model-vs-paper
comparison.  The ``ising-tpu`` CLI (see :mod:`repro.harness.runner`)
regenerates any of them, and its ``--telemetry-out`` / ``--trace-out``
flags archive machine-readable run artifacts (see
:mod:`repro.telemetry` and ``docs/observability.md``); the ``smoke``
experiment (:mod:`repro.harness.smoke`) is the fully-instrumented
distributed run that exercises the whole observability path.
"""

from .perf import BLOCK, StepModel, model_pod_step, model_single_core_step
from .report import ExperimentResult, ascii_plot, format_table
from .runner import EXPERIMENTS, run_experiment

__all__ = [
    "BLOCK",
    "StepModel",
    "model_pod_step",
    "model_single_core_step",
    "ExperimentResult",
    "ascii_plot",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
]
