"""Figure 4: magnetization and Binder cumulant vs T/Tc, float32 vs bfloat16.

This is the paper's correctness experiment, and the one part of the
harness that runs *real* MCMC rather than the cost model: independent
chains at a grid of temperatures for several lattice sizes, in both
numeric formats.  The reproduced claims are

* m(T) shows spontaneous magnetization below Tc vanishing above it;
* the U4(T) curves of different sizes cross at Tc (dashed line);
* bfloat16 curves match float32 within Monte-Carlo error.

Lattice sizes and chain lengths are parameters: the defaults finish in
minutes on a host, while the paper's 10^6-sample chains are a matter of
patience, not code.
"""

from __future__ import annotations

import numpy as np

from ..backend.numpy_backend import NumpyBackend
from ..core.simulation import ChainResult, run_temperature_scan
from ..observables.onsager import T_CRITICAL, spontaneous_magnetization
from .report import ExperimentResult, ascii_plot

__all__ = ["DEFAULT_T_OVER_TC", "run", "binder_crossing_temperature"]

DEFAULT_T_OVER_TC = (0.5, 0.7, 0.85, 0.95, 1.0, 1.05, 1.15, 1.3, 1.5)


def binder_crossing_temperature(
    t_values: np.ndarray, u4_small: np.ndarray, u4_large: np.ndarray
) -> float:
    """Temperature where two sizes' U4 curves cross (linear interpolation).

    Below Tc the larger lattice has the larger U4; above Tc the smaller
    one does, so the difference changes sign at the crossing.
    """
    diff = np.asarray(u4_large, dtype=np.float64) - np.asarray(u4_small, dtype=np.float64)
    sign_change = np.nonzero(np.diff(np.sign(diff)) != 0)[0]
    if sign_change.size == 0:
        raise ValueError("U4 curves do not cross on the given temperature grid")
    i = int(sign_change[0])
    t0, t1 = t_values[i], t_values[i + 1]
    d0, d1 = diff[i], diff[i + 1]
    return float(t0 + (t1 - t0) * d0 / (d0 - d1))


def run(
    sizes: tuple[int, ...] = (16, 32, 64),
    t_over_tc: tuple[float, ...] = DEFAULT_T_OVER_TC,
    n_samples: int = 1500,
    burn_in: int = 500,
    seed: int = 0,
    dtypes: tuple[str, ...] = ("float32", "bfloat16"),
    updater: str = "compact",
    field: float = 0.0,
    name: str = "Figure 4",
) -> ExperimentResult:
    """Run the temperature scans and render the m / U4 curves.

    Each (size, dtype) scan executes all temperature points as one
    batched :class:`~repro.core.ensemble.EnsembleSimulation`, so the
    whole grid advances in vectorised sweeps while staying bit-identical
    to the historical one-chain-per-temperature loop.  ``field`` applies
    an external magnetic field h to every chain (0 is the paper's
    setting).
    """
    temperatures = np.array(t_over_tc, dtype=np.float64) * T_CRITICAL
    scans: dict[tuple[int, str], list[ChainResult]] = {}
    for size in sizes:
        for dtype in dtypes:
            scans[(size, dtype)] = run_temperature_scan(
                size,
                temperatures,
                n_samples=n_samples,
                burn_in=burn_in,
                updater=updater,
                backend=NumpyBackend(dtype),
                seed=seed,
                field=field,
            )

    rows = []
    for (size, dtype), results in sorted(scans.items()):
        for frac, res in zip(t_over_tc, results):
            exact_m = float(spontaneous_magnetization(res.temperature))
            rows.append(
                [
                    size,
                    dtype,
                    round(frac, 3),
                    round(res.abs_m, 4),
                    round(res.abs_m_err, 4),
                    round(exact_m, 4),
                    round(res.u4, 4),
                    round(res.u4_err, 4),
                ]
            )

    ref_dtype = dtypes[0]
    u4_series = {
        f"n={size}": (
            list(t_over_tc),
            [r.u4 for r in scans[(size, ref_dtype)]],
        )
        for size in sizes
    }
    m_series = {
        f"n={size}": (
            list(t_over_tc),
            [r.abs_m for r in scans[(size, ref_dtype)]],
        )
        for size in sizes
    }
    m_series["exact (inf)"] = (
        list(t_over_tc),
        [float(spontaneous_magnetization(f * T_CRITICAL)) for f in t_over_tc],
    )
    plots = [
        ascii_plot(
            u4_series,
            title=f"{name}: Binder cumulant U4 vs T/Tc ({ref_dtype}; curves cross at Tc)",
            xlabel="T/Tc",
            ylabel="U4",
        ),
        ascii_plot(
            m_series,
            title=f"{name}: |m| vs T/Tc ({ref_dtype})",
            xlabel="T/Tc",
            ylabel="<|m|>",
        ),
    ]

    notes_parts = []
    if len(sizes) >= 2:
        small, large = sizes[0], sizes[-1]
        try:
            crossing = binder_crossing_temperature(
                temperatures,
                np.array([r.u4 for r in scans[(small, ref_dtype)]]),
                np.array([r.u4 for r in scans[(large, ref_dtype)]]),
            )
            notes_parts.append(
                f"U4 crossing of n={small} and n={large}: T = {crossing:.4f} "
                f"(exact Tc = {T_CRITICAL:.4f}, off by "
                f"{100 * abs(crossing - T_CRITICAL) / T_CRITICAL:.2f}%)."
            )
        except ValueError:
            notes_parts.append("U4 curves did not cross on this grid.")
    if len(dtypes) >= 2:
        pulls = []
        deltas = []
        for size in sizes:
            for a, b in zip(scans[(size, dtypes[0])], scans[(size, dtypes[1])]):
                deltas.append(abs(a.u4 - b.u4))
                sigma = float(np.hypot(a.u4_err, b.u4_err))
                pulls.append(deltas[-1] / sigma if sigma > 0 else 0.0)
        notes_parts.append(
            f"max |U4({dtypes[0]}) - U4({dtypes[1]})| = {max(deltas):.4f}, "
            f"median pull (delta / combined MC error) = "
            f"{float(np.median(pulls)):.2f} — the two precisions agree "
            "within Monte-Carlo error, as the paper claims."
        )
    return ExperimentResult(
        name=name,
        description=f"m(T) and U4(T), updater={updater}, {n_samples} samples/point",
        headers=["size", "dtype", "T/Tc", "<|m|>", "err", "m_inf (exact)", "U4", "err"],
        rows=rows,
        plots=plots,
        notes="\n".join(notes_parts),
    )
