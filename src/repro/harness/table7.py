"""Table 7 / Figure 9 (appendix): strong scaling of a fixed lattice.

The (128 x 1792)^2 lattice is spread over 8 to 2048 cores using the conv
implementation; scaling stays near-linear until >1000 cores, where the
(latency-dominated) communication overhead becomes a visible fraction of
the shrinking per-core step.
"""

from __future__ import annotations

from .perf import model_pod_step
from .report import ExperimentResult

__all__ = ["PAPER_ROWS", "GLOBAL_SHAPE", "run"]

#: Fixed whole-lattice size (128 x 1792)^2.
GLOBAL_SHAPE = (1792 * 128, 1792 * 128)

#: (core topology, per-core multiplier shape, paper step ms, paper flips/ns).
PAPER_ROWS = (
    ((2, 4), (896, 448), 330.14, 159.37),
    ((4, 4), (448, 448), 162.55, 323.67),
    ((4, 8), (448, 224), 81.81, 643.12),
    ((8, 8), (224, 224), 41.33, 1272.94),
    ((8, 16), (224, 112), 21.68, 2427.26),
    ((16, 16), (112, 112), 11.08, 4749.35),
    ((16, 32), (112, 56), 6.13, 8585.73),
    ((32, 32), (56, 56), 3.84, 13704.96),
    ((32, 64), (56, 28), 2.86, 18396.28),
)


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Regenerate Table 7 strong-scaling rows (+ ideal-scaling column)."""
    rows = []
    base_cores = PAPER_ROWS[0][0][0] * PAPER_ROWS[0][0][1]
    base_model = model_pod_step(
        (PAPER_ROWS[0][1][0] * 128, PAPER_ROWS[0][1][1] * 128),
        base_cores,
        updater="conv",
        dtype=dtype,
    )
    for topology, mult, paper_ms, paper_flips in PAPER_ROWS:
        n_cores = topology[0] * topology[1]
        per_core = (mult[0] * 128, mult[1] * 128)
        model = model_pod_step(per_core, n_cores, updater="conv", dtype=dtype)
        ideal_ms = base_model.step_time * 1e3 * base_cores / n_cores
        rows.append(
            [
                f"[{topology[0]},{topology[1]}]",
                n_cores,
                f"[{mult[0]},{mult[1]}]x128",
                round(model.step_time * 1e3, 3),
                paper_ms,
                round(ideal_ms, 3),
                round(model.flips_per_ns, 1),
                paper_flips,
            ]
        )
    return ExperimentResult(
        name="Table 7",
        description="strong scaling of the (128x1792)^2 lattice (conv impl)",
        headers=[
            "topology",
            "cores",
            "per-core",
            "step ms (model)",
            "step ms (paper)",
            "ideal ms",
            "flips/ns (model)",
            "flips/ns (paper)",
        ],
        rows=rows,
        notes=(
            "Near-linear until ~1000 cores; beyond that the per-core compute "
            "shrinks into the communication latency floor and the measured "
            "step departs from the ideal curve (Fig. 9)."
        ),
    )
