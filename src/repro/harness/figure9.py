"""Figure 9 (appendix): strong-scaling curve vs ideal linear scaling.

The Table 7 throughputs plotted against the ideal line anchored at the
8-core configuration: near-ideal up to a few hundred cores, with the
visible departure beyond ~1000 cores as communication stops amortising.
"""

from __future__ import annotations

from .perf import model_pod_step
from .report import ExperimentResult, ascii_plot
from .table7 import PAPER_ROWS

__all__ = ["run"]


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Render the strong-scaling speedup curve."""
    cores_list, model_thr, paper_thr = [], [], []
    for topology, mult, _paper_ms, paper_flips in PAPER_ROWS:
        n_cores = topology[0] * topology[1]
        per_core = (mult[0] * 128, mult[1] * 128)
        model = model_pod_step(per_core, n_cores, updater="conv", dtype=dtype)
        cores_list.append(float(n_cores))
        model_thr.append(model.flips_per_ns)
        paper_thr.append(paper_flips)

    ideal = [model_thr[0] * c / cores_list[0] for c in cores_list]
    rows = [
        [int(c), round(m, 1), round(p, 1), round(i, 1), round(100 * m / i, 1)]
        for c, m, p, i in zip(cores_list, model_thr, paper_thr, ideal)
    ]
    plot = ascii_plot(
        {
            "model": (cores_list, model_thr),
            "paper": (cores_list, paper_thr),
            "ideal": (cores_list, ideal),
        },
        logx=True,
        logy=True,
        title="Figure 9: strong scaling vs ideal (log-log)",
        xlabel="cores",
        ylabel="flips/ns",
    )
    return ExperimentResult(
        name="Figure 9",
        description="strong-scaling throughput vs the ideal linear curve",
        headers=["cores", "flips/ns (model)", "flips/ns (paper)", "ideal", "efficiency %"],
        rows=rows,
        plots=[plot],
        notes="Efficiency decays once per-core compute shrinks toward the "
        "communication latency floor (>1000 cores).",
    )
