"""Command-line entry point: regenerate any table or figure of the paper.

Installed as ``ising-tpu``::

    ising-tpu list                 # show available experiments
    ising-tpu table2               # regenerate one experiment
    ising-tpu figure4 --quick      # cheaper settings for the MCMC figures
    ising-tpu all                  # everything (quick mode for the figures)

Telemetry flags archive machine-readable artifacts next to the printed
tables (see ``docs/observability.md`` for the schemas)::

    ising-tpu smoke --telemetry-out run.json --trace-out trace.json
    ising-tpu figure4 --quick --telemetry-out figure4_run.json

``--telemetry-out`` writes a versioned RunReport JSON; ``--trace-out``
writes a Chrome trace-event file (load it at https://ui.perfetto.dev or
``chrome://tracing``) and is supported by experiments that execute on
simulated devices (currently ``smoke``, ``sched`` and ``serve``).

``--fault-plan PATH`` loads a JSON-serialized
:class:`~repro.mesh.faults.FaultPlan` (``FaultPlan.to_json_dict``
format) and runs fault-accepting experiments (currently ``smoke``)
under injected mesh faults — see ``docs/fault_tolerance.md``::

    ising-tpu smoke --fault-plan plan.json --telemetry-out run.json
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys

from ..mesh.faults import FaultPlan
from ..telemetry.report import RunTelemetry
from ..version import __version__
from . import figure4, figure7, figure8, figure9, sched_demo, serve, smoke
from . import table1, table2, table3, table4, table5, table6, table7

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

_QUICK_MCMC = dict(sizes=(8, 16), n_samples=300, burn_in=150)

EXPERIMENTS = {
    "table1": (table1.run, "single-core throughput vs lattice size"),
    "table2": (table2.run, "weak scaling (compact implementation)"),
    "table3": (table3.run, "per-category time breakdown"),
    "table4": (table4.run, "step vs collective_permute time grid"),
    "table5": (table5.run, "roofline placement"),
    "table6": (table6.run, "weak scaling (conv implementation)"),
    "table7": (table7.run, "strong scaling (conv implementation)"),
    "figure4": (figure4.run, "m(T) and U4(T), float32 vs bfloat16 [runs MCMC]"),
    "figure7": (figure7.run, "conv-implementation correctness [runs MCMC]"),
    "figure8": (figure8.run, "throughput vs problem size, all platforms"),
    "figure9": (figure9.run, "strong scaling vs ideal"),
    "smoke": (smoke.run, "instrumented distributed run + telemetry artifacts [runs MCMC]"),
    "sched": (sched_demo.run, "mixed-priority job mix through the repro.sched service"),
    "serve": (serve.run, "multi-tenant HTTP workload through the repro.serve front door"),
}

_MCMC_EXPERIMENTS = {"figure4", "figure7"}


def run_experiment(
    name: str,
    quick: bool = False,
    telemetry: RunTelemetry | None = None,
    record_trace: bool = False,
    fault_plan: FaultPlan | None = None,
):
    """Run one experiment by name and return its ExperimentResult.

    ``telemetry`` / ``record_trace`` / ``fault_plan`` are forwarded to
    experiments whose ``run`` signature accepts them (currently the
    telemetry smoke); a fault plan aimed at an experiment that cannot
    take one is an error rather than a silent no-op.
    """
    try:
        fn, _ = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    kwargs: dict = {}
    if quick and name in _MCMC_EXPERIMENTS:
        kwargs.update(_QUICK_MCMC)
    params = inspect.signature(fn).parameters
    if telemetry is not None and "telemetry" in params:
        kwargs["telemetry"] = telemetry
    if record_trace and "record_trace" in params:
        kwargs["record_trace"] = True
    if fault_plan is not None:
        if "fault_plan" not in params:
            raise ValueError(
                f"experiment {name!r} does not accept a fault plan "
                "(fault injection currently applies to 'smoke')"
            )
        kwargs["fault_plan"] = fault_plan
    return fn(**kwargs)


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ising-tpu",
        description="Regenerate the tables and figures of 'High Performance "
        "Monte Carlo Simulation of Ising Model on TPU Clusters' (SC19) on "
        "the simulated TPU substrate.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the repro package version and exit",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller lattices / shorter chains for the MCMC figures",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write the run's telemetry RunReport JSON to PATH",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Chrome trace (chrome://tracing / Perfetto) to PATH",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PATH",
        help="run under the JSON-serialized FaultPlan at PATH "
        "(fault-accepting experiments only; see docs/fault_tolerance.md)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0

    wants_artifacts = bool(args.telemetry_out or args.trace_out)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if wants_artifacts and len(names) != 1:
        print(
            "--telemetry-out/--trace-out require a single experiment, not 'all'",
            file=sys.stderr,
        )
        return 2

    fault_plan = None
    if args.fault_plan:
        if len(names) != 1:
            print(
                "--fault-plan requires a single experiment, not 'all'",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.fault_plan, encoding="utf-8") as fh:
                fault_plan = FaultPlan.from_json_dict(json.load(fh))
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load fault plan {args.fault_plan!r}: {exc}", file=sys.stderr)
            return 2

    for name in names:
        telemetry = RunTelemetry() if wants_artifacts else None
        try:
            from time import perf_counter

            start = perf_counter()
            result = run_experiment(
                name,
                quick=args.quick or args.experiment == "all",
                telemetry=telemetry,
                record_trace=bool(args.trace_out),
                fault_plan=fault_plan,
            )
            harness_wall = perf_counter() - start
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(result.render())
        print()

        if args.telemetry_out:
            report = result.artifacts.get("run_report")
            if report is None:
                # Experiments without their own instrumented run still
                # archive a harness-level report (wall time + metrics).
                telemetry.registry.gauge("harness_wall_seconds").set(harness_wall)
                report = telemetry.build_report(
                    kind="harness", run={"experiment": name, "quick": args.quick}
                ).to_json_dict()
            _write_json(args.telemetry_out, report)
            print(f"telemetry report written to {args.telemetry_out}")
        if args.trace_out:
            trace = result.artifacts.get("trace")
            if trace is None:
                print(
                    f"experiment {name!r} produced no trace "
                    "(only instrumented runs like 'smoke' record one)",
                    file=sys.stderr,
                )
                return 2
            _write_json(args.trace_out, trace)
            print(f"chrome trace written to {args.trace_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
