"""Command-line entry point: regenerate any table or figure of the paper.

Installed as ``ising-tpu``::

    ising-tpu list                 # show available experiments
    ising-tpu table2               # regenerate one experiment
    ising-tpu figure4 --quick      # cheaper settings for the MCMC figures
    ising-tpu all                  # everything (quick mode for the figures)
"""

from __future__ import annotations

import argparse
import sys

from . import figure4, figure7, figure8, figure9
from . import table1, table2, table3, table4, table5, table6, table7

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

_QUICK_MCMC = dict(sizes=(8, 16), n_samples=300, burn_in=150)

EXPERIMENTS = {
    "table1": (table1.run, "single-core throughput vs lattice size"),
    "table2": (table2.run, "weak scaling (compact implementation)"),
    "table3": (table3.run, "per-category time breakdown"),
    "table4": (table4.run, "step vs collective_permute time grid"),
    "table5": (table5.run, "roofline placement"),
    "table6": (table6.run, "weak scaling (conv implementation)"),
    "table7": (table7.run, "strong scaling (conv implementation)"),
    "figure4": (figure4.run, "m(T) and U4(T), float32 vs bfloat16 [runs MCMC]"),
    "figure7": (figure7.run, "conv-implementation correctness [runs MCMC]"),
    "figure8": (figure8.run, "throughput vs problem size, all platforms"),
    "figure9": (figure9.run, "strong scaling vs ideal"),
}

_MCMC_EXPERIMENTS = {"figure4", "figure7"}


def run_experiment(name: str, quick: bool = False):
    """Run one experiment by name and return its ExperimentResult."""
    try:
        fn, _ = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    if quick and name in _MCMC_EXPERIMENTS:
        return fn(**_QUICK_MCMC)
    return fn()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ising-tpu",
        description="Regenerate the tables and figures of 'High Performance "
        "Monte Carlo Simulation of Ising Model on TPU Clusters' (SC19) on "
        "the simulated TPU substrate.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller lattices / shorter chains for the MCMC figures",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        try:
            result = run_experiment(name, quick=args.quick or args.experiment == "all")
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
