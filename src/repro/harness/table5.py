"""Table 5: roofline placement of the compact sweep.

The paper measures ~76.5% of the (memory-bound) roofline optimum and
~9.3% of hardware peak at every scale.  We compute the same two numbers
from the modeled op stream: achieved program FLOPS over the compute step
time, against the roofline at the stream's arithmetic intensity and
against the 52.5 TFLOPS core peak.
"""

from __future__ import annotations

from ..tpu.cost_model import TPU_V3
from .perf import model_pod_step
from .report import ExperimentResult
from .table2 import PER_CORE_SHAPE

__all__ = ["PAPER_ROWS", "run"]

#: (chip grid n, paper % of roofline, paper % of HW peak).
PAPER_ROWS = (
    (1, 76.68, 9.31),
    (2, 76.65, 9.30),
    (4, 76.51, 9.28),
    (8, 76.52, 9.27),
    (16, 76.43, 9.26),
)


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Regenerate Table 5 roofline rows."""
    rows = []
    for n, paper_roofline, paper_peak in PAPER_ROWS:
        n_cores = n * n * 2
        model = model_pod_step(PER_CORE_SHAPE, n_cores, dtype=dtype)
        achieved = model.achieved_flops_rate
        intensity = model.arithmetic_intensity
        frac_roofline = TPU_V3.roofline_fraction(achieved, intensity)
        frac_peak = TPU_V3.peak_fraction(achieved)
        rows.append(
            [
                f"{n}x{n}x2",
                round(achieved / 1e12, 2),
                round(intensity, 2),
                round(100 * frac_roofline, 2),
                paper_roofline,
                round(100 * frac_peak, 2),
                paper_peak,
            ]
        )
    memory_bound = intensity * TPU_V3.hbm.bandwidth < TPU_V3.mxu.peak_flops
    return ExperimentResult(
        name="Table 5",
        description="achieved FLOPS vs roofline and hardware peak",
        headers=[
            "cores",
            "TFLOPS (model)",
            "flops/byte",
            "% roofline (model)",
            "% roofline (paper)",
            "% peak (model)",
            "% peak (paper)",
        ],
        rows=rows,
        notes=(
            f"Operating point is {'memory' if memory_bound else 'compute'}-bound, "
            "as in the paper.  Absolute percentages depend on how bytes are "
            "counted (our op-level accounting vs the TPU profiler's HBM "
            "counters); the scale-independence and the memory-bound placement "
            "are the reproduced claims."
        ),
    )
