"""Table 1: single-core throughput and energy vs lattice size.

The paper measures flips/ns and estimates nJ/flip for square lattices
from (20 x 128)^2 to (640 x 128)^2 on one TPU v3 core, against the
published GPU/FPGA baselines and their own V100 implementation.  We
regenerate the TPU rows from the calibrated cost model and print the
baseline rows from :mod:`repro.baselines.published`.
"""

from __future__ import annotations

from ..baselines.published import (
    FPGA_ORTEGA_2016,
    PREIS_2009_GPU,
    TESLA_V100_THIS_PAPER,
)
from .perf import model_single_core_step
from .report import ExperimentResult

__all__ = ["PAPER_ROWS", "run"]

#: (multiplier k for side k*128, paper flips/ns, paper nJ/flip).
PAPER_ROWS = (
    (20, 8.1920, 12.2070),
    (40, 9.3623, 10.6811),
    (80, 12.3362, 8.1062),
    (160, 12.8266, 7.7963),
    (320, 12.9056, 7.7486),
    (640, 12.8783, 7.7650),
)


def run(dtype: str = "bfloat16") -> ExperimentResult:
    """Regenerate Table 1 (modeled TPU rows + published baselines)."""
    rows = []
    for k, paper_flips, paper_energy in PAPER_ROWS:
        model = model_single_core_step((k * 128, k * 128), dtype=dtype)
        rows.append(
            [
                f"({k}x128)^2",
                round(model.flips_per_ns, 4),
                round(paper_flips, 4),
                round(model.energy_nj_per_flip, 4),
                round(paper_energy, 4),
            ]
        )
    for bench in (PREIS_2009_GPU, TESLA_V100_THIS_PAPER, FPGA_ORTEGA_2016):
        rows.append(
            [
                bench.system,
                "-",
                round(bench.flips_per_ns, 4),
                "-",
                round(bench.energy_nj_per_flip, 4)
                if bench.energy_nj_per_flip is not None
                else "-",
            ]
        )
    return ExperimentResult(
        name="Table 1",
        description=f"single-core throughput vs lattice size ({dtype})",
        headers=["lattice", "flips/ns (model)", "flips/ns (paper)", "nJ/flip (model)", "nJ/flip (paper)"],
        rows=rows,
        notes=(
            "Model calibrated at the Table 2 superdense anchor; the paper's "
            "own Table 1 asymptote (12.88) sits ~11% above its Table 2 "
            "per-core rate (11.43), which the single-anchor model cannot "
            "reproduce simultaneously — the ramp *shape* (throughput rising "
            "with lattice size, saturating above (80x128)^2) is preserved."
        ),
    )
