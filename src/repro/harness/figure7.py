"""Figure 7 (appendix): correctness of the conv-based implementation.

Same machinery as Figure 4, run with the conv updater — the appendix
verifies the further-optimized algorithm "continues to produce the
correct results", and since our conv path is bit-identical to the matmul
path per step (a property the unit tests enforce), the physics agreement
here is a full-chain confirmation.
"""

from __future__ import annotations

from .figure4 import DEFAULT_T_OVER_TC, run as _run_figure4
from .report import ExperimentResult

__all__ = ["run"]


def run(
    sizes: tuple[int, ...] = (16, 32, 64),
    t_over_tc: tuple[float, ...] = DEFAULT_T_OVER_TC,
    n_samples: int = 1500,
    burn_in: int = 500,
    seed: int = 0,
    dtypes: tuple[str, ...] = ("float32", "bfloat16"),
) -> ExperimentResult:
    """Run the Figure 4 scan with the conv updater."""
    return _run_figure4(
        sizes=sizes,
        t_over_tc=t_over_tc,
        n_samples=n_samples,
        burn_in=burn_in,
        seed=seed,
        dtypes=dtypes,
        updater="conv",
        name="Figure 7",
    )
