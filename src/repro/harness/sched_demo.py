"""Scheduler smoke: a mixed-priority job mix through the simulation service.

Where the other experiments drive one simulation, this one exercises
:mod:`repro.sched` end to end: a deterministic mix of tenants, shapes,
dtypes, priorities and duplicate submissions flows through one
:class:`~repro.sched.scheduler.Scheduler`, demonstrating coalesced
batching, content-addressed cache servings, and a priority preemption —
then reports how every job was served.

Run it through the CLI to archive the artifacts::

    ising-tpu sched --telemetry-out sched_run.json --trace-out sched_trace.json

The telemetry report is a ``kind="sched"`` RunReport (queue depth, batch
occupancy, cache hit rate, preemption counters); the trace renders
per-device op tracks plus a "scheduler batches" track.
"""

from __future__ import annotations

from ..sched.scheduler import Scheduler
from ..telemetry.report import RunTelemetry
from ..telemetry.trace import chrome_trace
from .report import ExperimentResult

__all__ = ["run"]


def _workload(scheduler: Scheduler) -> list:
    """Submit the deterministic demo mix; returns jobs in submit order.

    Eight coalescable low-priority jobs (one hot compat key), four more
    on a second key (so every device is busy), two exact duplicates
    (cache / in-flight dedup), and — once both batches are running — two
    high-priority jobs of a third key, which must preempt.
    """
    from ..api import SimulationConfig

    jobs = []
    for i in range(8):
        config = SimulationConfig(
            shape=16, temperature=1.8 + 0.1 * i, seed=i, backend="tpu"
        )
        jobs.append(
            scheduler.submit(config, 24, priority=0, tenant="scan")
        )
    for i in range(4):
        config = SimulationConfig(
            shape=16, temperature=2.0 + 0.1 * i, seed=20 + i,
            updater="checkerboard", backend="tpu",
        )
        jobs.append(
            scheduler.submit(config, 24, priority=0, tenant="scan")
        )
    # Exact duplicates of the first submission: in-flight dedup now,
    # cache hit on any later resubmission.
    duplicate = SimulationConfig(shape=16, temperature=1.8, seed=0, backend="tpu")
    for _ in range(2):
        jobs.append(scheduler.submit(duplicate, 24, priority=0, tenant="repeat"))
    for _ in range(2):
        scheduler.step()
    for i in range(2):
        config = SimulationConfig(
            shape=32, temperature=2.1, updater="conv", seed=40 + i,
            dtype="bfloat16", backend="tpu",
        )
        jobs.append(
            scheduler.submit(config, 12, priority=5, tenant="urgent")
        )
    scheduler.drain()
    return jobs


def run(
    n_devices: int = 2,
    max_batch: int = 8,
    quantum: int = 4,
    telemetry: RunTelemetry | None = None,
    record_trace: bool = False,
) -> ExperimentResult:
    """Run the scheduler smoke and return its result.

    Always instrumented (a recorder is created when none is passed); the
    ``kind="sched"`` run report — and with ``record_trace`` the Chrome
    trace — land in ``result.artifacts``.
    """
    if telemetry is None:
        telemetry = RunTelemetry()
    scheduler = Scheduler(
        n_devices=n_devices,
        max_batch=max_batch,
        quantum=quantum,
        telemetry=telemetry,
        record_trace=record_trace,
    )
    jobs = _workload(scheduler)
    stats = scheduler.stats()

    rows = []
    for job in jobs:
        config = job.spec.config
        rows.append(
            [
                job.id,
                job.spec.tenant,
                job.spec.priority,
                f"{config.updater}/{config.dtype}",
                f"{config.shape}^2" if isinstance(config.shape, int) else str(config.shape),
                job.spec.sweeps,
                job.state,
                "cache" if job.from_cache else "computed",
                job.preemptions,
            ]
        )
    artifacts = {"run_report": scheduler.report().to_json_dict()}
    if record_trace:
        artifacts["trace"] = chrome_trace(scheduler)
    cache = stats["cache"]
    return ExperimentResult(
        name="Scheduler smoke",
        description=(
            f"{stats['jobs']['submitted']} mixed-priority jobs through a "
            f"{n_devices}-device scheduler (max_batch={max_batch}, "
            f"quantum={quantum})"
        ),
        headers=[
            "job",
            "tenant",
            "prio",
            "updater/dtype",
            "shape",
            "sweeps",
            "state",
            "served",
            "preempts",
        ],
        rows=rows,
        notes=(
            f"Batches started {stats['batches']['started']} "
            f"(max occupancy {stats['batches']['max_occupancy']} chains); "
            f"cache {cache['hits']} hit(s) / {cache['misses']} miss(es); "
            f"{stats['preemptions']} preemption(s); modeled makespan "
            f"{stats['pool']['makespan_seconds'] * 1e3:.2f} ms across "
            f"{stats['pool']['n_devices']} device(s).  Every job's "
            "observables are bit-identical to a solo repro.simulate() run "
            "of its config.  Use --telemetry-out / --trace-out to archive "
            "the JSON artifacts."
        ),
        artifacts=artifacts,
    )
