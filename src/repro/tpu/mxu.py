"""Model of the TPU v3 matrix unit (MXU).

Each TensorCore has two 128x128 systolic MXUs that perform a 128x128
multiply-accumulate per cycle: inputs are rounded to bfloat16 and products
accumulate in float32.  The checkerboard kernels ``K`` / ``K_hat`` are
sparse diagonal bands, so the *useful* fraction of each dense 128x128
pass is small — which is why the paper's achieved program FLOPS sits at
~9% of hardware peak and why the authors suggest smaller kernels as
future work.  The model therefore separates:

* ``peak_flops`` — the dense hardware peak (Table 5's "% of HW peak"
  denominator);
* ``effective_flops`` — the achieved rate for the band-matmul op mix,
  calibrated against the paper's anchor step time;
* a batch-utilization ramp — small grids cannot keep the systolic
  pipelines full, reproducing Table 1's throughput ramp with lattice
  size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MXUModel"]


@dataclass(frozen=True)
class MXUModel:
    """Timing model for matmul/conv work on one TensorCore.

    Parameters
    ----------
    peak_flops:
        Dense bf16 hardware peak of the core (both MXUs), flops/s.
    effective_flops:
        Achieved rate for the paper's band-kernel batched matmuls at
        large batch, flops/s.
    conv_effective_flops:
        Achieved rate for the appendix conv formulation, flops/s.  The
        fused 2-tap convs charge only the 4 useful flops per output
        element (vs the 256 mostly-wasted flops of a dense 128-wide band
        matmul), so despite the much lower per-charged-flop rate the conv
        variant's MXU time per site is ~3.3x lower — which is what turns
        Table 2's 575 ms anchor step into Table 6's ~332 ms.
    batch_half_utilization:
        Batch size (number of 128x128 blocks in the batched matmul) at
        which the pipeline reaches half of its asymptotic utilization.
    """

    peak_flops: float = 52.5e12
    effective_flops: float = 9.83e12
    conv_effective_flops: float = 5.09e11
    batch_half_utilization: float = 16.0

    def utilization(self, batch: float) -> float:
        """Pipeline utilization ramp in (0, 1] as a function of batch size."""
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return batch / (batch + self.batch_half_utilization)

    def matmul_time(self, flops: float, batch: float = 1e9) -> float:
        """Seconds to execute a batched band-kernel matmul of given flops."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        return flops / (self.effective_flops * self.utilization(batch))

    def conv_time(self, flops: float) -> float:
        """Seconds to execute convolution work of given (im2col) flops."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        return flops / self.conv_effective_flops
