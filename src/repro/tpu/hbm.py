"""Model of a TensorCore's high-bandwidth memory (HBM).

Covers the three HBM properties the paper leans on:

* **capacity** — 16 GiB per core bounds the largest lattice; bfloat16
  halves the footprint, which is one of the paper's two arguments for
  low precision (they reach (656 x 128)^2 at 96% utilization);
* **tiling** — arrays are tiled (8, 128): the minor dimension pads to a
  multiple of 128 and the second-minor to a multiple of 8, so
  badly-shaped tensors waste memory and bandwidth (the paper's
  performance guide discussion);
* **bandwidth** — the roofline's memory roof.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HBMModel", "tiled_shape", "tensor_bytes"]

_LANE = 128
_SUBLANE = 8


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def tiled_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    """The physical (padded) shape under TPU (8, 128) tiling.

    The last dimension pads to a multiple of 128, the second-to-last to a
    multiple of 8; leading dimensions are unaffected.  Scalars and rank-1
    tensors are padded as a single row.
    """
    if len(shape) == 0:
        return (_SUBLANE, _LANE)
    if len(shape) == 1:
        return (_SUBLANE, _round_up(max(shape[0], 1), _LANE))
    padded = list(shape)
    padded[-1] = _round_up(max(padded[-1], 1), _LANE)
    padded[-2] = _round_up(max(padded[-2], 1), _SUBLANE)
    return tuple(padded)


def tensor_bytes(shape: tuple[int, ...], itemsize: int) -> int:
    """Physical HBM bytes of a tensor, including tiling padding."""
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    return int(np.prod(tiled_shape(shape), dtype=np.int64)) * itemsize


@dataclass
class HBMModel:
    """Capacity and bandwidth of one core's HBM.

    ``temp_fraction`` models XLA's working buffers (uniforms, neighbour
    sums) after buffer reuse, as a fraction of the resident lattice —
    calibrated so the paper's "(656 x 128)^2 consumes 96% of memory"
    anchor holds in bfloat16.
    """

    capacity_bytes: int = 16 * 1024**3
    bandwidth: float = 900e9
    temp_fraction: float = 0.17

    def lattice_footprint(self, n_sites: int, itemsize: int) -> float:
        """Resident bytes for an n_sites lattice plus working buffers."""
        if n_sites <= 0:
            raise ValueError(f"n_sites must be positive, got {n_sites}")
        return n_sites * itemsize * (1.0 + self.temp_fraction)

    def utilization(self, n_sites: int, itemsize: int) -> float:
        """Fraction of HBM used by the simulation state."""
        return self.lattice_footprint(n_sites, itemsize) / self.capacity_bytes

    def fits(self, n_sites: int, itemsize: int) -> bool:
        return self.lattice_footprint(n_sites, itemsize) <= self.capacity_bytes

    def max_square_lattice_side(self, itemsize: int, multiple: int = 128) -> int:
        """Largest side (a multiple of ``multiple``) that fits in HBM."""
        side = int(
            np.sqrt(self.capacity_bytes / (itemsize * (1.0 + self.temp_fraction)))
        )
        return (side // multiple) * multiple
