"""Device topology: chips, boards and pod slices of simulated TensorCores.

Cloud TPU v3 packaging, as described in the paper's Sec. 2: one chip has
two TensorCores; four chips form a board ("TPU unit"); boards connect
into a pod through the 2D toroidal mesh, and experiments run on
rectangular pod *slices*.  The paper labels its multi-core runs
``n x n x 2``: an n x n grid of chips with 2 cores each, which we realise
as an ``n x 2n`` logical core grid (cores are the units that hold
sub-lattices and communicate).
"""

from __future__ import annotations

from .cost_model import TPUCostModel, TPU_V3
from .profiler import Profiler
from .tensorcore import TensorCore

__all__ = ["CORES_PER_CHIP", "CHIPS_PER_BOARD", "PodSlice"]

CORES_PER_CHIP = 2
CHIPS_PER_BOARD = 4


class PodSlice:
    """A rectangular slice of a TPU pod: a 2D grid of TensorCores.

    Parameters
    ----------
    core_grid:
        (rows, cols) of logical cores.  ``PodSlice.from_chip_grid(n, n)``
        builds the paper's ``n x n x 2`` configuration.
    cost_model:
        Shared performance model for every core.
    record_trace:
        Keep per-op trace events in each core's profiler.
    """

    def __init__(
        self,
        core_grid: tuple[int, int],
        cost_model: TPUCostModel = TPU_V3,
        record_trace: bool = False,
    ) -> None:
        rows, cols = core_grid
        if rows <= 0 or cols <= 0:
            raise ValueError(f"core grid must be positive, got {core_grid}")
        self.core_grid = (rows, cols)
        self.cost_model = cost_model
        self.cores = [
            TensorCore(
                core_id=i * cols + j,
                coords=(i, j),
                cost_model=cost_model,
                profiler=Profiler(record_trace=record_trace),
            )
            for i in range(rows)
            for j in range(cols)
        ]

    @classmethod
    def from_chip_grid(
        cls,
        chips_x: int,
        chips_y: int,
        cost_model: TPUCostModel = TPU_V3,
        record_trace: bool = False,
    ) -> "PodSlice":
        """The paper's ``chips_x x chips_y x 2`` slice as a core grid.

        The two cores of each chip are laid out side by side along the
        second axis, giving a ``chips_x x (2 * chips_y)`` core grid.
        """
        return cls(
            (chips_x, CORES_PER_CHIP * chips_y),
            cost_model=cost_model,
            record_trace=record_trace,
        )

    # -- queries ---------------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def num_chips(self) -> int:
        return self.num_cores // CORES_PER_CHIP

    def core_at(self, row: int, col: int) -> TensorCore:
        rows, cols = self.core_grid
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(f"core ({row}, {col}) outside grid {self.core_grid}")
        return self.cores[row * cols + col]

    # -- aggregation ---------------------------------------------------------

    def step_time(self) -> float:
        """Pod step time: the cores run in lockstep, so the slowest wins."""
        return max(core.step_time for core in self.cores)

    def aggregate_profiler(self) -> Profiler:
        """Sum of all per-core profiles (for pod-wide breakdowns)."""
        total = Profiler()
        for core in self.cores:
            total.merge(core.profiler)
        return total

    def mark_step(self) -> float:
        """Close a step on every core; returns the slowest core's step time."""
        return max(core.mark_step().total for core in self.cores)

    def reset(self) -> None:
        for core in self.cores:
            core.reset()
