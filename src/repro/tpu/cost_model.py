"""The calibrated TPU v3 performance model.

This module is the performance substitution documented in DESIGN.md §6:
instead of running on a real TPU, every backend op charges modeled time
into the profiler through this cost model.  The model is *fit at one
anchor point* — the paper's superdense per-core workload ([896 x 128,
448 x 128] compact sweep = ~575 ms split 59.6% MXU / 12% VPU / 28.2%
formatting, Tables 2-3) — and *predicts everywhere else* (other lattice
sizes, packing densities, core counts and the strong-scaling sweep).

Calibration derivation (all per sweep of the anchor, bfloat16):

* quarter-tensor elements E = 448*224*128*128 = 1.6443e9;
* MXU: 8 band matmuls, flops = 8 * 2*E*128 = 3.368e12; target 342.7 ms
  gives ``effective_flops = 9.83e12`` (18.7% of the 52.5 TFLOPS core
  peak — the K kernels are sparse diagonal bands, so most of the dense
  MXU pass is wasted, consistent with the paper's ~9% of HW peak);
* VPU: Philox RNG (20 flops/elem, 4 quarter draws) plus acceptance
  arithmetic = ~2.30e11 flops; target 69 ms gives
  ``effective_flops = 3.34e12``;
* formatting: the recorded op stream's operand/result bytes total
  ~3.45e11 per sweep (bfloat16); charging a ``relayout_fraction`` of them
  at HBM speed reproduces the 162 ms target with fraction 0.42 — i.e.
  roughly two fifths of all tensor traffic takes one extra relayout pass,
  which is what XLA's data formatting does;
* conv: the appendix variant's fused 2-tap convs (4 useful flops/site
  pair) are rated so its [896 x 128, 448 x 128] sweep lands at Table 6's
  ~332 ms given the same VPU and formatting charges;
* the per-op dispatch overhead and the MXU batch-utilization ramp are fit
  against Table 1's throughput-vs-size curve and Table 7's strong-scaling
  saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .hbm import HBMModel
from .mxu import MXUModel
from .vpu import VPUModel

__all__ = ["TPUCostModel", "TPU_V3"]


@dataclass(frozen=True)
class TPUCostModel:
    """Maps (category, flops, bytes, batch) op descriptions to seconds."""

    name: str = "tpu-v3"
    mxu: MXUModel = field(default_factory=MXUModel)
    vpu: VPUModel = field(default_factory=VPUModel)
    hbm: HBMModel = field(default_factory=HBMModel)
    #: Fraction of each op's HBM traffic that takes an extra relayout pass.
    relayout_fraction: float = 0.42
    #: Fixed dispatch cost per op (pipeline bubbles, scalar setup).
    op_overhead: float = 2.0e-6

    def op_times(
        self,
        category: str,
        flops: float,
        bytes_moved: float,
        batch: float | None = None,
    ) -> dict[str, float]:
        """Seconds charged per profiler category for one op.

        Returns a dict because most ops charge their own category *plus*
        a formatting share for the relayout of their operands.
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError(
                f"flops and bytes must be >= 0, got {flops}, {bytes_moved}"
            )
        relayout = self.relayout_fraction * bytes_moved / self.hbm.bandwidth
        if category == "mxu":
            main = self.mxu.matmul_time(flops, batch if batch else 1e9)
        elif category == "conv":
            main = self.mxu.conv_time(flops)
        elif category == "vpu":
            main = self.vpu.elementwise_time(flops)
        elif category == "alu":
            # Integer word ops of the packed (multi-spin) representation.
            # They ride the vector unit's elementwise pipe — one lane-op
            # per 64-spin uint64 word — so callers charge flops *per
            # word*, not per site.  That is the whole packed story in the
            # model: integer-ALU throughput, no matmul parity, and a
            # 64-fold drop in charged work per site versus the float
            # chains.  Booked under the "vpu" profiler lane because the
            # TPU profiler attributes elementwise integer work there.
            return {
                "vpu": self.vpu.elementwise_time(flops) + self.op_overhead,
                **({"formatting": relayout} if relayout > 0.0 else {}),
            }
        elif category == "formatting":
            # Pure data-movement ops pay full HBM traffic, no relayout split.
            return {"formatting": bytes_moved / self.hbm.bandwidth + self.op_overhead}
        else:
            raise ValueError(f"unknown charge category {category!r}")
        times = {category: main + self.op_overhead}
        if relayout > 0.0:
            times["formatting"] = relayout
        return times

    # -- roofline ----------------------------------------------------------

    def roofline_attainable_flops(self, intensity: float) -> float:
        """Attainable flops/s at a given arithmetic intensity (flops/byte)."""
        if intensity <= 0:
            raise ValueError(f"intensity must be positive, got {intensity}")
        return min(self.mxu.peak_flops, intensity * self.hbm.bandwidth)

    def roofline_fraction(self, achieved_flops_rate: float, intensity: float) -> float:
        """Achieved / attainable — the "% of roofline optimal" of Table 5."""
        return achieved_flops_rate / self.roofline_attainable_flops(intensity)

    def peak_fraction(self, achieved_flops_rate: float) -> float:
        """Achieved / hardware peak — the "% of HW peak" of Table 5."""
        return achieved_flops_rate / self.mxu.peak_flops


#: The calibrated production profile used throughout the harness.
TPU_V3 = TPUCostModel(
    name="tpu-v3",
    mxu=MXUModel(
        peak_flops=52.5e12,
        effective_flops=9.83e12,
        conv_effective_flops=5.09e11,
        batch_half_utilization=16.0,
    ),
    vpu=VPUModel(effective_flops=3.34e12),
    hbm=HBMModel(capacity_bytes=16 * 1024**3, bandwidth=900e9, temp_fraction=0.17),
    relayout_fraction=0.42,
    op_overhead=2.0e-6,
)
