"""The simulated TensorCore: cost model + profiler + HBM, per logical core."""

from __future__ import annotations

from dataclasses import dataclass, field

from .cost_model import TPUCostModel, TPU_V3
from .profiler import Profiler

__all__ = ["TensorCore"]


@dataclass
class TensorCore:
    """One logical TPU v3 core of the simulated machine.

    The TPUBackend bound to this core forwards every op's (category,
    flops, bytes, batch) description here; :meth:`charge_op` converts it
    to modeled seconds via the cost model and books them in the
    profiler.  The mesh runtime charges communication time the same way.
    """

    core_id: int
    coords: tuple[int, int] = (0, 0)
    cost_model: TPUCostModel = field(default_factory=lambda: TPU_V3)
    profiler: Profiler = field(default_factory=Profiler)
    #: When set to a list, every op's raw (category, flops, bytes, batch)
    #: descriptor is appended — the performance harness uses this to
    #: scale a proxy-sized op stream up to paper-sized workloads.
    op_log: list | None = None

    def charge_op(
        self,
        category: str,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        batch: float | None = None,
        name: str = "",
    ) -> None:
        """Book one op's modeled time (possibly split across categories)."""
        if self.op_log is not None:
            self.op_log.append((category, flops, bytes_moved, batch))
        for cat, seconds in self.cost_model.op_times(
            category, flops, bytes_moved, batch
        ).items():
            self.profiler.charge(
                cat,
                seconds,
                flops=flops if cat == category else 0.0,
                bytes_moved=bytes_moved if cat == category else 0.0,
                name=name or category,
            )

    def charge_communication(
        self, seconds: float, bytes_moved: float = 0.0, name: str = "collective_permute"
    ) -> None:
        """Book inter-core communication time (called by the mesh runtime)."""
        self.profiler.charge(
            "communication", seconds, bytes_moved=bytes_moved, name=name
        )

    # -- convenience ---------------------------------------------------------

    @property
    def step_time(self) -> float:
        """Total modeled seconds booked so far."""
        return self.profiler.total_seconds

    def mark_step(self):
        return self.profiler.mark_step()

    def reset(self) -> None:
        self.profiler.reset()

    def hbm_utilization(self, n_sites: int, itemsize: int) -> float:
        """Fraction of this core's HBM a lattice of n_sites occupies."""
        return self.cost_model.hbm.utilization(n_sites, itemsize)
