"""The simulated TPU v3 substrate: numerics, device model and profiling."""

from .bfloat16 import (
    BF16_EPS,
    BF16_MAX,
    BF16_SMALLEST_NORMAL,
    from_bits,
    is_representable,
    round_to_bfloat16,
    to_bits,
)
from .cost_model import TPUCostModel, TPU_V3
from .device import CHIPS_PER_BOARD, CORES_PER_CHIP, PodSlice
from .dtypes import BFLOAT16, FLOAT32, PACKED, DType, resolve_dtype
from .hbm import HBMModel, tensor_bytes, tiled_shape
from .mxu import MXUModel
from .power import TESLA_V100_WATTS, TPU_V3_CORE_WATTS, energy_per_flip_nj
from .profiler import CATEGORIES, Profiler, TraceEvent
from .tensorcore import TensorCore
from .vpu import VPUModel

__all__ = [
    "BF16_EPS",
    "BF16_MAX",
    "BF16_SMALLEST_NORMAL",
    "from_bits",
    "is_representable",
    "round_to_bfloat16",
    "to_bits",
    "TPUCostModel",
    "TPU_V3",
    "CHIPS_PER_BOARD",
    "CORES_PER_CHIP",
    "PodSlice",
    "BFLOAT16",
    "FLOAT32",
    "PACKED",
    "DType",
    "resolve_dtype",
    "HBMModel",
    "tensor_bytes",
    "tiled_shape",
    "MXUModel",
    "TESLA_V100_WATTS",
    "TPU_V3_CORE_WATTS",
    "energy_per_flip_nj",
    "CATEGORIES",
    "Profiler",
    "TraceEvent",
    "TensorCore",
    "VPUModel",
]
