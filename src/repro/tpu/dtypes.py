"""Numeric dtype descriptors for the simulated TPU.

The paper's central numerics question is float32 vs bfloat16; a
:class:`DType` bundles everything the backend needs to emulate a storage
format: the per-element byte width (for HBM accounting) and the rounding
function hardware applies on stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .bfloat16 import round_to_bfloat16, round_to_bfloat16_into

__all__ = ["DType", "FLOAT32", "BFLOAT16", "PACKED", "resolve_dtype"]


def _identity(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


def _passthrough(x: np.ndarray) -> np.ndarray:
    # Packed tensors are integer bit-planes; never coerce them to float.
    return np.asarray(x)


@dataclass(frozen=True)
class DType:
    """A storage format on the simulated device.

    Attributes
    ----------
    name:
        Human-readable name ("float32" / "bfloat16").
    itemsize:
        Bytes per element in HBM (drives memory-capacity and bandwidth
        accounting — bfloat16 halves both).
    quantize:
        Rounding applied whenever a tensor of this dtype is materialised.
        Arrays are always *carried* as float32; for bfloat16 the carried
        values are constrained to the bfloat16-representable subset.
    quantize_into:
        Optional in-place variant, ``quantize_into(arr, bias_scratch,
        nan_scratch)``, bit-identical to ``quantize`` but mutating ``arr``
        without allocating.  ``None`` means quantization is the identity
        and the fused kernels can skip the pass entirely.
    """

    name: str
    itemsize: int
    quantize: Callable[[np.ndarray], np.ndarray] = field(repr=False)
    quantize_into: Optional[
        Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    ] = field(default=None, repr=False)

    def __str__(self) -> str:
        return self.name


FLOAT32 = DType(name="float32", itemsize=4, quantize=_identity)
BFLOAT16 = DType(
    name="bfloat16",
    itemsize=2,
    quantize=round_to_bfloat16,
    quantize_into=round_to_bfloat16_into,
)

#: Bit-packed spin storage: 64 spins per uint64 word (bit j of word w is
#: lattice column ``64*w + j`` — little-endian bit order; see
#: ``docs/packed_engine.md``).  ``itemsize`` is the *word* width, so HBM
#: accounting on word-shaped arrays is exact; ``quantize`` is a
#: passthrough because packed planes are integers, never floats.
PACKED = DType(name="packed", itemsize=8, quantize=_passthrough)

_BY_NAME = {
    "float32": FLOAT32,
    "f32": FLOAT32,
    "bfloat16": BFLOAT16,
    "bf16": BFLOAT16,
    "packed": PACKED,
}


def resolve_dtype(dtype: "DType | str") -> DType:
    """Accept a DType or a name ("float32", "bf16", ...) and normalise it."""
    if isinstance(dtype, DType):
        return dtype
    try:
        return _BY_NAME[str(dtype).lower()]
    except KeyError:
        raise ValueError(
            f"unknown dtype {dtype!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
