"""Software emulation of the bfloat16 floating-point format.

bfloat16 (1 sign bit, 8 exponent bits, 7 mantissa bits) is the storage and
MXU-input format on TPUs.  numpy has no native bfloat16, so we represent a
"bfloat16 tensor" as a float32 array whose values are all exactly
representable in bfloat16, and provide the round-to-nearest-even rounding
step that hardware applies on every store / MXU input.

Because bfloat16 shares float32's exponent range, rounding float32 ->
bfloat16 is a pure mantissa truncation with RNE tie-breaking, which can be
done exactly with integer bit tricks on the float32 representation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "round_to_bfloat16",
    "round_to_bfloat16_into",
    "to_bits",
    "from_bits",
    "is_representable",
    "BF16_EPS",
    "BF16_MAX",
    "BF16_SMALLEST_NORMAL",
]

# Machine epsilon of bfloat16: 2**-7 (7 explicit mantissa bits).
BF16_EPS = float(2.0**-7)
# Largest finite bfloat16: bit pattern 0x7F7F == 2**127 * (2 - 2**-7).
BF16_MAX = float(np.array(0x7F7F0000, dtype=np.uint32).view(np.float32))
# Smallest positive normal: 2**-126 (same exponent range as float32).
BF16_SMALLEST_NORMAL = float(2.0**-126)


def round_to_bfloat16(x: np.ndarray | float) -> np.ndarray:
    """Round float32 values to the nearest bfloat16 (ties to even).

    Returns a float32 array whose every element is exactly representable
    in bfloat16.  Values overflowing bfloat16's finite range round to
    +/-inf, matching hardware behaviour; NaNs stay NaN.
    """
    arr = np.asarray(x, dtype=np.float32)
    bits = arr.view(np.uint32).copy()
    # Classic RNE trick: add 0x7FFF plus the LSB of the surviving mantissa,
    # then truncate the low 16 bits.  NaNs are excluded so the payload
    # cannot be accidentally rounded into infinity.
    nan_mask = np.isnan(arr)
    with np.errstate(over="ignore"):
        rounding_bias = ((bits >> np.uint32(16)) & np.uint32(1)) + np.uint32(0x7FFF)
        bits = bits + rounding_bias
    bits &= np.uint32(0xFFFF0000)
    out = bits.view(np.float32).copy()
    if nan_mask.any():
        out[nan_mask] = np.nan
    return out


def round_to_bfloat16_into(
    arr: np.ndarray,
    bias_scratch: np.ndarray | None = None,
    nan_scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Round ``arr`` to bfloat16 *in place*, allocation-free.

    Bit-identical to ``round_to_bfloat16`` (including NaN payloads, which
    both normalise to ``np.nan``) but mutates ``arr`` through a uint32
    view instead of materialising copies.  ``arr`` must be a C-contiguous
    float32 array; ``bias_scratch`` (uint32, same shape) and
    ``nan_scratch`` (bool, same shape) are reused across calls when
    provided.
    """
    if arr.dtype != np.float32 or not arr.flags["C_CONTIGUOUS"]:
        raise ValueError("arr must be a C-contiguous float32 array")
    if bias_scratch is None:
        bias_scratch = np.empty(arr.shape, dtype=np.uint32)
    if nan_scratch is None:
        nan_scratch = np.empty(arr.shape, dtype=bool)
    np.isnan(arr, out=nan_scratch)
    bits = arr.view(np.uint32)
    # Same RNE bias as round_to_bfloat16, computed into scratch:
    # bits += ((bits >> 16) & 1) + 0x7FFF; bits &= 0xFFFF0000.
    np.right_shift(bits, np.uint32(16), out=bias_scratch)
    np.bitwise_and(bias_scratch, np.uint32(1), out=bias_scratch)
    np.add(bias_scratch, np.uint32(0x7FFF), out=bias_scratch)
    with np.errstate(over="ignore"):
        np.add(bits, bias_scratch, out=bits)
    np.bitwise_and(bits, np.uint32(0xFFFF0000), out=bits)
    if nan_scratch.any():
        np.copyto(arr, np.float32(np.nan), where=nan_scratch)
    return arr


def to_bits(x: np.ndarray | float) -> np.ndarray:
    """Encode values into their uint16 bfloat16 bit patterns (rounding first)."""
    rounded = round_to_bfloat16(x)
    return (rounded.view(np.uint32) >> np.uint32(16)).astype(np.uint16)


def from_bits(bits: np.ndarray) -> np.ndarray:
    """Decode uint16 bfloat16 bit patterns into float32 values (exact)."""
    bits = np.asarray(bits, dtype=np.uint16)
    return (bits.astype(np.uint32) << np.uint32(16)).view(np.float32)


def is_representable(x: np.ndarray | float) -> np.ndarray:
    """True where ``x`` is already exactly representable in bfloat16."""
    arr = np.asarray(x, dtype=np.float32)
    rounded = round_to_bfloat16(arr)
    return (arr == rounded) | (np.isnan(arr) & np.isnan(rounded))
