"""Model of the TPU v3 vector processing unit (VPU).

The VPU executes elementwise arithmetic, comparisons, transcendentals and
the stateless RNG.  In the paper's profile this is ~12% of step time,
dominated by ``tf.random_uniform`` (Philox) generation.  The model is a
single effective elementwise rate; op flop counts come from the backend
(e.g. ~20 flops/element for Philox uniforms, 8 for exp).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VPUModel"]


@dataclass(frozen=True)
class VPUModel:
    """Timing model for vector work on one TensorCore.

    ``effective_flops`` is the achieved elementwise rate (flops/s),
    calibrated so that RNG + acceptance arithmetic lands at the paper's
    ~12% share of the anchor step.
    """

    effective_flops: float = 3.3e12

    def elementwise_time(self, flops: float) -> float:
        """Seconds of vector work for the given flop count."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        return flops / self.effective_flops
