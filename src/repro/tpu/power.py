"""Energy-per-flip estimation (the nJ/flip columns of Tables 1 and 2).

The paper's estimate is deliberately a rough upper bound: assume each
processor runs at its TDP-like average power P during the whole step, so
the energy per spin flip is ``P / F`` nanojoules when the throughput is
``F`` flips/ns.  The same constants are used here: 100 W per TPU v3 core
(half of the 200 W/chip estimate the paper cites) and 250 W for a PCIe
Tesla V100.
"""

from __future__ import annotations

__all__ = [
    "TPU_V3_CORE_WATTS",
    "TESLA_V100_WATTS",
    "energy_per_flip_nj",
]

TPU_V3_CORE_WATTS = 100.0
TESLA_V100_WATTS = 250.0


def energy_per_flip_nj(power_watts: float, flips_per_ns: float) -> float:
    """Upper-bound energy estimate in nanojoules per flip.

    With throughput F flips/ns = F * 1e9 flips/s, energy per flip is
    P / (F * 1e9) joules = (P / F) nJ.
    """
    if power_watts <= 0:
        raise ValueError(f"power must be positive, got {power_watts}")
    if flips_per_ns <= 0:
        raise ValueError(f"throughput must be positive, got {flips_per_ns}")
    return power_watts / flips_per_ns
