"""Per-category time accounting — the software stand-in for the TPU profiler.

The paper's performance analysis (Sec. 5.2, Tables 3-5, Fig. 6) is built
on Google's TPU profiling tool, which attributes step time to HLO-level
categories: MXU (matmul/conv), VPU (elementwise + RNG), data formatting,
and inter-core communication.  Our simulated TensorCore charges every
backend op into a :class:`Profiler` with the same categories, so the same
breakdown tables can be regenerated.

The profiler also keeps optional trace events (category, name, start,
duration) and supports step marking so per-step times can be separated
from warm-up.  Trace events have a real outlet: pass any profiler (or a
pod/``DistributedIsing`` holding one per core) to
:func:`repro.telemetry.trace.chrome_trace` /
:func:`~repro.telemetry.trace.write_chrome_trace` to export a Chrome
trace-event JSON with one track per core, viewable at
https://ui.perfetto.dev or ``chrome://tracing`` — the reproduction of
the trace viewer in the paper's Fig. 6.  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CATEGORIES", "TraceEvent", "StepRecord", "Profiler"]

#: Charge categories, mirroring the paper's Table 3 columns.  "conv" is
#: the appendix implementation's convolution work; reports fold it into
#: the MXU column.
CATEGORIES = ("mxu", "conv", "vpu", "formatting", "communication")


@dataclass(frozen=True)
class TraceEvent:
    """One op occurrence on the simulated timeline."""

    category: str
    name: str
    start: float
    duration: float


@dataclass
class StepRecord:
    """Accumulated per-category seconds for one marked step."""

    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())


class Profiler:
    """Accumulates modeled op time, flops and bytes per category."""

    def __init__(self, record_trace: bool = False) -> None:
        self.record_trace = record_trace
        self.seconds: dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.flops: dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.bytes: dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.op_counts: dict[str, int] = {c: 0 for c in CATEGORIES}
        self.trace: list[TraceEvent] = []
        self.steps: list[StepRecord] = []
        self._step_start: dict[str, float] = dict(self.seconds)

    # -- charging --------------------------------------------------------

    def charge(
        self,
        category: str,
        seconds: float,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        name: str = "",
    ) -> None:
        """Record one op's modeled cost."""
        if category not in self.seconds:
            raise ValueError(
                f"unknown category {category!r}; expected one of {CATEGORIES}"
            )
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if self.record_trace:
            self.trace.append(
                TraceEvent(category, name, self.total_seconds, seconds)
            )
        self.seconds[category] += seconds
        self.flops[category] += flops
        self.bytes[category] += bytes_moved
        self.op_counts[category] += 1

    # -- aggregation -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def total_flops(self) -> float:
        return sum(self.flops.values())

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes.values())

    def breakdown(self, merge_conv: bool = True) -> dict[str, float]:
        """Fractions of total time per category (the Table 3 percentages).

        With ``merge_conv`` the "conv" charges are reported inside "mxu",
        matching how the TPU profiler attributes convolutions to the MXU.
        """
        total = self.total_seconds
        seconds = dict(self.seconds)
        if merge_conv:
            seconds["mxu"] += seconds.pop("conv")
        if total == 0.0:
            return {c: 0.0 for c in seconds}
        return {c: s / total for c, s in seconds.items()}

    def mark_step(self) -> StepRecord:
        """Close the current step and return its per-category seconds."""
        record = StepRecord(
            seconds={
                c: self.seconds[c] - self._step_start.get(c, 0.0)
                for c in CATEGORIES
            }
        )
        self.steps.append(record)
        self._step_start = dict(self.seconds)
        return record

    def step_seconds(self) -> list[float]:
        """Total modeled seconds of each marked step."""
        return [s.total for s in self.steps]

    def reset(self) -> None:
        self.seconds = {c: 0.0 for c in CATEGORIES}
        self.flops = {c: 0.0 for c in CATEGORIES}
        self.bytes = {c: 0.0 for c in CATEGORIES}
        self.op_counts = {c: 0 for c in CATEGORIES}
        self.trace.clear()
        self.steps.clear()
        self._step_start = dict(self.seconds)

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's totals into this one (pod aggregation)."""
        for c in CATEGORIES:
            self.seconds[c] += other.seconds[c]
            self.flops[c] += other.flops[c]
            self.bytes[c] += other.bytes[c]
            self.op_counts[c] += other.op_counts[c]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{c}={self.seconds[c] * 1e3:.3f}ms" for c in CATEGORIES if self.seconds[c]
        )
        return f"Profiler({parts or 'empty'})"
