"""The packed sweep engine: 64 spins per word, bitwise Metropolis.

This is :mod:`repro.baselines.multispin` promoted to a first-class
engine behind the backend vocabulary (ROADMAP item 1): the lattice is
stored as four bit-packed compact quarters (``dtype="packed"``), the
neighbour disagreement count ``k`` comes from bitwise full adders, and
the Metropolis rule collapses to three cases — always flip for
``k >= 2`` (``dE <= 0``), flip with probability ``exp(-4 beta)`` for
``k == 1`` and ``exp(-8 beta)`` for ``k == 0``.  Every step routes
through the backend's ``packed_*`` ``*_into`` kernels with a
:class:`~repro.core.fused.SweepWorkspace`, so steady-state sweeps
allocate nothing (the fused-engine contract) and replay under the
traced executor.

Randomness comes in three interchangeable forms (``docs/packed_engine.md``
has the full contract):

* **stream mode, ``rng_bits=16`` (default)** — each site consumes a
  16-bit Philox lane (two sites per generated word), compared against
  the integer threshold ``ceil(t * 2**16)``.  Acceptance probabilities
  are quantized to 1/65536 steps (|error| < 2**-16 — invisible to any
  observable this repo measures) and the generator does *half* the work
  of the float chains; this mode is what clears the flips/sec gate.
* **stream mode, ``rng_bits=32``** — each site consumes a full word
  whose top 24 bits are compared against ``ceil(t * 2**24)``; exactly
  the ``u < t`` test of the float chains on the same words, so a packed
  chain is *same-stream bit-identical* to the unpacked compact float32
  chain (same seed, same counter schedule, same trajectories).
* **explicit ``probs``** — caller-supplied per-site float32 uniforms,
  compared against the same float32 thresholds as
  :class:`~repro.baselines.multispin.MultispinUpdater`; the CI-gated
  bit-identity invariant against the unpacked checkerboard chain runs
  through this path.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..backend.packed_ops import packed_threshold, site_values_u16
from ..rng.streams import BatchedPhiloxStream, PhiloxStream
from ..tpu.dtypes import PACKED
from .fused import SweepWorkspace
from .lattice import plain_to_quarters, quarters_to_plain

__all__ = ["PackedState", "PackedUpdater", "record_packed_metrics"]

_WORD = 64

#: (active quarter, passive plane a, a-shift, passive plane b, b-shift)
#: per colour, in Algorithm 2's draw order.  Shifts are ("col", +1) for
#: the column-(j-1) plane (word carry), ("col", -1) for column-(j+1),
#: ("row", +1) / ("row", -1) for the row neighbours (pure rolls).
_PHASES = {
    "black": (
        ("w00", "w01", ("col", 1), "w10", ("row", 1)),
        ("w11", "w01", ("row", -1), "w10", ("col", -1)),
    ),
    "white": (
        ("w01", "w00", ("col", -1), "w11", ("row", 1)),
        ("w10", "w00", ("row", -1), "w11", ("col", 1)),
    ),
}


class PackedState:
    """Bit-packed compact lattice: four quarter word planes.

    Each plane is ``(rows/2, cols/128)`` uint64 (solo) or
    ``(B, rows/2, cols/128)`` (batched ensembles), bit ``j`` of word
    ``w`` holding quarter column ``64*w + j`` — the representation of
    :class:`~repro.baselines.multispin.MultispinState`, with leading
    batch axes allowed.
    """

    def __init__(
        self,
        w00: np.ndarray,
        w01: np.ndarray,
        w10: np.ndarray,
        w11: np.ndarray,
        quarter_shape: tuple[int, int],
    ) -> None:
        self.w00 = w00
        self.w01 = w01
        self.w10 = w10
        self.w11 = w11
        self.quarter_shape = (int(quarter_shape[0]), int(quarter_shape[1]))

    @property
    def batch_shape(self) -> tuple[int, ...]:
        """Leading batch axes (empty for a solo chain)."""
        return self.w00.shape[:-2]

    @property
    def planes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return (self.w00, self.w01, self.w10, self.w11)

    def copy(self) -> "PackedState":
        return PackedState(
            self.w00.copy(),
            self.w01.copy(),
            self.w10.copy(),
            self.w11.copy(),
            self.quarter_shape,
        )


class PackedUpdater:
    """Checkerboard Metropolis on bit-packed spins via backend word kernels.

    Parameters
    ----------
    beta:
        Inverse temperature — a positive scalar, or a ``(B,)`` vector for
        batched ensembles (chain ``b`` uses ``beta[b]``).
    backend:
        Any :class:`~repro.backend.base.Backend`; defaults to a numpy
        backend with the ``packed`` dtype.  The packed kernels charge the
        "alu" cost category, so a TPU backend prices them as integer
        vector work, not matmul parity.
    field:
        Must be ``0.0`` — the three-case collapse assumes ``h = 0``
        (with a field the acceptance ratio depends on ``sigma``, not
        just on the disagreement count).
    rng_bits:
        Bits of randomness consumed per site in stream mode: 16
        (default, the fast path) or 32 (the float chains' exact twin).
        Ignored when explicit ``probs`` are supplied.

    The plain-lattice width must be a multiple of 128 so each quarter
    packs into whole 64-bit words.
    """

    def __init__(
        self,
        beta: "float | np.ndarray",
        backend: Backend | None = None,
        field: float = 0.0,
        rng_bits: int = 16,
    ) -> None:
        beta_arr = np.asarray(beta, dtype=np.float64)
        if beta_arr.ndim > 1:
            raise ValueError(f"beta must be a scalar or 1-D vector, got shape {beta_arr.shape}")
        if not np.all(beta_arr > 0):
            raise ValueError(f"beta must be positive, got {beta}")
        if field:
            raise ValueError(
                "the packed engine has no field support: the three-case "
                f"Metropolis collapse assumes h = 0 (got field={field!r}); "
                "use dtype='float32' for h != 0"
            )
        if rng_bits not in (16, 32):
            raise ValueError(f"rng_bits must be 16 or 32, got {rng_bits}")
        self.backend = backend if backend is not None else NumpyBackend(PACKED)
        self.beta = float(beta_arr) if beta_arr.ndim == 0 else beta_arr
        self.field = 0.0
        self.rng_bits = int(rng_bits)
        self.batched = beta_arr.ndim == 1

        # Thresholds through the exact float32 expression of the float
        # chains: exp(float32(-2 beta) * float32(sigma * nn)).
        factor = (np.float32(-2.0) * beta_arr.astype(np.float32)).astype(np.float32)
        self.threshold_k1 = np.exp(factor * np.float32(2.0))  # sigma*nn = +2
        self.threshold_k0 = np.exp(factor * np.float32(4.0))  # sigma*nn = +4
        # Integer comparison space for stream mode: 16-bit lanes against
        # ceil(t * 2**16), or the top 24 bits of a word against
        # ceil(t * 2**24) (the exact u < t twin).  uint32 because the
        # ceiling can reach 2**rng_bits at tiny beta.
        cmp_bits = 16 if rng_bits == 16 else 24
        self._int_k1 = packed_threshold(self.threshold_k1, cmp_bits)
        self._int_k0 = packed_threshold(self.threshold_k0, cmp_bits)
        if self.batched:
            # Per-chain thresholds broadcast over (B, rows, cols) planes.
            self.threshold_k1 = self.threshold_k1.reshape(-1, 1, 1)
            self.threshold_k0 = self.threshold_k0.reshape(-1, 1, 1)
            self._int_k1 = self._int_k1.reshape(-1, 1, 1)
            self._int_k0 = self._int_k0.reshape(-1, 1, 1)

        self._workspace = SweepWorkspace()
        self._views: dict[tuple, np.ndarray] = {}
        # Telemetry counters (read by record_packed_metrics).
        self.sweeps = 0
        self.words_updated = 0

    @property
    def workspace(self) -> SweepWorkspace:
        """Scratch workspace (exposed for telemetry, like the fused engine)."""
        return self._workspace

    # -- state conversion --------------------------------------------------

    def to_state(self, plain: np.ndarray) -> PackedState:
        """Pack a plain ±1 lattice — ``(rows, cols)`` or ``(B, rows, cols)``.

        Boundary op: allocates (via the backend's ``packed_pack``), so
        it never appears in the sweep hot path.
        """
        plain = np.asarray(plain, dtype=np.float32)
        if plain.ndim not in (2, 3):
            raise ValueError(f"plain lattice must be 2-D or (B, rows, cols), got shape {plain.shape}")
        if plain.shape[-1] % (2 * _WORD):
            raise ValueError(
                f"packed dtype needs the lattice width to be a multiple of "
                f"{2 * _WORD} (each compact quarter packs into whole "
                f"{_WORD}-bit words), got {plain.shape[-1]}"
            )
        if plain.ndim == 2:
            quarters = plain_to_quarters(plain)
            planes = [
                self.backend.packed_pack((q > 0).astype(np.uint8))
                for q in quarters
            ]
            return PackedState(*planes, quarter_shape=quarters[0].shape)
        per_chain = [self.to_state(chain) for chain in plain]
        return PackedState(
            *(
                np.stack([getattr(s, name) for s in per_chain])
                for name in ("w00", "w01", "w10", "w11")
            ),
            quarter_shape=per_chain[0].quarter_shape,
        )

    def to_plain(self, state: PackedState) -> np.ndarray:
        """Unpack back to a plain ±1 float32 lattice (boundary op)."""
        cols = state.quarter_shape[1]
        if state.batch_shape:
            return np.stack(
                [
                    self.to_plain(
                        PackedState(
                            state.w00[b],
                            state.w01[b],
                            state.w10[b],
                            state.w11[b],
                            state.quarter_shape,
                        )
                    )
                    for b in range(state.w00.shape[0])
                ]
            )
        quarters = [
            (2.0 * self.backend.packed_unpack(w, cols).astype(np.float32)) - 1.0
            for w in state.planes
        ]
        return quarters_to_plain(*quarters)

    # -- stream-mode draws -------------------------------------------------

    def _draw_values(
        self,
        stream: "PhiloxStream | BatchedPhiloxStream",
        state: PackedState,
    ) -> np.ndarray:
        """Draw one quarter's worth of acceptance lanes, allocation-free.

        Returns the site-shaped integer comparison values — 16-bit lanes
        (``rng_bits=16``) or top-24-bit words (``rng_bits=32``) — backed
        by a workspace buffer.  Each call advances the stream exactly
        like one quarter draw of the corresponding mode.
        """
        qr, qc = state.quarter_shape
        site_shape = state.batch_shape + (qr, qc)
        n_sites = qr * qc
        n_draw = n_sites if self.rng_bits == 32 else n_sites // 2
        bits = self._workspace.buffer(
            "pbits", state.batch_shape + (n_draw,), np.uint32
        )
        self.backend.packed_bits_into(stream, bits)
        if self.rng_bits == 32:
            self.backend.packed_rshift_into(bits, 8, bits)
            return bits.reshape(site_shape)
        key = (bits.shape, site_shape)
        view = self._views.get(key)
        if view is None:
            view = site_values_u16(bits, site_shape)
            self._views[key] = view
        return view

    # -- phases ------------------------------------------------------------

    def _flip_quarter(
        self,
        state: PackedState,
        spins: np.ndarray,
        plane_a: np.ndarray,
        shift_a: tuple[str, int],
        plane_b: np.ndarray,
        shift_b: tuple[str, int],
        values: np.ndarray,
        int_thresholds: bool,
    ) -> None:
        """Update one packed quarter in place from its neighbour planes."""
        be = self.backend
        ws = self._workspace
        wshape = spins.shape
        qc = state.quarter_shape[1]
        site_shape = state.batch_shape + (state.quarter_shape[0], qc)

        def wbuf(name):
            return ws.buffer(name, wshape, np.uint64)

        # Acceptance words for the two stochastic cases.
        cmp = ws.buffer("pcmp", site_shape, bool)
        byte_lo = ws.buffer("pbyte_lo", site_shape[:-1] + (qc // 8,), np.uint8)
        byte_tmp = ws.buffer("pbyte_tmp", site_shape[:-1] + (qc // 8,), np.uint8)
        t1 = self._int_k1 if int_thresholds else self.threshold_k1
        t0 = self._int_k0 if int_thresholds else self.threshold_k0
        r1, r0 = wbuf("pr1"), wbuf("pr0")
        be.packed_compare_pack_into(values, t1, r1, cmp, byte_lo, byte_tmp)
        be.packed_compare_pack_into(values, t0, r0, cmp, byte_lo, byte_tmp)

        # Disagreement planes: d = spins ^ neighbour, with the shifted
        # neighbour plane built in the d buffer itself then XORed in place.
        d1, d2, d3, d4 = wbuf("pd1"), wbuf("pd2"), wbuf("pd3"), wbuf("pd4")
        tmp = wbuf("ptmp")
        be.packed_xor_into(spins, plane_a, d1)
        self._shift_into(plane_a, shift_a, d2, tmp)
        be.packed_xor_into(spins, d2, d2)
        be.packed_xor_into(spins, plane_b, d3)
        self._shift_into(plane_b, shift_b, d4, tmp)
        be.packed_xor_into(spins, d4, d4)

        # k = d1+d2+d3+d4 per bit lane, then the three-case flip mask.
        low, bit1, bit2 = wbuf("plow"), wbuf("pbit1"), wbuf("pbit2")
        s1, s2 = wbuf("ps1"), wbuf("ps2")
        be.packed_full_adder_into(d1, d2, d3, d4, low, bit1, bit2, s1, s2)
        flips = wbuf("pflips")
        be.packed_flip_select_into(low, bit1, bit2, r1, r0, flips, tmp)
        be.packed_xor_into(spins, flips, spins)
        self.words_updated += int(spins.size)

    def _shift_into(
        self,
        plane: np.ndarray,
        shift: tuple[str, int],
        out: np.ndarray,
        tmp: np.ndarray,
    ) -> None:
        kind, direction = shift
        if kind == "col":
            self.backend.packed_shift_cols_into(plane, direction, out, tmp)
        else:
            self.backend.roll_into(plane, direction, -2, out)

    def update_color(
        self,
        state: PackedState,
        color: str,
        stream: "PhiloxStream | BatchedPhiloxStream | None" = None,
        probs: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> PackedState:
        """One colour phase, in place on ``state``'s word planes.

        ``probs``, when given, are the two active quarters' float32
        uniforms ((q00, q11) for black, (q01, q10) for white) in
        Algorithm 2's order, shaped ``batch_shape + quarter_shape``;
        otherwise ``stream`` supplies integer lanes per the ``rng_bits``
        mode.  Mutates and returns ``state`` (the packed engine is
        in-place only, like the fused float kernels).
        """
        if color not in _PHASES:
            raise ValueError(f"color must be 'black' or 'white', got {color!r}")
        if probs is None and stream is None:
            raise ValueError("either stream or probs must be provided")
        site_shape = state.batch_shape + state.quarter_shape
        if probs is not None:
            for p in probs:
                if p.shape != site_shape:
                    raise ValueError(
                        f"probs shapes {tuple(p.shape for p in probs)} != "
                        f"quarter {site_shape}"
                    )
        for i, (q, a, shift_a, b, shift_b) in enumerate(_PHASES[color]):
            values = (
                self._draw_values(stream, state)
                if probs is None
                else np.ascontiguousarray(probs[i], dtype=np.float32)
            )
            self._flip_quarter(
                state,
                getattr(state, q),
                getattr(state, a),
                shift_a,
                getattr(state, b),
                shift_b,
                values,
                int_thresholds=probs is None,
            )
        return state

    def sweep(
        self,
        state: PackedState,
        stream: "PhiloxStream | BatchedPhiloxStream | None" = None,
        probs_black: "tuple[np.ndarray, np.ndarray] | None" = None,
        probs_white: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> PackedState:
        """One full lattice sweep (black then white), in place."""
        state = self.update_color(state, "black", stream, probs_black)
        state = self.update_color(state, "white", stream, probs_white)
        self.sweeps += 1
        return state

    def sweep_plain(
        self, plain: np.ndarray, stream: "PhiloxStream | BatchedPhiloxStream"
    ) -> np.ndarray:
        """Pack, sweep once, unpack — convenience for tests."""
        return self.to_plain(self.sweep(self.to_state(plain), stream))


def record_packed_metrics(registry, *updaters) -> None:
    """Publish the packed engine's gauges from updater counters.

    Sums over every updater that exposes packed counters; float-chain
    updaters contribute zeros, so the gauges are always present and
    comparable across runs (the ``fused_*`` gauge convention).
    """
    sweeps = 0
    words = 0
    ws_bytes = 0
    ws_buffers = 0
    rng_bits = 0
    for updater in updaters:
        if not isinstance(updater, PackedUpdater):
            continue
        sweeps += updater.sweeps
        words += updater.words_updated
        ws_bytes += updater.workspace.nbytes
        ws_buffers += updater.workspace.n_buffers
        rng_bits = max(rng_bits, updater.rng_bits)
    registry.gauge("packed_sweeps").set(sweeps)
    registry.gauge("packed_words_updated").set(words)
    registry.gauge("packed_workspace_bytes").set(ws_bytes)
    registry.gauge("packed_workspace_buffers").set(ws_buffers)
    registry.gauge("packed_rng_bits").set(rng_bits)
    registry.gauge("packed_word_bits").set(_WORD if sweeps else 0)
