"""Shared simulation-configuration helpers, neutral of any driver.

Historically :func:`resolve_fused` and the backend checkpoint helpers
lived in :mod:`repro.core.simulation` and were imported by
:mod:`repro.core.distributed` and :mod:`repro.core.ensemble` — a
layering inversion (the distributed driver reaching *up* into the
single-core driver for plumbing).  They live here now, below all three
drivers; ``simulation.py`` re-exports the old names for compatibility.

This module also owns the versioned **checkpoint/v2** envelope shared by
every driver's ``state_dict()``:

``{"schema": "checkpoint/v2", "kind": "single" | "ensemble" | "distributed", ...}``

v1 checkpoints (bare dicts without a ``schema`` key, as emitted before
the envelope existed) are still readable everywhere — they decode with a
:class:`DeprecationWarning` pointing at the migration path.  A single
:func:`repro.api.load` dispatches any envelope to the right class.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_KINDS",
    "resolve_fused",
    "resolve_traced",
    "resolve_overlap",
    "default_block_shape",
    "backend_kind",
    "backend_from_checkpoint",
    "check_checkpoint_dtype",
    "checkpoint_envelope",
    "unwrap_checkpoint",
    "checkpoint_kind",
]

#: Versioned schema identifier carried by every state_dict() envelope.
CHECKPOINT_SCHEMA = "checkpoint/v2"

#: Checkpoint kinds a v2 envelope may carry.
CHECKPOINT_KINDS = ("single", "ensemble", "distributed", "tempering")


def resolve_fused(fused: "bool | str") -> "bool | str":
    """Normalise a fused-engine selection to ``"auto"`` / True / False.

    ``"auto"`` resolves later against the backend family: enabled on plain
    numpy backends (pure host speedup), disabled on accounting backends so
    the calibrated TPU cost tables keep their historical op sequence.
    """
    if fused == "auto":
        return "auto"
    if isinstance(fused, (bool, np.bool_)):
        return bool(fused)
    raise ValueError(f"fused must be 'auto', True or False, got {fused!r}")


def resolve_traced(traced: "bool | str") -> "bool | str":
    """Normalise a traced-executor selection to ``"auto"`` / True / False.

    ``"auto"`` resolves later against the fused-engine selection: the
    traced executor replays a recorded fused sweep, so it follows the
    fused flag wherever that resolves True and stays off elsewhere.
    An explicit ``traced=True`` with the fused engine off is rejected by
    the drivers — there is no elementwise trace to record.
    """
    if traced == "auto":
        return "auto"
    if isinstance(traced, (bool, np.bool_)):
        return bool(traced)
    raise ValueError(f"traced must be 'auto', True or False, got {traced!r}")


def resolve_overlap(overlap: "bool | str") -> "bool | str":
    """Normalise a halo-overlap selection to ``"auto"`` / True / False.

    ``"auto"`` resolves later against the topology: the split-phase
    schedule is enabled on hierarchical multi-pod meshes (where the slow
    inter-pod tier is worth hiding) and stays off on flat tori, keeping
    single-pod modeled timelines exactly as they were.  The chain itself
    is schedule-independent — overlap only changes the modeled clock —
    so forcing either value is always safe.
    """
    if overlap == "auto":
        return "auto"
    if isinstance(overlap, (bool, np.bool_)):
        return bool(overlap)
    raise ValueError(f"overlap must be 'auto', True or False, got {overlap!r}")


def default_block_shape(
    updater: str, shape: "tuple[int, int]"
) -> "tuple[int, int] | None":
    """The driver's default block decomposition for ``updater`` on ``shape``.

    This is the single source of truth consumed by the drivers *and* by
    the scheduler's cache key (:mod:`repro.sched.cache`), so an unset
    ``block_shape`` and its spelled-out default can never drift apart:

    * ``masked_conv`` runs unblocked (and rejects an explicit block);
    * ``checkerboard`` defaults to one block covering the whole lattice;
    * ``compact`` / ``conv`` default to a 2x2 grid of half-lattice blocks.
    """
    if updater == "masked_conv":
        return None
    rows, cols = (int(shape[0]), int(shape[1]))
    if updater == "checkerboard":
        return (rows, cols)
    return (rows // 2, cols // 2)


def backend_kind(backend: Backend) -> str:
    """Checkpoint tag for the backend family ("numpy" or "tpu")."""
    from ..backend.tpu_backend import TPUBackend

    return "tpu" if isinstance(backend, TPUBackend) else "numpy"


def backend_from_checkpoint(kind: str, dtype_name: str) -> Backend:
    """Rebuild a backend of the checkpointed kind and dtype.

    Raises on unknown backend kinds; unknown dtype names raise inside
    :func:`~repro.tpu.dtypes.resolve_dtype` rather than silently
    substituting a default.
    """
    from ..tpu.dtypes import resolve_dtype

    dtype = resolve_dtype(dtype_name)
    if kind == "numpy":
        return NumpyBackend(dtype)
    if kind == "tpu":
        from ..backend.tpu_backend import TPUBackend
        from ..tpu.tensorcore import TensorCore

        return TPUBackend(TensorCore(core_id=0), dtype)
    raise ValueError(
        f"unknown backend kind {kind!r} in checkpoint; expected 'numpy' or 'tpu'"
    )


def check_checkpoint_dtype(state_dtype: str, backend: Backend) -> None:
    """Refuse cross-loading between packed and unpacked checkpoints.

    The packed engine stores the lattice as 64-spin words and (in stream
    mode) consumes randomness on a different counter schedule than the
    unpacked chains, so resuming a checkpoint across the packed/unpacked
    boundary would silently change the trajectory.  Loading is only
    allowed when both sides agree on packedness; dtype changes *within*
    the unpacked family (float32 <-> bfloat16) remain legal.
    """
    backend_packed = backend.dtype.name == "packed"
    state_packed = state_dtype == "packed"
    if backend_packed == state_packed:
        return
    if backend_packed:
        raise ValueError(
            f"checkpoint was written by an unpacked dtype={state_dtype!r} "
            "chain and cannot resume as dtype='packed': the packed stream "
            "mode consumes randomness on a different counter schedule. "
            "Resume on the checkpoint's own dtype, or start a fresh packed "
            "run seeded from its lattice."
        )
    raise ValueError(
        "checkpoint was written by a dtype='packed' chain and cannot "
        f"resume on an unpacked dtype={backend.dtype.name!r} backend: the "
        "stored randomness schedule only matches the packed engine. Resume "
        "with dtype='packed', or start a fresh unpacked run seeded from "
        "the checkpoint's lattice."
    )


def checkpoint_envelope(kind: str, payload: dict) -> dict:
    """Wrap a driver's checkpoint payload in the versioned v2 envelope."""
    if kind not in CHECKPOINT_KINDS:
        raise ValueError(
            f"unknown checkpoint kind {kind!r}; expected one of {CHECKPOINT_KINDS}"
        )
    return {"schema": CHECKPOINT_SCHEMA, "kind": kind, **payload}


def checkpoint_kind(state: dict) -> str:
    """The checkpoint kind of a state dict, inferring it for v1 dicts.

    v2 envelopes carry ``kind`` explicitly; legacy v1 dicts are
    classified by their distinguishing keys ("temperatures" only ever
    appears in ensemble checkpoints, "core_grid" only in distributed
    ones).
    """
    if not isinstance(state, dict):
        raise TypeError(f"checkpoint must be a dict, got {type(state).__name__}")
    kind = state.get("kind")
    if kind is not None:
        if kind not in CHECKPOINT_KINDS:
            raise ValueError(
                f"unknown checkpoint kind {kind!r}; expected one of {CHECKPOINT_KINDS}"
            )
        return kind
    if "temperatures" in state:
        return "ensemble"
    if "core_grid" in state:
        return "distributed"
    return "single"


def unwrap_checkpoint(state: dict, expected_kind: str) -> dict:
    """Validate a checkpoint envelope and return its payload.

    Accepts a v2 envelope (schema + kind checked against
    ``expected_kind``) or a legacy v1 dict (no ``schema`` key), which
    decodes with a :class:`DeprecationWarning`.  Unknown schema strings
    raise — a future v3 must be migrated explicitly, not guessed at.
    """
    if not isinstance(state, dict):
        raise TypeError(f"checkpoint must be a dict, got {type(state).__name__}")
    schema = state.get("schema")
    if schema is None:
        warnings.warn(
            "reading a legacy v1 checkpoint (no 'schema' key); re-save with "
            f"state_dict() to migrate to {CHECKPOINT_SCHEMA!r} — v1 support "
            "will be removed in a future release",
            DeprecationWarning,
            stacklevel=3,
        )
        return state
    if schema != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"unsupported checkpoint schema {schema!r}; expected "
            f"{CHECKPOINT_SCHEMA!r} (or a legacy v1 dict without a schema key)"
        )
    kind = checkpoint_kind(state)
    if kind != expected_kind:
        raise ValueError(
            f"checkpoint kind {kind!r} cannot restore a {expected_kind!r} "
            "simulation — use repro.api.load() to dispatch automatically"
        )
    return state
