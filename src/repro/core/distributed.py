"""Distributed SPMD simulation of the Ising model on a simulated pod slice.

The whole lattice is block-decomposed over a 2D grid of TensorCores; each
core owns a compact sub-lattice and runs Algorithm 2 locally.  Per colour
phase the four boundary slabs that would wrap around the local torus are
instead exchanged with the neighbouring cores via ``collective_permute``
over the simulated toroidal mesh (Fig. 5 of the paper), and spliced into
the neighbour sums through the :class:`~repro.core.kernels.PhaseHalos`
hook.  All cores advance in lockstep under the SPMD runtime, every
compute op charges the owning core's profiler, and communication time is
booked by the mesh link model — which is exactly the machinery behind the
weak-scaling (Table 2/6), breakdown (Table 3), communication (Table 4)
and strong-scaling (Table 7) reproductions.

A 1 x 1 "distributed" run degenerates to the single-core torus (the self
halos equal the local wrap), and for identical per-site uniforms the
multi-core chain is bit-identical to the single-core one — both are
enforced by the integration tests.

With a :class:`~repro.telemetry.report.RunTelemetry` attached the run
additionally produces a per-core compute-vs-communication split
(:meth:`DistributedIsing.core_splits`) and a versioned
:class:`~repro.telemetry.report.RunReport`; recorded trace events export
to Chrome trace JSON via :func:`repro.telemetry.trace.chrome_trace`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Generator

import numpy as np

from ..backend.base import Backend
from ..backend.tpu_backend import TPUBackend
from ..mesh.faults import CoreLostError, FaultInjector, FaultPlan, PodLostError
from ..mesh.links import LinkModel, TwoTierLinkModel, interior_fraction
from ..mesh.runtime import OverlapCommit, PermuteRequest, SPMDRuntime
from ..mesh.topology import (
    HierarchicalTorus,
    Torus2D,
    degraded_grid,
    degraded_pod_grid,
)
from ..observables.energy import energy_per_spin
from ..observables.magnetization import magnetization
from ..rng.streams import PhiloxStream
from ..telemetry.report import RunReport, RunTelemetry
from ..tpu.device import PodSlice
from ..tpu.dtypes import DType, FLOAT32, resolve_dtype
from .compact import CompactUpdater
from .config import (
    checkpoint_envelope,
    default_block_shape,
    resolve_fused,
    resolve_overlap,
    resolve_traced,
    unwrap_checkpoint,
)
from .fused import record_fused_metrics
from .traced import PhaseTracedExecutor, record_traced_metrics
from .kernels import PhaseHalos
from .lattice import (
    CompactLattice,
    cold_lattice,
    plain_to_grid,
    plain_to_quarters,
    random_lattice,
    validate_spins,
)

__all__ = ["DistributedIsing"]

#: Stream-id spacing between topology generations: after an elastic
#: degrade, generation g's core i draws from stream id
#: ``g * _GENERATION_STRIDE + i + 1`` — deterministic, and disjoint from
#: every earlier generation's streams for any realistic core count.
_GENERATION_STRIDE = 1 << 20

_ALL = slice(None)

#: Per colour phase: (halo field, slab of which tensor, slab index,
#: permute direction that delivers it).  "Direction" is where each core
#: *sends* its slab; e.g. sending south means every core receives its
#: north halo.  Derived from the Algorithm 2 boundary terms — see
#: repro.core.kernels.compact_neighbor_sums.
_PHASE_EXCHANGES = {
    "black": (
        ("north", "s10", (-1, _ALL, -1, _ALL), "south"),
        ("south", "s01", (0, _ALL, 0, _ALL), "north"),
        ("west", "s01", (_ALL, -1, _ALL, -1), "east"),
        ("east", "s10", (_ALL, 0, _ALL, 0), "west"),
    ),
    "white": (
        ("north", "s11", (-1, _ALL, -1, _ALL), "south"),
        ("south", "s00", (0, _ALL, 0, _ALL), "north"),
        ("west", "s11", (_ALL, -1, _ALL, -1), "east"),
        ("east", "s00", (_ALL, 0, _ALL, 0), "west"),
    ),
}


class DistributedIsing:
    """A multi-core checkerboard Ising chain on a simulated pod slice.

    Parameters
    ----------
    global_shape:
        Whole-lattice shape (rows, cols) or single side length.
    temperature:
        Temperature in J / k_B units.
    core_grid:
        (rows, cols) of the core decomposition; each core gets a
        ``global/rows x global/cols`` sub-lattice (sides must divide
        evenly into even local sides).
    pod_grid:
        Optional (pod rows, pod cols) tiling of the core grid into
        sub-pods.  When given, the mesh is a
        :class:`~repro.mesh.topology.HierarchicalTorus` — flat core ids
        and halo pairs (the chain is unchanged) but pod-crossing
        collectives are priced on the slower inter-pod tier of a
        :class:`~repro.mesh.links.TwoTierLinkModel` (the default link
        model for hierarchical meshes), and a permanent loss degrades by
        whole sub-pods (see ``docs/multipod.md``).  ``None`` (the
        default) keeps the single-pod flat torus.
    overlap:
        Split-phase halo overlap selection: ``"auto"`` (default), True
        or False.  "auto" enables overlap exactly on multi-pod
        hierarchical meshes.  When on, each colour phase issues its four
        halo permutes into an overlap window and commits the window
        against the phase's interior compute — the modeled phase cost
        becomes ``max(interior_compute, comm) + boundary_compute``
        instead of ``comm + compute``.  The executed op stream is
        identical either way (same sites, same Philox draws); only the
        modeled clock changes.
    pod:
        An existing :class:`~repro.tpu.device.PodSlice` whose core grid
        matches; one is created when omitted.
    dtype:
        "float32" or "bfloat16" storage on every core.
    block_shape:
        Compact grid block size per core (default: one block per local
        quarter; pass (128, 128) for TPU-shaped accounting).
    seed:
        Global Philox seed; core i uses stream id i + 1, the host
        (initial state) uses stream id 0.
    initial:
        "hot", "cold", or an explicit global +/-1 array.
    link_model:
        Interconnect timing model override.
    record_trace:
        Keep per-op trace events in every core's profiler; export them
        with :func:`repro.telemetry.write_chrome_trace` (Fig. 6 view).
    fused:
        Fused sweep engine selection: ``"auto"`` (default), True or
        False.  The per-core backends are TPU cost-model backends, so
        "auto" resolves to False — the elementwise op sequence is what
        the calibrated cost tables describe.  Pass ``fused=True`` to run
        every core through the fused engine (table-gathered acceptance,
        in-place kernels); the chain stays bit-identical and the halo
        exchange is unaffected because boundary slabs are copied before
        the in-place phase update runs.
    traced:
        Traced executor selection (see :mod:`repro.core.traced`):
        ``"auto"`` (default) follows the resolved ``fused`` setting, so
        the default TPU cost-model run stays fully eager.  When on, each
        core records its two colour-phase programs once and replays them
        every subsequent sweep; halo collectives stay eager (they flow
        through the SPMD runtime and link model) and arriving halos are
        staged into stable buffers so replays read fresh boundary data.
        Sweeps with explicit global ``probs`` bypass tracing entirely.
    telemetry:
        Optional :class:`~repro.telemetry.report.RunTelemetry` recorder.
        Absent by default (zero-cost, bit-identical chains); when
        attached, the SPMD runtime also books collective counters into
        its registry and :meth:`report` emits a distributed
        :class:`~repro.telemetry.report.RunReport` with the per-core
        compute-vs-communication split.
    fault_plan:
        Optional :class:`~repro.mesh.faults.FaultPlan`.  When attached,
        the SPMD runtime injects the plan's faults: transient drops /
        delays / stalls are retried or absorbed (costing modeled time,
        never data — the chain stays bit-identical), and permanent core
        kills raise :class:`~repro.mesh.faults.CoreLostError`, which
        :meth:`run_resilient` turns into a checkpoint-restart on a
        degraded topology.  ``None`` (the default) keeps the historical
        perfect-mesh path: bit-identical output, <2% overhead (gated by
        ``benchmarks/bench_fault_overhead.py``).
    checkpoint_interval:
        Take an in-memory checkpoint (:meth:`state_dict`) every this
        many sweeps — the restart point :meth:`run_resilient` falls back
        to after a permanent core loss.  The snapshot is taken at the
        sweep boundary without pausing the chain and is never charged to
        modeled device time (the asynchronous-checkpointing idealisation:
        host-side state capture overlaps the next sweep).  ``None``
        disables periodic snapshots; a construction-time snapshot is
        still taken whenever a ``fault_plan`` is attached so degrade
        always has a restart point.
    """

    def __init__(
        self,
        global_shape: int | tuple[int, int],
        temperature: float,
        core_grid: tuple[int, int],
        pod_grid: tuple[int, int] | None = None,
        overlap: "bool | str" = "auto",
        pod: PodSlice | None = None,
        dtype: DType | str = FLOAT32,
        block_shape: tuple[int, int] | None = None,
        seed: int = 0,
        initial: str | np.ndarray = "hot",
        link_model: LinkModel | None = None,
        record_trace: bool = False,
        updater: str = "compact",
        field: float = 0.0,
        fused: "bool | str" = "auto",
        traced: "bool | str" = "auto",
        telemetry: RunTelemetry | None = None,
        fault_plan: FaultPlan | None = None,
        checkpoint_interval: int | None = None,
    ) -> None:
        if updater not in ("compact", "conv"):
            raise ValueError(
                f"updater must be 'compact' or 'conv', got {updater!r}"
            )
        if isinstance(global_shape, (int, np.integer)):
            global_shape = (int(global_shape), int(global_shape))
        rows, cols = global_shape
        p_rows, p_cols = core_grid
        if p_rows <= 0 or p_cols <= 0:
            raise ValueError(f"core grid must be positive, got {core_grid}")
        if rows % p_rows or cols % p_cols:
            raise ValueError(
                f"global shape {global_shape} not divisible by core grid {core_grid}"
            )
        local_rows, local_cols = rows // p_rows, cols // p_cols
        if local_rows % 2 or local_cols % 2:
            raise ValueError(
                f"per-core lattice {local_rows}x{local_cols} must have even sides"
            )
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if pod_grid is not None:
            g_rows, g_cols = pod_grid
            if g_rows <= 0 or g_cols <= 0:
                raise ValueError(f"pod grid must be positive, got {pod_grid}")
            if p_rows % g_rows or p_cols % g_cols:
                raise ValueError(
                    f"core grid {core_grid} not divisible by pod grid {pod_grid}"
                )
            pod_grid = (int(g_rows), int(g_cols))

        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1 or None, got {checkpoint_interval}"
            )

        self.global_shape = (rows, cols)
        self.core_grid = (p_rows, p_cols)
        self.pod_grid = pod_grid
        self.local_shape = (local_rows, local_cols)
        self.temperature = float(temperature)
        self.beta = 1.0 / self.temperature
        self.field = float(field)
        self.dtype = resolve_dtype(dtype)
        self.seed = int(seed)
        self.sweeps_done = 0
        self.fused_config = resolve_fused(fused)
        # Per-core backends are TPU cost models: "auto" keeps the
        # elementwise op sequence the calibrated tables were fit to.
        self.fused = False if self.fused_config == "auto" else self.fused_config
        self.traced_config = resolve_traced(traced)
        self.traced = (
            self.fused if self.traced_config == "auto" else self.traced_config
        )
        if self.traced and not self.fused:
            raise ValueError(
                "traced=True requires the fused sweep engine; "
                "the elementwise path allocates per sweep and cannot be replayed"
            )
        self.overlap_config = resolve_overlap(overlap)
        # "auto": hide halos exactly where the slow inter-pod tier makes
        # it worth modeling; flat single-pod timelines stay historical.
        multi_pod = pod_grid is not None and pod_grid[0] * pod_grid[1] > 1
        self.overlap = (
            multi_pod if self.overlap_config == "auto" else self.overlap_config
        )
        #: Per-sweep traced-replay spans on the modeled timeline (only
        #: when ``record_trace`` and tracing are both on); exported as
        #: the "traced replay" Chrome-trace track.
        self.traced_log: list[dict] = []

        if pod is not None and pod.core_grid != self.core_grid:
            raise ValueError(
                f"pod core grid {pod.core_grid} != requested {self.core_grid}"
            )
        self.telemetry = telemetry
        self.updater_name = updater
        self.checkpoint_interval = checkpoint_interval
        self.fault_plan = fault_plan
        self.fault_injector: FaultInjector | None = None
        #: Topology-change records appended by elastic degrades:
        #: ``{"sweep_detected", "resumed_from_sweep", "dead_core",
        #: "old_grid", "new_grid", "generation"}`` dicts, carried into
        #: checkpoints and the run report.
        self.topology_events: list[dict] = []
        self._generation = 0
        # Remembered for topology rebuilds after an elastic degrade (the
        # user's explicit block_shape sticks; None re-derives per-quarter
        # blocks from the new local shape).
        self._block_shape_arg = block_shape
        self._link_model = link_model
        self._record_trace = bool(record_trace)

        self._build_topology(self.core_grid, pod=pod)

        global_plain = self._initial_lattice(initial)
        self._states: list[CompactLattice] = self._scatter(global_plain)
        self._last_checkpoint: dict | None = None
        if self.checkpoint_interval is not None or fault_plan is not None:
            self._last_checkpoint = self.state_dict()

    # -- setup helpers ------------------------------------------------------

    def _build_topology(
        self, core_grid: tuple[int, int], pod: PodSlice | None = None
    ) -> None:
        """(Re)build pod, torus, runtime, backends, updaters and streams.

        Called at construction and again by :meth:`_degrade` with a
        smaller grid.  Stream ids incorporate the topology generation so
        the post-degrade chain draws from fresh, deterministic streams
        that no earlier generation ever touched.
        """
        p_rows, p_cols = core_grid
        rows, cols = self.global_shape
        self.core_grid = (p_rows, p_cols)
        self.local_shape = (rows // p_rows, cols // p_cols)
        local_rows, local_cols = self.local_shape
        self.pod = (
            pod
            if pod is not None
            else PodSlice(core_grid, record_trace=self._record_trace)
        )
        if self.pod_grid is not None:
            self.torus = HierarchicalTorus(
                p_rows, p_cols, self.pod_grid[0], self.pod_grid[1]
            )
        else:
            self.torus = Torus2D(p_rows, p_cols)
        # The surface-to-volume fraction of each colour phase that runs
        # while halos are in flight under the overlap schedule.
        self._interior_fraction = interior_fraction(self.local_shape)
        link_model = self._link_model
        if link_model is None and isinstance(self.torus, HierarchicalTorus):
            link_model = TwoTierLinkModel()
        if self.fault_plan is not None and self.fault_injector is None:
            self.fault_injector = FaultInjector(self.fault_plan, self.torus.num_cores)
        prior_runtime = getattr(self, "runtime", None)
        self.runtime = SPMDRuntime(
            self.torus,
            link_model,
            cores=self.pod.cores,
            metrics=self.telemetry.registry if self.telemetry is not None else None,
            fault_injector=self.fault_injector,
        )
        if prior_runtime is not None:
            # Keep pre-degrade fault and overlap spans so the trace shows
            # the whole incident, not just the surviving generation.
            self.runtime.fault_log.extend(prior_runtime.fault_log)
            self.runtime.overlap_log.extend(prior_runtime.overlap_log)
            self.runtime.overlap_windows = prior_runtime.overlap_windows
            self.runtime.overlap_hidden_seconds = prior_runtime.overlap_hidden_seconds
            self.runtime.overlap_exposed_seconds = (
                prior_runtime.overlap_exposed_seconds
            )
        self._backends: list[Backend] = [
            TPUBackend(core, self.dtype) for core in self.pod.cores
        ]
        self._updaters = [
            CompactUpdater(
                self.beta,
                backend,
                block_shape=self._block_shape_arg
                if self._block_shape_arg is not None
                else default_block_shape("compact", self.local_shape),
                nn_method="conv" if self.updater_name == "conv" else "matmul",
                field=self.field,
                fused=self.fused,
            )
            for backend in self._backends
        ]
        self.block_shape = self._updaters[0].block_shape
        # Fresh updaters mean any recorded phase programs are stale;
        # executors are rebuilt with the topology (degrades included).
        self._executors: "list[PhaseTracedExecutor | None]" = [
            PhaseTracedExecutor(updater) if self.traced else None
            for updater in self._updaters
        ]
        base = self._generation * _GENERATION_STRIDE
        self._streams = [
            PhiloxStream(self.seed, base + core_id + 1)
            for core_id in range(self.num_cores)
        ]

    def _scatter(self, global_plain: np.ndarray) -> list[CompactLattice]:
        """Decompose a global plain lattice into per-core compact states."""
        return [
            self._updaters[cid].to_state(self._local_slice(global_plain, cid))
            for cid in range(self.num_cores)
        ]

    def _initial_lattice(self, initial: str | np.ndarray) -> np.ndarray:
        if isinstance(initial, str):
            if initial == "hot":
                return random_lattice(self.global_shape, PhiloxStream(self.seed, 0))
            if initial == "cold":
                return cold_lattice(self.global_shape)
            raise ValueError(
                f"initial must be 'hot', 'cold' or an array, got {initial!r}"
            )
        plain = np.asarray(initial, dtype=np.float32)
        if plain.shape != self.global_shape:
            raise ValueError(
                f"initial lattice shape {plain.shape} != {self.global_shape}"
            )
        validate_spins(plain)
        return plain

    def _local_slice(self, global_plain: np.ndarray, core_id: int) -> np.ndarray:
        ci, cj = self.torus.coords(core_id)
        lr, lc = self.local_shape
        return global_plain[ci * lr : (ci + 1) * lr, cj * lc : (cj + 1) * lc]

    # -- queries -------------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return self.torus.num_cores

    @property
    def n_sites(self) -> int:
        return self.global_shape[0] * self.global_shape[1]

    def gather_lattice(self) -> np.ndarray:
        """Assemble the global plain lattice from all cores (host-side)."""
        rows, cols = self.global_shape
        lr, lc = self.local_shape
        plain = np.empty((rows, cols), dtype=np.float32)
        for cid, state in enumerate(self._states):
            ci, cj = self.torus.coords(cid)
            plain[ci * lr : (ci + 1) * lr, cj * lc : (cj + 1) * lc] = state.to_plain()
        return plain

    def magnetization(self) -> float:
        return magnetization(self.gather_lattice())

    def energy_per_spin(self) -> float:
        return energy_per_spin(self.gather_lattice())

    # -- evolution ------------------------------------------------------------

    def sweep(
        self,
        n_sweeps: int = 1,
        probs_black: np.ndarray | None = None,
        probs_white: np.ndarray | None = None,
    ) -> None:
        """Advance the whole lattice by ``n_sweeps`` sweeps in lockstep.

        ``probs_black`` / ``probs_white`` are optional *global* uniform
        fields (one per colour phase, full-lattice shape) for
        deterministic equivalence tests; they require ``n_sweeps == 1``.
        """
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        if (probs_black is not None or probs_white is not None) and n_sweeps != 1:
            raise ValueError("explicit probs require n_sweeps == 1")
        telemetry = self.telemetry
        injector = self.fault_injector
        for _ in range(n_sweeps):
            if injector is not None:
                injector.begin_sweep(self.sweeps_done)
            if telemetry is None:
                self._run_sweep(probs_black, probs_white)
                self.pod.mark_step()
                self.sweeps_done += 1
                self._maybe_checkpoint()
                continue
            start = perf_counter()
            self._run_sweep(probs_black, probs_white)
            telemetry.record_sweep(perf_counter() - start)
            step_seconds = self.pod.mark_step()
            telemetry.registry.histogram("modeled_step_seconds").observe(
                step_seconds
            )
            self.sweeps_done += 1
            self._maybe_checkpoint()
            if telemetry.wants_physics(self.sweeps_done):
                plain = self.gather_lattice()
                telemetry.record_physics(
                    plain, magnetization(plain), energy_per_spin(plain)
                )

    def _run_sweep(
        self, probs_black: np.ndarray | None, probs_white: np.ndarray | None
    ) -> None:
        """One lockstep sweep through the SPMD runtime, logging traced spans."""
        track = self._record_trace and self.traced
        if track:
            model_start = max(
                core.profiler.total_seconds for core in self.pod.cores
            )
            replayed0 = sum(ex.sweeps_replayed for ex in self._executors)
            eager0 = sum(ex.sweeps_eager for ex in self._executors)
        self._states = self.runtime.run(
            lambda cid: self._sweep_program(cid, probs_black, probs_white)
        )
        if track:
            model_end = max(
                core.profiler.total_seconds for core in self.pod.cores
            )
            replayed = sum(ex.sweeps_replayed for ex in self._executors) - replayed0
            eager = sum(ex.sweeps_eager for ex in self._executors) - eager0
            if eager == 0:
                name = "traced replay"
            elif replayed == 0:
                name = "traced warmup"
            else:
                name = "traced mixed"
            self.traced_log.append(
                {
                    "name": name,
                    "start": model_start,
                    "duration": model_end - model_start,
                    "args": {
                        "phases_replayed": replayed,
                        "phases_eager": eager,
                        "sweep": self.sweeps_done + 1,
                    },
                }
            )

    def _phase_probs(
        self, core_id: int, color: str, global_probs: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Slice a global uniform field into this core's compact pair."""
        if global_probs is None:
            return None
        if global_probs.shape != self.global_shape:
            raise ValueError(
                f"probs shape {global_probs.shape} != global {self.global_shape}"
            )
        local = self._local_slice(global_probs, core_id)
        q00, q01, q10, q11 = plain_to_quarters(local.astype(np.float32))
        block = self._updaters[core_id].block_shape
        if color == "black":
            return plain_to_grid(q00, block), plain_to_grid(q11, block)
        return plain_to_grid(q01, block), plain_to_grid(q10, block)

    def _sweep_program(
        self,
        core_id: int,
        probs_black: np.ndarray | None,
        probs_white: np.ndarray | None,
    ) -> Generator[PermuteRequest, np.ndarray, CompactLattice]:
        """The per-core SPMD program for one sweep (two colour phases).

        Under the overlap schedule the op stream is *identical* — same
        slab copies, same permutes, same phase update, same Philox draws
        — but the permutes are flagged ``overlap=True`` (their modeled
        time lands in a window instead of blocking) and each phase ends
        with an :class:`~repro.mesh.runtime.OverlapCommit` carrying the
        interior share of the phase's measured compute, so the runtime
        can charge ``max(interior, comm) + boundary`` for the phase.
        """
        lat = self._states[core_id]
        updater = self._updaters[core_id]
        backend = self._backends[core_id]
        stream = self._streams[core_id]
        executor = self._executors[core_id]
        overlap = self.overlap
        profiler = self.pod.cores[core_id].profiler
        global_probs = {"black": probs_black, "white": probs_white}

        for color in ("black", "white"):
            halos: dict[str, np.ndarray] = {}
            for field, tensor_name, index, send_dir in _PHASE_EXCHANGES[color]:
                slab = backend.slice_copy(getattr(lat, tensor_name), index)
                halos[field] = yield PermuteRequest(
                    tensor=slab,
                    pairs=self.torus.shift_pairs(send_dir),
                    name=f"halo_{color}_{field}",
                    overlap=overlap,
                )
            probs = self._phase_probs(core_id, color, global_probs[color])
            if overlap:
                compute_start = profiler.total_seconds
            if executor is not None and probs is None:
                # Traced path: halos are staged into stable buffers and
                # the phase runs as a recorded program after warm-up.
                lat = executor.run_phase(lat, color, stream, halos)
            else:
                lat = updater.update_color(
                    lat,
                    color,
                    stream=stream,
                    probs=probs,
                    halos=PhaseHalos(**halos),
                )
            if overlap:
                phase_compute = profiler.total_seconds - compute_start
                yield OverlapCommit(
                    interior_seconds=self._interior_fraction * phase_compute,
                    name=f"overlap_{color}",
                )
        return lat

    # -- checkpoint / restart / resilience ----------------------------------

    def _maybe_checkpoint(self) -> None:
        """Snapshot at the sweep boundary if the interval says so.

        Asynchronous-checkpointing idealisation: the snapshot is taken
        host-side between sweeps and never charged to modeled device
        time, so a checkpointed run's modeled timeline (and its chain) is
        identical to an uncheckpointed one.
        """
        interval = self.checkpoint_interval
        if interval is None or self.sweeps_done % interval:
            return
        self._last_checkpoint = self.state_dict()
        if self.telemetry is not None:
            self.telemetry.registry.counter("checkpoints_taken").inc()

    def state_dict(self) -> dict:
        """Serializable ``checkpoint/v2`` snapshot of the whole pod run.

        Carries the assembled global lattice, every core's Philox stream
        state (counters included), the fused-engine selection, the
        topology generation and any recorded topology-change events —
        everything :meth:`from_state_dict` needs for a bit-identical
        resume on the same core grid, or :meth:`run_resilient` needs to
        restart on a degraded one.
        """
        return checkpoint_envelope(
            "distributed",
            {
                "shape": self.global_shape,
                "core_grid": self.core_grid,
                "pod_grid": list(self.pod_grid) if self.pod_grid else None,
                "overlap": self.overlap_config,
                "temperature": self.temperature,
                "field": self.field,
                "updater": self.updater_name,
                "dtype": self.dtype.name,
                "block_shape": self._block_shape_arg,
                "seed": self.seed,
                "fused": self.fused_config,
                "traced": self.traced_config,
                "sweeps_done": self.sweeps_done,
                "lattice": self.gather_lattice(),
                "streams": [stream.state() for stream in self._streams],
                "generation": self._generation,
                "topology_events": [dict(ev) for ev in self.topology_events],
            },
        )

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        pod: PodSlice | None = None,
        link_model: LinkModel | None = None,
        record_trace: bool = False,
        telemetry: RunTelemetry | None = None,
        fault_plan: FaultPlan | None = None,
        checkpoint_interval: int | None = None,
    ) -> "DistributedIsing":
        """Rebuild a distributed run from :meth:`state_dict` output.

        Accepts the ``checkpoint/v2`` envelope (and, with a
        :class:`DeprecationWarning`, legacy v1 dicts).  The lattice,
        every core's Philox counter, the fused selection and the topology
        generation all round-trip, so the resumed chain is bit-identical
        to one that never stopped.  The simulated pod, link model,
        telemetry and fault plan are *not* part of the checkpoint —
        pass them again if the resumed run should carry them.
        """
        state = unwrap_checkpoint(state, "distributed")
        block_shape = state.get("block_shape")
        pod_grid = state.get("pod_grid")
        sim = cls(
            tuple(state["shape"]),
            state["temperature"],
            core_grid=tuple(state["core_grid"]),
            pod_grid=tuple(pod_grid) if pod_grid is not None else None,
            overlap=state.get("overlap", "auto"),
            pod=pod,
            dtype=state["dtype"],
            block_shape=tuple(block_shape) if block_shape is not None else None,
            seed=state["seed"],
            initial=np.asarray(state["lattice"], dtype=np.float32),
            link_model=link_model,
            record_trace=record_trace,
            updater=state["updater"],
            field=state["field"],
            fused=state.get("fused", "auto"),
            traced=state.get("traced", "auto"),
            telemetry=telemetry,
            fault_plan=fault_plan,
            checkpoint_interval=checkpoint_interval,
        )
        sim._generation = int(state.get("generation", 0))
        sim.topology_events = [dict(ev) for ev in state.get("topology_events", [])]
        streams = state["streams"]
        if len(streams) != sim.num_cores:
            raise ValueError(
                f"checkpoint has {len(streams)} streams for {sim.num_cores} cores"
            )
        sim._streams = [PhiloxStream.from_state(s) for s in streams]
        sim.sweeps_done = int(state["sweeps_done"])
        if sim._last_checkpoint is not None:
            sim._last_checkpoint = sim.state_dict()
        return sim

    # Checkpoints restore through the same constructor path either way;
    # ``resume`` is the verb the fault-tolerance docs use.
    resume = from_state_dict

    def run_resilient(self, n_sweeps: int) -> None:
        """Advance ``n_sweeps`` sweeps, surviving permanent core losses.

        Sweeps like :meth:`sweep`; when the fault plan kills a core
        (:class:`~repro.mesh.faults.CoreLostError`) the run restarts from
        the last checkpoint on the largest surviving sub-grid of the
        original decomposition (see
        :func:`~repro.mesh.topology.degraded_grid`), records the topology
        change in :attr:`topology_events`, and re-runs the lost sweeps
        there.  On a hierarchical mesh losses degrade by whole sub-pods —
        a ``kill_pod`` event (:class:`~repro.mesh.faults.PodLostError`)
        or a single dead core inside a pod both shed that pod's tile and
        resume on the surviving pod grid (see
        :func:`~repro.mesh.topology.degraded_pod_grid`).  Requires a
        checkpoint to exist — any ``fault_plan`` or
        ``checkpoint_interval`` at construction guarantees one.
        """
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        target = self.sweeps_done + n_sweeps
        while self.sweeps_done < target:
            try:
                self.sweep(target - self.sweeps_done)
            except CoreLostError as exc:
                self._degrade(exc)

    def _degrade(self, loss: CoreLostError) -> None:
        """Checkpoint-restart on a smaller core grid after a core loss.

        Rebuilds the pod/torus/runtime on the largest strictly-smaller
        sub-grid that still decomposes the global lattice evenly,
        re-scatters the last checkpoint's lattice onto it, and bumps the
        topology generation so the surviving cores draw from fresh
        deterministic Philox streams.  Physics continuity (the chain
        stays a valid Metropolis chain at the same temperature) is the
        contract after a degrade — bit-identity with the undisturbed run
        is not possible once the decomposition changes.
        """
        if self._last_checkpoint is None:
            raise RuntimeError(
                "core lost but no checkpoint to restart from; construct with "
                "checkpoint_interval=... or a fault_plan"
            ) from loss
        old_pod_grid = self.pod_grid
        dead_pod: int | None = None
        if isinstance(self.torus, HierarchicalTorus):
            # Sub-pods are the degrade granularity on a hierarchical
            # mesh: a pod loss (or a single dead core inside a pod —
            # its pod's intra-torus is broken either way) sheds the
            # whole tile and re-forms a smaller pod grid with the
            # intra-pod shape intact.
            if isinstance(loss, PodLostError):
                dead_pod = loss.pod_id
            else:
                dead_pod = self.torus.pod_of(loss.core_id)
            new_torus = degraded_pod_grid(self.torus, self.global_shape)
            if new_torus is None:
                raise loss
            new_grid = (new_torus.rows, new_torus.cols)
            self.pod_grid = new_torus.pod_grid
        else:
            new_grid = degraded_grid(self.core_grid, self.global_shape)
            if new_grid is None:
                raise loss
        old_grid = self.core_grid
        checkpoint = unwrap_checkpoint(self._last_checkpoint, "distributed")
        self._generation += 1
        # The injector survives the rebuild: its fired-event and
        # dead-core records carry over so a one-shot kill does not
        # re-fire against the degraded topology.
        self._build_topology(new_grid)
        self._states = self._scatter(
            np.asarray(checkpoint["lattice"], dtype=np.float32)
        )
        self.sweeps_done = int(checkpoint["sweeps_done"])
        event = {
            "sweep_detected": loss.sweep,
            "resumed_from_sweep": self.sweeps_done,
            "dead_core": loss.core_id,
            "old_grid": list(old_grid),
            "new_grid": list(new_grid),
            "generation": self._generation,
        }
        if dead_pod is not None:
            event["dead_pod"] = dead_pod
            event["old_pod_grid"] = list(old_pod_grid)
            event["new_pod_grid"] = list(self.pod_grid)
        self.topology_events.append(event)
        if self.telemetry is not None:
            self.telemetry.registry.counter("topology_degrades").inc()
        self._last_checkpoint = self.state_dict()

    # -- performance accounting -------------------------------------------------

    def step_time(self) -> float:
        """Modeled seconds of the last marked step (slowest core)."""
        steps = self.pod.cores[0].profiler.steps
        if not steps:
            raise RuntimeError("no sweeps have been run yet")
        return max(
            core.profiler.steps[-1].total for core in self.pod.cores
        )

    def throughput_flips_per_ns(self) -> float:
        """Whole-lattice site updates per nanosecond at the modeled step time."""
        return self.n_sites / (self.step_time() * 1e9)

    def breakdown(self) -> dict[str, float]:
        """Pod-wide per-category time fractions (Table 3 row)."""
        return self.pod.aggregate_profiler().breakdown()

    def core_splits(self) -> list[dict]:
        """Per-core modeled time accounting (report ``cores`` rows).

        One row per TensorCore: booked seconds per profiler category plus
        the compute-vs-communication split.  The communication fraction
        is the same quantity the Table 3/4 machinery reports — charged
        ``collective_permute`` seconds over total booked seconds.
        """
        rows = []
        for core in self.pod.cores:
            profiler = core.profiler
            total = profiler.total_seconds
            comm = profiler.seconds["communication"]
            compute = total - comm
            rows.append(
                {
                    "core_id": core.core_id,
                    "coords": list(core.coords),
                    "seconds": dict(profiler.seconds),
                    "compute_seconds": compute,
                    "communication_seconds": comm,
                    "communication_fraction": comm / total if total else 0.0,
                    "op_counts": dict(profiler.op_counts),
                }
            )
        return rows

    def report(self) -> RunReport:
        """Build the distributed run's RunReport (requires telemetry).

        Includes the per-core compute-vs-communication split from the
        SPMD runtime's profilers and the pod-wide category breakdown, so
        the JSON artifact carries the same attribution the Table 3/4
        reproductions print.
        """
        if self.telemetry is None:
            raise RuntimeError(
                "no telemetry attached; construct with "
                "DistributedIsing(..., telemetry=RunTelemetry())"
            )
        registry = self.telemetry.registry
        registry.gauge("sweeps_done").set(self.sweeps_done)
        registry.gauge("n_cores").set(self.num_cores)
        registry.gauge("collectives_executed").set(
            self.runtime.collectives_executed
        )
        registry.gauge("halo_overlap_windows").set(self.runtime.overlap_windows)
        registry.gauge("halo_overlap_hidden_seconds").set(
            self.runtime.overlap_hidden_seconds
        )
        registry.gauge("halo_overlap_exposed_seconds").set(
            self.runtime.overlap_exposed_seconds
        )
        record_fused_metrics(registry, *self._updaters)
        record_traced_metrics(registry, *self._executors)
        return self.telemetry.build_report(
            kind="distributed",
            run={
                "shape": self.global_shape,
                "local_shape": self.local_shape,
                "core_grid": self.core_grid,
                "pod_grid": list(self.pod_grid) if self.pod_grid else None,
                "overlap": self.overlap,
                "n_cores": self.num_cores,
                "temperature": self.temperature,
                "field": self.field,
                "updater": self.updater_name,
                "backend": "tpu",
                "dtype": self.dtype.name,
                "seed": self.seed,
                "sweeps_done": self.sweeps_done,
                "fused": self.fused,
                "traced": self.traced,
                "generation": self._generation,
                "topology_events": [dict(ev) for ev in self.topology_events],
            },
            rng={"streams": [stream.state() for stream in self._streams]},
            cores=self.core_splits(),
            breakdown=self.breakdown() if self.sweeps_done else {},
        )
