"""Distributed SPMD simulation of the Ising model on a simulated pod slice.

The whole lattice is block-decomposed over a 2D grid of TensorCores; each
core owns a compact sub-lattice and runs Algorithm 2 locally.  Per colour
phase the four boundary slabs that would wrap around the local torus are
instead exchanged with the neighbouring cores via ``collective_permute``
over the simulated toroidal mesh (Fig. 5 of the paper), and spliced into
the neighbour sums through the :class:`~repro.core.kernels.PhaseHalos`
hook.  All cores advance in lockstep under the SPMD runtime, every
compute op charges the owning core's profiler, and communication time is
booked by the mesh link model — which is exactly the machinery behind the
weak-scaling (Table 2/6), breakdown (Table 3), communication (Table 4)
and strong-scaling (Table 7) reproductions.

A 1 x 1 "distributed" run degenerates to the single-core torus (the self
halos equal the local wrap), and for identical per-site uniforms the
multi-core chain is bit-identical to the single-core one — both are
enforced by the integration tests.

With a :class:`~repro.telemetry.report.RunTelemetry` attached the run
additionally produces a per-core compute-vs-communication split
(:meth:`DistributedIsing.core_splits`) and a versioned
:class:`~repro.telemetry.report.RunReport`; recorded trace events export
to Chrome trace JSON via :func:`repro.telemetry.trace.chrome_trace`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Generator

import numpy as np

from ..backend.base import Backend
from ..backend.tpu_backend import TPUBackend
from ..mesh.links import LinkModel
from ..mesh.runtime import PermuteRequest, SPMDRuntime
from ..mesh.topology import Torus2D
from ..observables.energy import energy_per_spin
from ..observables.magnetization import magnetization
from ..rng.streams import PhiloxStream
from ..telemetry.report import RunReport, RunTelemetry
from ..tpu.device import PodSlice
from ..tpu.dtypes import DType, FLOAT32, resolve_dtype
from .compact import CompactUpdater
from .fused import record_fused_metrics
from .kernels import PhaseHalos
from .simulation import resolve_fused
from .lattice import (
    CompactLattice,
    cold_lattice,
    plain_to_grid,
    plain_to_quarters,
    random_lattice,
    validate_spins,
)

__all__ = ["DistributedIsing"]

_ALL = slice(None)

#: Per colour phase: (halo field, slab of which tensor, slab index,
#: permute direction that delivers it).  "Direction" is where each core
#: *sends* its slab; e.g. sending south means every core receives its
#: north halo.  Derived from the Algorithm 2 boundary terms — see
#: repro.core.kernels.compact_neighbor_sums.
_PHASE_EXCHANGES = {
    "black": (
        ("north", "s10", (-1, _ALL, -1, _ALL), "south"),
        ("south", "s01", (0, _ALL, 0, _ALL), "north"),
        ("west", "s01", (_ALL, -1, _ALL, -1), "east"),
        ("east", "s10", (_ALL, 0, _ALL, 0), "west"),
    ),
    "white": (
        ("north", "s11", (-1, _ALL, -1, _ALL), "south"),
        ("south", "s00", (0, _ALL, 0, _ALL), "north"),
        ("west", "s11", (_ALL, -1, _ALL, -1), "east"),
        ("east", "s00", (_ALL, 0, _ALL, 0), "west"),
    ),
}


class DistributedIsing:
    """A multi-core checkerboard Ising chain on a simulated pod slice.

    Parameters
    ----------
    global_shape:
        Whole-lattice shape (rows, cols) or single side length.
    temperature:
        Temperature in J / k_B units.
    core_grid:
        (rows, cols) of the core decomposition; each core gets a
        ``global/rows x global/cols`` sub-lattice (sides must divide
        evenly into even local sides).
    pod:
        An existing :class:`~repro.tpu.device.PodSlice` whose core grid
        matches; one is created when omitted.
    dtype:
        "float32" or "bfloat16" storage on every core.
    block_shape:
        Compact grid block size per core (default: one block per local
        quarter; pass (128, 128) for TPU-shaped accounting).
    seed:
        Global Philox seed; core i uses stream id i + 1, the host
        (initial state) uses stream id 0.
    initial:
        "hot", "cold", or an explicit global +/-1 array.
    link_model:
        Interconnect timing model override.
    record_trace:
        Keep per-op trace events in every core's profiler; export them
        with :func:`repro.telemetry.write_chrome_trace` (Fig. 6 view).
    fused:
        Fused sweep engine selection: ``"auto"`` (default), True or
        False.  The per-core backends are TPU cost-model backends, so
        "auto" resolves to False — the elementwise op sequence is what
        the calibrated cost tables describe.  Pass ``fused=True`` to run
        every core through the fused engine (table-gathered acceptance,
        in-place kernels); the chain stays bit-identical and the halo
        exchange is unaffected because boundary slabs are copied before
        the in-place phase update runs.
    telemetry:
        Optional :class:`~repro.telemetry.report.RunTelemetry` recorder.
        Absent by default (zero-cost, bit-identical chains); when
        attached, the SPMD runtime also books collective counters into
        its registry and :meth:`report` emits a distributed
        :class:`~repro.telemetry.report.RunReport` with the per-core
        compute-vs-communication split.
    """

    def __init__(
        self,
        global_shape: int | tuple[int, int],
        temperature: float,
        core_grid: tuple[int, int],
        pod: PodSlice | None = None,
        dtype: DType | str = FLOAT32,
        block_shape: tuple[int, int] | None = None,
        seed: int = 0,
        initial: str | np.ndarray = "hot",
        link_model: LinkModel | None = None,
        record_trace: bool = False,
        updater: str = "compact",
        field: float = 0.0,
        fused: "bool | str" = "auto",
        telemetry: RunTelemetry | None = None,
    ) -> None:
        if updater not in ("compact", "conv"):
            raise ValueError(
                f"updater must be 'compact' or 'conv', got {updater!r}"
            )
        if isinstance(global_shape, (int, np.integer)):
            global_shape = (int(global_shape), int(global_shape))
        rows, cols = global_shape
        p_rows, p_cols = core_grid
        if p_rows <= 0 or p_cols <= 0:
            raise ValueError(f"core grid must be positive, got {core_grid}")
        if rows % p_rows or cols % p_cols:
            raise ValueError(
                f"global shape {global_shape} not divisible by core grid {core_grid}"
            )
        local_rows, local_cols = rows // p_rows, cols // p_cols
        if local_rows % 2 or local_cols % 2:
            raise ValueError(
                f"per-core lattice {local_rows}x{local_cols} must have even sides"
            )
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")

        self.global_shape = (rows, cols)
        self.core_grid = (p_rows, p_cols)
        self.local_shape = (local_rows, local_cols)
        self.temperature = float(temperature)
        self.beta = 1.0 / self.temperature
        self.field = float(field)
        self.dtype = resolve_dtype(dtype)
        self.seed = int(seed)
        self.sweeps_done = 0
        self.fused_config = resolve_fused(fused)
        # Per-core backends are TPU cost models: "auto" keeps the
        # elementwise op sequence the calibrated tables were fit to.
        self.fused = False if self.fused_config == "auto" else self.fused_config

        self.pod = pod if pod is not None else PodSlice(core_grid, record_trace=record_trace)
        if self.pod.core_grid != self.core_grid:
            raise ValueError(
                f"pod core grid {self.pod.core_grid} != requested {self.core_grid}"
            )
        self.telemetry = telemetry
        self.torus = Torus2D(p_rows, p_cols)
        self.runtime = SPMDRuntime(
            self.torus,
            link_model,
            cores=self.pod.cores,
            metrics=telemetry.registry if telemetry is not None else None,
        )

        self._backends: list[Backend] = [
            TPUBackend(core, self.dtype) for core in self.pod.cores
        ]
        self.updater_name = updater
        self._updaters = [
            CompactUpdater(
                self.beta,
                backend,
                block_shape=block_shape
                if block_shape is not None
                else (local_rows // 2, local_cols // 2),
                nn_method="conv" if updater == "conv" else "matmul",
                field=self.field,
                fused=self.fused,
            )
            for backend in self._backends
        ]
        self._streams = [
            PhiloxStream(self.seed, core_id + 1) for core_id in range(self.num_cores)
        ]

        global_plain = self._initial_lattice(initial)
        self._states: list[CompactLattice] = [
            self._updaters[cid].to_state(self._local_slice(global_plain, cid))
            for cid in range(self.num_cores)
        ]

    # -- setup helpers ------------------------------------------------------

    def _initial_lattice(self, initial: str | np.ndarray) -> np.ndarray:
        if isinstance(initial, str):
            if initial == "hot":
                return random_lattice(self.global_shape, PhiloxStream(self.seed, 0))
            if initial == "cold":
                return cold_lattice(self.global_shape)
            raise ValueError(
                f"initial must be 'hot', 'cold' or an array, got {initial!r}"
            )
        plain = np.asarray(initial, dtype=np.float32)
        if plain.shape != self.global_shape:
            raise ValueError(
                f"initial lattice shape {plain.shape} != {self.global_shape}"
            )
        validate_spins(plain)
        return plain

    def _local_slice(self, global_plain: np.ndarray, core_id: int) -> np.ndarray:
        ci, cj = self.torus.coords(core_id)
        lr, lc = self.local_shape
        return global_plain[ci * lr : (ci + 1) * lr, cj * lc : (cj + 1) * lc]

    # -- queries -------------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return self.torus.num_cores

    @property
    def n_sites(self) -> int:
        return self.global_shape[0] * self.global_shape[1]

    def gather_lattice(self) -> np.ndarray:
        """Assemble the global plain lattice from all cores (host-side)."""
        rows, cols = self.global_shape
        lr, lc = self.local_shape
        plain = np.empty((rows, cols), dtype=np.float32)
        for cid, state in enumerate(self._states):
            ci, cj = self.torus.coords(cid)
            plain[ci * lr : (ci + 1) * lr, cj * lc : (cj + 1) * lc] = state.to_plain()
        return plain

    def magnetization(self) -> float:
        return magnetization(self.gather_lattice())

    def energy_per_spin(self) -> float:
        return energy_per_spin(self.gather_lattice())

    # -- evolution ------------------------------------------------------------

    def sweep(
        self,
        n_sweeps: int = 1,
        probs_black: np.ndarray | None = None,
        probs_white: np.ndarray | None = None,
    ) -> None:
        """Advance the whole lattice by ``n_sweeps`` sweeps in lockstep.

        ``probs_black`` / ``probs_white`` are optional *global* uniform
        fields (one per colour phase, full-lattice shape) for
        deterministic equivalence tests; they require ``n_sweeps == 1``.
        """
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        if (probs_black is not None or probs_white is not None) and n_sweeps != 1:
            raise ValueError("explicit probs require n_sweeps == 1")
        telemetry = self.telemetry
        for _ in range(n_sweeps):
            if telemetry is None:
                self._states = self.runtime.run(
                    lambda cid: self._sweep_program(cid, probs_black, probs_white)
                )
                self.pod.mark_step()
                self.sweeps_done += 1
                continue
            start = perf_counter()
            self._states = self.runtime.run(
                lambda cid: self._sweep_program(cid, probs_black, probs_white)
            )
            telemetry.record_sweep(perf_counter() - start)
            step_seconds = self.pod.mark_step()
            telemetry.registry.histogram("modeled_step_seconds").observe(
                step_seconds
            )
            self.sweeps_done += 1
            if telemetry.wants_physics(self.sweeps_done):
                plain = self.gather_lattice()
                telemetry.record_physics(
                    plain, magnetization(plain), energy_per_spin(plain)
                )

    def _phase_probs(
        self, core_id: int, color: str, global_probs: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Slice a global uniform field into this core's compact pair."""
        if global_probs is None:
            return None
        if global_probs.shape != self.global_shape:
            raise ValueError(
                f"probs shape {global_probs.shape} != global {self.global_shape}"
            )
        local = self._local_slice(global_probs, core_id)
        q00, q01, q10, q11 = plain_to_quarters(local.astype(np.float32))
        block = self._updaters[core_id].block_shape
        if color == "black":
            return plain_to_grid(q00, block), plain_to_grid(q11, block)
        return plain_to_grid(q01, block), plain_to_grid(q10, block)

    def _sweep_program(
        self,
        core_id: int,
        probs_black: np.ndarray | None,
        probs_white: np.ndarray | None,
    ) -> Generator[PermuteRequest, np.ndarray, CompactLattice]:
        """The per-core SPMD program for one sweep (two colour phases)."""
        lat = self._states[core_id]
        updater = self._updaters[core_id]
        backend = self._backends[core_id]
        stream = self._streams[core_id]
        global_probs = {"black": probs_black, "white": probs_white}

        for color in ("black", "white"):
            halos: dict[str, np.ndarray] = {}
            for field, tensor_name, index, send_dir in _PHASE_EXCHANGES[color]:
                slab = backend.slice_copy(getattr(lat, tensor_name), index)
                halos[field] = yield PermuteRequest(
                    tensor=slab,
                    pairs=self.torus.shift_pairs(send_dir),
                    name=f"halo_{color}_{field}",
                )
            lat = updater.update_color(
                lat,
                color,
                stream=stream,
                probs=self._phase_probs(core_id, color, global_probs[color]),
                halos=PhaseHalos(**halos),
            )
        return lat

    # -- performance accounting -------------------------------------------------

    def step_time(self) -> float:
        """Modeled seconds of the last marked step (slowest core)."""
        steps = self.pod.cores[0].profiler.steps
        if not steps:
            raise RuntimeError("no sweeps have been run yet")
        return max(
            core.profiler.steps[-1].total for core in self.pod.cores
        )

    def throughput_flips_per_ns(self) -> float:
        """Whole-lattice site updates per nanosecond at the modeled step time."""
        return self.n_sites / (self.step_time() * 1e9)

    def breakdown(self) -> dict[str, float]:
        """Pod-wide per-category time fractions (Table 3 row)."""
        return self.pod.aggregate_profiler().breakdown()

    def core_splits(self) -> list[dict]:
        """Per-core modeled time accounting (report ``cores`` rows).

        One row per TensorCore: booked seconds per profiler category plus
        the compute-vs-communication split.  The communication fraction
        is the same quantity the Table 3/4 machinery reports — charged
        ``collective_permute`` seconds over total booked seconds.
        """
        rows = []
        for core in self.pod.cores:
            profiler = core.profiler
            total = profiler.total_seconds
            comm = profiler.seconds["communication"]
            compute = total - comm
            rows.append(
                {
                    "core_id": core.core_id,
                    "coords": list(core.coords),
                    "seconds": dict(profiler.seconds),
                    "compute_seconds": compute,
                    "communication_seconds": comm,
                    "communication_fraction": comm / total if total else 0.0,
                    "op_counts": dict(profiler.op_counts),
                }
            )
        return rows

    def report(self) -> RunReport:
        """Build the distributed run's RunReport (requires telemetry).

        Includes the per-core compute-vs-communication split from the
        SPMD runtime's profilers and the pod-wide category breakdown, so
        the JSON artifact carries the same attribution the Table 3/4
        reproductions print.
        """
        if self.telemetry is None:
            raise RuntimeError(
                "no telemetry attached; construct with "
                "DistributedIsing(..., telemetry=RunTelemetry())"
            )
        registry = self.telemetry.registry
        registry.gauge("sweeps_done").set(self.sweeps_done)
        registry.gauge("n_cores").set(self.num_cores)
        registry.gauge("collectives_executed").set(
            self.runtime.collectives_executed
        )
        record_fused_metrics(registry, *self._updaters)
        return self.telemetry.build_report(
            kind="distributed",
            run={
                "shape": self.global_shape,
                "local_shape": self.local_shape,
                "core_grid": self.core_grid,
                "n_cores": self.num_cores,
                "temperature": self.temperature,
                "field": self.field,
                "updater": self.updater_name,
                "backend": "tpu",
                "dtype": self.dtype.name,
                "seed": self.seed,
                "sweeps_done": self.sweeps_done,
                "fused": self.fused,
            },
            rng={"streams": [stream.state() for stream in self._streams]},
            cores=self.core_splits(),
            breakdown=self.breakdown() if self.sweeps_done else {},
        )
