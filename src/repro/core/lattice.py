"""Lattice representations and exact layout conversions.

The paper stores the spin lattice in three layouts:

* **plain** — a 2D array ``(rows, cols)`` of spins in {-1, +1} on a torus;
* **grid** — a rank-4 tensor ``[m, n, r, c]``: an ``m x n`` grid of
  ``r x c`` sub-lattices (``r = c = 128`` on TPU, to match MXU registers
  and HBM tiling); ``grid[i, j]`` is the sub-lattice at grid position
  ``(i, j)``.  The batched ensemble adds a leading chain axis — the
  rank-5 form ``[batch, m, n, r, c]`` — and the kernels and updaters
  broadcast over it;
* **compact** — Figure 3-(2): the four interleaved sub-lattices
  ``sigma00 = sigma[0::2, 0::2]`` etc., each kept in grid form.  ``sigma00``
  and ``sigma11`` hold all *black* spins, ``sigma01`` and ``sigma10`` all
  *white* spins (colour = parity of row+col).

All conversions are exact inverses of each other, which the property-based
tests verify on random lattices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng.streams import PhiloxStream

__all__ = [
    "random_lattice",
    "cold_lattice",
    "validate_spins",
    "plain_to_grid",
    "grid_to_plain",
    "plain_to_quarters",
    "quarters_to_plain",
    "checkerboard_mask",
    "CompactLattice",
]


def random_lattice(
    shape: tuple[int, int], stream: PhiloxStream, p_up: float = 0.5
) -> np.ndarray:
    """A hot (disordered) start: each spin +1 with probability ``p_up``."""
    rows, cols = shape
    if rows <= 0 or cols <= 0:
        raise ValueError(f"lattice shape must be positive, got {shape}")
    u = stream.uniform((rows, cols))
    return np.where(u < p_up, 1.0, -1.0).astype(np.float32)


def cold_lattice(shape: tuple[int, int], value: int = 1) -> np.ndarray:
    """A cold (fully ordered) start with every spin equal to ``value``."""
    if value not in (1, -1):
        raise ValueError(f"spin value must be +1 or -1, got {value}")
    return np.full(shape, float(value), dtype=np.float32)


def validate_spins(plain: np.ndarray) -> None:
    """Raise if the array is not a valid +/-1 spin lattice."""
    if plain.ndim != 2:
        raise ValueError(f"expected a 2D lattice, got shape {plain.shape}")
    if not np.all(np.abs(plain) == 1.0):
        bad = np.unique(plain[np.abs(plain) != 1.0])
        raise ValueError(f"spins must be +/-1; found values {bad[:8]}")


def plain_to_grid(plain: np.ndarray, block_shape: tuple[int, int]) -> np.ndarray:
    """Split a plain lattice into an ``[m, n, r, c]`` grid of blocks."""
    rows, cols = plain.shape
    r, c = block_shape
    if r <= 0 or c <= 0:
        raise ValueError(f"block shape must be positive, got {block_shape}")
    if rows % r or cols % c:
        raise ValueError(
            f"lattice shape {plain.shape} not divisible by block shape {block_shape}"
        )
    m, n = rows // r, cols // c
    return np.ascontiguousarray(
        plain.reshape(m, r, n, c).transpose(0, 2, 1, 3)
    )


def grid_to_plain(grid: np.ndarray) -> np.ndarray:
    """Inverse of :func:`plain_to_grid`."""
    if grid.ndim != 4:
        raise ValueError(f"expected a rank-4 grid, got shape {grid.shape}")
    m, n, r, c = grid.shape
    return np.ascontiguousarray(grid.transpose(0, 2, 1, 3).reshape(m * r, n * c))


def plain_to_quarters(
    plain: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extract the four interleaved quarters (sigma00, sigma01, sigma10, sigma11).

    ``sigma_xy`` holds the spins at rows ``x mod 2`` and columns
    ``y mod 2``; the lattice must have even dimensions so every quarter has
    the same shape.
    """
    rows, cols = plain.shape
    if rows % 2 or cols % 2:
        raise ValueError(f"lattice shape must be even, got {plain.shape}")
    return (
        np.ascontiguousarray(plain[0::2, 0::2]),
        np.ascontiguousarray(plain[0::2, 1::2]),
        np.ascontiguousarray(plain[1::2, 0::2]),
        np.ascontiguousarray(plain[1::2, 1::2]),
    )


def quarters_to_plain(
    q00: np.ndarray, q01: np.ndarray, q10: np.ndarray, q11: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`plain_to_quarters`."""
    h, w = q00.shape
    for name, q in (("q01", q01), ("q10", q10), ("q11", q11)):
        if q.shape != (h, w):
            raise ValueError(f"{name} shape {q.shape} != q00 shape {q00.shape}")
    plain = np.empty((2 * h, 2 * w), dtype=np.float32)
    plain[0::2, 0::2] = q00
    plain[0::2, 1::2] = q01
    plain[1::2, 0::2] = q10
    plain[1::2, 1::2] = q11
    return plain


def checkerboard_mask(shape: tuple[int, int], color: str = "black") -> np.ndarray:
    """The binary mask ``M`` of the paper: 1 on sites of the given colour.

    Black sites are those with even (row + col) parity — the convention
    under which sigma00/sigma11 are black.
    """
    if color not in ("black", "white"):
        raise ValueError(f"color must be 'black' or 'white', got {color!r}")
    rows, cols = shape
    parity = (np.add.outer(np.arange(rows), np.arange(cols)) % 2).astype(np.float32)
    black = 1.0 - parity
    return black if color == "black" else parity


@dataclass
class CompactLattice:
    """The compact representation of Figure 3-(2), in grid form.

    Attributes ``s00``, ``s01``, ``s10``, ``s11`` are each ``[m, n, r, c]``
    grids over the corresponding H x W quarter of the ``(2H, 2W)`` plain
    lattice.  Black spins live in (s00, s11); white in (s01, s10).

    A rank-5 ``[batch, m, n, r, c]`` form is also accepted: the leading
    axis indexes independent ensemble chains sharing one lattice geometry
    (see :class:`~repro.core.ensemble.EnsembleSimulation`), and every
    kernel addresses the grid axes from the right so the chain axis
    broadcasts through untouched.
    """

    s00: np.ndarray
    s01: np.ndarray
    s10: np.ndarray
    s11: np.ndarray

    def __post_init__(self) -> None:
        shape = self.s00.shape
        if len(shape) not in (4, 5):
            raise ValueError(
                f"compact tensors must be rank 4 (or 5 when batched), got shape {shape}"
            )
        for name in ("s01", "s10", "s11"):
            other = getattr(self, name).shape
            if other != shape:
                raise ValueError(f"{name} shape {other} != s00 shape {shape}")

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.s00.shape

    @property
    def batched(self) -> bool:
        """True when the tensors carry a leading ensemble chain axis."""
        return self.s00.ndim == 5

    @property
    def n_chains(self) -> int:
        """Number of ensemble chains (1 for the unbatched form)."""
        return self.s00.shape[0] if self.batched else 1

    @property
    def plain_shape(self) -> tuple[int, int]:
        m, n, r, c = self.s00.shape[-4:]
        return 2 * m * r, 2 * n * c

    @property
    def n_sites(self) -> int:
        rows, cols = self.plain_shape
        return rows * cols

    @classmethod
    def stack(cls, lats: "list[CompactLattice]") -> "CompactLattice":
        """Stack unbatched lattices of one geometry into the batched form."""
        if not lats:
            raise ValueError("need at least one lattice to stack")
        if any(lat.batched for lat in lats):
            raise ValueError("can only stack unbatched lattices")
        return cls(
            s00=np.stack([lat.s00 for lat in lats]),
            s01=np.stack([lat.s01 for lat in lats]),
            s10=np.stack([lat.s10 for lat in lats]),
            s11=np.stack([lat.s11 for lat in lats]),
        )

    def chain(self, index: int) -> "CompactLattice":
        """Extract one chain of a batched lattice as an unbatched copy."""
        if not self.batched:
            raise ValueError("chain() requires a batched lattice")
        return CompactLattice(
            s00=np.ascontiguousarray(self.s00[index]),
            s01=np.ascontiguousarray(self.s01[index]),
            s10=np.ascontiguousarray(self.s10[index]),
            s11=np.ascontiguousarray(self.s11[index]),
        )

    @classmethod
    def from_plain(
        cls, plain: np.ndarray, block_shape: tuple[int, int] | None = None
    ) -> "CompactLattice":
        """Build the compact grid form from a plain +/-1 lattice.

        ``block_shape`` is the (r, c) of each compact block; the default is
        one block spanning the whole quarter (fine off-TPU, where there is
        no 128-alignment constraint).
        """
        q00, q01, q10, q11 = plain_to_quarters(plain)
        if block_shape is None:
            block_shape = q00.shape
        return cls(
            s00=plain_to_grid(q00, block_shape),
            s01=plain_to_grid(q01, block_shape),
            s10=plain_to_grid(q10, block_shape),
            s11=plain_to_grid(q11, block_shape),
        )

    def to_plain(self) -> np.ndarray:
        """Reassemble the plain lattice (exact inverse).

        Returns ``(2H, 2W)`` for the unbatched form and
        ``(batch, 2H, 2W)`` for the batched form.
        """
        if self.batched:
            return np.stack([self.chain(b).to_plain() for b in range(self.n_chains)])
        return quarters_to_plain(
            grid_to_plain(self.s00),
            grid_to_plain(self.s01),
            grid_to_plain(self.s10),
            grid_to_plain(self.s11),
        )

    def copy(self) -> "CompactLattice":
        return CompactLattice(
            self.s00.copy(), self.s01.copy(), self.s10.copy(), self.s11.copy()
        )

    def black(self) -> tuple[np.ndarray, np.ndarray]:
        """The two black compact sub-lattices (s00, s11)."""
        return self.s00, self.s11

    def white(self) -> tuple[np.ndarray, np.ndarray]:
        """The two white compact sub-lattices (s01, s10)."""
        return self.s01, self.s10
