"""Three-dimensional Ising model — the paper's stated future work.

Sec. 6 of the paper: "The algorithm used in this work can be generalized
for three-dimensional Ising model."  The checkerboard decomposition
survives verbatim in any dimension — colour sites by the parity of the
coordinate sum, and all sites of one colour have opposite-colour
neighbours only — so this module provides that generalization on a 3D
torus: a vectorised roll-based checkerboard Metropolis sweep, the same
Philox uniforms, external-field support, and the standard observables.

The 3D model has no exact solution; its critical temperature is known
numerically to high precision (Tc ~ 4.5115 J/k_B, e.g. Ferrenberg, Xu &
Landau 2018, which the paper cites as the simulation frontier), and the
tests verify ordered/disordered behaviour on the two sides of it plus
exact stationarity via enumeration on tiny 3D tori.
"""

from __future__ import annotations

import numpy as np

from ..rng.streams import PhiloxStream

__all__ = ["T_CRITICAL_3D", "neighbor_sum_roll_3d", "checkerboard_mask_3d", "Ising3D"]

#: Best numerical estimate of the 3D critical temperature (J / k_B units);
#: beta_c = 0.22165463(8) from Ferrenberg, Xu & Landau (2018).
T_CRITICAL_3D = 1.0 / 0.22165463


def neighbor_sum_roll_3d(spins: np.ndarray) -> np.ndarray:
    """6-neighbour sum on the 3D torus."""
    if spins.ndim != 3:
        raise ValueError(f"expected a 3D lattice, got shape {spins.shape}")
    total = np.zeros_like(spins, dtype=np.float32)
    for axis in range(3):
        total += np.roll(spins, 1, axis=axis)
        total += np.roll(spins, -1, axis=axis)
    return total


def checkerboard_mask_3d(shape: tuple[int, int, int], color: str = "black") -> np.ndarray:
    """1 on sites whose coordinate-sum parity matches the colour."""
    if color not in ("black", "white"):
        raise ValueError(f"color must be 'black' or 'white', got {color!r}")
    nx, ny, nz = shape
    parity = (
        np.add.outer(np.add.outer(np.arange(nx), np.arange(ny)), np.arange(nz)) % 2
    ).astype(np.float32)
    return (1.0 - parity) if color == "black" else parity


class Ising3D:
    """Checkerboard Metropolis chain on a 3D torus.

    Parameters mirror :class:`~repro.core.simulation.IsingSimulation`;
    lattice sides must be even so the two-colouring is consistent.
    """

    def __init__(
        self,
        shape: int | tuple[int, int, int],
        temperature: float,
        seed: int = 0,
        stream_id: int = 0,
        initial: str | np.ndarray = "hot",
        field: float = 0.0,
    ) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),) * 3
        if len(shape) != 3:
            raise ValueError(f"expected a 3D shape, got {shape}")
        if any(s % 2 or s <= 0 for s in shape):
            raise ValueError(f"lattice sides must be positive and even, got {shape}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")

        self.shape = tuple(shape)
        self.temperature = float(temperature)
        self.beta = 1.0 / self.temperature
        self.field = float(field)
        self.stream = PhiloxStream(seed, stream_id)
        self.sweeps_done = 0
        self._factor = np.float32(-2.0 * self.beta)
        self._masks = {
            color: checkerboard_mask_3d(self.shape, color)
            for color in ("black", "white")
        }

        if isinstance(initial, str):
            if initial == "hot":
                u = self.stream.uniform(self.shape)
                self._spins = np.where(u < 0.5, 1.0, -1.0).astype(np.float32)
            elif initial == "cold":
                self._spins = np.ones(self.shape, dtype=np.float32)
            else:
                raise ValueError(
                    f"initial must be 'hot', 'cold' or an array, got {initial!r}"
                )
        else:
            spins = np.asarray(initial, dtype=np.float32)
            if spins.shape != self.shape:
                raise ValueError(f"initial shape {spins.shape} != {self.shape}")
            if not np.all(np.abs(spins) == 1.0):
                raise ValueError("spins must be +/-1")
            self._spins = spins.copy()

    # -- state ----------------------------------------------------------------

    @property
    def lattice(self) -> np.ndarray:
        return self._spins.copy()

    @property
    def n_sites(self) -> int:
        return int(np.prod(self.shape))

    def magnetization(self) -> float:
        return float(np.mean(self._spins, dtype=np.float64))

    def energy_per_spin(self) -> float:
        """Bond energy per site, in [-3, 3] for the cubic lattice."""
        sigma = self._spins.astype(np.float64)
        forward = (
            np.roll(sigma, -1, axis=0)
            + np.roll(sigma, -1, axis=1)
            + np.roll(sigma, -1, axis=2)
        )
        return float(-np.sum(sigma * forward) / self.n_sites)

    # -- evolution ------------------------------------------------------------

    def update_color(self, color: str, probs: np.ndarray | None = None) -> None:
        """One colour phase: parallel Metropolis on half the sites."""
        if probs is None:
            probs = self.stream.uniform(self.shape)
        nn = neighbor_sum_roll_3d(self._spins)
        if self.field != 0.0:
            nn = (nn + np.float32(self.field)).astype(np.float32)
        with np.errstate(over="ignore"):
            ratio = np.exp(self._factor * (self._spins * nn))
        flips = (probs < ratio).astype(np.float32) * self._masks[color]
        self._spins = (self._spins - np.float32(2.0) * flips * self._spins).astype(
            np.float32
        )

    def sweep(self) -> None:
        """One full sweep: black then white phase."""
        self.update_color("black")
        self.update_color("white")
        self.sweeps_done += 1

    def run(self, n_sweeps: int) -> None:
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        for _ in range(n_sweeps):
            self.sweep()

    def sample_magnetization(self, n_samples: int, burn_in: int = 0) -> np.ndarray:
        """Per-sweep magnetization series after burn-in."""
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        self.run(burn_in)
        out = np.empty(n_samples, dtype=np.float64)
        for k in range(n_samples):
            self.sweep()
            out[k] = self.magnetization()
        return out
