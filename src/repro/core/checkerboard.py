"""Algorithm 1: the naive checkerboard updater (``UpdateNaive``).

One colour phase computes neighbour sums for *every* site via blocked
matmuls, draws uniforms for *every* site, and then masks the flips down to
the active colour — the three redundancies the paper's compact Algorithm 2
eliminates.  It is retained both as the reference TPU mapping and as the
ablation partner for the "about 3x faster" claim.

State is the rank-4 grid form ``[m, n, r, c]``; helpers accept plain
lattices for convenience.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..rng.streams import PhiloxStream
from .kernels import neighbor_sum_grid
from .lattice import checkerboard_mask, grid_to_plain, plain_to_grid
from .update import metropolis_flip

__all__ = ["CheckerboardUpdater"]


class CheckerboardUpdater:
    """Stateless driver for Algorithm 1 sweeps.

    Parameters
    ----------
    beta:
        Inverse temperature (J = 1, k_B = 1).
    backend:
        Op executor; defaults to a pure float32 numpy backend.
    block_shape:
        (r, c) of the grid blocks; 128 x 128 on the real device.
    """

    def __init__(
        self,
        beta: float,
        backend: Backend | None = None,
        block_shape: tuple[int, int] = (128, 128),
        field: float = 0.0,
    ) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.field = float(field)
        self.backend = backend if backend is not None else NumpyBackend()
        self.block_shape = tuple(block_shape)
        self._mask_cache: dict[tuple[int, int, int, int], dict[str, np.ndarray]] = {}

    def _masks(self, grid_shape: tuple[int, int, int, int]) -> dict[str, np.ndarray]:
        """Colour masks ``M`` / ``1 - M`` in grid form, cached per shape."""
        masks = self._mask_cache.get(grid_shape)
        if masks is None:
            m, n, r, c = grid_shape
            plain_shape = (m * r, n * c)
            masks = {
                color: self.backend.array(
                    plain_to_grid(checkerboard_mask(plain_shape, color), (r, c))
                )
                for color in ("black", "white")
            }
            self._mask_cache[grid_shape] = masks
        return masks

    def update_color(
        self,
        grid: np.ndarray,
        color: str,
        stream: PhiloxStream | None = None,
        probs: np.ndarray | None = None,
    ) -> np.ndarray:
        """One colour phase: lines 1-10 of Algorithm 1.

        ``probs`` (full-lattice uniforms in grid form) may be supplied for
        deterministic cross-implementation tests; otherwise they are drawn
        from ``stream``.
        """
        if probs is None:
            if stream is None:
                raise ValueError("either stream or probs must be provided")
            probs = self.backend.random_uniform(grid.shape, stream)
        elif probs.shape != grid.shape:
            raise ValueError(f"probs shape {probs.shape} != grid shape {grid.shape}")
        nn = neighbor_sum_grid(grid, self.backend)
        mask = self._masks(grid.shape)[color]
        return metropolis_flip(
            self.backend, grid, nn, probs, self.beta, mask=mask, field=self.field
        )

    def sweep(
        self,
        grid: np.ndarray,
        stream: PhiloxStream | None = None,
        probs_black: np.ndarray | None = None,
        probs_white: np.ndarray | None = None,
    ) -> np.ndarray:
        """One full sweep: a black phase followed by a white phase."""
        grid = self.update_color(grid, "black", stream, probs_black)
        return self.update_color(grid, "white", stream, probs_white)

    # -- plain-lattice conveniences ---------------------------------------

    def to_state(self, plain: np.ndarray) -> np.ndarray:
        """Convert a plain lattice into this updater's grid state."""
        return self.backend.array(plain_to_grid(plain, self.block_shape))

    def to_plain(self, grid: np.ndarray) -> np.ndarray:
        return grid_to_plain(grid)

    def sweep_plain(
        self, plain: np.ndarray, stream: PhiloxStream
    ) -> np.ndarray:
        """One sweep on a plain lattice (converting in and out)."""
        return self.to_plain(self.sweep(self.to_state(plain), stream))
