"""Algorithm 1: the naive checkerboard updater (``UpdateNaive``).

One colour phase computes neighbour sums for *every* site via blocked
matmuls, draws uniforms for *every* site, and then masks the flips down to
the active colour — the three redundancies the paper's compact Algorithm 2
eliminates.  It is retained both as the reference TPU mapping and as the
ablation partner for the "about 3x faster" claim.

State is the rank-4 grid form ``[m, n, r, c]``, or the batched rank-5
form ``[batch, m, n, r, c]`` when driving an ensemble of chains (see
:mod:`repro.core.ensemble`); helpers accept plain lattices for
convenience.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..rng.streams import PhiloxStream
from .accept import AcceptanceTable
from .fused import SweepWorkspace, fused_metropolis_flip
from .kernels import neighbor_sum_grid, neighbor_sum_grid_into
from .lattice import checkerboard_mask, grid_to_plain, plain_to_grid
from .update import metropolis_flip

__all__ = ["CheckerboardUpdater"]


class CheckerboardUpdater:
    """Stateless driver for Algorithm 1 sweeps.

    Parameters
    ----------
    beta:
        Inverse temperature (J = 1, k_B = 1).
    backend:
        Op executor; defaults to a pure float32 numpy backend.
    block_shape:
        (r, c) of the grid blocks; 128 x 128 on the real device.
    fused:
        When true, sweeps run the fused engine: acceptance probabilities
        come from a precomputed :class:`AcceptanceTable` gather and every
        intermediate lives in a reusable :class:`SweepWorkspace`, so
        steady-state sweeps allocate nothing and **mutate the grid in
        place** (bit-identical trajectories to the elementwise path).
    """

    def __init__(
        self,
        beta: float | np.ndarray,
        backend: Backend | None = None,
        block_shape: tuple[int, int] = (128, 128),
        field: float = 0.0,
        fused: bool = False,
    ) -> None:
        if np.any(np.asarray(beta) <= 0):
            raise ValueError(f"beta must be positive, got {beta}")
        # Scalar for a single chain; a (batch, 1, 1, 1, 1) broadcast array
        # when driving a batched ensemble at per-chain temperatures.
        self.beta = float(beta) if np.ndim(beta) == 0 else np.asarray(beta, dtype=np.float64)
        self.field = float(field)
        self.backend = backend if backend is not None else NumpyBackend()
        self.block_shape = tuple(block_shape)
        self.fused = bool(fused)
        self._mask_cache: dict[tuple[int, int, int, int], dict[str, np.ndarray]] = {}
        self._workspace: SweepWorkspace | None = None
        self._accept_table: AcceptanceTable | None = None

    @property
    def workspace(self) -> SweepWorkspace | None:
        """The fused engine's scratch workspace (None until first use)."""
        return self._workspace

    def _fused_ctx(self) -> tuple[AcceptanceTable, SweepWorkspace]:
        if self._workspace is None:
            self._workspace = SweepWorkspace()
        if self._accept_table is None:
            self._accept_table = AcceptanceTable(
                self.backend, self.beta, field=self.field
            )
        return self._accept_table, self._workspace

    def retemper(self, beta: float | np.ndarray) -> None:
        """Swap in new (per-chain) inverse temperatures, in place.

        Keeps the workspace (its buffers are beta-independent) and drops
        only the acceptance table, so replica-exchange swap rounds pay a
        table rebuild instead of a full updater rebuild.  Callers holding
        a traced executor must ``rebind`` it afterwards.
        """
        if np.any(np.asarray(beta) <= 0):
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta) if np.ndim(beta) == 0 else np.asarray(beta, dtype=np.float64)
        self._accept_table = None

    def _masks(self, grid_shape: tuple[int, ...]) -> dict[str, np.ndarray]:
        """Colour masks ``M`` / ``1 - M`` in grid form, cached per shape.

        Masks depend only on the trailing ``(m, n, r, c)`` geometry; a
        batched grid broadcasts the rank-4 mask over its chain axis.
        """
        key = tuple(grid_shape[-4:])
        masks = self._mask_cache.get(key)
        if masks is None:
            m, n, r, c = key
            plain_shape = (m * r, n * c)
            masks = {
                color: self.backend.array(
                    plain_to_grid(checkerboard_mask(plain_shape, color), (r, c))
                )
                for color in ("black", "white")
            }
            self._mask_cache[key] = masks
        return masks

    def update_color(
        self,
        grid: np.ndarray,
        color: str,
        stream: PhiloxStream | None = None,
        probs: np.ndarray | None = None,
    ) -> np.ndarray:
        """One colour phase: lines 1-10 of Algorithm 1.

        ``probs`` (full-lattice uniforms in grid form) may be supplied for
        deterministic cross-implementation tests; otherwise they are drawn
        from ``stream``.

        In fused mode the grid is updated *in place* and returned.
        """
        if self.fused:
            table, ws = self._fused_ctx()
            if probs is None:
                if stream is None:
                    raise ValueError("either stream or probs must be provided")
                probs = ws.buffer("probs", grid.shape)
                self.backend.uniform_into(stream, probs)
            elif probs.shape != grid.shape:
                raise ValueError(
                    f"probs shape {probs.shape} != grid shape {grid.shape}"
                )
            nn = neighbor_sum_grid_into(grid, self.backend, ws)
            mask = self._masks(grid.shape)[color]
            return fused_metropolis_flip(
                self.backend, grid, nn, probs, table, ws, mask=mask
            )
        if probs is None:
            if stream is None:
                raise ValueError("either stream or probs must be provided")
            probs = self.backend.random_uniform(grid.shape, stream)
        elif probs.shape != grid.shape:
            raise ValueError(f"probs shape {probs.shape} != grid shape {grid.shape}")
        nn = neighbor_sum_grid(grid, self.backend)
        mask = self._masks(grid.shape)[color]
        return metropolis_flip(
            self.backend, grid, nn, probs, self.beta, mask=mask, field=self.field
        )

    def sweep(
        self,
        grid: np.ndarray,
        stream: PhiloxStream | None = None,
        probs_black: np.ndarray | None = None,
        probs_white: np.ndarray | None = None,
    ) -> np.ndarray:
        """One full sweep: a black phase followed by a white phase."""
        grid = self.update_color(grid, "black", stream, probs_black)
        return self.update_color(grid, "white", stream, probs_white)

    # -- plain-lattice conveniences ---------------------------------------

    def to_state(self, plain: np.ndarray) -> np.ndarray:
        """Convert a plain lattice into this updater's grid state.

        A ``(batch, rows, cols)`` stack of chains becomes the rank-5
        batched grid ``[batch, m, n, r, c]``.
        """
        if plain.ndim == 3:
            return self.backend.array(
                np.stack([plain_to_grid(p, self.block_shape) for p in plain])
            )
        return self.backend.array(plain_to_grid(plain, self.block_shape))

    def to_plain(self, grid: np.ndarray) -> np.ndarray:
        if grid.ndim == 5:
            return np.stack([grid_to_plain(g) for g in grid])
        return grid_to_plain(grid)

    def sweep_plain(
        self, plain: np.ndarray, stream: PhiloxStream
    ) -> np.ndarray:
        """One sweep on a plain lattice (converting in and out)."""
        return self.to_plain(self.sweep(self.to_state(plain), stream))
