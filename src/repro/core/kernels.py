"""Nearest-neighbour sum kernels.

The compute-intensive part of the checkerboard algorithm is the sum of the
four nearest neighbours of every spin.  The paper evaluates three ways to
compute it, all reproduced here:

* ``neighbor_sum_roll`` — the textbook torus-roll formulation (ground
  truth for tests, and the host-side baseline);
* ``neighbor_sum_grid`` — Algorithm 1: per-block matmuls with the
  tridiagonal 0/1 kernel ``K`` plus boundary compensation between blocks
  (this is what maps onto the MXU);
* ``compact_neighbor_sums`` — Algorithm 2: the four interleaved compact
  sub-lattices with the upper-bidiagonal kernel ``K_hat``; per colour
  phase only the two opposite-colour tensors are read, and only the two
  active tensors get neighbour sums — no masking, no wasted work.

The compact phase functions accept optional *halos*: in the distributed
pod simulation, the slabs that would wrap around the local torus edge are
replaced by boundary values received from neighbouring cores via
``collective_permute`` (see :mod:`repro.core.distributed`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.base import Backend
from .lattice import CompactLattice

__all__ = [
    "kernel_K",
    "kernel_K_hat",
    "neighbor_sum_roll",
    "neighbor_sum_grid",
    "neighbor_sum_grid_into",
    "PhaseHalos",
    "compact_neighbor_sums",
    "compact_neighbor_sums_into",
]

_ALL = slice(None)


def kernel_K(n: int) -> np.ndarray:
    """The paper's kernel ``K``: ones on the super- and sub-diagonal.

    ``matmul(sigma, K)`` sums each site's left and right neighbours;
    ``matmul(K, sigma)`` its up and down neighbours (within one block).
    """
    if n < 1:
        raise ValueError(f"kernel size must be >= 1, got {n}")
    k = np.zeros((n, n), dtype=np.float32)
    idx = np.arange(n - 1)
    k[idx, idx + 1] = 1.0
    k[idx + 1, idx] = 1.0
    return k


def kernel_K_hat(n: int) -> np.ndarray:
    """The compact kernel ``K_hat``: ones on the diagonal and super-diagonal.

    With the interleaved compact sub-lattices, a site's two horizontal (or
    vertical) neighbours of the opposite colour sit at offsets {0, -1} (or
    {0, +1}) in the neighbouring compact tensor, which is exactly what one
    multiplication by ``K_hat`` (or its transpose) gathers.
    """
    if n < 1:
        raise ValueError(f"kernel size must be >= 1, got {n}")
    k = np.eye(n, dtype=np.float32)
    idx = np.arange(n - 1)
    k[idx, idx + 1] = 1.0
    return k


def neighbor_sum_roll(plain: np.ndarray) -> np.ndarray:
    """Ground-truth 4-neighbour sum on the torus via four rolls."""
    return (
        np.roll(plain, 1, axis=0)
        + np.roll(plain, -1, axis=0)
        + np.roll(plain, 1, axis=1)
        + np.roll(plain, -1, axis=1)
    ).astype(np.float32)


def neighbor_sum_grid(grid: np.ndarray, backend: Backend) -> np.ndarray:
    """Algorithm 1 lines 2-6: blocked matmul neighbour sum with compensation.

    ``grid`` is ``[m, n, r, c]`` or batched ``[batch, m, n, r, c]`` (any
    number of leading batch axes); the result has the same shape and
    equals :func:`neighbor_sum_roll` of each corresponding plain lattice.
    All grid axes are addressed from the right, so a leading ensemble
    axis broadcasts through untouched.
    """
    if grid.ndim < 4:
        raise ValueError(
            f"expected a rank-4 (or batched rank-5) grid, got shape {grid.shape}"
        )
    r, c = grid.shape[-2:]
    k_row = backend.array(kernel_K(r))
    k_col = backend.array(kernel_K(c))

    # Internal sites: horizontal neighbours via sigma @ K, vertical via
    # K @ sigma, batched over the (m, n) grid (and any ensemble axes).
    nn = backend.add(backend.matmul(grid, k_col), backend.matmul(k_row, grid))

    # Northern boundaries: row 0 of block (i, j) is missing the last row of
    # block (i-1, j); the grid wraps (torus).  Grid-row/grid-column axes
    # sit at -3 / -2 of the boundary slabs regardless of batching.
    north = backend.roll(
        backend.slice_copy(grid, (..., -1, _ALL)), 1, axis=-3
    )
    nn = backend.add_at_slice(nn, (..., 0, _ALL), north)
    # Southern boundaries.
    south = backend.roll(
        backend.slice_copy(grid, (..., 0, _ALL)), -1, axis=-3
    )
    nn = backend.add_at_slice(nn, (..., -1, _ALL), south)
    # Western boundaries.
    west = backend.roll(
        backend.slice_copy(grid, (..., _ALL, -1)), 1, axis=-2
    )
    nn = backend.add_at_slice(nn, (..., _ALL, 0), west)
    # Eastern boundaries.
    east = backend.roll(
        backend.slice_copy(grid, (..., _ALL, 0)), -1, axis=-2
    )
    nn = backend.add_at_slice(nn, (..., _ALL, -1), east)
    return nn


def neighbor_sum_grid_into(grid: np.ndarray, backend: Backend, workspace) -> np.ndarray:
    """Allocation-free twin of :func:`neighbor_sum_grid`.

    Same blocked-matmul-plus-compensation structure, same op-for-op
    quantization, but every intermediate (the two matmul products, the
    four boundary slabs) lives in ``workspace`` scratch buffers and the
    kernels are cached as workspace constants.  Returns the workspace's
    ``nn`` buffer — valid until the next call.
    """
    if grid.ndim < 4:
        raise ValueError(
            f"expected a rank-4 (or batched rank-5) grid, got shape {grid.shape}"
        )
    r, c = grid.shape[-2:]

    nn = workspace.buffer("nn_grid", grid.shape)
    # The two K band matmuls plus their add, as one in-block shifted-sum
    # primitive: bit-identical values (exact small-integer sums) and the
    # same modeled MXU/VPU charges, but host execution is slice adds.
    backend.band_cross_matmul_into(grid, nn)

    # Boundary compensation, staged through two slab buffers per
    # orientation: slab_a holds the copied edge, slab_b the rolled edge,
    # then slab_a is reused as the add_at_slice staging buffer.
    row_shape = grid.shape[:-2] + (c,)
    col_shape = grid.shape[:-1]
    ra = workspace.buffer("nn_row_slab_a", row_shape)
    rb = workspace.buffer("nn_row_slab_b", row_shape)
    backend.slice_copy_into(grid, (..., -1, _ALL), ra)
    backend.roll_into(ra, 1, -3, rb)
    backend.add_at_slice_into(nn, (..., 0, _ALL), rb, ra)
    backend.slice_copy_into(grid, (..., 0, _ALL), ra)
    backend.roll_into(ra, -1, -3, rb)
    backend.add_at_slice_into(nn, (..., -1, _ALL), rb, ra)
    ca = workspace.buffer("nn_col_slab_a", col_shape)
    cb = workspace.buffer("nn_col_slab_b", col_shape)
    backend.slice_copy_into(grid, (..., _ALL, -1), ca)
    backend.roll_into(ca, 1, -2, cb)
    backend.add_at_slice_into(nn, (..., _ALL, 0), cb, ca)
    backend.slice_copy_into(grid, (..., _ALL, 0), ca)
    backend.roll_into(ca, -1, -2, cb)
    backend.add_at_slice_into(nn, (..., _ALL, -1), cb, ca)
    return nn


@dataclass
class PhaseHalos:
    """Boundary values replacing the local torus wrap in one colour phase.

    Each field, when set, overrides the slab entry that ``np.roll`` would
    wrap around the *local* lattice edge:

    * ``north`` — shape ``(n, c)``: the incoming row for grid row 0;
    * ``south`` — shape ``(n, c)``: the incoming row for grid row m-1;
    * ``west`` — shape ``(m, r)``: the incoming column for grid col 0;
    * ``east`` — shape ``(m, r)``: the incoming column for grid col n-1.

    ``None`` fields keep the wrapped value (single-core torus behaviour).
    """

    north: np.ndarray | None = None
    south: np.ndarray | None = None
    west: np.ndarray | None = None
    east: np.ndarray | None = None


def _shifted_slab(
    backend: Backend,
    slab: np.ndarray,
    shift: int,
    axis: int,
    replacement: np.ndarray | None,
) -> np.ndarray:
    """Roll a boundary slab along a grid axis, optionally splicing a halo.

    ``slab`` is ``(..., m, n, c)`` for grid-row (``axis=-3``) rolls or
    ``(..., m, n, r)`` for grid-column (``axis=-2``) rolls; leading axes
    are ensemble batch axes.  After the roll, the entry that wrapped
    around the local edge is replaced by ``replacement`` when given.
    """
    if axis not in (-3, -2):
        raise ValueError(f"axis must be -3 (grid row) or -2 (grid col), got {axis}")
    shifted = backend.roll(slab, shift, axis=axis)
    if replacement is not None:
        edge = 0 if shift > 0 else -1
        index = (Ellipsis, edge) + (_ALL,) * (-axis - 1)
        expected = shifted[index].shape
        if replacement.shape != expected:
            raise ValueError(
                f"halo shape {replacement.shape} != boundary shape {expected}"
            )
        shifted[index] = replacement
    return shifted


def compact_neighbor_sums(
    lat: CompactLattice,
    color: str,
    backend: Backend,
    halos: PhaseHalos | None = None,
    method: str = "matmul",
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 2 neighbour sums for one colour phase.

    Returns ``(nn0, nn1)``: for ``color == "black"`` the neighbour sums of
    (s00, s11); for ``"white"`` those of (s01, s10).  Only opposite-colour
    tensors are read, so the phase is a valid Metropolis-within-Gibbs
    block update.

    ``method`` selects the in-block implementation: ``"matmul"`` uses the
    K_hat band matmuls of Algorithm 2; ``"conv"`` uses the appendix-7.2
    fused 2-tap convolutions.  Both produce bit-identical sums (the
    block-boundary compensation is shared), differing only in modeled
    device cost.
    """
    if color not in ("black", "white"):
        raise ValueError(f"color must be 'black' or 'white', got {color!r}")
    if method not in ("matmul", "conv"):
        raise ValueError(f"method must be 'matmul' or 'conv', got {method!r}")
    halos = halos or PhaseHalos()
    # Grid axes are addressed from the right so a batched (ensemble)
    # lattice with leading chain axes flows through unchanged.
    r, c = lat.grid_shape[-2:]

    if method == "matmul":
        k_row = backend.array(kernel_K_hat(r))
        k_col = backend.array(kernel_K_hat(c))
        k_row_t = backend.array(kernel_K_hat(r).T)
        k_col_t = backend.array(kernel_K_hat(c).T)
        # x[i, j] + x[i, j-1] etc., expressed as the four K_hat products.
        prev_col = lambda x: backend.matmul(x, k_col)  # noqa: E731
        prev_row = lambda x: backend.matmul(k_row_t, x)  # noqa: E731
        next_row = lambda x: backend.matmul(k_row, x)  # noqa: E731
        next_col = lambda x: backend.matmul(x, k_col_t)  # noqa: E731
    else:
        prev_col = lambda x: backend.shifted_pair_sum(x, -1, -1)  # noqa: E731
        prev_row = lambda x: backend.shifted_pair_sum(x, -2, -1)  # noqa: E731
        next_row = lambda x: backend.shifted_pair_sum(x, -2, 1)  # noqa: E731
        next_col = lambda x: backend.shifted_pair_sum(x, -1, 1)  # noqa: E731

    if color == "black":
        s01, s10 = lat.s01, lat.s10
        # nn(s00)[i, j] = s01[i, j] + s01[i, j-1] + s10[i, j] + s10[i-1, j]
        nn0 = backend.add(prev_col(s01), prev_row(s10))
        north = _shifted_slab(
            backend,
            backend.slice_copy(s10, (..., -1, _ALL)),
            1,
            -3,
            halos.north,
        )
        nn0 = backend.add_at_slice(nn0, (..., 0, _ALL), north)
        west = _shifted_slab(
            backend,
            backend.slice_copy(s01, (..., _ALL, -1)),
            1,
            -2,
            halos.west,
        )
        nn0 = backend.add_at_slice(nn0, (..., _ALL, 0), west)

        # nn(s11)[i, j] = s01[i, j] + s01[i+1, j] + s10[i, j] + s10[i, j+1]
        nn1 = backend.add(next_row(s01), next_col(s10))
        south = _shifted_slab(
            backend,
            backend.slice_copy(s01, (..., 0, _ALL)),
            -1,
            -3,
            halos.south,
        )
        nn1 = backend.add_at_slice(nn1, (..., -1, _ALL), south)
        east = _shifted_slab(
            backend,
            backend.slice_copy(s10, (..., _ALL, 0)),
            -1,
            -2,
            halos.east,
        )
        nn1 = backend.add_at_slice(nn1, (..., _ALL, -1), east)
        return nn0, nn1

    s00, s11 = lat.s00, lat.s11
    # nn(s01)[i, j] = s00[i, j] + s00[i, j+1] + s11[i, j] + s11[i-1, j]
    nn0 = backend.add(next_col(s00), prev_row(s11))
    north = _shifted_slab(
        backend,
        backend.slice_copy(s11, (..., -1, _ALL)),
        1,
        -3,
        halos.north,
    )
    nn0 = backend.add_at_slice(nn0, (..., 0, _ALL), north)
    east = _shifted_slab(
        backend,
        backend.slice_copy(s00, (..., _ALL, 0)),
        -1,
        -2,
        halos.east,
    )
    nn0 = backend.add_at_slice(nn0, (..., _ALL, -1), east)

    # nn(s10)[i, j] = s00[i, j] + s00[i+1, j] + s11[i, j] + s11[i, j-1]
    nn1 = backend.add(next_row(s00), prev_col(s11))
    south = _shifted_slab(
        backend,
        backend.slice_copy(s00, (..., 0, _ALL)),
        -1,
        -3,
        halos.south,
    )
    nn1 = backend.add_at_slice(nn1, (..., -1, _ALL), south)
    west = _shifted_slab(
        backend,
        backend.slice_copy(s11, (..., _ALL, -1)),
        1,
        -2,
        halos.west,
    )
    nn1 = backend.add_at_slice(nn1, (..., _ALL, 0), west)
    return nn0, nn1


def _shifted_slab_into(
    backend: Backend,
    slab: np.ndarray,
    shift: int,
    axis: int,
    replacement: np.ndarray | None,
    out: np.ndarray,
) -> np.ndarray:
    """Allocation-free twin of :func:`_shifted_slab` (rolls into ``out``)."""
    if axis not in (-3, -2):
        raise ValueError(f"axis must be -3 (grid row) or -2 (grid col), got {axis}")
    backend.roll_into(slab, shift, axis, out)
    if replacement is not None:
        edge = 0 if shift > 0 else -1
        index = (Ellipsis, edge) + (_ALL,) * (-axis - 1)
        expected = out[index].shape
        if replacement.shape != expected:
            raise ValueError(
                f"halo shape {replacement.shape} != boundary shape {expected}"
            )
        # Through the backend (not a raw indexed store) so the halo
        # splice lands in a recorded sweep trace like every other op.
        backend.assign_at_slice_into(out, index, replacement)
    return out


def compact_neighbor_sums_into(
    lat: CompactLattice,
    color: str,
    backend: Backend,
    workspace,
    halos: PhaseHalos | None = None,
    method: str = "matmul",
) -> tuple[np.ndarray, np.ndarray]:
    """Allocation-free twin of :func:`compact_neighbor_sums`.

    Same op sequence and quantization (bit-identical sums), but the two
    in-block products, both neighbour-sum outputs and all four boundary
    slabs come from ``workspace`` buffers; the K_hat kernels are cached
    as workspace constants.  Returns the workspace's ``(nn0, nn1)``
    buffers — valid until the next call.
    """
    if color not in ("black", "white"):
        raise ValueError(f"color must be 'black' or 'white', got {color!r}")
    if method not in ("matmul", "conv"):
        raise ValueError(f"method must be 'matmul' or 'conv', got {method!r}")
    halos = halos or PhaseHalos()
    shape = lat.grid_shape
    r, c = shape[-2:]

    nn0 = workspace.buffer("compact_nn0", shape)
    nn1 = workspace.buffer("compact_nn1", shape)
    tmp = workspace.buffer("compact_nn_tmp", shape)

    if method == "matmul":
        # Each K_hat band matmul, as a shifted pair sum: bit-identical
        # values and the same modeled MXU charge as the matmul_into twin
        # (see Backend.band_pair_matmul_into), but host execution is
        # slice adds.
        prev_col = lambda x, out: backend.band_pair_matmul_into(x, -1, -1, out)  # noqa: E731
        prev_row = lambda x, out: backend.band_pair_matmul_into(x, -2, -1, out)  # noqa: E731
        next_row = lambda x, out: backend.band_pair_matmul_into(x, -2, 1, out)  # noqa: E731
        next_col = lambda x, out: backend.band_pair_matmul_into(x, -1, 1, out)  # noqa: E731
    else:
        prev_col = lambda x, out: backend.shifted_pair_sum_into(x, -1, -1, out)  # noqa: E731
        prev_row = lambda x, out: backend.shifted_pair_sum_into(x, -2, -1, out)  # noqa: E731
        next_row = lambda x, out: backend.shifted_pair_sum_into(x, -2, 1, out)  # noqa: E731
        next_col = lambda x, out: backend.shifted_pair_sum_into(x, -1, 1, out)  # noqa: E731

    row_shape = shape[:-2] + (c,)
    col_shape = shape[:-1]
    ra = workspace.buffer("compact_row_slab_a", row_shape)
    rb = workspace.buffer("compact_row_slab_b", row_shape)
    ca = workspace.buffer("compact_col_slab_a", col_shape)
    cb = workspace.buffer("compact_col_slab_b", col_shape)

    if color == "black":
        s01, s10 = lat.s01, lat.s10
        prev_col(s01, nn0)
        prev_row(s10, tmp)
        backend.add_into(nn0, tmp, nn0)
        backend.slice_copy_into(s10, (..., -1, _ALL), ra)
        _shifted_slab_into(backend, ra, 1, -3, halos.north, rb)
        backend.add_at_slice_into(nn0, (..., 0, _ALL), rb, ra)
        backend.slice_copy_into(s01, (..., _ALL, -1), ca)
        _shifted_slab_into(backend, ca, 1, -2, halos.west, cb)
        backend.add_at_slice_into(nn0, (..., _ALL, 0), cb, ca)

        next_row(s01, nn1)
        next_col(s10, tmp)
        backend.add_into(nn1, tmp, nn1)
        backend.slice_copy_into(s01, (..., 0, _ALL), ra)
        _shifted_slab_into(backend, ra, -1, -3, halos.south, rb)
        backend.add_at_slice_into(nn1, (..., -1, _ALL), rb, ra)
        backend.slice_copy_into(s10, (..., _ALL, 0), ca)
        _shifted_slab_into(backend, ca, -1, -2, halos.east, cb)
        backend.add_at_slice_into(nn1, (..., _ALL, -1), cb, ca)
        return nn0, nn1

    s00, s11 = lat.s00, lat.s11
    next_col(s00, nn0)
    prev_row(s11, tmp)
    backend.add_into(nn0, tmp, nn0)
    backend.slice_copy_into(s11, (..., -1, _ALL), ra)
    _shifted_slab_into(backend, ra, 1, -3, halos.north, rb)
    backend.add_at_slice_into(nn0, (..., 0, _ALL), rb, ra)
    backend.slice_copy_into(s00, (..., _ALL, 0), ca)
    _shifted_slab_into(backend, ca, -1, -2, halos.east, cb)
    backend.add_at_slice_into(nn0, (..., _ALL, -1), cb, ca)

    next_row(s00, nn1)
    prev_col(s11, tmp)
    backend.add_into(nn1, tmp, nn1)
    backend.slice_copy_into(s00, (..., 0, _ALL), ra)
    _shifted_slab_into(backend, ra, -1, -3, halos.south, rb)
    backend.add_at_slice_into(nn1, (..., -1, _ALL), rb, ra)
    backend.slice_copy_into(s11, (..., _ALL, -1), ca)
    _shifted_slab_into(backend, ca, 1, -2, halos.west, cb)
    backend.add_at_slice_into(nn1, (..., _ALL, 0), cb, ca)
    return nn0, nn1
