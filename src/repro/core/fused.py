"""The fused sweep engine: preallocated workspaces + in-place flips.

Profiling the updaters shows the steady-state sweep cost is dominated not
by arithmetic but by allocation traffic: every colour phase of the
elementwise path materialises ~7 lattice-sized temporaries (neighbour
sums, uniforms, the exp, the flip mask, the delta chain).  The fused
engine keeps one :class:`SweepWorkspace` of named scratch buffers per
updater and routes every step through the backend's ``*_into`` vocabulary
so that, after the first sweep warms the workspace, steady-state sweeps
perform **zero** heap allocation while producing bit-identical spin
trajectories (the ``*_into`` ops are exact twins of their allocating
counterparts, and the acceptance probabilities come from an
:class:`~repro.core.accept.AcceptanceTable` built with the very same
backend op sequence).
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from .accept import AcceptanceTable
from .update import _cached_device_scalar

__all__ = ["SweepWorkspace", "fused_metropolis_flip", "record_fused_metrics"]


class SweepWorkspace:
    """Named, shape-keyed scratch buffers reused across sweeps.

    ``buffer(name, shape, dtype)`` returns the same array on every call
    with the same key, so the first sweep allocates and every later sweep
    runs allocation-free.  ``hits`` / ``misses`` count lookups (a steady
    state shows a constant miss count), and the workspace also tracks the
    fused engine's savings telemetry:

    * ``table_hits`` — sites whose acceptance probability came from a
      table gather instead of an elementwise ``exp``;
    * ``bytes_saved`` — lattice-temporary bytes the elementwise path
      would have allocated for those sites.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        self._constants: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.table_hits = 0
        self.bytes_saved = 0

    def buffer(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: "np.dtype | type" = np.float32,
    ) -> np.ndarray:
        """Get-or-create the scratch array for ``(name, shape, dtype)``."""
        key = (name, tuple(shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[1], dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def constant(self, key: tuple, builder) -> object:
        """Get-or-create a cached immutable value (kernels, masks, tables)."""
        value = self._constants.get(key)
        if value is None:
            value = builder()
            self._constants[key] = value
        return value

    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the scratch buffers."""
        return int(sum(b.nbytes for b in self._buffers.values()))


def fused_metropolis_flip(
    backend: Backend,
    sigma: np.ndarray,
    nn: np.ndarray,
    probs: np.ndarray,
    table: AcceptanceTable,
    workspace: SweepWorkspace,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """In-place Metropolis step: table gather + allocation-free flip.

    Mutates ``sigma`` and returns it.  Bit-identical to
    :func:`~repro.core.update.metropolis_flip` fed the same operands:
    the gathered probability equals the elementwise
    ``exp(-2 beta sigma (nn + h))`` by the table's construction, and the
    flip algebra ``sigma *= 1 - 2 * flips`` only touches values that are
    exact in every supported dtype.

    ``nn`` must hold the *raw* integer neighbour sums — any external
    field is folded into the table entries, not into ``nn``.
    """
    if sigma.shape != nn.shape or sigma.shape != probs.shape:
        raise ValueError(
            f"shape mismatch: sigma {sigma.shape}, nn {nn.shape}, "
            f"probs {probs.shape}"
        )
    if mask is not None:
        trailing = (
            sigma.shape[sigma.ndim - mask.ndim:] if mask.ndim <= sigma.ndim else None
        )
        if mask.shape != sigma.shape and mask.shape != trailing:
            raise ValueError(
                f"mask shape {mask.shape} does not match sigma shape "
                f"{sigma.shape}: the mask must equal the spin shape or its "
                f"trailing dimensions (per-chain broadcast)"
            )

    fscratch = workspace.buffer("flip_fscratch", sigma.shape)
    idx = workspace.buffer("flip_idx", sigma.shape, np.int32)
    backend.acceptance_index_into(
        sigma, nn, idx, fscratch, offsets=table.offsets
    )
    ratio = workspace.buffer("flip_ratio", sigma.shape)
    backend.take_into(table.entries, idx, ratio)
    flips = workspace.buffer("flip_flips", sigma.shape)
    backend.less_into(probs, ratio, flips)
    if mask is not None:
        backend.multiply_into(flips, mask, flips)
    # flips {0, 1} -> {+1, -1}, then sigma *= flips: algebraically equal
    # to sigma - 2 * flips * sigma, exact in float32 and bfloat16.
    neg_two = _cached_device_scalar(backend, ("const", -2.0), -2.0)
    one = _cached_device_scalar(backend, ("const", 1.0), 1.0)
    backend.multiply_into(flips, neg_two, flips)
    backend.add_into(flips, one, flips)
    backend.multiply_into(sigma, flips, sigma)

    workspace.table_hits += sigma.size
    # Temporaries the elementwise path materialises per flip call:
    # sigma*nn, factor*local, exp, less, flips*sigma, 2*(...), subtract
    # (+ the mask product, + the field-shifted nn when h != 0).
    n_temps = 7
    if mask is not None:
        n_temps += 1
    if table.field != 0.0:
        n_temps += 1
    workspace.bytes_saved += n_temps * sigma.size * backend.dtype.itemsize
    return sigma


def record_fused_metrics(registry, *updaters) -> None:
    """Publish the fused engine's savings gauges from updater workspaces.

    Sums over every updater that exposes a warmed ``workspace`` (solo,
    batched, or one per distributed core); updaters running the
    elementwise path contribute zeros, so the gauges are always present
    and comparable across runs.
    """
    table_hits = 0
    bytes_saved = 0
    ws_bytes = 0
    ws_buffers = 0
    for updater in updaters:
        ws = getattr(updater, "workspace", None)
        if ws is None:
            continue
        table_hits += ws.table_hits
        bytes_saved += ws.bytes_saved
        ws_bytes += ws.nbytes
        ws_buffers += ws.n_buffers
    registry.gauge("fused_table_hits").set(table_hits)
    registry.gauge("fused_bytes_saved").set(bytes_saved)
    registry.gauge("fused_workspace_bytes").set(ws_bytes)
    registry.gauge("fused_workspace_buffers").set(ws_buffers)
