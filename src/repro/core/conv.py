"""The appendix-7.2 convolution-based updaters.

The further-optimized implementation open-sourced with the paper replaces
the band matmuls of Algorithm 2 with ``tf.nn.conv2d``, which packs more
MXU work per memory load and (together with TF r1.15) yields an ~80%
throughput improvement (Table 6) while producing the same chain (Fig. 7).

Two variants are provided:

* :class:`ConvUpdater` — the production variant: identical to
  :class:`~repro.core.compact.CompactUpdater` (compact layout, halo
  hooks, no wasted RNG) but with the in-block neighbour sums computed by
  fused 2-tap convolutions.  Bit-identical chains to the matmul path;
  only the modeled device cost differs.
* :class:`MaskedConvUpdater` — the textbook formulation: one full-lattice
  cross-kernel convolution plus the colour mask ``M``.  Simple and
  correct but wasteful (full-lattice RNG and arithmetic per phase) — kept
  as the ablation partner quantifying what the compact layout buys.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..rng.streams import PhiloxStream
from .accept import AcceptanceTable, BondedAcceptance
from .compact import CompactUpdater
from .couplings import (
    BondCouplings,
    weighted_neighbor_sum,
    weighted_neighbor_sum_into,
)
from .fused import SweepWorkspace, fused_metropolis_flip
from .lattice import checkerboard_mask
from .update import metropolis_flip

__all__ = ["ConvUpdater", "MaskedConvUpdater"]


class ConvUpdater(CompactUpdater):
    """Algorithm 2 with conv neighbour sums (the appendix implementation)."""

    def __init__(
        self,
        beta: float | np.ndarray,
        backend: Backend | None = None,
        block_shape: tuple[int, int] | None = (128, 128),
        field: float = 0.0,
        fused: bool = False,
    ) -> None:
        super().__init__(
            beta,
            backend,
            block_shape=block_shape,
            nn_method="conv",
            field=field,
            fused=fused,
        )


class MaskedConvUpdater:
    """Checkerboard Metropolis with a full-lattice conv and colour masks.

    State is the plain lattice.  Each colour phase computes the
    4-neighbour sum of *every* site with one wrap-around convolution,
    draws uniforms for every site, and masks the flips — the same
    redundancies Algorithm 1 has, with the conv replacing its matmuls.
    """

    def __init__(
        self,
        beta: float | np.ndarray,
        backend: Backend | None = None,
        field: float = 0.0,
        fused: bool = False,
        couplings: BondCouplings | None = None,
    ) -> None:
        if np.any(np.asarray(beta) <= 0):
            raise ValueError(f"beta must be positive, got {beta}")
        # Scalar for a single chain; a (batch, 1, 1) broadcast array when
        # driving a batched ensemble at per-chain temperatures.
        self.beta = float(beta) if np.ndim(beta) == 0 else np.asarray(beta, dtype=np.float64)
        self.field = float(field)
        self.backend = backend if backend is not None else NumpyBackend()
        self.fused = bool(fused)
        # Ferro couplings collapse to None so the clean model keeps the
        # conv fast path and its exact historical bit-stream.
        if couplings is not None and couplings.kind == "ferro":
            couplings = None
        self.couplings = couplings
        self._mask_cache: dict[tuple[int, int], dict[str, np.ndarray]] = {}
        self._workspace: SweepWorkspace | None = None
        self._accept_table: "AcceptanceTable | BondedAcceptance | None" = None

    @property
    def workspace(self) -> SweepWorkspace | None:
        """The fused engine's scratch workspace (None until first use)."""
        return self._workspace

    def _fused_ctx(self) -> "tuple[AcceptanceTable | BondedAcceptance, SweepWorkspace]":
        if self._workspace is None:
            self._workspace = SweepWorkspace()
        if self._accept_table is None:
            if self.couplings is None:
                self._accept_table = AcceptanceTable(
                    self.backend, self.beta, field=self.field
                )
            else:
                self._accept_table = BondedAcceptance(
                    self.backend, self.beta, self.couplings, field=self.field
                )
        return self._accept_table, self._workspace

    def retemper(self, beta: float | np.ndarray) -> None:
        """Swap in new (per-chain) inverse temperatures, in place.

        Keeps the lattice-shaped workspace buffers (they are
        beta-independent) and drops only the acceptance table, so a
        replica-exchange swap round costs a ten-entry-per-chain table
        rebuild rather than a full updater rebuild.  Callers holding a
        traced executor must ``rebind`` it afterwards — the recorded
        sweep references the old table's entries.
        """
        if np.any(np.asarray(beta) <= 0):
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta) if np.ndim(beta) == 0 else np.asarray(beta, dtype=np.float64)
        self._accept_table = None

    def _masks(self, shape: tuple[int, ...]) -> dict[str, np.ndarray]:
        # Masks depend only on the trailing (rows, cols); a batched plain
        # lattice broadcasts the 2D mask over its chain axis.
        key = tuple(shape[-2:])
        masks = self._mask_cache.get(key)
        if masks is None:
            masks = {
                color: self.backend.array(checkerboard_mask(key, color))
                for color in ("black", "white")
            }
            self._mask_cache[key] = masks
        return masks

    def update_color(
        self,
        plain: np.ndarray,
        color: str,
        stream: PhiloxStream | None = None,
        probs: np.ndarray | None = None,
    ) -> np.ndarray:
        """One colour phase: conv neighbour sum, then masked Metropolis.

        In fused mode the lattice is updated *in place* and returned.
        """
        if self.fused:
            table, ws = self._fused_ctx()
            if probs is None:
                if stream is None:
                    raise ValueError("either stream or probs must be provided")
                probs = ws.buffer("probs", plain.shape)
                self.backend.uniform_into(stream, probs)
            elif probs.shape != plain.shape:
                raise ValueError(
                    f"probs shape {probs.shape} != lattice shape {plain.shape}"
                )
            mask = self._masks(plain.shape)[color]
            if self.couplings is not None:
                nn = weighted_neighbor_sum_into(
                    self.backend, plain, self.couplings, ws
                )
                return table.flip_into(plain, nn, probs, ws, mask=mask)
            nn = ws.buffer("conv_nn", plain.shape)
            tmp = ws.buffer("conv_roll_tmp", plain.shape)
            self.backend.conv2d_neighbors_into(plain, nn, tmp)
            return fused_metropolis_flip(
                self.backend, plain, nn, probs, table, ws, mask=mask
            )
        if probs is None:
            if stream is None:
                raise ValueError("either stream or probs must be provided")
            probs = self.backend.random_uniform(plain.shape, stream)
        elif probs.shape != plain.shape:
            raise ValueError(
                f"probs shape {probs.shape} != lattice shape {plain.shape}"
            )
        if self.couplings is not None:
            nn = weighted_neighbor_sum(self.backend, plain, self.couplings)
        else:
            nn = self.backend.conv2d_neighbors(plain)
        mask = self._masks(plain.shape)[color]
        return metropolis_flip(
            self.backend, plain, nn, probs, self.beta, mask=mask, field=self.field
        )

    def sweep(
        self,
        plain: np.ndarray,
        stream: PhiloxStream | None = None,
        probs_black: np.ndarray | None = None,
        probs_white: np.ndarray | None = None,
    ) -> np.ndarray:
        """One full sweep: black phase then white phase."""
        plain = self.update_color(plain, "black", stream, probs_black)
        return self.update_color(plain, "white", stream, probs_white)

    # -- uniform interface with the grid/compact updaters -------------------

    def to_state(self, plain: np.ndarray) -> np.ndarray:
        return self.backend.array(plain)

    @staticmethod
    def to_plain(state: np.ndarray) -> np.ndarray:
        # A copy: fused sweeps mutate the state in place, and callers
        # (simulation.lattice, samplers) must keep stable snapshots.
        return np.array(state, dtype=np.float32, copy=True)

    def sweep_plain(self, plain: np.ndarray, stream: PhiloxStream) -> np.ndarray:
        return self.sweep(self.to_state(plain), stream)
