"""Reference single-spin-flip Metropolis-Hastings sampler.

This is the "vanilla version that flips one spin at each step" the paper
derives the checkerboard algorithm from.  It is deliberately simple and
sequential — the gold standard the parallel updaters are validated
against on small lattices (same stationary distribution, exact agreement
with brute-force enumeration), and the slowest rung of the baseline
ladder in the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from ..rng.streams import PhiloxStream

__all__ = ["metropolis_sweep", "metropolis_chain"]


def metropolis_sweep(
    plain: np.ndarray,
    beta: float,
    stream: PhiloxStream,
    order: str = "typewriter",
) -> np.ndarray:
    """One full sweep of sequential single-spin Metropolis updates.

    Parameters
    ----------
    plain:
        Spin lattice in {-1, +1}; updated out of place.
    beta:
        Inverse temperature.
    stream:
        Uniform source; one draw per site visit.
    order:
        "typewriter" visits sites row-major; "random" visits N uniformly
        random sites (random-scan Metropolis).  Both leave the Boltzmann
        distribution invariant.

    Returns the updated lattice.
    """
    if order not in ("typewriter", "random"):
        raise ValueError(f"order must be 'typewriter' or 'random', got {order!r}")
    rows, cols = plain.shape
    n_sites = rows * cols
    sigma = plain.copy()

    uniforms = stream.uniform(n_sites)
    if order == "typewriter":
        sites_r = np.repeat(np.arange(rows), cols)
        sites_c = np.tile(np.arange(cols), rows)
    else:
        picks = stream.uniform(2 * n_sites)
        sites_r = (picks[:n_sites] * rows).astype(np.int64)
        sites_c = (picks[n_sites:] * cols).astype(np.int64)

    for k in range(n_sites):
        i = int(sites_r[k])
        j = int(sites_c[k])
        nn = (
            sigma[(i - 1) % rows, j]
            + sigma[(i + 1) % rows, j]
            + sigma[i, (j - 1) % cols]
            + sigma[i, (j + 1) % cols]
        )
        d_energy = 2.0 * sigma[i, j] * nn
        if d_energy <= 0.0 or uniforms[k] < np.exp(-beta * d_energy):
            sigma[i, j] = -sigma[i, j]
    return sigma


def metropolis_chain(
    plain: np.ndarray,
    beta: float,
    n_sweeps: int,
    stream: PhiloxStream,
    order: str = "typewriter",
) -> np.ndarray:
    """Run ``n_sweeps`` sequential Metropolis sweeps and return the state."""
    sigma = plain
    for _ in range(n_sweeps):
        sigma = metropolis_sweep(sigma, beta, stream, order=order)
    return sigma
