"""Replica-exchange (parallel tempering) on the batched ensemble engine.

Parallel tempering runs the same system at a ladder of inverse
temperatures and periodically proposes to exchange the configurations of
adjacent ladder slots; hot slots tunnel over free-energy barriers and
feed decorrelated states down to the cold slots.  The exchange of slots
``i`` and ``j`` is accepted with probability

    min(1, exp((beta_i - beta_j) * (E_i - E_j)))

which is the exact joint-density ratio of the swapped configuration pair
— detailed balance for the product chain (Hukushima & Nemoto 1996; the
rack-scale GPU Ising codes and the peapods exemplar use the same
alternating even/odd adjacent-pair schedule implemented here).

The TPU-shaped design decision: **states never move.**  All
``n_replicas * n_temperatures`` chains live in one
:class:`~repro.core.ensemble.EnsembleSimulation`, and a swap only edits
the host-side ``pairing`` (which chain currently owns which beta slot)
and re-tempers the ensemble — a ten-entry-per-chain acceptance-table
rebuild, no lattice traffic.  Each chain therefore keeps its own Philox
stream and advances bit-reproducibly; with swaps disabled the ensemble
is bit-identical to a plain :class:`EnsembleSimulation`, and the
scheduler's coalescer can batch tempering ladders like any other job.

Swap decisions draw from a dedicated ``PhiloxStream(seed,
SWAP_STREAM_ID)``, so the full swap trajectory is a pure function of
``(seed, disorder_seed)`` and survives checkpoint/v2 resume mid-ladder,
including a partially consumed Philox block.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

import numpy as np

from ..backend.base import Backend
from ..rng.streams import PhiloxStream
from ..telemetry.report import RunReport, RunTelemetry
from .config import checkpoint_envelope, resolve_traced, unwrap_checkpoint
from .couplings import BondCouplings
from .ensemble import EnsembleSimulation

__all__ = ["TemperingEnsemble", "SWAP_STREAM_ID", "swap_acceptance_probability"]

#: Reserved Philox stream id for swap decisions ("TEMP" in ASCII); chain
#: streams use small ids (0..B-1), so swap draws never collide with any
#: chain's uniform sequence.
SWAP_STREAM_ID = 0x54454D50


def swap_acceptance_probability(
    beta_i: float, beta_j: float, energy_i: float, energy_j: float
) -> float:
    """``min(1, exp((beta_i - beta_j) (E_i - E_j)))`` in float64.

    The exact two-chain detailed-balance acceptance for exchanging the
    configurations at inverse temperatures ``beta_i`` and ``beta_j``
    whose current total energies are ``energy_i`` and ``energy_j``.
    """
    delta = (float(beta_i) - float(beta_j)) * (float(energy_i) - float(energy_j))
    return float(np.exp(min(delta, 0.0)))


class TemperingEnsemble:
    """An ``n_replicas x n_temperatures`` replica-exchange ladder.

    Parameters
    ----------
    shape:
        Lattice shape shared by every chain.
    betas:
        The inverse-temperature ladder, in ladder order (ascending or
        descending — swaps exchange *adjacent entries of this sequence*,
        so the given order defines adjacency and is trajectory-relevant).
    n_replicas:
        Independent replicas of the full ladder.  Swaps only couple
        chains within one replica; >= 2 enables the replica-overlap
        spin-glass observables.
    swap_interval:
        Sweeps between swap rounds (swaps happen at sweep boundaries).
    couplings:
        ``"ferro"`` (default), ``"bimodal"``, ``"gaussian"``, or an
        explicit :class:`~repro.core.couplings.BondCouplings`
        realisation.  One quenched realisation (from ``disorder_seed``)
        is shared by every chain and replica, as the spin-glass
        observables require.
    disorder_seed:
        Seed for the quenched bond draw (ignored when an explicit
        :class:`BondCouplings` is passed).
    swaps_enabled:
        ``False`` degrades to a plain ensemble run (bit-identical to
        :class:`EnsembleSimulation` with the same chain layout) — the
        validation knob for "swaps are a physics no-op at ferro".
    traced:
        ``"auto"`` resolves to ``False`` here: every accepted swap round
        rebuilds acceptance tables and would force a re-record, so
        tracing only pays off with long swap intervals — opt in
        explicitly if yours are.

    Chain layout: chain ``r * n_temps + t`` starts at ladder slot ``t``
    of replica ``r``; ``pairing[r, t]`` tracks which chain currently
    owns slot ``t`` (swaps edit this, never the states).
    """

    def __init__(
        self,
        shape: "int | tuple[int, int]",
        betas: "Sequence[float] | np.ndarray",
        n_replicas: int = 2,
        swap_interval: int = 1,
        couplings: "str | BondCouplings" = "ferro",
        disorder_seed: int = 0,
        updater: str = "compact",
        backend: Backend | None = None,
        seed: int = 0,
        field: float = 0.0,
        fused: "bool | str" = "auto",
        traced: "bool | str" = "auto",
        telemetry: RunTelemetry | None = None,
        initial: str = "hot",
        block_shape: "tuple[int, int] | None" = None,
        swaps_enabled: bool = True,
    ) -> None:
        betas = np.asarray(betas, dtype=np.float64)
        if betas.ndim != 1 or betas.size == 0:
            raise ValueError(
                f"betas must be a non-empty 1D ladder, got shape {betas.shape}"
            )
        if np.any(betas <= 0):
            raise ValueError(f"betas must be positive, got {betas}")
        if int(n_replicas) < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if int(swap_interval) < 1:
            raise ValueError(f"swap_interval must be >= 1, got {swap_interval}")
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape), int(shape))
        self.betas = betas
        self.n_temps = int(betas.size)
        self.n_replicas = int(n_replicas)
        self.swap_interval = int(swap_interval)
        self.swaps_enabled = bool(swaps_enabled)

        if isinstance(couplings, BondCouplings):
            bonds = couplings
        else:
            bonds = BondCouplings.generate(
                str(couplings), tuple(shape), disorder_seed
            )
        self.couplings_kind = bonds.kind
        self.disorder_seed = bonds.disorder_seed

        self.pairing = np.arange(
            self.n_replicas * self.n_temps, dtype=np.int64
        ).reshape(self.n_replicas, self.n_temps)

        # traced="auto" resolves to off: accepted swap rounds invalidate
        # the recorded sweep, and re-recording every round costs more
        # than it saves at typical swap intervals.
        traced_cfg = resolve_traced(traced)
        self.ensemble = EnsembleSimulation(
            shape,
            self._chain_temperatures(),
            updater=updater,
            backend=backend,
            seed=seed,
            initial=initial,
            block_shape=block_shape,
            field=field,
            fused=fused,
            traced=False if traced_cfg == "auto" else traced_cfg,
            telemetry=telemetry,
            couplings=bonds,
        )
        self._swap_stream = PhiloxStream(int(seed), SWAP_STREAM_ID)
        self.swap_rounds = 0
        self.swap_attempts = 0
        self.swap_accepts = 0
        self._since_swap = 0
        self._clock = 0.0
        #: Chrome-trace spans, one per swap round (see telemetry.trace).
        self.swap_log: list[dict] = []

    # -- layout helpers ------------------------------------------------------

    def _chain_temperatures(self) -> np.ndarray:
        """Per-chain temperature vector implied by the current pairing."""
        temps = np.empty(self.n_replicas * self.n_temps, dtype=np.float64)
        for r in range(self.n_replicas):
            for t in range(self.n_temps):
                temps[self.pairing[r, t]] = 1.0 / self.betas[t]
        return temps

    @property
    def shape(self) -> tuple[int, int]:
        return self.ensemble.shape

    @property
    def n_chains(self) -> int:
        return self.ensemble.n_chains

    @property
    def seed(self) -> int:
        return self.ensemble.seed

    @property
    def field(self) -> float:
        return self.ensemble.field

    @property
    def couplings(self) -> "BondCouplings | None":
        """The quenched bond realisation (None for the clean ferromagnet)."""
        return self.ensemble.couplings

    @property
    def sweeps_done(self) -> int:
        return self.ensemble.sweeps_done

    @property
    def telemetry(self) -> "RunTelemetry | None":
        return self.ensemble.telemetry

    @property
    def lattices(self) -> np.ndarray:
        return self.ensemble.lattices

    @property
    def swap_acceptance(self) -> float:
        """Accepted / attempted swap fraction so far (0.0 before any)."""
        if self.swap_attempts == 0:
            return 0.0
        return self.swap_accepts / self.swap_attempts

    # -- evolution -----------------------------------------------------------

    def run(self, n_sweeps: int) -> None:
        """Advance ``n_sweeps`` sweeps, swapping at every ladder boundary.

        The position within the swap interval persists across calls:
        ``run(3); run(3)`` attempts exactly the rounds ``run(6)`` would.
        """
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        remaining = int(n_sweeps)
        if not self.swaps_enabled:
            if remaining:
                start = perf_counter()
                self.ensemble.run(remaining)
                self._clock += perf_counter() - start
            return
        while remaining:
            step = min(remaining, self.swap_interval - self._since_swap)
            start = perf_counter()
            self.ensemble.run(step)
            self._clock += perf_counter() - start
            self._since_swap += step
            remaining -= step
            if self._since_swap == self.swap_interval:
                self.attempt_swaps()
                self._since_swap = 0

    def sweep(self) -> None:
        """Advance one sweep (attempting swaps if a boundary is reached)."""
        self.run(1)

    def attempt_swaps(self) -> int:
        """One swap round over alternating even/odd adjacent ladder pairs.

        Round ``k`` proposes the pairs ``(t, t+1)`` for ``t = k mod 2,
        k mod 2 + 2, ...`` independently in every replica, drawing all
        uniforms as one batched Philox tensor.  Accepted proposals swap
        the ``pairing`` entries (betas move between chains, states never
        do) and the ensemble is re-tempered once at the end of the
        round.  Returns the number of accepted swaps.
        """
        parity = self.swap_rounds % 2
        self.swap_rounds += 1
        pairs = list(range(parity, self.n_temps - 1, 2))
        if not pairs:
            return 0
        start = perf_counter()
        energies = self.ensemble.total_energies()
        uniforms = self._swap_stream.uniform((self.n_replicas, len(pairs)))
        pairing = self.pairing
        # Vectorized accept test over all (replica, pair) proposals —
        # float64 op-for-op the same as swap_acceptance_probability, so
        # decisions are bit-identical to the scalar loop it replaces.
        pair_idx = np.asarray(pairs, dtype=np.int64)
        lo = pairing[:, pair_idx]
        hi = pairing[:, pair_idx + 1]
        d_beta = self.betas[pair_idx] - self.betas[pair_idx + 1]
        delta = d_beta[np.newaxis, :] * (energies[lo] - energies[hi])
        accept = np.asarray(uniforms) < np.exp(np.minimum(delta, 0.0))
        r_acc, p_acc = np.nonzero(accept)
        t_acc = pair_idx[p_acc]
        pairing[r_acc, t_acc] = hi[r_acc, p_acc]
        pairing[r_acc, t_acc + 1] = lo[r_acc, p_acc]
        accepted = int(accept.sum())
        self.swap_attempts += self.n_replicas * len(pairs)
        self.swap_accepts += accepted
        if accepted:
            self.ensemble.set_temperatures(self._chain_temperatures())
        duration = perf_counter() - start
        self.swap_log.append(
            {
                "name": f"swap round {self.swap_rounds - 1}",
                "start": self._clock,
                "duration": duration,
                "args": {
                    "parity": parity,
                    "attempted": self.n_replicas * len(pairs),
                    "accepted": accepted,
                },
            }
        )
        self._clock += duration
        return accepted

    # -- observables ---------------------------------------------------------

    def slot_magnetizations(self) -> np.ndarray:
        """Signed magnetization by ladder slot, ``(n_replicas, n_temps)``.

        Row ``r`` column ``t`` is the chain *currently simulating*
        ``betas[t]`` in replica ``r`` — the physically meaningful
        ordering after swaps have moved betas between chains.
        """
        return self.ensemble.magnetizations()[self.pairing]

    def slot_energies_per_spin(self) -> np.ndarray:
        """Energy per site by ladder slot, ``(n_replicas, n_temps)``."""
        return self.ensemble.energies_per_spin()[self.pairing]

    def replica_overlaps(self) -> np.ndarray:
        """Site overlap q between replica pairs, ``(n_pairs, n_temps)``.

        For every unordered replica pair (a, b) and every ladder slot t,
        ``q = (1/N) sum_i s_i^(a) s_i^(b)`` between the two chains
        currently simulating ``betas[t]``.  The two replicas share the
        quenched disorder but have independent thermal histories —
        exactly the EA overlap the spin-glass Binder cumulant needs.
        """
        if self.n_replicas < 2:
            raise ValueError(
                f"replica overlap needs n_replicas >= 2, got {self.n_replicas}"
            )
        lats = self.ensemble.lattices.astype(np.float64)
        rows = []
        for a in range(self.n_replicas):
            for b in range(a + 1, self.n_replicas):
                rows.append(
                    [
                        float(
                            np.mean(
                                lats[self.pairing[a, t]] * lats[self.pairing[b, t]]
                            )
                        )
                        for t in range(self.n_temps)
                    ]
                )
        return np.asarray(rows, dtype=np.float64)

    def sample_overlaps(
        self, n_samples: int, burn_in: int = 0, thin: int = 1
    ) -> np.ndarray:
        """Time series of replica overlaps, ``(n_samples, n_pairs, n_temps)``.

        Feed slot ``t``'s slice to
        :func:`~repro.observables.binder.spin_glass_binder` to estimate
        the spin-glass Binder cumulant at ``betas[t]``.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        if thin <= 0:
            raise ValueError(f"thin must be positive, got {thin}")
        self.run(burn_in)
        samples = []
        for _ in range(n_samples):
            self.run(thin)
            samples.append(self.replica_overlaps())
        return np.stack(samples)

    # -- telemetry -----------------------------------------------------------

    def report(self) -> RunReport:
        """Ensemble report plus the tempering swap gauges."""
        if self.telemetry is None:
            raise RuntimeError(
                "no telemetry attached; construct with "
                "TemperingEnsemble(..., telemetry=RunTelemetry())"
            )
        registry = self.telemetry.registry
        registry.gauge("tempering_swap_rounds").set(self.swap_rounds)
        registry.gauge("tempering_swap_attempts").set(self.swap_attempts)
        registry.gauge("tempering_swap_accepts").set(self.swap_accepts)
        registry.gauge("tempering_swap_acceptance").set(self.swap_acceptance)
        registry.gauge("tempering_n_temperatures").set(self.n_temps)
        registry.gauge("tempering_n_replicas").set(self.n_replicas)
        return self.ensemble.report()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """checkpoint/v2 envelope: the nested ensemble plus ladder state.

        Round-trips the pairing, the swap stream's exact Philox counter
        (including partially consumed blocks), the position inside the
        swap interval and the disorder token, so a resumed ladder makes
        bit-identical swap decisions.
        """
        payload = {
            "ensemble": self.ensemble.state_dict(),
            "betas": self.betas.tolist(),
            "n_replicas": self.n_replicas,
            "swap_interval": self.swap_interval,
            "swaps_enabled": self.swaps_enabled,
            "pairing": self.pairing.tolist(),
            "swap_stream": self._swap_stream.state(),
            "swap_rounds": self.swap_rounds,
            "swap_attempts": self.swap_attempts,
            "swap_accepts": self.swap_accepts,
            "since_swap": self._since_swap,
            "couplings": {
                "kind": self.couplings_kind,
                "disorder_seed": self.disorder_seed,
            },
        }
        return checkpoint_envelope("tempering", payload)

    @classmethod
    def from_state_dict(
        cls, state: dict, backend: Backend | None = None
    ) -> "TemperingEnsemble":
        """Rebuild a ladder from :meth:`state_dict` output."""
        state = unwrap_checkpoint(state, "tempering")
        obj = cls.__new__(cls)
        obj.betas = np.asarray(state["betas"], dtype=np.float64)
        obj.n_temps = int(obj.betas.size)
        obj.n_replicas = int(state["n_replicas"])
        obj.swap_interval = int(state["swap_interval"])
        obj.swaps_enabled = bool(state.get("swaps_enabled", True))
        obj.pairing = np.asarray(state["pairing"], dtype=np.int64)
        if obj.pairing.shape != (obj.n_replicas, obj.n_temps):
            raise ValueError(
                f"pairing shape {obj.pairing.shape} != "
                f"{(obj.n_replicas, obj.n_temps)}"
            )
        coup = state["couplings"]
        obj.couplings_kind = str(coup["kind"])
        obj.disorder_seed = int(coup["disorder_seed"])
        obj.ensemble = EnsembleSimulation.from_state_dict(
            state["ensemble"], backend=backend
        )
        obj._swap_stream = PhiloxStream.from_state(state["swap_stream"])
        obj.swap_rounds = int(state["swap_rounds"])
        obj.swap_attempts = int(state["swap_attempts"])
        obj.swap_accepts = int(state["swap_accepts"])
        obj._since_swap = int(state["since_swap"])
        obj._clock = 0.0
        obj.swap_log = []
        return obj
