"""Quenched per-bond couplings: the spin-glass workload family.

The paper's engine simulates the clean ferromagnet (J = 1 on every
bond).  The high-value production workloads of the rack-scale GPU Ising
literature (Fang et al., arXiv:2502.18624; the peapods exemplar) are
*disordered* models: each lattice bond carries its own quenched coupling
J_ij, drawn once per experiment from a disorder distribution and then
frozen for the whole chain ensemble.

:class:`BondCouplings` is that frozen realisation: two ``(rows, cols)``
float32 planes, ``right[i, j]`` on the bond (i, j)-(i, j+1) and
``down[i, j]`` on the bond (i, j)-(i+1, j), periodic in both directions.
Three kinds are supported:

* ``"ferro"`` — J = +1 everywhere (the clean model; updaters treat this
  as the no-couplings fast path, so physics and bit-streams are exactly
  the undisordered engine's);
* ``"bimodal"`` — J = ±1 with equal probability (the Edwards-Anderson
  ±J spin glass).  The weighted neighbour sum still takes the five
  values {-4, -2, 0, 2, 4}, so the fused engine's acceptance-table
  gather applies unchanged;
* ``"gaussian"`` — J ~ N(0, 1) (the Gaussian EA model); neighbour sums
  are continuous, so acceptance falls back to the elementwise ``exp``
  (still allocation-free and traceable through the ``*_into`` path).

Determinism: the bond planes are drawn from a dedicated
:class:`~repro.rng.streams.PhiloxStream` keyed by ``(disorder_seed,
DISORDER_STREAM_ID)``, so a disorder realisation is a pure function of
its seed — checkpoints store only ``(kind, disorder_seed)`` and
regenerate the arrays bit-identically on resume.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from ..rng.streams import PhiloxStream

__all__ = [
    "COUPLING_KINDS",
    "DISORDER_STREAM_ID",
    "BondCouplings",
    "weighted_neighbor_sum",
    "weighted_neighbor_sum_into",
    "bond_total_energy",
    "bond_energy_per_spin",
]

#: Supported disorder distributions.
COUPLING_KINDS = ("ferro", "bimodal", "gaussian")

#: Reserved Philox stream id for bond draws ("TEMP"-adjacent constant,
#: spelled "JBND"); chain streams use small ids (0..B-1), so disorder
#: draws can never collide with a chain's uniform sequence.
DISORDER_STREAM_ID = 0x4A424E44


class BondCouplings:
    """One quenched disorder realisation of per-bond couplings.

    Attributes
    ----------
    kind:
        One of :data:`COUPLING_KINDS`.
    disorder_seed:
        The seed the realisation was drawn from (checkpoint token).
    shape:
        Lattice ``(rows, cols)`` the bond planes cover.
    right, down:
        Float32 ``(rows, cols)`` coupling planes: ``right[i, j]`` sits on
        the bond to the right neighbour ``(i, j+1 mod cols)`` and
        ``down[i, j]`` on the bond to the lower neighbour
        ``(i+1 mod rows, j)`` — every torus bond appears exactly once.
    """

    def __init__(
        self,
        kind: str,
        disorder_seed: int,
        right: np.ndarray,
        down: np.ndarray,
    ) -> None:
        if kind not in COUPLING_KINDS:
            raise ValueError(
                f"unknown couplings kind {kind!r}; expected one of {COUPLING_KINDS}"
            )
        right = np.ascontiguousarray(np.asarray(right, dtype=np.float32))
        down = np.ascontiguousarray(np.asarray(down, dtype=np.float32))
        if right.ndim != 2 or right.shape != down.shape:
            raise ValueError(
                f"bond planes must be matching 2D arrays, got right "
                f"{right.shape} / down {down.shape}"
            )
        self.kind = kind
        self.disorder_seed = int(disorder_seed)
        self.right = right
        self.down = down
        self.shape = right.shape
        # Per-backend device tensors (the four broadcastable planes the
        # weighted neighbour sum reads), built lazily on first use.
        self._device: dict[int, tuple[Backend, dict[str, np.ndarray]]] = {}

    def __repr__(self) -> str:
        return (
            f"BondCouplings(kind={self.kind!r}, shape={self.shape}, "
            f"disorder_seed={self.disorder_seed})"
        )

    @classmethod
    def generate(
        cls,
        kind: str,
        shape: "int | tuple[int, int]",
        disorder_seed: int = 0,
    ) -> "BondCouplings":
        """Draw one disorder realisation for a ``(rows, cols)`` lattice.

        The draw consumes one ``(2, rows, cols)`` uniform tensor from
        ``PhiloxStream(disorder_seed, DISORDER_STREAM_ID)`` for every
        kind (gaussian consumes a second for the Box-Muller angle), so
        realisations are bit-reproducible from ``(kind, shape,
        disorder_seed)`` on any platform.
        """
        if kind not in COUPLING_KINDS:
            raise ValueError(
                f"unknown couplings kind {kind!r}; expected one of {COUPLING_KINDS}"
            )
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape), int(shape))
        rows, cols = (int(shape[0]), int(shape[1]))
        if rows < 1 or cols < 1:
            raise ValueError(f"lattice shape must be positive, got {shape}")
        if kind == "ferro":
            plane = np.ones((rows, cols), dtype=np.float32)
            return cls(kind, disorder_seed, plane, plane.copy())
        stream = PhiloxStream(disorder_seed, DISORDER_STREAM_ID)
        u = stream.uniform((2, rows, cols)).astype(np.float64)
        if kind == "bimodal":
            bonds = np.where(u < 0.5, -1.0, 1.0)
        else:  # gaussian, via Box-Muller (1 - u keeps the log argument in (0, 1])
            theta = stream.uniform((2, rows, cols)).astype(np.float64)
            radius = np.sqrt(-2.0 * np.log1p(-u))
            bonds = radius * np.cos(2.0 * np.pi * theta)
        return cls(kind, disorder_seed, bonds[0], bonds[1])

    def device_arrays(self, backend: Backend) -> dict[str, np.ndarray]:
        """The four direction planes as backend tensors, cached per backend.

        ``right`` / ``down`` are the stored planes; ``left`` / ``up`` are
        their periodic rolls (``left[i, j] = right[i, j-1]``), so the
        weighted neighbour sum needs no rolls of the couplings at sweep
        time.  Materialised through ``backend.array`` so bfloat16
        backends quantise the couplings exactly once.
        """
        cached = self._device.get(id(backend))
        if cached is not None and cached[0] is backend:
            return cached[1]
        arrays = {
            "right": backend.array(self.right),
            "left": backend.array(np.roll(self.right, 1, axis=1)),
            "down": backend.array(self.down),
            "up": backend.array(np.roll(self.down, 1, axis=0)),
        }
        self._device[id(backend)] = (backend, arrays)
        return arrays

    def state_token(self) -> dict:
        """The checkpoint token (the arrays regenerate from it)."""
        return {"kind": self.kind, "disorder_seed": self.disorder_seed}


def _check_lattice_shape(plain: np.ndarray, couplings: BondCouplings) -> None:
    if tuple(plain.shape[-2:]) != tuple(couplings.shape):
        raise ValueError(
            f"lattice shape {tuple(plain.shape[-2:])} does not match bond "
            f"coupling shape {tuple(couplings.shape)}"
        )


def weighted_neighbor_sum(
    backend: Backend, plain: np.ndarray, couplings: BondCouplings
) -> np.ndarray:
    """``nn_J(i) = sum_j J_ij sigma_j`` over the four torus neighbours.

    The allocating (elementwise-path) form; accepts a single ``(rows,
    cols)`` lattice or a batched ``(B, rows, cols)`` stack (the 2D bond
    planes broadcast over the chain axis — disorder is quenched, shared
    by every chain).  With ferro couplings this equals the plain
    4-neighbour sum, evaluated through the roll sequence rather than the
    conv kernel — callers keep the conv fast path for the clean model.
    """
    _check_lattice_shape(plain, couplings)
    bonds = couplings.device_arrays(backend)
    ax_r, ax_c = plain.ndim - 2, plain.ndim - 1
    nn = backend.multiply(backend.roll(plain, -1, ax_c), bonds["right"])
    nn = backend.add(nn, backend.multiply(backend.roll(plain, 1, ax_c), bonds["left"]))
    nn = backend.add(nn, backend.multiply(backend.roll(plain, -1, ax_r), bonds["down"]))
    nn = backend.add(nn, backend.multiply(backend.roll(plain, 1, ax_r), bonds["up"]))
    return nn


def weighted_neighbor_sum_into(
    backend: Backend,
    plain: np.ndarray,
    couplings: BondCouplings,
    workspace,
) -> np.ndarray:
    """Workspace-backed twin of :func:`weighted_neighbor_sum`.

    Runs the same multiply/add sequence through the ``*_into``
    vocabulary (every op replayable by the traced executor), so fused
    disordered sweeps are bit-identical to the elementwise path and
    allocate nothing in steady state.  Returns the workspace's ``nn``
    buffer.
    """
    _check_lattice_shape(plain, couplings)
    bonds = couplings.device_arrays(backend)
    ax_r, ax_c = plain.ndim - 2, plain.ndim - 1
    nn = workspace.buffer("bond_nn", plain.shape)
    tmp = workspace.buffer("bond_roll_tmp", plain.shape)
    prod = workspace.buffer("bond_prod", plain.shape)
    backend.roll_into(plain, -1, ax_c, tmp)
    backend.multiply_into(tmp, bonds["right"], nn)
    backend.roll_into(plain, 1, ax_c, tmp)
    backend.multiply_into(tmp, bonds["left"], prod)
    backend.add_into(nn, prod, nn)
    backend.roll_into(plain, -1, ax_r, tmp)
    backend.multiply_into(tmp, bonds["down"], prod)
    backend.add_into(nn, prod, nn)
    backend.roll_into(plain, 1, ax_r, tmp)
    backend.multiply_into(tmp, bonds["up"], prod)
    backend.add_into(nn, prod, nn)
    return nn


def bond_total_energy(
    plain: np.ndarray,
    couplings: "BondCouplings | None" = None,
    field: float = 0.0,
) -> "float | np.ndarray":
    """Total ``H = -sum_<ij> J_ij sigma_i sigma_j - h sum_i sigma_i``.

    Accepts one ``(rows, cols)`` lattice (returns a float) or a batched
    ``(B, rows, cols)`` stack (returns a float64 ``(B,)`` vector — the
    form the replica-exchange swap test consumes).  ``couplings=None``
    means the clean ferromagnet (J = 1), where this reduces to
    :func:`~repro.observables.energy.total_energy` plus the field term.
    Each torus bond is counted exactly once via the two forward
    directions, matching the stored ``right`` / ``down`` planes.

    For the integer-valued kinds (ferro, bimodal) the bond products are
    +/-1, so they are computed in float32 and accumulated in float64 —
    every partial sum is an exact small integer, making the fast path
    bit-identical to all-float64 arithmetic (asserted by the suite).
    This keeps the replica-exchange swap test — one call per swap round
    — well under the benchmark's 5% bookkeeping budget.  Gaussian
    couplings stay in float64 throughout.
    """
    sigma32 = np.asarray(plain, dtype=np.float32)
    if sigma32.ndim not in (2, 3):
        raise ValueError(
            f"expected a (rows, cols) lattice or (B, rows, cols) stack, "
            f"got shape {sigma32.shape}"
        )
    ax_r, ax_c = sigma32.ndim - 2, sigma32.ndim - 1
    axes = (ax_r, ax_c)
    if couplings is not None and couplings.kind == "gaussian":
        _check_lattice_shape(sigma32, couplings)
        sigma = sigma32.astype(np.float64)
        nn_forward = np.roll(sigma, -1, axis=ax_c) * couplings.right.astype(np.float64)
        nn_down = np.roll(sigma, -1, axis=ax_r) * couplings.down.astype(np.float64)
        total = -np.sum(sigma * (nn_forward + nn_down), axis=axes)
    else:
        # Slice-wise einsum: the torus splits into interior bonds plus
        # one wrap row/column, avoiding the np.roll copy of the whole
        # stack.  All products are exact +/-1 (or +/-J with bimodal's
        # +/-1 planes), summed in float64.
        batched = sigma32.ndim == 3
        s = sigma32 if batched else sigma32[np.newaxis]
        if couplings is not None and couplings.kind != "ferro":
            _check_lattice_shape(sigma32, couplings)
            j_right, j_down = couplings.right, couplings.down
            total = -(
                np.einsum("brc,rc,brc->b", s[:, :, :-1], j_right[:, :-1],
                          s[:, :, 1:], dtype=np.float64)
                + np.einsum("br,r,br->b", s[:, :, -1], j_right[:, -1],
                            s[:, :, 0], dtype=np.float64)
                + np.einsum("brc,rc,brc->b", s[:, :-1, :], j_down[:-1, :],
                            s[:, 1:, :], dtype=np.float64)
                + np.einsum("bc,c,bc->b", s[:, -1, :], j_down[-1, :],
                            s[:, 0, :], dtype=np.float64)
            )
        else:
            total = -(
                np.einsum("brc,brc->b", s[:, :, :-1], s[:, :, 1:],
                          dtype=np.float64)
                + np.einsum("br,br->b", s[:, :, -1], s[:, :, 0],
                            dtype=np.float64)
                + np.einsum("brc,brc->b", s[:, :-1, :], s[:, 1:, :],
                            dtype=np.float64)
                + np.einsum("bc,bc->b", s[:, -1, :], s[:, 0, :],
                            dtype=np.float64)
            )
        if not batched:
            total = total[0]
    if field != 0.0:
        total = total - float(field) * np.sum(
            sigma32, axis=axes, dtype=np.float64
        )
    if sigma32.ndim == 2:
        return float(total)
    return np.asarray(total, dtype=np.float64)


def bond_energy_per_spin(
    plain: np.ndarray,
    couplings: "BondCouplings | None" = None,
    field: float = 0.0,
) -> "float | np.ndarray":
    """:func:`bond_total_energy` divided by the site count."""
    sigma = np.asarray(plain)
    n_sites = sigma.shape[-2] * sigma.shape[-1]
    total = bond_total_energy(sigma, couplings, field=field)
    if isinstance(total, float):
        return total / n_sites
    return total / n_sites
