"""High-level single-core simulation driver.

:class:`IsingSimulation` owns a lattice state, an updater (Algorithm 1,
Algorithm 2 or the conv variant), a backend (float32 or bfloat16, with or
without TPU cost accounting) and a Philox stream, and exposes the workflow
of the paper's Fig. 4: burn-in, sample, and estimate magnetization /
energy / Binder cumulant with honest error bars.

Samples are accumulated streamingly (per-sweep scalars only), so chains of
millions of sweeps need no lattice history storage.

Pass a :class:`~repro.telemetry.report.RunTelemetry` to record sweep wall
times and physics drift and to export a versioned
:class:`~repro.telemetry.report.RunReport` via :meth:`IsingSimulation.report`;
without one the sweep path pays only a single ``is None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..rng.streams import PhiloxStream
from ..telemetry.report import RunReport, RunTelemetry
from ..observables.binder import binder_cumulant
from ..observables.energy import energy_per_spin
from ..observables.magnetization import magnetization
from ..observables.stats import blocking_error, binder_jackknife
from .checkerboard import CheckerboardUpdater
from .compact import CompactUpdater
from .config import (
    backend_from_checkpoint,
    backend_kind,
    check_checkpoint_dtype,
    checkpoint_envelope,
    default_block_shape,
    resolve_fused,
    resolve_traced,
    unwrap_checkpoint,
)
from .conv import ConvUpdater, MaskedConvUpdater
from .fused import record_fused_metrics
from .packed import PackedState, PackedUpdater, record_packed_metrics
from .traced import TracedExecutor, record_traced_metrics
from .lattice import cold_lattice, random_lattice, validate_spins

__all__ = [
    "IsingSimulation",
    "ChainResult",
    "summarize_chain",
    "run_temperature_scan",
]

#: Updater names accepted by IsingSimulation: "compact" (Algorithm 2),
#: "conv" (appendix conv variant on the compact layout), "checkerboard"
#: (Algorithm 1) and "masked_conv" (naive full-lattice conv + mask).
_UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")

# Compatibility aliases: these helpers moved to repro.core.config (the
# distributed and ensemble drivers import them from there now).
_backend_kind = backend_kind
_backend_from_checkpoint = backend_from_checkpoint


@dataclass
class ChainResult:
    """Summary statistics of one sampled chain at a fixed temperature."""

    temperature: float
    n_samples: int
    abs_m: float
    abs_m_err: float
    m2: float
    m4: float
    u4: float
    u4_err: float
    energy: float
    energy_err: float
    m_series: np.ndarray = field(repr=False)
    e_series: np.ndarray = field(repr=False)


def summarize_chain(
    temperature: float, m_series: np.ndarray, e_series: np.ndarray
) -> ChainResult:
    """Blocking / jackknife summary of one chain's per-sweep series.

    Shared by :meth:`IsingSimulation.sample` and the batched
    :class:`~repro.core.ensemble.EnsembleSimulation` so both paths apply
    identical estimators (the per-chain bit-identity tests rely on it).
    """
    m_series = np.asarray(m_series, dtype=np.float64)
    e_series = np.asarray(e_series, dtype=np.float64)
    n_samples = int(m_series.size)
    n_blocks = min(32, max(2, n_samples // 4))
    abs_m, abs_m_err = blocking_error(np.abs(m_series), n_blocks=n_blocks)
    energy, energy_err = blocking_error(e_series, n_blocks=n_blocks)
    u4, u4_err = binder_jackknife(m_series, n_blocks=n_blocks)
    m_sq = m_series * m_series
    return ChainResult(
        temperature=float(temperature),
        n_samples=n_samples,
        abs_m=abs_m,
        abs_m_err=abs_m_err,
        m2=float(np.mean(m_sq)),
        m4=float(np.mean(m_sq * m_sq)),
        u4=u4,
        u4_err=u4_err,
        energy=energy,
        energy_err=energy_err,
        m_series=m_series,
        e_series=e_series,
    )


class IsingSimulation:
    """A single-core checkerboard Ising chain.

    Parameters
    ----------
    shape:
        Lattice shape (rows, cols) or a single side length.
    temperature:
        Temperature in units of J / k_B (beta = 1 / T).
    updater:
        "compact" (Algorithm 2, default), "checkerboard" (Algorithm 1)
        or "conv" (appendix variant).
    backend:
        Op executor; default float32 numpy.  Pass a bfloat16 or TPU
        backend to change numerics/accounting.
    seed, stream_id:
        Philox stream selection.
    initial:
        "hot", "cold", or an explicit +/-1 array.
    block_shape:
        Grid block size for the blocked updaters (defaults to the whole
        lattice in one block, the natural choice off-TPU).
    fused:
        Fused sweep engine selection.  ``"auto"`` (default) enables it on
        plain numpy backends — where it removes the per-sweep ``exp`` and
        all steady-state allocations for a large host-side speedup — and
        disables it on accounting (TPU) backends so the calibrated cost
        tables keep their historical op sequence.  Pass ``True`` /
        ``False`` to force.  Trajectories are bit-identical either way.
    traced:
        Traced sweep executor selection.  ``"auto"`` (default) follows
        the resolved ``fused`` setting: where the fused engine runs, one
        sweep is recorded as an (op, buffer) program and further sweeps
        replay it with zero Python re-interpretation of updater logic
        (see :mod:`repro.core.traced`).  Pass ``True`` / ``False`` to
        force; ``True`` requires the fused engine.  Replayed sweeps are
        bit-identical to eager ones.
    telemetry:
        Optional :class:`~repro.telemetry.report.RunTelemetry` recorder.
        When omitted (the default) the sweep loop takes the exact seed
        code path — one ``is None`` branch, no timing calls, no per-sweep
        allocation; when attached, sweep wall times and sampled physics
        signals are recorded and :meth:`report` emits a
        :class:`~repro.telemetry.report.RunReport`.  Telemetry never
        touches the RNG stream, so instrumented chains stay bit-identical.
    """

    def __init__(
        self,
        shape: int | tuple[int, int],
        temperature: float,
        updater: str = "compact",
        backend: Backend | None = None,
        seed: int = 0,
        stream_id: int = 0,
        initial: str | np.ndarray = "hot",
        block_shape: tuple[int, int] | None = None,
        field: float = 0.0,
        fused: "bool | str" = "auto",
        traced: "bool | str" = "auto",
        telemetry: RunTelemetry | None = None,
    ) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape), int(shape))
        rows, cols = shape
        if rows % 2 or cols % 2:
            raise ValueError(f"lattice sides must be even, got {shape}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if updater not in _UPDATERS:
            raise ValueError(
                f"unknown updater {updater!r}; expected one of {sorted(_UPDATERS)}"
            )

        self.shape = (rows, cols)
        self.temperature = float(temperature)
        self.beta = 1.0 / self.temperature
        self.field = float(field)
        self.backend = backend if backend is not None else NumpyBackend()
        self.packed = self.backend.dtype.name == "packed"
        self.stream = PhiloxStream(seed, stream_id)
        self.updater_name = updater
        self.sweeps_done = 0
        self.telemetry = telemetry
        self.fused_config = resolve_fused(fused)
        if self.packed:
            # The packed engine exists only in workspace-backed *_into
            # form, so it is always "fused" regardless of backend kind.
            if self.fused_config is False:
                raise ValueError(
                    "dtype='packed' has no elementwise path: the packed "
                    "engine is workspace-backed only; drop fused=False or "
                    "use dtype='float32'"
                )
            self.fused = True
        else:
            self.fused = (
                _backend_kind(self.backend) == "numpy"
                if self.fused_config == "auto"
                else self.fused_config
            )
        self.traced_config = resolve_traced(traced)
        self.traced = (
            self.fused if self.traced_config == "auto" else self.traced_config
        )
        if self.traced and not self.fused:
            raise ValueError(
                "traced=True requires the fused sweep engine; "
                "the elementwise path allocates per sweep and cannot be replayed"
            )

        if self.packed:
            if updater not in ("compact", "checkerboard"):
                raise ValueError(
                    f"dtype='packed' supports updater='compact' or "
                    f"'checkerboard' (both run the packed multi-spin "
                    f"engine); {updater!r} has no packed kernels — use "
                    f"dtype='float32' for it"
                )
            if self.field:
                raise ValueError(
                    "dtype='packed' requires field=0.0: the three-case "
                    f"Metropolis collapse assumes h = 0 (got {self.field!r}); "
                    "use dtype='float32' for runs with a field"
                )
            if block_shape is not None:
                raise ValueError(
                    "dtype='packed' does not take a block_shape: spins are "
                    "stored as 64-bit words per compact quarter, not "
                    "blocked grids"
                )
            if cols % 128:
                raise ValueError(
                    f"dtype='packed' needs the lattice width to be a "
                    f"multiple of 128 (each compact quarter packs into "
                    f"whole 64-bit words), got {cols}"
                )
            self._updater = PackedUpdater(self.beta, self.backend, field=self.field)
        elif updater == "masked_conv":
            if block_shape is not None:
                raise ValueError("masked_conv does not take a block_shape")
            self._updater = MaskedConvUpdater(
                self.beta, self.backend, field=self.field, fused=self.fused
            )
        elif updater == "checkerboard":
            if block_shape is None:
                block_shape = default_block_shape(updater, self.shape)
            self._updater = CheckerboardUpdater(
                self.beta,
                self.backend,
                block_shape=block_shape,
                field=self.field,
                fused=self.fused,
            )
        else:
            if block_shape is None:
                block_shape = default_block_shape(updater, self.shape)
            if updater == "conv":
                self._updater = ConvUpdater(
                    self.beta,
                    self.backend,
                    block_shape=block_shape,
                    field=self.field,
                    fused=self.fused,
                )
            else:
                self._updater = CompactUpdater(
                    self.beta,
                    self.backend,
                    block_shape=block_shape,
                    field=self.field,
                    fused=self.fused,
                )
        #: Resolved grid block decomposition (None for masked_conv, which
        #: keeps the plain layout).  Checkpoints carry it so a restored
        #: chain reproduces the same blocked tensors.
        self.block_shape = getattr(self._updater, "block_shape", None)
        self._executor = TracedExecutor(self._updater) if self.traced else None

        if isinstance(initial, str):
            if initial == "hot":
                plain = random_lattice(self.shape, self.stream)
            elif initial == "cold":
                plain = cold_lattice(self.shape)
            else:
                raise ValueError(
                    f"initial must be 'hot', 'cold' or an array, got {initial!r}"
                )
        else:
            plain = np.asarray(initial, dtype=np.float32)
            if plain.shape != self.shape:
                raise ValueError(
                    f"initial lattice shape {plain.shape} != {self.shape}"
                )
            validate_spins(plain)
        self._state = self._updater.to_state(plain)

    # -- state access -------------------------------------------------------

    @property
    def lattice(self) -> np.ndarray:
        """The current plain +/-1 lattice (a copy)."""
        return self._updater.to_plain(self._state)

    @property
    def n_sites(self) -> int:
        return self.shape[0] * self.shape[1]

    # -- evolution -----------------------------------------------------------

    def _advance(self, n_sweeps: int) -> None:
        """Advance ``n_sweeps`` sweeps through the traced executor or eagerly."""
        executor = self._executor
        if executor is not None:
            self._state = executor.run(self._state, self.stream, n_sweeps)
        else:
            for _ in range(n_sweeps):
                self._state = self._updater.sweep(self._state, self.stream)
        self.sweeps_done += n_sweeps

    def sweep(self) -> None:
        """Advance the chain by one full lattice sweep (both colours)."""
        telemetry = self.telemetry
        if telemetry is None:
            self._advance(1)
            return
        start = perf_counter()
        self._advance(1)
        telemetry.record_sweep(perf_counter() - start)
        if telemetry.wants_physics(self.sweeps_done):
            plain = self.lattice
            telemetry.record_physics(
                plain, magnetization(plain), energy_per_spin(plain)
            )

    def run(self, n_sweeps: int) -> None:
        """Advance the chain by ``n_sweeps`` sweeps.

        Without telemetry the whole batch goes to the traced executor in
        one call — the replay loop never re-enters Python driver code;
        with telemetry attached, sweeps advance one at a time so wall
        times and physics samples keep their per-sweep resolution.
        """
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        if self.telemetry is None:
            if n_sweeps:
                self._advance(n_sweeps)
            return
        for _ in range(n_sweeps):
            self.sweep()

    # -- observables ------------------------------------------------------------

    def magnetization(self) -> float:
        return magnetization(self.lattice)

    def energy_per_spin(self) -> float:
        return energy_per_spin(self.lattice)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable checkpoint: lattice + RNG state + progress.

        Emitted as a versioned ``checkpoint/v2`` envelope (``schema`` +
        ``kind`` keys; see :mod:`repro.core.config`).  Restoring with
        :meth:`from_state_dict` — or the kind-dispatching
        :func:`repro.api.load` — continues the chain bit-identically
        (same Philox counter, same lattice), on the same backend kind /
        dtype and with the same block decomposition.

        Packed chains additionally store their four quarter word planes
        with the bit-order contract (``packed`` key: little-endian
        64-bit words plus the stream mode's ``rng_bits``); restore
        rebuilds the state from the words, so resume is bit-identical
        at the word level, and a packed checkpoint refuses to load on
        an unpacked backend (and vice versa) with a clear error.
        """
        payload = {
            "shape": self.shape,
            "temperature": self.temperature,
            "field": self.field,
            "updater": self.updater_name,
            "backend": backend_kind(self.backend),
            "dtype": self.backend.dtype.name,
            "block_shape": self.block_shape,
            "fused": self.fused_config,
            "traced": self.traced_config,
            "lattice": self.lattice,
            "stream": self.stream.state(),
            "sweeps_done": self.sweeps_done,
        }
        if self.packed:
            payload["packed"] = {
                "word_bits": 64,
                "bit_order": "little",
                "rng_bits": self._updater.rng_bits,
                "quarter_shape": self._state.quarter_shape,
                "words": {
                    name: getattr(self._state, name).copy()
                    for name in ("w00", "w01", "w10", "w11")
                },
            }
        return checkpoint_envelope("single", payload)

    @classmethod
    def from_state_dict(
        cls, state: dict, backend: Backend | None = None
    ) -> "IsingSimulation":
        """Rebuild a simulation from :meth:`state_dict` output.

        Accepts the ``checkpoint/v2`` envelope (and, with a
        :class:`DeprecationWarning`, legacy v1 dicts without a ``schema``
        key).  The checkpoint's backend kind ("numpy" / "tpu"), dtype and
        ``block_shape`` are all round-tripped, so a chain checkpointed
        from a bfloat16 TPU backend or a non-default block decomposition
        resumes with the same numerics and tensor layout instead of
        silently falling back to a default float32 NumpyBackend.  Unknown
        backend kinds or dtype names raise.  Pass ``backend`` to resume
        on an explicit (pre-built) backend instead — e.g. a TPUBackend
        bound to a specific simulated core.
        """
        state = unwrap_checkpoint(state, "single")
        if backend is None:
            backend = backend_from_checkpoint(
                state.get("backend", "numpy"), state["dtype"]
            )
        check_checkpoint_dtype(state["dtype"], backend)
        block_shape = state.get("block_shape")
        sim = cls(
            tuple(state["shape"]),
            state["temperature"],
            updater=state["updater"],
            backend=backend,
            field=state["field"],
            block_shape=tuple(block_shape) if block_shape is not None else None,
            fused=state.get("fused", "auto"),
            traced=state.get("traced", "auto"),
            initial=np.asarray(state["lattice"], dtype=np.float32),
        )
        if sim.packed:
            sim._restore_packed(state.get("packed"))
        sim.stream = PhiloxStream.from_state(state["stream"])
        sim.sweeps_done = int(state["sweeps_done"])
        return sim

    def _restore_packed(self, packed: dict | None) -> None:
        """Rebuild the packed word planes from a checkpoint's packed payload."""
        if packed is None:
            raise ValueError(
                "checkpoint has no packed payload: it was written by an "
                "unpacked chain and cannot resume as dtype='packed' (the "
                "packed stream mode consumes randomness on a different "
                "counter schedule); resume on the checkpoint's own dtype, "
                "or start a fresh packed run from its lattice"
            )
        if packed.get("word_bits", 64) != 64 or packed.get("bit_order", "little") != "little":
            raise ValueError(
                f"unsupported packed word layout {packed.get('word_bits')!r}-bit "
                f"/ {packed.get('bit_order')!r}; this build packs 64-spin "
                "little-endian words"
            )
        rng_bits = int(packed.get("rng_bits", 16))
        if rng_bits != self._updater.rng_bits:
            self._updater = PackedUpdater(self.beta, self.backend, rng_bits=rng_bits)
            self._executor = TracedExecutor(self._updater) if self.traced else None
        words = {
            # astype normalises foreign-endian checkpoint words to the
            # native representation; the *values* are host-independent.
            name: np.ascontiguousarray(
                np.asarray(packed["words"][name]).astype(np.uint64, copy=False)
            )
            for name in ("w00", "w01", "w10", "w11")
        }
        self._state = PackedState(
            words["w00"],
            words["w01"],
            words["w10"],
            words["w11"],
            tuple(packed["quarter_shape"]),
        )

    # -- telemetry ---------------------------------------------------------

    def report(self) -> RunReport:
        """Build the run's :class:`~repro.telemetry.report.RunReport`.

        Requires an attached telemetry recorder (pass ``telemetry=`` at
        construction); captures the static run configuration, the sweep
        wall-time summary, sampled physics drift and the final Philox
        counter position.
        """
        if self.telemetry is None:
            raise RuntimeError(
                "no telemetry attached; construct with "
                "IsingSimulation(..., telemetry=RunTelemetry())"
            )
        self.telemetry.registry.gauge("sweeps_done").set(self.sweeps_done)
        record_fused_metrics(self.telemetry.registry, self._updater)
        record_traced_metrics(self.telemetry.registry, self._executor)
        record_packed_metrics(self.telemetry.registry, self._updater)
        return self.telemetry.build_report(
            kind="single",
            run={
                "shape": self.shape,
                "temperature": self.temperature,
                "field": self.field,
                "updater": self.updater_name,
                "backend": _backend_kind(self.backend),
                "dtype": self.backend.dtype.name,
                "block_shape": self.block_shape,
                "fused": self.fused,
                "traced": self.traced,
                "seed": self.stream.seed,
                "stream_id": self.stream.stream_id,
                "sweeps_done": self.sweeps_done,
            },
            rng={"streams": [self.stream.state()]},
        )

    def sample(
        self,
        n_samples: int,
        burn_in: int = 0,
        thin: int = 1,
    ) -> ChainResult:
        """Burn in, then record per-sweep m and e for ``n_samples`` sweeps.

        ``thin`` keeps every ``thin``-th sweep (reduces autocorrelation in
        the stored series; the estimators are unaffected either way).
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        if thin <= 0:
            raise ValueError(f"thin must be positive, got {thin}")
        self.run(burn_in)
        m_series = np.empty(n_samples, dtype=np.float64)
        e_series = np.empty(n_samples, dtype=np.float64)
        for k in range(n_samples):
            self.run(thin)
            plain = self.lattice
            m_series[k] = magnetization(plain)
            e_series[k] = energy_per_spin(plain)
        return summarize_chain(self.temperature, m_series, e_series)


def run_temperature_scan(
    shape: int | tuple[int, int],
    temperatures: np.ndarray,
    n_samples: int,
    burn_in: int,
    updater: str = "compact",
    backend: Backend | None = None,
    seed: int = 0,
    thin: int = 1,
    field: float = 0.0,
    block_shape: tuple[int, int] | None = None,
) -> list[ChainResult]:
    """Fig. 4 workflow: one independent chain per temperature.

    Each temperature gets its own Philox stream id, so scans are
    reproducible and embarrassingly parallel — and since every chain
    shares one lattice geometry, they are executed as a single batched
    :class:`~repro.core.ensemble.EnsembleSimulation` whose sweeps advance
    all temperatures in one vectorised array op.  Results are
    bit-identical to the historical serial loop of one
    :class:`IsingSimulation` per temperature with ``stream_id=idx``.

    ``field`` (external magnetic field h) and ``block_shape`` (grid
    block decomposition) are forwarded to every chain.
    """
    from .ensemble import EnsembleSimulation

    temps = np.asarray(temperatures, dtype=np.float64)
    ensemble = EnsembleSimulation(
        shape,
        temps,
        updater=updater,
        backend=backend,
        seed=seed,
        stream_ids=range(len(temps)),
        initial=["hot" if t >= 2.0 else "cold" for t in temps],
        field=field,
        block_shape=block_shape,
    )
    return ensemble.sample(n_samples, burn_in=burn_in, thin=thin)
