"""High-level single-core simulation driver.

:class:`IsingSimulation` owns a lattice state, an updater (Algorithm 1,
Algorithm 2 or the conv variant), a backend (float32 or bfloat16, with or
without TPU cost accounting) and a Philox stream, and exposes the workflow
of the paper's Fig. 4: burn-in, sample, and estimate magnetization /
energy / Binder cumulant with honest error bars.

Samples are accumulated streamingly (per-sweep scalars only), so chains of
millions of sweeps need no lattice history storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..rng.streams import PhiloxStream
from ..observables.binder import binder_cumulant
from ..observables.energy import energy_per_spin
from ..observables.magnetization import magnetization
from ..observables.stats import blocking_error, binder_jackknife
from .checkerboard import CheckerboardUpdater
from .compact import CompactUpdater
from .conv import ConvUpdater, MaskedConvUpdater
from .lattice import cold_lattice, random_lattice, validate_spins

__all__ = ["IsingSimulation", "ChainResult", "run_temperature_scan"]

#: Updater names accepted by IsingSimulation: "compact" (Algorithm 2),
#: "conv" (appendix conv variant on the compact layout), "checkerboard"
#: (Algorithm 1) and "masked_conv" (naive full-lattice conv + mask).
_UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")


@dataclass
class ChainResult:
    """Summary statistics of one sampled chain at a fixed temperature."""

    temperature: float
    n_samples: int
    abs_m: float
    abs_m_err: float
    m2: float
    m4: float
    u4: float
    u4_err: float
    energy: float
    energy_err: float
    m_series: np.ndarray = field(repr=False)
    e_series: np.ndarray = field(repr=False)


class IsingSimulation:
    """A single-core checkerboard Ising chain.

    Parameters
    ----------
    shape:
        Lattice shape (rows, cols) or a single side length.
    temperature:
        Temperature in units of J / k_B (beta = 1 / T).
    updater:
        "compact" (Algorithm 2, default), "checkerboard" (Algorithm 1)
        or "conv" (appendix variant).
    backend:
        Op executor; default float32 numpy.  Pass a bfloat16 or TPU
        backend to change numerics/accounting.
    seed, stream_id:
        Philox stream selection.
    initial:
        "hot", "cold", or an explicit +/-1 array.
    block_shape:
        Grid block size for the blocked updaters (defaults to the whole
        lattice in one block, the natural choice off-TPU).
    """

    def __init__(
        self,
        shape: int | tuple[int, int],
        temperature: float,
        updater: str = "compact",
        backend: Backend | None = None,
        seed: int = 0,
        stream_id: int = 0,
        initial: str | np.ndarray = "hot",
        block_shape: tuple[int, int] | None = None,
        field: float = 0.0,
    ) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape), int(shape))
        rows, cols = shape
        if rows % 2 or cols % 2:
            raise ValueError(f"lattice sides must be even, got {shape}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if updater not in _UPDATERS:
            raise ValueError(
                f"unknown updater {updater!r}; expected one of {sorted(_UPDATERS)}"
            )

        self.shape = (rows, cols)
        self.temperature = float(temperature)
        self.beta = 1.0 / self.temperature
        self.field = float(field)
        self.backend = backend if backend is not None else NumpyBackend()
        self.stream = PhiloxStream(seed, stream_id)
        self.updater_name = updater
        self.sweeps_done = 0

        if updater == "masked_conv":
            self._updater = MaskedConvUpdater(self.beta, self.backend, field=self.field)
        elif updater == "checkerboard":
            if block_shape is None:
                block_shape = self.shape
            self._updater = CheckerboardUpdater(
                self.beta, self.backend, block_shape=block_shape, field=self.field
            )
        else:
            if block_shape is None:
                block_shape = (rows // 2, cols // 2)
            if updater == "conv":
                self._updater = ConvUpdater(
                    self.beta, self.backend, block_shape=block_shape, field=self.field
                )
            else:
                self._updater = CompactUpdater(
                    self.beta, self.backend, block_shape=block_shape, field=self.field
                )

        if isinstance(initial, str):
            if initial == "hot":
                plain = random_lattice(self.shape, self.stream)
            elif initial == "cold":
                plain = cold_lattice(self.shape)
            else:
                raise ValueError(
                    f"initial must be 'hot', 'cold' or an array, got {initial!r}"
                )
        else:
            plain = np.asarray(initial, dtype=np.float32)
            if plain.shape != self.shape:
                raise ValueError(
                    f"initial lattice shape {plain.shape} != {self.shape}"
                )
            validate_spins(plain)
        self._state = self._updater.to_state(plain)

    # -- state access -------------------------------------------------------

    @property
    def lattice(self) -> np.ndarray:
        """The current plain +/-1 lattice (a copy)."""
        return self._updater.to_plain(self._state)

    @property
    def n_sites(self) -> int:
        return self.shape[0] * self.shape[1]

    # -- evolution -----------------------------------------------------------

    def sweep(self) -> None:
        """Advance the chain by one full lattice sweep (both colours)."""
        self._state = self._updater.sweep(self._state, self.stream)
        self.sweeps_done += 1

    def run(self, n_sweeps: int) -> None:
        """Advance the chain by ``n_sweeps`` sweeps."""
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        for _ in range(n_sweeps):
            self.sweep()

    # -- observables ------------------------------------------------------------

    def magnetization(self) -> float:
        return magnetization(self.lattice)

    def energy_per_spin(self) -> float:
        return energy_per_spin(self.lattice)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable checkpoint: lattice + RNG state + progress.

        Restoring with :meth:`from_state_dict` continues the chain
        bit-identically (same Philox counter, same lattice).
        """
        return {
            "shape": self.shape,
            "temperature": self.temperature,
            "field": self.field,
            "updater": self.updater_name,
            "dtype": self.backend.dtype.name,
            "lattice": self.lattice,
            "stream": self.stream.state(),
            "sweeps_done": self.sweeps_done,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "IsingSimulation":
        """Rebuild a simulation from :meth:`state_dict` output."""
        from ..backend.numpy_backend import NumpyBackend as _NumpyBackend

        sim = cls(
            tuple(state["shape"]),
            state["temperature"],
            updater=state["updater"],
            backend=_NumpyBackend(state["dtype"]),
            field=state["field"],
            initial=np.asarray(state["lattice"], dtype=np.float32),
        )
        sim.stream = PhiloxStream.from_state(state["stream"])
        sim.sweeps_done = int(state["sweeps_done"])
        return sim

    def sample(
        self,
        n_samples: int,
        burn_in: int = 0,
        thin: int = 1,
    ) -> ChainResult:
        """Burn in, then record per-sweep m and e for ``n_samples`` sweeps.

        ``thin`` keeps every ``thin``-th sweep (reduces autocorrelation in
        the stored series; the estimators are unaffected either way).
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        if thin <= 0:
            raise ValueError(f"thin must be positive, got {thin}")
        self.run(burn_in)
        m_series = np.empty(n_samples, dtype=np.float64)
        e_series = np.empty(n_samples, dtype=np.float64)
        for k in range(n_samples):
            self.run(thin)
            plain = self.lattice
            m_series[k] = magnetization(plain)
            e_series[k] = energy_per_spin(plain)

        n_blocks = min(32, max(2, n_samples // 4))
        abs_m, abs_m_err = blocking_error(np.abs(m_series), n_blocks=n_blocks)
        energy, energy_err = blocking_error(e_series, n_blocks=n_blocks)
        u4, u4_err = binder_jackknife(m_series, n_blocks=n_blocks)
        m_sq = m_series * m_series
        return ChainResult(
            temperature=self.temperature,
            n_samples=n_samples,
            abs_m=abs_m,
            abs_m_err=abs_m_err,
            m2=float(np.mean(m_sq)),
            m4=float(np.mean(m_sq * m_sq)),
            u4=u4,
            u4_err=u4_err,
            energy=energy,
            energy_err=energy_err,
            m_series=m_series,
            e_series=e_series,
        )


def run_temperature_scan(
    shape: int | tuple[int, int],
    temperatures: np.ndarray,
    n_samples: int,
    burn_in: int,
    updater: str = "compact",
    backend: Backend | None = None,
    seed: int = 0,
    thin: int = 1,
) -> list[ChainResult]:
    """Fig. 4 workflow: one independent chain per temperature.

    Each temperature gets its own Philox stream id, so scans are
    reproducible and embarrassingly parallel in principle.
    """
    results = []
    for idx, t in enumerate(np.asarray(temperatures, dtype=np.float64)):
        sim = IsingSimulation(
            shape,
            float(t),
            updater=updater,
            backend=backend,
            seed=seed,
            stream_id=idx,
            initial="hot" if t >= 2.0 else "cold",
        )
        results.append(sim.sample(n_samples, burn_in=burn_in, thin=thin))
    return results
