"""Batched ensemble execution: N independent chains in one vectorised sweep.

The Fig. 4 / Binder-cumulant workflow runs one independent chain per
temperature (and replicas for error bars, or f32/bf16 ablation pairs).
Executing those chains as a serial Python loop wastes the vectorisation
the GPU Ising literature (Romero et al.; Bisson et al.) gets by batching
many replicas into one array op.  :class:`EnsembleSimulation` is that
batching for this codebase: every chain's state carries a leading batch
axis, per-chain inverse temperatures enter the Metropolis rule as a
broadcast beta vector, and per-chain Philox keys make the batched draw
*exactly* the B solo draws — so each chain of the ensemble is
bit-identical to the corresponding single :class:`IsingSimulation` fed
the same (seed, stream_id) pair.

Memory: batching materialises all B lattice states (and B uniform
tensors per colour phase) at once, so the working set grows linearly in
the number of chains — the classic throughput-for-footprint trade.  For
host-scale lattices this is what makes small-lattice scans fast; for
HBM-bound lattices pick the batch so ``B * lattice_bytes`` still fits.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..observables.energy import energy_per_spin
from ..observables.magnetization import magnetization
from ..rng.streams import BatchedPhiloxStream, PhiloxStream
from ..telemetry.report import RunReport, RunTelemetry
from .checkerboard import CheckerboardUpdater
from .compact import CompactUpdater
from .conv import ConvUpdater, MaskedConvUpdater
from .couplings import BondCouplings, bond_total_energy
from .fused import record_fused_metrics
from .lattice import cold_lattice, random_lattice, validate_spins
from .config import (
    backend_from_checkpoint,
    backend_kind,
    check_checkpoint_dtype,
    checkpoint_envelope,
    default_block_shape,
    resolve_fused,
    resolve_traced,
    unwrap_checkpoint,
)
from .packed import PackedState, PackedUpdater, record_packed_metrics
from .traced import TracedExecutor, record_traced_metrics
from .simulation import (
    ChainResult,
    IsingSimulation,
    _UPDATERS,
    summarize_chain,
)

__all__ = ["EnsembleSimulation"]


class EnsembleSimulation:
    """B independent single-core chains advanced as one batched state.

    Parameters
    ----------
    shape:
        Lattice shape (rows, cols) or a single side length — shared by
        every chain (one geometry, B states).
    temperatures:
        Length-B sequence of temperatures, one per chain.  A temperature
        scan passes the scan grid; replica ensembles repeat one value.
    updater:
        "compact" (default), "conv", "checkerboard" or "masked_conv" —
        the same updater drives all chains.
    backend:
        Op executor shared by the ensemble; default float32 numpy.
    seed:
        Global experiment seed shared by every chain.
    stream_ids:
        Length-B Philox stream ids; defaults to ``range(B)``.  Chain b
        is bit-identical to ``IsingSimulation(..., seed=seed,
        stream_id=stream_ids[b])``.
    initial:
        "hot" / "cold" (applied to every chain), a length-B sequence of
        those strings, or an explicit ``(B, rows, cols)`` +/-1 array.
    block_shape:
        Grid block decomposition, as in :class:`IsingSimulation`.
    field:
        External magnetic field h, shared by every chain.
    fused:
        Fused sweep engine selection: ``"auto"`` (default — on for numpy
        backends, off for TPU cost-model backends), or an explicit
        bool.  The fused ensemble builds one per-chain
        :class:`~repro.core.accept.AcceptanceTable` (10 entries per
        chain) and keeps chains bit-identical to the elementwise path.
    traced:
        Traced sweep executor selection (see :mod:`repro.core.traced`):
        ``"auto"`` (default) follows the resolved ``fused`` setting —
        one recorded sweep is replayed for all chains at once, so the
        whole batch amortises a single program.  ``True`` requires the
        fused engine.  Roster changes (:meth:`add_chain` /
        :meth:`remove_chain`) rebuild the batched state and therefore
        re-record on the next sweep.
    telemetry:
        Optional :class:`~repro.telemetry.report.RunTelemetry` recorder
        (same contract as :class:`IsingSimulation`: absent by default,
        zero-cost when disabled, RNG-neutral when enabled).  Physics
        samples record the chain-averaged magnetization / energy and the
        cross-chain mean flip activity.
    """

    def __init__(
        self,
        shape: int | tuple[int, int],
        temperatures: Sequence[float] | np.ndarray,
        updater: str = "compact",
        backend: Backend | None = None,
        seed: int = 0,
        stream_ids: Iterable[int] | None = None,
        initial: str | Sequence[str] | np.ndarray = "hot",
        block_shape: tuple[int, int] | None = None,
        field: float = 0.0,
        fused: "bool | str" = "auto",
        traced: "bool | str" = "auto",
        telemetry: RunTelemetry | None = None,
        couplings: BondCouplings | None = None,
    ) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape), int(shape))
        rows, cols = shape
        if rows % 2 or cols % 2:
            raise ValueError(f"lattice sides must be even, got {shape}")
        temps = np.asarray(temperatures, dtype=np.float64)
        if temps.ndim != 1 or temps.size == 0:
            raise ValueError(
                f"temperatures must be a non-empty 1D sequence, got shape {temps.shape}"
            )
        if np.any(temps <= 0):
            raise ValueError(f"temperatures must be positive, got {temps}")
        if updater not in _UPDATERS:
            raise ValueError(
                f"unknown updater {updater!r}; expected one of {sorted(_UPDATERS)}"
            )

        self.shape = (int(rows), int(cols))
        self.temperatures = temps
        self.betas = 1.0 / temps
        self.n_chains = int(temps.size)
        self.field = float(field)
        self.backend = backend if backend is not None else NumpyBackend()
        self.updater_name = updater
        self.seed = int(seed)
        #: Per-chain Philox seeds.  The constructor broadcasts the shared
        #: ``seed``; chains joined through :meth:`add_chain` /
        #: :meth:`from_chains` may carry their own (the batched stream
        #: keys every chain independently either way).
        self.seeds = [self.seed] * self.n_chains
        self.sweeps_done = 0
        self.telemetry = telemetry
        self.packed = self.backend.dtype.name == "packed"
        self.fused_config = resolve_fused(fused)
        if self.packed:
            # The packed engine exists only in workspace-backed *_into
            # form, so it is always "fused" regardless of backend kind.
            if self.fused_config is False:
                raise ValueError(
                    "dtype='packed' has no elementwise path: the packed "
                    "engine is workspace-backed only; drop fused=False or "
                    "use dtype='float32'"
                )
            self.fused = True
        else:
            self.fused = (
                backend_kind(self.backend) == "numpy"
                if self.fused_config == "auto"
                else self.fused_config
            )
        self.traced_config = resolve_traced(traced)
        self.traced = (
            self.fused if self.traced_config == "auto" else self.traced_config
        )
        if self.traced and not self.fused:
            raise ValueError(
                "traced=True requires the fused sweep engine; "
                "the elementwise path allocates per sweep and cannot be replayed"
            )

        if stream_ids is None:
            stream_ids = range(self.n_chains)
        self.stream_ids = [int(s) for s in stream_ids]
        if len(self.stream_ids) != self.n_chains:
            raise ValueError(
                f"{len(self.stream_ids)} stream ids for {self.n_chains} chains"
            )

        if self.packed:
            if updater not in ("compact", "checkerboard"):
                raise ValueError(
                    f"dtype='packed' supports updater='compact' or "
                    f"'checkerboard' (both run the packed multi-spin "
                    f"engine); {updater!r} has no packed kernels — use "
                    f"dtype='float32' for it"
                )
            if self.field:
                raise ValueError(
                    "dtype='packed' requires field=0.0: the three-case "
                    f"Metropolis collapse assumes h = 0 (got {self.field!r}); "
                    "use dtype='float32' for runs with a field"
                )
            if block_shape is not None:
                raise ValueError(
                    "dtype='packed' does not take a block_shape: spins are "
                    "stored as 64-bit words per compact quarter, not "
                    "blocked grids"
                )
            if cols % 128:
                raise ValueError(
                    f"dtype='packed' needs the lattice width to be a "
                    f"multiple of 128 (each compact quarter packs into "
                    f"whole 64-bit words), got {cols}"
                )
        elif updater == "masked_conv":
            if block_shape is not None:
                raise ValueError("masked_conv does not take a block_shape")
        elif block_shape is None:
            block_shape = default_block_shape(updater, self.shape)
        self.block_shape = block_shape

        # Quenched per-bond disorder: ferro collapses to None (the clean
        # fast path); real disorder currently runs on the plain-lattice
        # masked_conv updater, whose weighted neighbour sum carries the
        # bond planes (see docs/tempering.md for the support matrix).
        if couplings is not None and couplings.kind == "ferro":
            couplings = None
        if couplings is not None:
            if self.packed:
                raise ValueError(
                    "dtype='packed' supports couplings='ferro' only: the "
                    "three-case Metropolis collapse assumes uniform J = 1; "
                    "use dtype='float32' with updater='masked_conv' for "
                    "disordered bonds"
                )
            if updater != "masked_conv":
                raise ValueError(
                    f"disordered couplings ({couplings.kind!r}) require "
                    f"updater='masked_conv' (the compact/blocked updaters "
                    f"have no per-bond kernels yet); got {updater!r}"
                )
            if tuple(couplings.shape) != self.shape:
                raise ValueError(
                    f"bond coupling shape {tuple(couplings.shape)} != "
                    f"lattice shape {self.shape}"
                )
        self.couplings = couplings
        self._updater = self._build_updater()
        self.block_shape = getattr(self._updater, "block_shape", None)
        self._executor = TracedExecutor(self._updater) if self.traced else None

        # Per-chain initial states, drawn from each chain's own solo
        # stream so hot starts match the corresponding IsingSimulation
        # draw-for-draw; the batched stream then inherits the counters.
        streams = [PhiloxStream(self.seed, sid) for sid in self.stream_ids]
        if isinstance(initial, str):
            initial = [initial] * self.n_chains
        if isinstance(initial, np.ndarray):
            plains = np.asarray(initial, dtype=np.float32)
            if plains.shape != (self.n_chains,) + self.shape:
                raise ValueError(
                    f"initial lattice stack shape {plains.shape} != "
                    f"{(self.n_chains,) + self.shape}"
                )
            for b in range(self.n_chains):
                validate_spins(plains[b])
        else:
            if len(initial) != self.n_chains:
                raise ValueError(
                    f"{len(initial)} initial states for {self.n_chains} chains"
                )
            chain_plains = []
            for start, stream in zip(initial, streams):
                if start == "hot":
                    chain_plains.append(random_lattice(self.shape, stream))
                elif start == "cold":
                    chain_plains.append(cold_lattice(self.shape))
                else:
                    raise ValueError(
                        f"initial must be 'hot', 'cold' or an array, got {start!r}"
                    )
            plains = np.stack(chain_plains)
        self.stream = BatchedPhiloxStream.from_streams(streams)
        self._state = self._updater.to_state(plains)

    def _build_updater(self):
        """Construct the batched updater for the current chain roster.

        The per-chain beta vector broadcasts against the batched state:
        rank-3 (batch, rows, cols) for masked_conv, rank-5 grids for the
        blocked updaters.  Called at construction and again whenever the
        roster changes (:meth:`add_chain` / :meth:`remove_chain`) — the
        updaters precompute per-chain acceptance tables from the beta
        vector, so a roster change rebuilds them.
        """
        if self.packed:
            # The packed updater broadcasts its own (B,) thresholds over
            # the batched (B, rows/2, cols/128) word planes.
            return PackedUpdater(self.betas, self.backend, field=self.field)
        state_rank = 3 if self.updater_name == "masked_conv" else 5
        beta_vec = self.betas.reshape((self.n_chains,) + (1,) * (state_rank - 1))
        if self.updater_name == "masked_conv":
            return MaskedConvUpdater(
                beta_vec,
                self.backend,
                field=self.field,
                fused=self.fused,
                couplings=self.couplings,
            )
        if self.updater_name == "checkerboard":
            return CheckerboardUpdater(
                beta_vec,
                self.backend,
                block_shape=self.block_shape,
                field=self.field,
                fused=self.fused,
            )
        updater_cls = ConvUpdater if self.updater_name == "conv" else CompactUpdater
        return updater_cls(
            beta_vec,
            self.backend,
            block_shape=self.block_shape,
            field=self.field,
            fused=self.fused,
        )

    # -- state access -------------------------------------------------------

    @property
    def lattices(self) -> np.ndarray:
        """The current plain +/-1 lattices, shaped ``(B, rows, cols)``."""
        return self._updater.to_plain(self._state)

    @property
    def n_sites(self) -> int:
        return self.shape[0] * self.shape[1]

    def to_single(self, index: int) -> IsingSimulation:
        """Split chain ``index`` out as an equivalent solo simulation.

        The returned :class:`IsingSimulation` shares the ensemble's
        backend and continues the chain bit-identically from the current
        lattice and Philox counter.
        """
        if not 0 <= index < self.n_chains:
            raise IndexError(
                f"chain index {index} out of range for {self.n_chains} chains"
            )
        if self.couplings is not None:
            raise ValueError(
                "disordered-coupling chains cannot split out: "
                "IsingSimulation runs the clean ferromagnet only; keep "
                "them batched in the ensemble"
            )
        sim = IsingSimulation(
            self.shape,
            float(self.temperatures[index]),
            updater=self.updater_name,
            backend=self.backend,
            seed=self.seeds[index],
            stream_id=self.stream_ids[index],
            initial=np.asarray(self.lattices[index], dtype=np.float32),
            block_shape=self.block_shape,
            field=self.field,
        )
        sim.stream = self.stream.chain(index)
        sim.sweeps_done = self.sweeps_done
        return sim

    # -- continuous batching (join/leave at sweep boundaries) ----------------

    @classmethod
    def from_chains(
        cls,
        shape: int | tuple[int, int],
        chains: "Sequence[tuple[float, PhiloxStream, np.ndarray]]",
        updater: str = "compact",
        backend: Backend | None = None,
        block_shape: tuple[int, int] | None = None,
        field: float = 0.0,
        fused: "bool | str" = "auto",
        traced: "bool | str" = "auto",
        telemetry: RunTelemetry | None = None,
        couplings: BondCouplings | None = None,
    ) -> "EnsembleSimulation":
        """Build an ensemble from explicit ``(temperature, stream, lattice)`` rows.

        This is the continuous-batching entry point: each chain arrives
        with its *own* Philox stream (seed, stream id **and** counter
        position) and its current plain lattice, so chains mid-flight —
        restored from checkpoints, split out of other ensembles, or fresh
        — batch together and each continues bit-identically to the solo
        :class:`IsingSimulation` it came from.  Counters need not be
        aligned across chains.
        """
        if not chains:
            raise ValueError("need at least one chain")
        temps = [float(t) for t, _, _ in chains]
        streams = [s for _, s, _ in chains]
        plains = np.stack(
            [np.asarray(p, dtype=np.float32) for _, _, p in chains]
        )
        ensemble = cls(
            shape,
            temps,
            updater=updater,
            backend=backend,
            seed=streams[0].seed,
            stream_ids=[s.stream_id for s in streams],
            initial=plains,
            block_shape=block_shape,
            field=field,
            fused=fused,
            traced=traced,
            telemetry=telemetry,
            couplings=couplings,
        )
        ensemble.stream = BatchedPhiloxStream.from_streams(streams)
        ensemble.seeds = [s.seed for s in streams]
        return ensemble

    def _rebuild_roster(
        self,
        temps: np.ndarray,
        plains: np.ndarray,
        streams: "list[PhiloxStream]",
    ) -> None:
        """Re-batch the given chain roster; each chain's lattice and
        Philox counter carry over exactly, so siblings are undisturbed."""
        self.temperatures = np.asarray(temps, dtype=np.float64)
        self.betas = 1.0 / self.temperatures
        self.n_chains = int(self.temperatures.size)
        self.seeds = [s.seed for s in streams]
        self.stream_ids = [s.stream_id for s in streams]
        self._updater = self._build_updater()
        self.stream = BatchedPhiloxStream.from_streams(streams)
        self._state = self._updater.to_state(
            np.asarray(plains, dtype=np.float32)
        )
        if self._executor is not None:
            # New batch width, fresh tensors: the recorded program no
            # longer matches — drop it and re-record on the next sweep.
            self._executor.rebind(self._updater)

    def add_chain(
        self, temperature: float, stream: PhiloxStream, lattice: np.ndarray
    ) -> int:
        """Join one chain to the batch at a sweep boundary.

        ``stream`` is the chain's own :class:`PhiloxStream`, positioned
        where its next draw must start; ``lattice`` is its current plain
        +/-1 state.  Sibling chains' lattices and counters are untouched,
        so their trajectories stay bit-identical to an undisturbed run —
        only the batch width changes.  Returns the new chain's index.
        """
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        plain = np.asarray(lattice, dtype=np.float32)
        if plain.shape != self.shape:
            raise ValueError(
                f"joining lattice shape {plain.shape} != {self.shape}"
            )
        validate_spins(plain)
        temps = np.append(self.temperatures, float(temperature))
        plains = np.concatenate([self.lattices, plain[None]], axis=0)
        streams = [self.stream.chain(b) for b in range(self.n_chains)]
        streams.append(stream)
        self._rebuild_roster(temps, plains, streams)
        return self.n_chains - 1

    def remove_chain(self, index: int) -> tuple[np.ndarray, PhiloxStream]:
        """Leave the batch at a sweep boundary, returning the chain's state.

        Returns the removed chain's ``(lattice, stream)`` — everything a
        solo :class:`IsingSimulation` (or a later :meth:`add_chain`)
        needs to continue it bit-identically.  The surviving chains keep
        their exact lattices and Philox counters.  The last chain cannot
        be removed; retire the whole ensemble instead.
        """
        if not 0 <= index < self.n_chains:
            raise IndexError(
                f"chain index {index} out of range for {self.n_chains} chains"
            )
        if self.n_chains == 1:
            raise ValueError(
                "cannot remove the last chain of an ensemble; "
                "drop the ensemble object instead"
            )
        plains = self.lattices
        removed = (
            np.asarray(plains[index], dtype=np.float32),
            self.stream.chain(index),
        )
        keep = [b for b in range(self.n_chains) if b != index]
        self._rebuild_roster(
            self.temperatures[keep],
            plains[keep],
            [self.stream.chain(b) for b in keep],
        )
        return removed

    def set_temperatures(self, temperatures: "Sequence[float] | np.ndarray") -> None:
        """Re-temper every chain in place, at a sweep boundary.

        This is the replica-exchange primitive: lattices and Philox
        counters are untouched (states never move between chains — only
        the betas do), so each chain's future trajectory is exactly the
        one it would have had if constructed at the new temperature with
        its current lattice and counter.  Cheap by design: updaters that
        expose :meth:`retemper` keep their workspaces and rebuild only
        the per-chain acceptance table; the packed engine rebuilds its
        threshold updater.  Any recorded trace is dropped and re-records
        on the next sweep.
        """
        temps = np.asarray(temperatures, dtype=np.float64)
        if temps.shape != (self.n_chains,):
            raise ValueError(
                f"expected {self.n_chains} temperatures, got shape {temps.shape}"
            )
        if np.any(temps <= 0):
            raise ValueError(f"temperatures must be positive, got {temps}")
        self.temperatures = temps
        self.betas = 1.0 / temps
        retemper = getattr(self._updater, "retemper", None)
        if retemper is None or self.packed:
            self._updater = self._build_updater()
        else:
            state_rank = 3 if self.updater_name == "masked_conv" else 5
            retemper(
                self.betas.reshape((self.n_chains,) + (1,) * (state_rank - 1))
            )
        if self._executor is not None:
            # The recorded sweep references the old acceptance table's
            # entries; drop it and re-record on the next sweep.
            self._executor.rebind(self._updater)

    # -- evolution -----------------------------------------------------------

    def _advance(self, n_sweeps: int) -> None:
        """Advance ``n_sweeps`` sweeps through the traced executor or eagerly."""
        executor = self._executor
        if executor is not None:
            self._state = executor.run(self._state, self.stream, n_sweeps)
        else:
            for _ in range(n_sweeps):
                self._state = self._updater.sweep(self._state, self.stream)
        self.sweeps_done += n_sweeps

    def sweep(self) -> None:
        """Advance every chain by one full lattice sweep (both colours)."""
        telemetry = self.telemetry
        if telemetry is None:
            self._advance(1)
            return
        start = perf_counter()
        self._advance(1)
        telemetry.record_sweep(perf_counter() - start)
        if telemetry.wants_physics(self.sweeps_done):
            plains = self.lattices
            mean_m = float(
                np.mean([magnetization(p) for p in plains])
            )
            if self.couplings is not None:
                mean_e = float(
                    np.mean(bond_total_energy(plains, self.couplings))
                    / self.n_sites
                )
            else:
                mean_e = float(
                    np.mean([energy_per_spin(p) for p in plains])
                )
            telemetry.record_physics(plains, mean_m, mean_e)

    def run(self, n_sweeps: int) -> None:
        """Advance every chain by ``n_sweeps`` sweeps.

        Without telemetry the whole batch goes to the traced executor in
        one call; with telemetry, sweeps advance one at a time to keep
        per-sweep wall times.
        """
        if n_sweeps < 0:
            raise ValueError(f"n_sweeps must be >= 0, got {n_sweeps}")
        if self.telemetry is None:
            if n_sweeps:
                self._advance(n_sweeps)
            return
        for _ in range(n_sweeps):
            self.sweep()

    # -- observables ---------------------------------------------------------

    def magnetizations(self) -> np.ndarray:
        """Per-chain signed magnetization, shaped ``(B,)``."""
        plains = self.lattices
        return np.array([magnetization(p) for p in plains], dtype=np.float64)

    def energies_per_spin(self) -> np.ndarray:
        """Per-chain (zero-field) energy per site, shaped ``(B,)``.

        With disordered couplings the bond energy uses the quenched
        ``J_ij`` planes; the clean ferromagnet keeps the historical
        :func:`~repro.observables.energy.energy_per_spin` estimator.
        """
        plains = self.lattices
        if self.couplings is not None:
            return bond_total_energy(plains, self.couplings) / self.n_sites
        return np.array([energy_per_spin(p) for p in plains], dtype=np.float64)

    def total_energies(self) -> np.ndarray:
        """Per-chain total Hamiltonian (couplings- and field-aware), ``(B,)``.

        This is the energy the replica-exchange swap test consumes:
        ``H = -sum_<ij> J_ij s_i s_j - h sum_i s_i`` evaluated in float64
        on the plain lattices, vectorised over the whole batch.
        """
        return bond_total_energy(self.lattices, self.couplings, field=self.field)

    # -- sampling ------------------------------------------------------------

    def sample(
        self,
        n_samples: int,
        burn_in: int = 0,
        thin: int = 1,
    ) -> list[ChainResult]:
        """Burn in, then record per-sweep m and e for every chain.

        Returns one :class:`ChainResult` per chain, in chain order, each
        computed with the same estimators as
        :meth:`IsingSimulation.sample` — a batched scan summarises
        identically to the serial loop it replaces.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        if thin <= 0:
            raise ValueError(f"thin must be positive, got {thin}")
        self.run(burn_in)
        m_series = np.empty((self.n_chains, n_samples), dtype=np.float64)
        e_series = np.empty((self.n_chains, n_samples), dtype=np.float64)
        for k in range(n_samples):
            self.run(thin)
            plains = self.lattices
            for b in range(self.n_chains):
                m_series[b, k] = magnetization(plains[b])
            if self.couplings is not None:
                e_series[:, k] = (
                    bond_total_energy(plains, self.couplings) / self.n_sites
                )
            else:
                for b in range(self.n_chains):
                    e_series[b, k] = energy_per_spin(plains[b])
        return [
            summarize_chain(self.temperatures[b], m_series[b], e_series[b])
            for b in range(self.n_chains)
        ]

    # -- telemetry -----------------------------------------------------------

    def report(self) -> RunReport:
        """Build the ensemble's :class:`~repro.telemetry.report.RunReport`.

        Requires an attached telemetry recorder.  ``rng.streams`` carries
        every chain's final Philox counter position, in chain order.
        """
        if self.telemetry is None:
            raise RuntimeError(
                "no telemetry attached; construct with "
                "EnsembleSimulation(..., telemetry=RunTelemetry())"
            )
        registry = self.telemetry.registry
        registry.gauge("sweeps_done").set(self.sweeps_done)
        registry.gauge("n_chains").set(self.n_chains)
        record_fused_metrics(registry, self._updater)
        record_traced_metrics(registry, self._executor)
        record_packed_metrics(registry, self._updater)
        streams = [
            {"seed": seed, "stream_id": sid, "counter": counter}
            for seed, sid, counter in zip(
                self.stream.seeds, self.stream.stream_ids, self.stream.counters
            )
        ]
        return self.telemetry.build_report(
            kind="ensemble",
            run={
                "shape": self.shape,
                "temperatures": self.temperatures.tolist(),
                "field": self.field,
                "updater": self.updater_name,
                "backend": backend_kind(self.backend),
                "dtype": self.backend.dtype.name,
                "block_shape": self.block_shape,
                "seed": self.seed,
                "n_chains": self.n_chains,
                "sweeps_done": self.sweeps_done,
                "fused": self.fused,
                "traced": self.traced,
                "couplings": (
                    "ferro" if self.couplings is None else self.couplings.kind
                ),
                "disorder_seed": (
                    None if self.couplings is None else self.couplings.disorder_seed
                ),
            },
            rng={"streams": streams},
        )

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable checkpoint of the whole ensemble.

        Emitted as a versioned ``checkpoint/v2`` envelope.  Round-trips
        everything a resume needs for bit-identical continuation:
        lattices, per-chain RNG counters, backend kind, dtype and block
        decomposition.  Packed ensembles additionally store the batched
        word planes (see :meth:`IsingSimulation.state_dict`), so resume
        is bit-identical at the word level.
        """
        payload = {
            "shape": self.shape,
            "temperatures": self.temperatures.tolist(),
            "field": self.field,
            "updater": self.updater_name,
            "backend": backend_kind(self.backend),
            "dtype": self.backend.dtype.name,
            "block_shape": self.block_shape,
            "seed": self.seed,
            "fused": self.fused_config,
            "traced": self.traced_config,
            "lattices": self.lattices,
            "stream": self.stream.state(),
            "sweeps_done": self.sweeps_done,
        }
        if self.couplings is not None:
            # The arrays regenerate bit-identically from the token.
            payload["couplings"] = self.couplings.state_token()
        if self.packed:
            payload["packed"] = {
                "word_bits": 64,
                "bit_order": "little",
                "rng_bits": self._updater.rng_bits,
                "quarter_shape": self._state.quarter_shape,
                "words": {
                    name: getattr(self._state, name).copy()
                    for name in ("w00", "w01", "w10", "w11")
                },
            }
        return checkpoint_envelope("ensemble", payload)

    @classmethod
    def from_state_dict(
        cls, state: dict, backend: Backend | None = None
    ) -> "EnsembleSimulation":
        """Rebuild an ensemble from :meth:`state_dict` output.

        Accepts the ``checkpoint/v2`` envelope or (with a
        :class:`DeprecationWarning`) a legacy v1 dict.
        """
        state = unwrap_checkpoint(state, "ensemble")
        if backend is None:
            backend = backend_from_checkpoint(
                state.get("backend", "numpy"), state["dtype"]
            )
        check_checkpoint_dtype(state["dtype"], backend)
        block_shape = state.get("block_shape")
        coup = state.get("couplings")
        couplings = (
            BondCouplings.generate(
                coup["kind"], tuple(state["shape"]), coup["disorder_seed"]
            )
            if coup is not None
            else None
        )
        ensemble = cls(
            tuple(state["shape"]),
            state["temperatures"],
            updater=state["updater"],
            backend=backend,
            seed=state["seed"],
            stream_ids=state["stream"]["stream_ids"],
            initial=np.asarray(state["lattices"], dtype=np.float32),
            block_shape=tuple(block_shape) if block_shape is not None else None,
            field=state["field"],
            fused=state.get("fused", "auto"),
            traced=state.get("traced", "auto"),
            couplings=couplings,
        )
        if ensemble.packed:
            ensemble._restore_packed(state.get("packed"))
        ensemble.stream = BatchedPhiloxStream.from_state(state["stream"])
        ensemble.seeds = list(ensemble.stream.seeds)
        ensemble.sweeps_done = int(state["sweeps_done"])
        return ensemble

    def _restore_packed(self, packed: dict | None) -> None:
        """Rebuild the batched packed word planes from a checkpoint payload."""
        if packed is None:
            raise ValueError(
                "checkpoint has no packed payload: it was written by an "
                "unpacked ensemble and cannot resume as dtype='packed' (the "
                "packed stream mode consumes randomness on a different "
                "counter schedule); resume on the checkpoint's own dtype, "
                "or start a fresh packed run from its lattices"
            )
        if packed.get("word_bits", 64) != 64 or packed.get("bit_order", "little") != "little":
            raise ValueError(
                f"unsupported packed word layout {packed.get('word_bits')!r}-bit "
                f"/ {packed.get('bit_order')!r}; this build packs 64-spin "
                "little-endian words"
            )
        rng_bits = int(packed.get("rng_bits", 16))
        if rng_bits != self._updater.rng_bits:
            self._updater = PackedUpdater(
                self.betas, self.backend, rng_bits=rng_bits
            )
            if self._executor is not None:
                self._executor.rebind(self._updater)
        words = {
            # astype normalises foreign-endian checkpoint words to the
            # native representation; the *values* are host-independent.
            name: np.ascontiguousarray(
                np.asarray(packed["words"][name]).astype(np.uint64, copy=False)
            )
            for name in ("w00", "w01", "w10", "w11")
        }
        self._state = PackedState(
            words["w00"],
            words["w01"],
            words["w10"],
            words["w11"],
            tuple(packed["quarter_shape"]),
        )
