"""Traced sweep executor: record one fused sweep, replay it N times.

The fused engine (:mod:`repro.core.fused`) removed steady-state
allocations, but every sweep still walks the updater's Python logic —
workspace lookups, shape checks, method dispatch — before each backend
op.  BENCH_fused_sweep.json shows what that costs: once allocation is
gone, eager per-op *dispatch* is the ceiling (fused conv at ~1.09x).
The paper hits the same wall and amortises it by XLA-compiling the whole
sweep into one program; the rack-scale GPU reproduction does it with
fused persistent kernels.  This module is the software analogue:

1. warm-up — one eager fused sweep builds every cached artifact
   (workspace buffers, the :class:`~repro.core.accept.AcceptanceTable`,
   checkerboard masks, device-scalar cache), so the steady state touches
   only the ``*_into`` backend vocabulary on stable buffers;
2. record — one more sweep runs with the updater's backend swapped for a
   :class:`_RecordingBackend` proxy that captures the exact
   (op, arg-buffer, out-buffer) sequence into a :class:`SweepTrace`;
3. replay — N further sweeps are the recorded program run back as a
   tight loop over pre-bound callables, with **zero** Python
   re-interpretation of updater logic.

Replay is bit-identical to eager-fused by construction: every mutation
of a fused sweep flows through backend ops on buffers that are stable
across sweeps, and the one stateful op — ``uniform_into`` — advances the
recorded Philox stream exactly as an eager sweep would.  Soundness is
checked, not assumed: if the recording sweep calls any *allocating*
backend op (a cold cache, an updater outside the fused steady state),
the trace is marked unsound and the executor falls back to eager sweeps
permanently for that binding.

A trace is bound to the identities of the state tensors and the stream
it recorded.  Any change — checkpoint restore, ensemble roster rebuild,
distributed topology rebuild, or a new shape/dtype/beta/field/fused
configuration (all of which rebuild the updater and its buffers) —
invalidates the trace and the next run re-records.

When :mod:`numba` is importable, qualifying flip sequences inside a
recorded program are additionally fused into one JIT-compiled kernel
(see :func:`_fuse_flip_steps`); the import is guarded and the pure-Python
replay path is authoritative — absence of numba only means the replay
loop stays a loop of pre-bound backend calls.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..backend.base import Backend
from .kernels import PhaseHalos

try:  # optional: JIT-fused replay of recognised flip sequences
    import numba  # type: ignore
except ImportError:  # pragma: no cover - exercised when numba is absent
    numba = None

#: Whether the optional numba replay path is available in this process.
HAVE_NUMBA = numba is not None

__all__ = [
    "HAVE_NUMBA",
    "REPLAYABLE_OPS",
    "ALLOCATING_OPS",
    "SweepTrace",
    "TracedExecutor",
    "PhaseTracedExecutor",
    "record_traced_metrics",
]

#: The in-place backend vocabulary a steady-state fused sweep uses.
#: Calls to these are recorded verbatim: same bound method, same buffer
#: arguments, replayed in order.
REPLAYABLE_OPS = frozenset(
    {
        "add_into",
        "subtract_into",
        "multiply_into",
        "exp_into",
        "less_into",
        "take_into",
        "matmul_into",
        "uniform_into",
        "band_cross_matmul_into",
        "band_pair_matmul_into",
        "acceptance_index_into",
        "roll_into",
        "copy_into",
        "slice_copy_into",
        "add_at_slice_into",
        "assign_at_slice_into",
        "shifted_pair_sum_into",
        "conv2d_neighbors_into",
        # Packed (multi-spin) word kernels — in-place, workspace-backed,
        # same replay contract as the float *_into vocabulary.
        "packed_bits_into",
        "packed_rshift_into",
        "packed_xor_into",
        "packed_shift_cols_into",
        "packed_compare_pack_into",
        "packed_full_adder_into",
        "packed_flip_select_into",
    }
)

#: Backend ops that allocate fresh arrays.  Seeing one during a
#: recording sweep means the sweep was not in its steady state (a cold
#: cache, an elementwise code path) — the resulting trace could not be
#: replayed faithfully, so it is marked unsound.
ALLOCATING_OPS = frozenset(
    {
        "array",
        "matmul",
        "add",
        "subtract",
        "multiply",
        "exp",
        "less",
        "where",
        "add_at_slice",
        "shifted_pair_sum",
        "conv2d_neighbors",
        "random_uniform",
        "roll",
        "concat",
        "slice_copy",
        "reshape",
        "copy",
        "packed_pack",
        "packed_unpack",
    }
)


class SweepTrace:
    """One recorded sweep: an ordered (op, args) program plus soundness.

    ``record`` appends entries during the recording sweep; ``compile``
    freezes them into a list of pre-bound callables (optionally fusing
    flip sequences through numba); ``replay`` runs the program once —
    one full sweep's worth of backend ops, no updater logic.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[str, object, tuple, dict]] = []
        self._steps: list | None = None
        self.sound = True
        self.unsound_ops: list[str] = []
        self.numba_fused = 0

    def record(self, name: str, fn, args: tuple, kwargs: dict) -> None:
        self._entries.append((name, fn, args, kwargs))

    def mark_unsound(self, name: str) -> None:
        self.sound = False
        self.unsound_ops.append(name)

    @property
    def n_ops(self) -> int:
        """Recorded backend ops per sweep (before any numba fusion)."""
        return len(self._entries)

    def compile(self, backend: Backend) -> "SweepTrace":
        """Freeze the recorded entries into pre-bound replay callables."""
        if not self.sound:
            raise RuntimeError(
                f"cannot compile an unsound trace (saw {self.unsound_ops})"
            )
        entries = self._entries
        if HAVE_NUMBA:
            entries, self.numba_fused = _fuse_flip_steps(entries, backend)
        steps = []
        for name, fn, args, kwargs in entries:
            if kwargs:
                steps.append(partial(fn, *args, **kwargs))
            else:
                steps.append(partial(fn, *args))
        self._steps = steps
        return self

    def replay(self) -> None:
        """Run the recorded program once (one sweep / one phase)."""
        for step in self._steps:
            step()


class _RecordingBackend:
    """Proxy over a real backend that records the ``*_into`` op stream.

    Every attribute not intercepted (dtype, caches, private helpers)
    delegates to the real backend, so cached scalars and quantize
    scratch live where eager sweeps left them.  Replayable ops are
    recorded *and* executed — the recording sweep is a real sweep;
    allocating ops execute but mark the trace unsound.
    """

    __slots__ = ("_real", "_trace")

    def __init__(self, real: Backend, trace: SweepTrace) -> None:
        self._real = real
        self._trace = trace

    def __getattr__(self, name):
        attr = getattr(self._real, name)
        if name in REPLAYABLE_OPS:
            trace = self._trace

            def recorded_op(*args, _fn=attr, _name=name, **kwargs):
                trace.record(_name, _fn, args, kwargs)
                return _fn(*args, **kwargs)

            return recorded_op
        if name in ALLOCATING_OPS:
            trace = self._trace

            def allocating_op(*args, _fn=attr, _name=name, **kwargs):
                trace.mark_unsound(_name)
                return _fn(*args, **kwargs)

            return allocating_op
        return attr


class _TracedBase:
    """Counters and trace bookkeeping shared by both executor shapes."""

    def __init__(self, updater) -> None:
        self.updater = updater
        self.sweeps_replayed = 0
        self.sweeps_eager = 0
        self.traces_recorded = 0
        self.invalidations = 0
        self.fallbacks = 0
        self._bound: tuple | None = None
        self._fallback = False

    @staticmethod
    def _tensors_of(state) -> tuple:
        s00 = getattr(state, "s00", None)
        if s00 is not None:
            return (s00, state.s01, state.s10, state.s11)
        w00 = getattr(state, "w00", None)
        if w00 is not None:
            # Packed states carry four uint64 word planes.
            return (w00, state.w01, state.w10, state.w11)
        return (state,)

    def _check_binding(self, state, stream) -> None:
        """(Re)bind to the state tensors + stream; invalidate on change.

        Identity (``is``), not equality: a trace replays writes into the
        exact arrays it recorded, so a restored checkpoint, a rebuilt
        ensemble roster or a new stream object must drop it.  The bound
        references are held strongly, so an id can never be recycled
        under us.
        """
        key = (*self._tensors_of(state), stream)
        bound = self._bound
        if bound is not None and len(bound) == len(key) and all(
            a is b for a, b in zip(bound, key)
        ):
            return
        if bound is not None:
            self._invalidate()
        self._bound = key

    def _invalidate(self) -> None:
        if self._has_trace():
            self.invalidations += 1
        self._drop_traces()
        self._fallback = False

    def rebind(self, updater) -> None:
        """Point at a rebuilt updater, dropping any recorded program.

        Counters carry over — invalidations are part of the story the
        ``traced_*`` gauges tell.
        """
        self.updater = updater
        self._invalidate()
        self._bound = None

    # Subclass hooks -------------------------------------------------------

    def _has_trace(self) -> bool:
        raise NotImplementedError

    def _drop_traces(self) -> None:
        raise NotImplementedError

    @property
    def program_ops(self) -> int:
        raise NotImplementedError


class TracedExecutor(_TracedBase):
    """Whole-sweep traced execution for the solo and ensemble drivers.

    ``run(state, stream, n)`` advances the chain ``n`` sweeps: the first
    call pays one eager warm-up sweep and one recording sweep, every
    further sweep is a replay.  All sweeps — eager, recording, replayed —
    advance the Philox stream identically, so the trajectory is
    bit-identical to ``n`` eager sweeps however they were split.
    """

    def __init__(self, updater) -> None:
        super().__init__(updater)
        self.trace: SweepTrace | None = None
        self._warmed = False

    def _has_trace(self) -> bool:
        return self.trace is not None

    def _drop_traces(self) -> None:
        self.trace = None
        self._warmed = False

    @property
    def program_ops(self) -> int:
        """Backend ops per replayed sweep (0 without a sound trace)."""
        return self.trace.n_ops if self.trace is not None else 0

    def _eager(self, state, stream, n: int):
        updater = self.updater
        for _ in range(n):
            state = updater.sweep(state, stream)
        self.sweeps_eager += n
        return state

    def _record(self, state, stream):
        trace = SweepTrace()
        updater = self.updater
        real = updater.backend
        updater.backend = _RecordingBackend(real, trace)
        try:
            state = updater.sweep(state, stream)
        finally:
            updater.backend = real
        self.sweeps_eager += 1  # the recording sweep advanced the chain
        if trace.sound and trace.n_ops > 0:
            self.trace = trace.compile(real)
            self.traces_recorded += 1
        else:
            # Not a steady-state fused sweep (cold cache or elementwise
            # path): replay would be unfaithful, stay eager from now on.
            self._fallback = True
            self.fallbacks += 1
        return state

    def run(self, state, stream, n_sweeps: int):
        """Advance ``n_sweeps`` sweeps, replaying wherever possible."""
        if n_sweeps <= 0:
            return state
        self._check_binding(state, stream)
        n = n_sweeps
        if self.trace is None and not self._fallback:
            # Warm-up state persists across calls, so per-sweep callers
            # (telemetry-attached drivers) still reach the replay path:
            # sweep 1 warms caches + buffers, sweep 2 records, 3+ replay.
            if not self._warmed:
                state = self._eager(state, stream, 1)
                self._warmed = True
                n -= 1
                if n == 0:
                    return state
            state = self._record(state, stream)
            n -= 1
        trace = self.trace
        if trace is None:
            return self._eager(state, stream, n) if n else state
        replay = trace.replay
        for _ in range(n):
            replay()
        self.sweeps_replayed += n
        return state


class PhaseTracedExecutor(_TracedBase):
    """Per-colour-phase traced execution for one distributed core.

    A distributed sweep interleaves halo collectives (which must stay
    eager — they flow through the SPMD runtime and the link model) with
    two local colour-phase updates, so the traced unit is the phase, not
    the sweep.  Incoming halos are fresh arrays every sweep; they are
    staged into stable per-(colour, direction) buffers before the phase
    runs, so the recorded program's halo splices read refreshed contents
    from the same arrays on every replay.
    """

    def __init__(self, updater) -> None:
        super().__init__(updater)
        self.traces: dict[str, SweepTrace] = {}
        self._warmed: set[str] = set()
        self._halo_bufs: dict[tuple[str, str], np.ndarray] = {}

    def _has_trace(self) -> bool:
        return bool(self.traces)

    def _drop_traces(self) -> None:
        self.traces.clear()
        self._warmed.clear()

    @property
    def program_ops(self) -> int:
        """Backend ops per replayed *sweep* (both colour phases)."""
        return sum(trace.n_ops for trace in self.traces.values())

    def _stage_halos(self, color: str, halos: dict) -> PhaseHalos:
        staged = {}
        for direction, arrived in halos.items():
            key = (color, direction)
            buf = self._halo_bufs.get(key)
            if (
                buf is None
                or buf.shape != arrived.shape
                or buf.dtype != arrived.dtype
            ):
                buf = np.empty_like(arrived)
                self._halo_bufs[key] = buf
            np.copyto(buf, arrived)
            staged[direction] = buf
        return PhaseHalos(**staged)

    def run_phase(self, lat, color: str, stream, halos: dict):
        """One colour phase: eager warm-up, then record, then replay."""
        self._check_binding(lat, stream)
        staged = self._stage_halos(color, halos)
        trace = self.traces.get(color)
        if trace is not None:
            trace.replay()
            self.sweeps_replayed += 1
            return lat
        updater = self.updater
        if self._fallback or color not in self._warmed:
            self._warmed.add(color)
            self.sweeps_eager += 1
            return updater.update_color(lat, color, stream=stream, halos=staged)
        trace = SweepTrace()
        real = updater.backend
        updater.backend = _RecordingBackend(real, trace)
        try:
            lat = updater.update_color(lat, color, stream=stream, halos=staged)
        finally:
            updater.backend = real
        self.sweeps_eager += 1
        if trace.sound and trace.n_ops > 0:
            self.traces[color] = trace.compile(real)
            self.traces_recorded += 1
        else:
            self._fallback = True
            self.fallbacks += 1
        return lat


def record_traced_metrics(registry, *executors) -> None:
    """Publish the traced executor's gauges (zeros when tracing is off).

    Sums over every executor given (one for solo/ensemble, one per core
    for distributed; ``None`` entries are skipped so drivers can pass
    their executor slot unconditionally):

    * ``traced_sweeps_replayed`` / ``traced_sweeps_eager`` — how the
      chain's sweeps (phases, for distributed cores) were executed;
    * ``traced_traces_recorded`` / ``traced_invalidations`` /
      ``traced_fallbacks`` — recorder lifecycle;
    * ``traced_program_ops`` — backend ops per replayed sweep.
    """
    replayed = eager = recorded = invalidations = fallbacks = ops = 0
    for ex in executors:
        if ex is None:
            continue
        replayed += ex.sweeps_replayed
        eager += ex.sweeps_eager
        recorded += ex.traces_recorded
        invalidations += ex.invalidations
        fallbacks += ex.fallbacks
        ops += ex.program_ops
    registry.gauge("traced_sweeps_replayed").set(replayed)
    registry.gauge("traced_sweeps_eager").set(eager)
    registry.gauge("traced_traces_recorded").set(recorded)
    registry.gauge("traced_invalidations").set(invalidations)
    registry.gauge("traced_fallbacks").set(fallbacks)
    registry.gauge("traced_program_ops").set(ops)


# -- optional numba acceleration -------------------------------------------

def _backend_numba_eligible(backend: Backend) -> bool:
    """Numba fusion must not swallow cost accounting or store rounding.

    Only a plain no-accounting backend (the base no-op ``_charge``) with
    identity store rounding (float32) qualifies; TPU cost-model backends
    and bfloat16 replay through the recorded backend ops unchanged.
    """
    return (
        type(backend)._charge is Backend._charge
        and backend.dtype.quantize_into is None
    )


_FLIP_KERNEL = None


def _flip_kernel():  # pragma: no cover - requires numba
    """Build (once) the JIT kernel for the scalar-beta, maskless flip.

    Mirrors the recorded op pentad exactly in float32: ``idx = int(5 *
    sigma + nn)`` truncated toward zero, table gather with wrap, strict
    ``probs < entry`` comparison, and the exact ±1 flip product.
    """
    global _FLIP_KERNEL
    if _FLIP_KERNEL is None:
        @numba.njit(cache=False)
        def kernel(sigma, nn, probs, entries):
            m = entries.shape[0]
            for k in range(sigma.shape[0]):
                idx = int(np.float32(sigma[k] * np.float32(5.0) + nn[k]))
                f = (
                    np.float32(1.0)
                    if probs[k] < entries[idx % m]
                    else np.float32(0.0)
                )
                sigma[k] = sigma[k] * (np.float32(1.0) - np.float32(2.0) * f)

        _FLIP_KERNEL = kernel
    return _FLIP_KERNEL


def _is_flip_pentad(entries, i) -> "tuple | None":  # pragma: no cover
    """Match the maskless fused_metropolis_flip op sequence at index ``i``.

    Returns ``(sigma, nn, probs, table_entries)`` when entries[i:i+6] is
    exactly acceptance_index/take/less/multiply(-2)/add(1)/multiply with
    consistent buffer identities and no per-chain offsets, else None.
    """
    if i + 6 > len(entries):
        return None
    names = [entries[i + k][0] for k in range(6)]
    if names != [
        "acceptance_index_into",
        "take_into",
        "less_into",
        "multiply_into",
        "add_into",
        "multiply_into",
    ]:
        return None
    _, _, a_args, a_kwargs = entries[i]
    if a_kwargs.get("offsets") is not None or (
        len(a_args) >= 5 and a_args[4] is not None
    ):
        return None
    sigma, nn, idx = a_args[0], a_args[1], a_args[2]
    _, _, t_args, _ = entries[i + 1]
    table_entries, ratio = t_args[0], t_args[2]
    if t_args[1] is not idx:
        return None
    _, _, l_args, _ = entries[i + 2]
    probs, flips = l_args[0], l_args[2]
    if l_args[1] is not ratio:
        return None
    _, _, m2_args, _ = entries[i + 3]
    if m2_args[0] is not flips or m2_args[2] is not flips:
        return None
    if np.size(m2_args[1]) != 1 or float(np.ravel(m2_args[1])[0]) != -2.0:
        return None
    _, _, a1_args, _ = entries[i + 4]
    if a1_args[0] is not flips or a1_args[2] is not flips:
        return None
    if np.size(a1_args[1]) != 1 or float(np.ravel(a1_args[1])[0]) != 1.0:
        return None
    _, _, mf_args, _ = entries[i + 5]
    if mf_args[0] is not sigma or mf_args[1] is not flips or mf_args[2] is not sigma:
        return None
    arrays = (sigma, nn, probs, table_entries)
    for arr in arrays:
        if arr.dtype != np.float32 or not arr.flags["C_CONTIGUOUS"]:
            return None
    return arrays


def _fuse_flip_steps(entries, backend):  # pragma: no cover - requires numba
    """Collapse recognised flip pentads into single JIT kernel calls.

    Returns ``(new_entries, n_fused)``.  Any failure — ineligible
    backend, unmatched patterns, numba compilation errors — degrades
    gracefully to the unfused program, never to an error: the recorded
    backend ops are always a correct replay on their own.
    """
    if not _backend_numba_eligible(backend):
        return entries, 0
    try:
        kernel = _flip_kernel()
        fused: list = []
        n_fused = 0
        i = 0
        while i < len(entries):
            match = _is_flip_pentad(entries, i)
            if match is None:
                fused.append(entries[i])
                i += 1
                continue
            sigma, nn, probs, table_entries = match
            fused.append(
                (
                    "numba_flip",
                    kernel,
                    (sigma.ravel(), nn.ravel(), probs.ravel(), table_entries),
                    {},
                )
            )
            n_fused += 1
            i += 6
        return fused, n_fused
    except Exception:
        return entries, 0
