"""The Metropolis flip rule shared by every checkerboard updater.

For the zero-field ferromagnetic Ising model with J = 1, flipping spin
``sigma_i`` changes the energy by ``dE = 2 * sigma_i * nn(i)`` where
``nn(i)`` is the sum of its four neighbours.  Metropolis-Hastings accepts
the flip with probability ``min(1, exp(-beta * dE))``; since the uniform
draw ``u`` satisfies ``u < 1`` always, comparing ``u < exp(-2 beta sigma
nn)`` implements the rule without a separate dE <= 0 branch — exactly the
formulation in the paper's Algorithms 1 and 2.

Every updater funnels through :func:`metropolis_flip` so that the float32
and bfloat16 pipelines, and all three sweep implementations, are
guaranteed to apply bit-identical per-site acceptance decisions when fed
identical uniforms.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend

__all__ = ["acceptance_ratio", "metropolis_flip"]


def acceptance_ratio(
    backend: Backend,
    sigma: np.ndarray,
    nn: np.ndarray,
    beta: float | np.ndarray,
    field: float = 0.0,
) -> np.ndarray:
    """``exp(-2 * beta * sigma * (nn + h))``, evaluated in the backend dtype.

    ``sigma * nn`` is a small integer in [-4, 4] and is exact in both
    float32 and bfloat16; the dtype only affects the scale factor, the
    field shift and the exponential.

    ``beta`` may be a scalar or an array broadcastable against ``sigma``
    — the batched ensemble passes one inverse temperature per chain,
    shaped ``(batch, 1, ..., 1)``.  Each chain's arithmetic is then
    elementwise-identical to the scalar-beta path, so batched and solo
    chains accept the same flips bit-for-bit.

    ``field`` is the external magnetic field h of the paper's Hamiltonian
    (the mu term, which the paper sets to zero): flipping sigma_i changes
    the energy by ``dE = 2 sigma_i (nn(i) + h)``.
    """
    factor = backend.array(-2.0 * np.asarray(beta, dtype=np.float64))
    if field != 0.0:
        nn = backend.add(nn, backend.array(float(field)))
    local = backend.multiply(sigma, nn)
    return backend.exp(backend.multiply(factor, local))


def metropolis_flip(
    backend: Backend,
    sigma: np.ndarray,
    nn: np.ndarray,
    probs: np.ndarray,
    beta: float | np.ndarray,
    mask: np.ndarray | None = None,
    field: float = 0.0,
) -> np.ndarray:
    """Apply one parallel Metropolis step to every site of ``sigma``.

    Parameters
    ----------
    sigma:
        Spins in {-1, +1} (any shape).
    nn:
        Matching nearest-neighbour sums.
    probs:
        Matching uniforms in [0, 1).
    beta:
        Inverse temperature.
    mask:
        Optional 0/1 mask freezing sites where the mask is 0 (Algorithm
        1's colour mask ``M``).
    field:
        External magnetic field h (0 reproduces the paper's setting).

    Returns the new spin tensor ``sigma - 2 * flips * sigma``.
    """
    if sigma.shape != nn.shape or sigma.shape != probs.shape:
        raise ValueError(
            f"shape mismatch: sigma {sigma.shape}, nn {nn.shape}, probs {probs.shape}"
        )
    ratio = acceptance_ratio(backend, sigma, nn, beta, field=field)
    flips = backend.less(probs, ratio)
    if mask is not None:
        flips = backend.multiply(flips, mask)
    delta = backend.multiply(backend.array(2.0), backend.multiply(flips, sigma))
    return backend.subtract(sigma, delta)
