"""The Metropolis flip rule shared by every checkerboard updater.

For the zero-field ferromagnetic Ising model with J = 1, flipping spin
``sigma_i`` changes the energy by ``dE = 2 * sigma_i * nn(i)`` where
``nn(i)`` is the sum of its four neighbours.  Metropolis-Hastings accepts
the flip with probability ``min(1, exp(-beta * dE))``; since the uniform
draw ``u`` satisfies ``u < 1`` always, comparing ``u < exp(-2 beta sigma
nn)`` implements the rule without a separate dE <= 0 branch — exactly the
formulation in the paper's Algorithms 1 and 2.

Every updater funnels through :func:`metropolis_flip` so that the float32
and bfloat16 pipelines, and all three sweep implementations, are
guaranteed to apply bit-identical per-site acceptance decisions when fed
identical uniforms.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend

__all__ = ["acceptance_ratio", "metropolis_flip"]

# Per-backend cap on cached beta/field device scalars; a temperature scan
# touches a few dozen betas at most, so eviction is a wholesale clear.
_SCALAR_CACHE_MAX = 64


def _cached_device_scalar(backend: Backend, key: tuple, value) -> np.ndarray:
    """Return ``backend.array(value)``, memoised per backend instance.

    ``backend.array`` does not charge the cost model, so caching the
    materialised scalar changes host-side allocation only — every sweep
    used to rebuild the same ``-2 * beta`` tensor twice per color phase.
    """
    cache = getattr(backend, "_device_scalar_cache", None)
    if cache is None:
        cache = {}
        backend._device_scalar_cache = cache
    arr = cache.get(key)
    if arr is None:
        if len(cache) >= _SCALAR_CACHE_MAX:
            cache.clear()
        arr = backend.array(value() if callable(value) else value)
        cache[key] = arr
    return arr


def acceptance_ratio(
    backend: Backend,
    sigma: np.ndarray,
    nn: np.ndarray,
    beta: float | np.ndarray,
    field: float = 0.0,
) -> np.ndarray:
    """``exp(-2 * beta * sigma * (nn + h))``, evaluated in the backend dtype.

    ``sigma * nn`` is a small integer in [-4, 4] and is exact in both
    float32 and bfloat16; the dtype only affects the scale factor, the
    field shift and the exponential.

    ``beta`` may be a scalar or an array broadcastable against ``sigma``
    — the batched ensemble passes one inverse temperature per chain,
    shaped ``(batch, 1, ..., 1)``.  Each chain's arithmetic is then
    elementwise-identical to the scalar-beta path, so batched and solo
    chains accept the same flips bit-for-bit.

    ``field`` is the external magnetic field h of the paper's Hamiltonian
    (the mu term, which the paper sets to zero): flipping sigma_i changes
    the energy by ``dE = 2 sigma_i (nn(i) + h)``.
    """
    beta_arr = np.asarray(beta, dtype=np.float64)
    if beta_arr.ndim == 0:
        beta_key = ("beta", float(beta_arr))
    else:
        beta_key = ("beta", beta_arr.shape, beta_arr.tobytes())
    factor = _cached_device_scalar(
        backend, beta_key, lambda: -2.0 * beta_arr
    )
    if field != 0.0:
        field_scalar = _cached_device_scalar(
            backend, ("field", float(field)), float(field)
        )
        nn = backend.add(nn, field_scalar)
    local = backend.multiply(sigma, nn)
    return backend.exp(backend.multiply(factor, local))


def metropolis_flip(
    backend: Backend,
    sigma: np.ndarray,
    nn: np.ndarray,
    probs: np.ndarray,
    beta: float | np.ndarray,
    mask: np.ndarray | None = None,
    field: float = 0.0,
) -> np.ndarray:
    """Apply one parallel Metropolis step to every site of ``sigma``.

    Parameters
    ----------
    sigma:
        Spins in {-1, +1} (any shape).
    nn:
        Matching nearest-neighbour sums.
    probs:
        Matching uniforms in [0, 1).
    beta:
        Inverse temperature.
    mask:
        Optional 0/1 mask freezing sites where the mask is 0 (Algorithm
        1's colour mask ``M``).
    field:
        External magnetic field h (0 reproduces the paper's setting).

    Returns the new spin tensor ``sigma - 2 * flips * sigma``.
    """
    if sigma.shape != nn.shape or sigma.shape != probs.shape:
        raise ValueError(
            f"shape mismatch: sigma {sigma.shape}, nn {nn.shape}, probs {probs.shape}"
        )
    if mask is not None:
        trailing = sigma.shape[sigma.ndim - mask.ndim:] if mask.ndim <= sigma.ndim else None
        if mask.shape != sigma.shape and mask.shape != trailing:
            raise ValueError(
                f"mask shape {mask.shape} does not match sigma shape "
                f"{sigma.shape}: the mask must equal the spin shape or its "
                f"trailing dimensions (per-chain broadcast)"
            )
    ratio = acceptance_ratio(backend, sigma, nn, beta, field=field)
    flips = backend.less(probs, ratio)
    if mask is not None:
        flips = backend.multiply(flips, mask)
    delta = backend.multiply(backend.array(2.0), backend.multiply(flips, sigma))
    return backend.subtract(sigma, delta)
