"""Algorithm 2: the optimized compact checkerboard updater (``UpdateOptim``).

The lattice lives as four interleaved compact sub-lattices (see
:class:`~repro.core.lattice.CompactLattice`).  Per colour phase only the
two active tensors draw uniforms and get updated, and only the two
opposite-colour tensors are read for neighbour sums — eliminating the
masking, the wasted RNG and the wasted matmuls of Algorithm 1.  The paper
measures this at about 3x faster with a smaller HBM footprint.

The updater also exposes the per-phase halo hook used by the distributed
pod simulation: :meth:`update_color` takes a
:class:`~repro.core.kernels.PhaseHalos` that replaces the local torus
wrap with boundary rows/columns received from neighbouring cores.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from ..backend.numpy_backend import NumpyBackend
from ..rng.streams import PhiloxStream
from .accept import AcceptanceTable
from .fused import SweepWorkspace, fused_metropolis_flip
from .kernels import PhaseHalos, compact_neighbor_sums, compact_neighbor_sums_into
from .lattice import CompactLattice
from .update import metropolis_flip

__all__ = ["CompactUpdater"]


class CompactUpdater:
    """Stateless driver for Algorithm 2 sweeps over a CompactLattice.

    With ``fused=True`` sweeps run the fused engine: table-gathered
    acceptance probabilities and workspace-backed in-place kernels, so
    steady-state sweeps allocate nothing and the active sub-lattices are
    **mutated in place** (trajectories stay bit-identical).
    """

    def __init__(
        self,
        beta: float | np.ndarray,
        backend: Backend | None = None,
        block_shape: tuple[int, int] | None = (128, 128),
        nn_method: str = "matmul",
        field: float = 0.0,
        fused: bool = False,
    ) -> None:
        if np.any(np.asarray(beta) <= 0):
            raise ValueError(f"beta must be positive, got {beta}")
        if nn_method not in ("matmul", "conv"):
            raise ValueError(
                f"nn_method must be 'matmul' or 'conv', got {nn_method!r}"
            )
        # Scalar for a single chain; a (batch, 1, 1, 1, 1) broadcast array
        # when driving a batched ensemble at per-chain temperatures.
        self.beta = float(beta) if np.ndim(beta) == 0 else np.asarray(beta, dtype=np.float64)
        self.backend = backend if backend is not None else NumpyBackend()
        self.block_shape = tuple(block_shape) if block_shape is not None else None
        self.nn_method = nn_method
        self.field = float(field)
        self.fused = bool(fused)
        self._workspace: SweepWorkspace | None = None
        self._accept_table: AcceptanceTable | None = None

    @property
    def workspace(self) -> SweepWorkspace | None:
        """The fused engine's scratch workspace (None until first use)."""
        return self._workspace

    def _fused_ctx(self) -> tuple[AcceptanceTable, SweepWorkspace]:
        if self._workspace is None:
            self._workspace = SweepWorkspace()
        if self._accept_table is None:
            self._accept_table = AcceptanceTable(
                self.backend, self.beta, field=self.field
            )
        return self._accept_table, self._workspace

    def retemper(self, beta: float | np.ndarray) -> None:
        """Swap in new (per-chain) inverse temperatures, in place.

        Keeps the workspace (its buffers are beta-independent) and drops
        only the acceptance table, so replica-exchange swap rounds pay a
        table rebuild instead of a full updater rebuild.  Callers holding
        a traced executor must ``rebind`` it afterwards.
        """
        if np.any(np.asarray(beta) <= 0):
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta) if np.ndim(beta) == 0 else np.asarray(beta, dtype=np.float64)
        self._accept_table = None

    def update_color(
        self,
        lat: CompactLattice,
        color: str,
        stream: PhiloxStream | None = None,
        probs: tuple[np.ndarray, np.ndarray] | None = None,
        halos: PhaseHalos | None = None,
    ) -> CompactLattice:
        """One colour phase of Algorithm 2.

        Parameters
        ----------
        lat:
            Current compact state.
        color:
            "black" updates (s00, s11); "white" updates (s01, s10).
        stream:
            Uniform source; draws two tensors shaped like the active
            sub-lattices (probs0 for s00/s01, then probs1 for s11/s10 —
            the draw order of Algorithm 2 lines 1-2).
        probs:
            Explicit (probs0, probs1) overriding the stream, for
            deterministic cross-implementation tests.
        halos:
            Optional inter-core boundary values (distributed mode).

        Returns a new CompactLattice; the two passive tensors are shared
        with the input (they are unchanged by construction).  In fused
        mode the two *active* tensors are updated in place and the input
        lattice itself is returned.
        """
        shape = lat.grid_shape
        if self.fused:
            return self._update_color_fused(lat, color, stream, probs, halos)
        if probs is None:
            if stream is None:
                raise ValueError("either stream or probs must be provided")
            probs0 = self.backend.random_uniform(shape, stream)
            probs1 = self.backend.random_uniform(shape, stream)
        else:
            probs0, probs1 = probs
            if probs0.shape != shape or probs1.shape != shape:
                raise ValueError(
                    f"probs shapes {probs0.shape}, {probs1.shape} != grid shape {shape}"
                )

        nn0, nn1 = compact_neighbor_sums(
            lat, color, self.backend, halos=halos, method=self.nn_method
        )
        if color == "black":
            new00 = metropolis_flip(
                self.backend, lat.s00, nn0, probs0, self.beta, field=self.field
            )
            new11 = metropolis_flip(
                self.backend, lat.s11, nn1, probs1, self.beta, field=self.field
            )
            return CompactLattice(s00=new00, s01=lat.s01, s10=lat.s10, s11=new11)
        new01 = metropolis_flip(
            self.backend, lat.s01, nn0, probs0, self.beta, field=self.field
        )
        new10 = metropolis_flip(
            self.backend, lat.s10, nn1, probs1, self.beta, field=self.field
        )
        return CompactLattice(s00=lat.s00, s01=new01, s10=new10, s11=lat.s11)

    def _update_color_fused(
        self,
        lat: CompactLattice,
        color: str,
        stream: PhiloxStream | None,
        probs: tuple[np.ndarray, np.ndarray] | None,
        halos: PhaseHalos | None,
    ) -> CompactLattice:
        """Fused colour phase: in-place kernels, table-gathered acceptance."""
        table, ws = self._fused_ctx()
        shape = lat.grid_shape
        if probs is None:
            if stream is None:
                raise ValueError("either stream or probs must be provided")
            probs0 = ws.buffer("probs0", shape)
            probs1 = ws.buffer("probs1", shape)
            # Two separate draws, exactly like the elementwise path — the
            # counter advance per draw must match for bit-identity.
            self.backend.uniform_into(stream, probs0)
            self.backend.uniform_into(stream, probs1)
        else:
            probs0, probs1 = probs
            if probs0.shape != shape or probs1.shape != shape:
                raise ValueError(
                    f"probs shapes {probs0.shape}, {probs1.shape} != grid shape {shape}"
                )
        nn0, nn1 = compact_neighbor_sums_into(
            lat, color, self.backend, ws, halos=halos, method=self.nn_method
        )
        if color == "black":
            fused_metropolis_flip(self.backend, lat.s00, nn0, probs0, table, ws)
            fused_metropolis_flip(self.backend, lat.s11, nn1, probs1, table, ws)
        else:
            fused_metropolis_flip(self.backend, lat.s01, nn0, probs0, table, ws)
            fused_metropolis_flip(self.backend, lat.s10, nn1, probs1, table, ws)
        return lat

    def sweep(
        self,
        lat: CompactLattice,
        stream: PhiloxStream | None = None,
        probs_black: tuple[np.ndarray, np.ndarray] | None = None,
        probs_white: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> CompactLattice:
        """One full sweep: black phase then white phase."""
        lat = self.update_color(lat, "black", stream, probs_black)
        return self.update_color(lat, "white", stream, probs_white)

    # -- plain-lattice conveniences ---------------------------------------

    def to_state(self, plain: np.ndarray) -> CompactLattice:
        """Convert a plain lattice into compact grid state.

        A 2D lattice yields the rank-4 grid form; a ``(batch, rows,
        cols)`` stack of independent chains yields the batched rank-5
        form (one shared geometry, one chain per leading index).
        """
        block = self._block_for(plain.shape)
        if plain.ndim == 3:
            lat = CompactLattice.stack(
                [CompactLattice.from_plain(p, block) for p in plain]
            )
        else:
            lat = CompactLattice.from_plain(plain, block)
        return CompactLattice(
            s00=self.backend.array(lat.s00),
            s01=self.backend.array(lat.s01),
            s10=self.backend.array(lat.s10),
            s11=self.backend.array(lat.s11),
        )

    def _block_for(self, plain_shape: tuple[int, ...]) -> tuple[int, int]:
        if self.block_shape is not None:
            return self.block_shape
        return plain_shape[-2] // 2, plain_shape[-1] // 2

    @staticmethod
    def to_plain(lat: CompactLattice) -> np.ndarray:
        return lat.to_plain()

    def sweep_plain(self, plain: np.ndarray, stream: PhiloxStream) -> np.ndarray:
        """One sweep on a plain lattice (converting in and out)."""
        return self.to_plain(self.sweep(self.to_state(plain), stream))
