"""Precomputed Metropolis acceptance tables.

The flip rule ``u < exp(-2 * beta * sigma * (nn + h))`` has a tiny input
domain: ``sigma`` is one of {-1, +1} and the 4-neighbour sum ``nn`` one of
{-4, -2, 0, 2, 4}, so only ten distinct acceptance probabilities exist per
(beta, dtype, field).  Precomputing them once and replacing the
full-lattice ``exp`` with an integer gather is the standard trick of the
GPU Ising literature (Romero, Bisson & Fatica, arXiv:1906.06297; the
multi-spin MPI codes precompute the same exponentials per temperature).

Bit-identity is the design constraint here: every table entry is produced
by running the *actual* backend op sequence of
:func:`~repro.core.update.acceptance_ratio` on the ten (sigma, nn)
combinations, so the gathered probability equals, bit for bit, what the
elementwise path would have computed at that site — in float32 and in
bfloat16, with or without an external field, and per chain in the batched
ensemble (where beta is a per-chain array and the table grows one
ten-entry band per chain).
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from .update import acceptance_ratio

__all__ = ["AcceptanceTable", "NN_VALUES"]

# Reachable 4-neighbour sums of a +/-1 checkerboard lattice.
NN_VALUES = (-4.0, -2.0, 0.0, 2.0, 4.0)


class AcceptanceTable:
    """The ten (per chain) reachable acceptance probabilities, pre-`exp`ed.

    Parameters
    ----------
    backend:
        Op executor whose dtype and ``exp`` define the entries.
    beta:
        Scalar inverse temperature, or a per-chain broadcast array shaped
        ``(batch, 1, ..., 1)`` exactly as the updaters carry it.  The
        per-chain case builds a flat ``batch * 10`` table plus a
        per-chain slot-offset tensor.
    field:
        External magnetic field h; folded into the entries the same way
        :func:`acceptance_ratio` folds it into ``nn``.

    Attributes
    ----------
    entries:
        Flat float32 array of quantized acceptance probabilities in the
        19-slot wrap layout: the entry for ``(sigma, nn)`` lives at slot
        ``(5*sigma + nn) mod 19`` — the ten reachable ``5*sigma + nn``
        values are the odd integers -9..9, distinct mod 19, so the
        gather's wrap mode resolves negative indices without a bias add.
        Chain ``b`` of a per-chain table occupies slots
        ``[19 b, 19 b + 19)`` with the +9 bias folded into ``offsets``.
        Unreachable slots hold 0 and are never addressed.
    offsets:
        ``None`` for scalar beta; otherwise a float32 tensor shaped like
        ``beta`` holding ``19 * b + 9`` per chain, ready to broadcast
        into :meth:`Backend.acceptance_index_into`.
    """

    #: Slots per chain: indices are ``5*sigma + nn`` (odd, -9..9), taken
    #: modulo 19, so every reachable combination gets a distinct slot.
    SLOTS = 19

    def __init__(
        self,
        backend: Backend,
        beta: "float | np.ndarray",
        field: float = 0.0,
    ) -> None:
        self.backend = backend
        self.field = float(field)
        sigma_combo = np.repeat([-1.0, 1.0], len(NN_VALUES))
        nn_combo = np.tile(NN_VALUES, 2)
        sigma_vals = backend.array(sigma_combo)
        nn_vals = backend.array(nn_combo)
        # Run the exact elementwise op sequence on the ten combos; with a
        # per-chain beta the broadcast yields one ten-entry band per chain
        # in row-major order.
        probs = acceptance_ratio(backend, sigma_vals, nn_vals, beta, field=field)
        probs = np.ascontiguousarray(probs, dtype=np.float32).reshape(-1, 10)
        raw = (5.0 * sigma_combo + nn_combo).astype(np.int64)
        # Scalar tables are addressed by the raw (possibly negative) index
        # through the gather's wrap; per-chain tables by raw + 9 with the
        # bias folded into the per-chain offsets.
        wrap_slots = raw % self.SLOTS
        bias_slots = raw + (self.SLOTS - 1) // 2

        if np.ndim(beta) == 0:
            if probs.shape[0] != 1:
                raise ValueError(
                    f"scalar beta produced {probs.shape[0]} table bands"
                )
            self.entries = np.zeros(self.SLOTS, dtype=np.float32)
            self.entries[wrap_slots] = probs[0]
            self.offsets = None
        else:
            beta_arr = np.asarray(beta)
            n_chains = beta_arr.shape[0]
            if beta_arr.size != n_chains:
                raise ValueError(
                    f"per-chain beta must be shaped (batch, 1, ..., 1), "
                    f"got {beta_arr.shape}"
                )
            if probs.shape[0] != n_chains:
                raise ValueError(
                    f"table has {probs.shape[0]} bands for {n_chains} chains"
                )
            banded = np.zeros((n_chains, self.SLOTS), dtype=np.float32)
            banded[:, bias_slots] = probs
            self.entries = banded.reshape(-1)
            self.offsets = (
                np.arange(n_chains, dtype=np.float32) * np.float32(self.SLOTS)
                + np.float32((self.SLOTS - 1) // 2)
            ).reshape(beta_arr.shape)

    @property
    def n_entries(self) -> int:
        return int(self.entries.size)

    @property
    def nbytes(self) -> int:
        """Host bytes held by the table (entries + per-chain offsets)."""
        total = self.entries.nbytes
        if self.offsets is not None:
            total += self.offsets.nbytes
        return int(total)
