"""Precomputed Metropolis acceptance tables.

The flip rule ``u < exp(-2 * beta * sigma * (nn + h))`` has a tiny input
domain: ``sigma`` is one of {-1, +1} and the 4-neighbour sum ``nn`` one of
{-4, -2, 0, 2, 4}, so only ten distinct acceptance probabilities exist per
(beta, dtype, field).  Precomputing them once and replacing the
full-lattice ``exp`` with an integer gather is the standard trick of the
GPU Ising literature (Romero, Bisson & Fatica, arXiv:1906.06297; the
multi-spin MPI codes precompute the same exponentials per temperature).

Bit-identity is the design constraint here: every table entry is produced
by running the *actual* backend op sequence of
:func:`~repro.core.update.acceptance_ratio` on the ten (sigma, nn)
combinations, so the gathered probability equals, bit for bit, what the
elementwise path would have computed at that site — in float32 and in
bfloat16, with or without an external field, and per chain in the batched
ensemble (where beta is a per-chain array and the table grows one
ten-entry band per chain).
"""

from __future__ import annotations

import numpy as np

from ..backend.base import Backend
from .couplings import BondCouplings
from .update import _cached_device_scalar, acceptance_ratio

__all__ = ["AcceptanceTable", "BondedAcceptance", "NN_VALUES"]

# Reachable 4-neighbour sums of a +/-1 checkerboard lattice.
NN_VALUES = (-4.0, -2.0, 0.0, 2.0, 4.0)


class AcceptanceTable:
    """The ten (per chain) reachable acceptance probabilities, pre-`exp`ed.

    Parameters
    ----------
    backend:
        Op executor whose dtype and ``exp`` define the entries.
    beta:
        Scalar inverse temperature, or a per-chain broadcast array shaped
        ``(batch, 1, ..., 1)`` exactly as the updaters carry it.  The
        per-chain case builds a flat ``batch * 10`` table plus a
        per-chain slot-offset tensor.
    field:
        External magnetic field h; folded into the entries the same way
        :func:`acceptance_ratio` folds it into ``nn``.

    Attributes
    ----------
    entries:
        Flat float32 array of quantized acceptance probabilities in the
        19-slot wrap layout: the entry for ``(sigma, nn)`` lives at slot
        ``(5*sigma + nn) mod 19`` — the ten reachable ``5*sigma + nn``
        values are the odd integers -9..9, distinct mod 19, so the
        gather's wrap mode resolves negative indices without a bias add.
        Chain ``b`` of a per-chain table occupies slots
        ``[19 b, 19 b + 19)`` with the +9 bias folded into ``offsets``.
        Unreachable slots hold 0 and are never addressed.
    offsets:
        ``None`` for scalar beta; otherwise a float32 tensor shaped like
        ``beta`` holding ``19 * b + 9`` per chain, ready to broadcast
        into :meth:`Backend.acceptance_index_into`.
    """

    #: Slots per chain: indices are ``5*sigma + nn`` (odd, -9..9), taken
    #: modulo 19, so every reachable combination gets a distinct slot.
    SLOTS = 19

    def __init__(
        self,
        backend: Backend,
        beta: "float | np.ndarray",
        field: float = 0.0,
    ) -> None:
        self.backend = backend
        self.field = float(field)
        sigma_combo = np.repeat([-1.0, 1.0], len(NN_VALUES))
        nn_combo = np.tile(NN_VALUES, 2)
        sigma_vals = backend.array(sigma_combo)
        nn_vals = backend.array(nn_combo)
        # Run the exact elementwise op sequence on the ten combos; with a
        # per-chain beta the broadcast yields one ten-entry band per chain
        # in row-major order.
        probs = acceptance_ratio(backend, sigma_vals, nn_vals, beta, field=field)
        probs = np.ascontiguousarray(probs, dtype=np.float32).reshape(-1, 10)
        raw = (5.0 * sigma_combo + nn_combo).astype(np.int64)
        # Scalar tables are addressed by the raw (possibly negative) index
        # through the gather's wrap; per-chain tables by raw + 9 with the
        # bias folded into the per-chain offsets.
        wrap_slots = raw % self.SLOTS
        bias_slots = raw + (self.SLOTS - 1) // 2

        if np.ndim(beta) == 0:
            if probs.shape[0] != 1:
                raise ValueError(
                    f"scalar beta produced {probs.shape[0]} table bands"
                )
            self.entries = np.zeros(self.SLOTS, dtype=np.float32)
            self.entries[wrap_slots] = probs[0]
            self.offsets = None
        else:
            beta_arr = np.asarray(beta)
            n_chains = beta_arr.shape[0]
            if beta_arr.size != n_chains:
                raise ValueError(
                    f"per-chain beta must be shaped (batch, 1, ..., 1), "
                    f"got {beta_arr.shape}"
                )
            if probs.shape[0] != n_chains:
                raise ValueError(
                    f"table has {probs.shape[0]} bands for {n_chains} chains"
                )
            banded = np.zeros((n_chains, self.SLOTS), dtype=np.float32)
            banded[:, bias_slots] = probs
            self.entries = banded.reshape(-1)
            self.offsets = (
                np.arange(n_chains, dtype=np.float32) * np.float32(self.SLOTS)
                + np.float32((self.SLOTS - 1) // 2)
            ).reshape(beta_arr.shape)

    @property
    def n_entries(self) -> int:
        return int(self.entries.size)

    @property
    def nbytes(self) -> int:
        """Host bytes held by the table (entries + per-chain offsets)."""
        total = self.entries.nbytes
        if self.offsets is not None:
            total += self.offsets.nbytes
        return int(total)


class BondedAcceptance:
    """Per-bond variant of :class:`AcceptanceTable` for disordered couplings.

    With ``"ferro"`` or ``"bimodal"`` couplings (J = +/-1 per bond) the
    weighted neighbour sum still lands on the five values of
    :data:`NN_VALUES` — the bonds change *which* slot a site hits, never
    the slot alphabet — so acceptance stays the standard table gather,
    delegated to an internal :class:`AcceptanceTable`.  Gaussian
    couplings make the neighbour sum continuous, so no finite table
    exists; :meth:`flip_into` then evaluates the elementwise
    ``exp(-2 beta sigma (nn + h))`` through the ``*_into`` vocabulary —
    allocation-free in steady state and fully replayable by the traced
    executor, mirroring :func:`~repro.core.update.acceptance_ratio` and
    :func:`~repro.core.update.metropolis_flip` op for op (including the
    shared ``-2 * beta`` device-scalar cache) so fused and elementwise
    disordered sweeps stay bit-identical.
    """

    def __init__(
        self,
        backend: Backend,
        beta: "float | np.ndarray",
        couplings: BondCouplings,
        field: float = 0.0,
    ) -> None:
        self.backend = backend
        self.field = float(field)
        self.couplings = couplings
        self.beta = beta
        if couplings.kind == "gaussian":
            self.table = None
        else:
            self.table = AcceptanceTable(backend, beta, field=field)

    @property
    def kind(self) -> str:
        return self.couplings.kind

    @property
    def n_entries(self) -> int:
        return 0 if self.table is None else self.table.n_entries

    @property
    def nbytes(self) -> int:
        return 0 if self.table is None else self.table.nbytes

    def flip_into(
        self,
        sigma: np.ndarray,
        nn: np.ndarray,
        probs: np.ndarray,
        workspace,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """In-place Metropolis step on weighted neighbour sums.

        Mutates ``sigma`` (and, when ``field != 0``, shifts ``nn`` in
        place — callers recompute ``nn`` every phase from a workspace
        buffer) and returns ``sigma``.
        """
        if self.table is not None:
            # Local import: fused.py imports this module for the table type.
            from .fused import fused_metropolis_flip

            return fused_metropolis_flip(
                self.backend, sigma, nn, probs, self.table, workspace, mask=mask
            )
        backend = self.backend
        if sigma.shape != nn.shape or sigma.shape != probs.shape:
            raise ValueError(
                f"shape mismatch: sigma {sigma.shape}, nn {nn.shape}, "
                f"probs {probs.shape}"
            )
        beta_arr = np.asarray(self.beta, dtype=np.float64)
        if beta_arr.ndim == 0:
            beta_key = ("beta", float(beta_arr))
        else:
            beta_key = ("beta", beta_arr.shape, beta_arr.tobytes())
        factor = _cached_device_scalar(backend, beta_key, lambda: -2.0 * beta_arr)
        if self.field != 0.0:
            field_scalar = _cached_device_scalar(
                backend, ("field", float(self.field)), float(self.field)
            )
            backend.add_into(nn, field_scalar, nn)
        local = workspace.buffer("bonded_local", sigma.shape)
        backend.multiply_into(sigma, nn, local)
        backend.multiply_into(factor, local, local)
        backend.exp_into(local, local)
        flips = workspace.buffer("flip_flips", sigma.shape)
        backend.less_into(probs, local, flips)
        if mask is not None:
            backend.multiply_into(flips, mask, flips)
        neg_two = _cached_device_scalar(backend, ("const", -2.0), -2.0)
        one = _cached_device_scalar(backend, ("const", 1.0), 1.0)
        backend.multiply_into(flips, neg_two, flips)
        backend.add_into(flips, one, flips)
        backend.multiply_into(sigma, flips, sigma)
        # Allocation savings only — the exp still runs, so no table_hits.
        n_temps = 5
        if mask is not None:
            n_temps += 1
        if self.field != 0.0:
            n_temps += 1
        workspace.bytes_saved += n_temps * sigma.size * backend.dtype.itemsize
        return sigma
