"""Wolff cluster algorithm — an independent cross-check sampler.

Not part of the paper's TPU mapping (cluster growth is inherently
sequential and irregular), but indispensable to a production Ising
library for two reasons:

* it is a *completely different* Markov chain targeting the same
  Boltzmann distribution, so statistical agreement with the checkerboard
  updaters is a powerful end-to-end validation (used by the test suite);
* it does not suffer critical slowing-down, making it the reference
  sampler near Tc where the local updaters decorrelate slowly — the
  trade-off the paper's raw flips/ns metric deliberately sets aside.

The implementation grows clusters with a vectorised frontier BFS: each
round activates all aligned torus neighbours of the current frontier
with probability ``p = 1 - exp(-2 beta)`` (zero-field Wolff), then flips
the whole cluster.  One :meth:`step` is one cluster; :meth:`sweep_equivalent`
advances until ~N sites have been touched.
"""

from __future__ import annotations

import numpy as np

from ..rng.streams import PhiloxStream

__all__ = ["WolffUpdater"]


class WolffUpdater:
    """Cluster-flip sampler for the zero-field 2D Ising model."""

    def __init__(self, beta: float) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.p_add = 1.0 - float(np.exp(-2.0 * beta))

    def step(self, plain: np.ndarray, stream: PhiloxStream) -> tuple[np.ndarray, int]:
        """Grow and flip one cluster; returns (new lattice, cluster size)."""
        rows, cols = plain.shape
        sigma = plain.copy()

        # The uniform is float32 in [0, 1), but scaling by the extent can
        # round *up* to the extent itself (a draw near 1.0 times rows may
        # land exactly on rows in float32), which would index out of
        # bounds — clamp to the last valid site.  Non-boundary draws are
        # untouched, so existing trajectories stay bit-identical.
        seed_draw = stream.uniform(2)
        i = min(int(seed_draw[0] * rows), rows - 1)
        j = min(int(seed_draw[1] * cols), cols - 1)
        seed_spin = sigma[i, j]

        in_cluster = np.zeros((rows, cols), dtype=bool)
        frontier = np.zeros((rows, cols), dtype=bool)
        in_cluster[i, j] = True
        frontier[i, j] = True

        while frontier.any():
            # Count bonds from the (new) frontier to each site: every
            # bond is an independent p_add trial, so a site touched by k
            # frontier bonds joins with probability 1 - (1 - p)^k.  Bonds
            # are tested at most once because the frontier holds only
            # newly added sites.
            frontier_int = frontier.astype(np.int8)
            bond_count = (
                np.roll(frontier_int, 1, axis=0)
                + np.roll(frontier_int, -1, axis=0)
                + np.roll(frontier_int, 1, axis=1)
                + np.roll(frontier_int, -1, axis=1)
            )
            candidates = (bond_count > 0) & ~in_cluster & (sigma == seed_spin)
            if not candidates.any():
                break
            p_join = 1.0 - (1.0 - self.p_add) ** bond_count
            accept = stream.uniform((rows, cols)) < p_join.astype(np.float32)
            added = candidates & accept
            in_cluster |= added
            frontier = added

        sigma[in_cluster] = -seed_spin
        return sigma, int(in_cluster.sum())

    def sweep_equivalent(
        self, plain: np.ndarray, stream: PhiloxStream
    ) -> np.ndarray:
        """Flip clusters until ~one lattice worth of sites has been touched.

        This is the conventional unit for comparing cluster and local
        updates: expected work comparable to one checkerboard sweep.
        """
        n_sites = plain.size
        touched = 0
        sigma = plain
        while touched < n_sites:
            sigma, size = self.step(sigma, stream)
            touched += size
        return sigma

    # -- uniform interface ---------------------------------------------------

    @staticmethod
    def to_state(plain: np.ndarray) -> np.ndarray:
        return np.asarray(plain, dtype=np.float32)

    @staticmethod
    def to_plain(state: np.ndarray) -> np.ndarray:
        return state

    def sweep(self, state: np.ndarray, stream: PhiloxStream) -> np.ndarray:
        return self.sweep_equivalent(state, stream)

    def sweep_plain(self, plain: np.ndarray, stream: PhiloxStream) -> np.ndarray:
        return self.sweep_equivalent(self.to_state(plain), stream)
