"""The paper's primary contribution: checkerboard Ising MCMC updaters.

* :class:`CheckerboardUpdater` — Algorithm 1 (naive, masked).
* :class:`CompactUpdater` — Algorithm 2 (compact sub-lattices; the
  production updater).
* :class:`ConvUpdater` — the appendix-7.2 convolution variant.
* :class:`IsingSimulation` — single-core chain driver.
* :class:`EnsembleSimulation` — many independent chains advanced as one
  batched rank-5 state (in :mod:`repro.core.ensemble`).
* :class:`DistributedIsing` — the multi-core pod simulation (in
  :mod:`repro.core.distributed`).

All three drivers accept an optional
:class:`~repro.telemetry.report.RunTelemetry` recorder and expose
``report()``; telemetry observes without perturbing — instrumented
chains stay bit-identical to bare ones.
"""

from .checkerboard import CheckerboardUpdater
from .compact import CompactUpdater
from .distributed import DistributedIsing
from .ising3d import Ising3D, T_CRITICAL_3D
from .conv import ConvUpdater, MaskedConvUpdater
from .kernels import (
    PhaseHalos,
    compact_neighbor_sums,
    kernel_K,
    kernel_K_hat,
    neighbor_sum_grid,
    neighbor_sum_roll,
)
from .lattice import (
    CompactLattice,
    checkerboard_mask,
    cold_lattice,
    grid_to_plain,
    plain_to_grid,
    plain_to_quarters,
    quarters_to_plain,
    random_lattice,
    validate_spins,
)
from .couplings import BondCouplings
from .ensemble import EnsembleSimulation
from .metropolis import metropolis_chain, metropolis_sweep
from .tempering import TemperingEnsemble, swap_acceptance_probability
from .packed import PackedState, PackedUpdater, record_packed_metrics
from .wolff import WolffUpdater
from .simulation import ChainResult, IsingSimulation, run_temperature_scan, summarize_chain
from .update import acceptance_ratio, metropolis_flip

__all__ = [
    "CheckerboardUpdater",
    "CompactUpdater",
    "DistributedIsing",
    "Ising3D",
    "T_CRITICAL_3D",
    "ConvUpdater",
    "MaskedConvUpdater",
    "PhaseHalos",
    "compact_neighbor_sums",
    "kernel_K",
    "kernel_K_hat",
    "neighbor_sum_grid",
    "neighbor_sum_roll",
    "CompactLattice",
    "checkerboard_mask",
    "cold_lattice",
    "grid_to_plain",
    "plain_to_grid",
    "plain_to_quarters",
    "quarters_to_plain",
    "random_lattice",
    "validate_spins",
    "metropolis_chain",
    "metropolis_sweep",
    "PackedState",
    "PackedUpdater",
    "record_packed_metrics",
    "WolffUpdater",
    "BondCouplings",
    "ChainResult",
    "EnsembleSimulation",
    "TemperingEnsemble",
    "swap_acceptance_probability",
    "IsingSimulation",
    "run_temperature_scan",
    "summarize_chain",
    "acceptance_ratio",
    "metropolis_flip",
]
