"""Pure-numpy backend: the base op vocabulary with no cost accounting."""

from __future__ import annotations

from ..tpu.dtypes import DType, FLOAT32
from .base import Backend

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Executes ops in numpy with no charging; the physics fast path.

    Identical numerics to :class:`~repro.backend.tpu_backend.TPUBackend`
    with the same dtype — only the accounting differs — which is what lets
    the test suite verify chain equivalence between the two.
    """

    def __init__(self, dtype: DType | str = FLOAT32) -> None:
        super().__init__(dtype)
