"""Backend op vocabulary: numpy execution with pluggable cost accounting."""

from .base import Backend
from .numpy_backend import NumpyBackend

__all__ = ["Backend", "NumpyBackend", "TPUBackend"]


def __getattr__(name: str):
    # TPUBackend pulls in the device model; import lazily to keep the
    # physics-only dependency graph light.
    if name == "TPUBackend":
        from .tpu_backend import TPUBackend

        return TPUBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
