"""Backend that executes ops in numpy and charges a simulated TensorCore.

This is the accounting twin of :class:`NumpyBackend`: numerics are
bit-identical for the same dtype (the equivalence tests rely on it), but
every op books modeled time into the bound core's profiler through the
calibrated cost model — which is how the performance tables of the paper
are regenerated without TPU hardware.
"""

from __future__ import annotations

from ..tpu.dtypes import DType, BFLOAT16, FLOAT32
from ..tpu.tensorcore import TensorCore
from .base import Backend

__all__ = ["TPUBackend", "float32_tpu_backend"]


class TPUBackend(Backend):
    """Numpy execution + per-op cost charging on a TensorCore.

    Parameters
    ----------
    core:
        The simulated TensorCore receiving the charges.
    dtype:
        Storage format; ``BFLOAT16`` halves all byte accounting and
        applies round-to-nearest-even on every op result, exactly like
        the hardware's bfloat16 stores.
    """

    def __init__(self, core: TensorCore, dtype: DType | str = BFLOAT16) -> None:
        super().__init__(dtype)
        self.core = core

    def _charge(
        self,
        category: str,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        batch: float | None = None,
    ) -> None:
        self.core.charge_op(
            category, flops=flops, bytes_moved=bytes_moved, batch=batch
        )


def float32_tpu_backend(core: TensorCore) -> TPUBackend:
    """Convenience constructor for the float32 ablation runs."""
    return TPUBackend(core, dtype=FLOAT32)
